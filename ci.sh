#!/bin/sh
# The project's definition of green. Runs offline; no network access.
set -eux

cargo build --release
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke the full repro suite through the parallel cached runner.
SMOKE_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin repro-all -- \
    --scale small --jobs 2 --out "$SMOKE_OUT"
rm -rf "$SMOKE_OUT"

# Analyzer: the clean fixture must pass, the racy fixture must be flagged
# (nonzero exit with a confirmed race).
ANALYZE_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin analyze -- \
    --scale small --workload clean --out "$ANALYZE_OUT"
if cargo run --release -p locality-repro --bin analyze -- \
    --scale small --workload racy --out "$ANALYZE_OUT"; then
    echo "analyze failed to flag the racy workload" >&2
    exit 1
fi
rm -rf "$ANALYZE_OUT"

# Differential scheduler invariant checks: build the feature once and run
# it over the fig5 monitored traces (a fresh out dir defeats the cache so
# the checked runs actually execute).
INVARIANT_OUT=$(mktemp -d)
cargo build --release -p locality-repro --features invariant-checks
cargo run --release -p locality-repro --features invariant-checks --bin fig5 -- \
    --scale small --jobs 2 --out "$INVARIANT_OUT"
rm -rf "$INVARIANT_OUT"
