#!/bin/sh
# The project's definition of green. Runs offline; no network access.
set -eux

cargo build --release
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# The bench targets must keep compiling (they are not timed in CI).
cargo bench --no-run --workspace

# Bench regression gate: the committed hot-path report must not record
# any benchmark below its before-baseline. Deterministic — it audits the
# merged JSON's recorded ratios, so CI never depends on wall-clock noise.
cargo run --release -p locality-repro --bin bench -- \
    --check BENCH_hotpath.json --fail-under 1.0

# Smoke the full repro suite through the parallel cached runner, then
# hold every artifact to the committed golden hashes: the small-scale
# CSVs are byte-identical across machines, --jobs values, and the
# dense-slot refactors (results/golden_small.sha256).
SMOKE_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin repro-all -- \
    --scale small --jobs 2 --out "$SMOKE_OUT"
GOLDEN="$PWD/results/golden_small.sha256"
(cd "$SMOKE_OUT" && sha256sum -c "$GOLDEN")
rm -rf "$SMOKE_OUT"

# Geometry validation: the model-vs-simulator sweep across L2
# geometries must run at small scale, and its CSV must be byte-identical
# across --jobs values (the runner's determinism contract extends to the
# new RunKind).
GEOM_A=$(mktemp -d)
GEOM_B=$(mktemp -d)
cargo run --release -p locality-repro --bin geometry -- \
    --scale small --jobs 1 --out "$GEOM_A"
cargo run --release -p locality-repro --bin geometry -- \
    --scale small --jobs 4 --out "$GEOM_B"
cmp "$GEOM_A/geometry.csv" "$GEOM_B/geometry.csv"
rm -rf "$GEOM_A" "$GEOM_B"

# Thread-lifecycle chaos: every fault scenario must complete without
# panic across all three policies (FCFS/LFF/CRT) and emit the churn
# ablation table. Chaos cells never contaminate the golden artifacts —
# the table only exists when --chaos is passed.
CHAOS_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin ablation -- \
    --scale small --chaos all --out "$CHAOS_OUT"
test -s "$CHAOS_OUT/ablation_chaos.csv"
rm -rf "$CHAOS_OUT"

# Crash safety: a repro-all SIGKILLed mid-run must, on rerun, resume
# from the on-disk cache to artifacts byte-identical to an
# uninterrupted run (and to the committed golden hashes). The test is
# #[ignore]d in the default suite because it runs the full small suite
# three times; release mode keeps that under half a minute.
cargo test --release -p locality-repro --test kill_resume -- --ignored

# Analyzer: the clean fixture must pass, the racy fixture must be flagged
# (nonzero exit with a confirmed race).
ANALYZE_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin analyze -- \
    --scale small --workload clean --out "$ANALYZE_OUT"
if cargo run --release -p locality-repro --bin analyze -- \
    --scale small --workload racy --out "$ANALYZE_OUT"; then
    echo "analyze failed to flag the racy workload" >&2
    exit 1
fi
rm -rf "$ANALYZE_OUT"

# Model checker: the clean fixture must explore to quiescence with no
# violations, the racy and deadlock fixtures must each be flagged
# (nonzero exit with a counterexample on disk), and a written
# counterexample must round-trip through --replay to the same violation
# (replay reproducing a violation also exits nonzero).
MC_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin modelcheck -- \
    --workload clean --out "$MC_OUT"
if cargo run --release -p locality-repro --bin modelcheck -- \
    --workload racy --out "$MC_OUT"; then
    echo "modelcheck failed to flag the racy workload" >&2
    exit 1
fi
if cargo run --release -p locality-repro --bin modelcheck -- \
    --workload deadlock --out "$MC_OUT"; then
    echo "modelcheck failed to flag the deadlock workload" >&2
    exit 1
fi
test -s "$MC_OUT/counterexample_racy.txt"
test -s "$MC_OUT/counterexample_deadlock.txt"
if cargo run --release -p locality-repro --bin modelcheck -- \
    --replay "$MC_OUT/counterexample_deadlock.txt"; then
    echo "modelcheck replay failed to reproduce the deadlock" >&2
    exit 1
fi
rm -rf "$MC_OUT"

# Differential scheduler invariant checks: build the feature once and run
# it over the fig5 monitored traces (a fresh out dir defeats the cache so
# the checked runs actually execute).
INVARIANT_OUT=$(mktemp -d)
cargo build --release -p locality-repro --features invariant-checks
cargo run --release -p locality-repro --features invariant-checks --bin fig5 -- \
    --scale small --jobs 2 --out "$INVARIANT_OUT"
rm -rf "$INVARIANT_OUT"

# Observability layer (locality-trace): the workspace must stay green
# with the trace feature on, a small traced run must export cleanly, and
# the overhead bench must pass in both build modes (zero recorded events
# when the feature is off, < 5% overhead when on).
cargo test -q --workspace --features trace
cargo clippy --workspace --all-targets --features trace -- -D warnings
TRACE_OUT=$(mktemp -d)
cargo run --release -p locality-repro --features trace --bin trace -- \
    --scale small --jobs 2 --out "$TRACE_OUT"
test -s "$TRACE_OUT/trace_merge.chrome.json"
test -s "$TRACE_OUT/trace_merge.jsonl"
test -s "$TRACE_OUT/trace_metrics.csv"
rm -rf "$TRACE_OUT"
cargo run --release -p locality-repro --features trace --bin trace-bench
cargo run --release -p locality-repro --bin trace-bench
