#!/bin/sh
# The project's definition of green. Runs offline; no network access.
set -eux

cargo build --release
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
