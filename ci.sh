#!/bin/sh
# The project's definition of green. Runs offline; no network access.
set -eux

cargo build --release
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Smoke the full repro suite through the parallel cached runner.
SMOKE_OUT=$(mktemp -d)
cargo run --release -p locality-repro --bin repro-all -- \
    --scale small --jobs 2 --out "$SMOKE_OUT"
rm -rf "$SMOKE_OUT"
