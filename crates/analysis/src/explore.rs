//! Stateless model checking: exhaustive schedule exploration with
//! dynamic partial-order reduction (DPOR).
//!
//! The engine's controlled-scheduling mode
//! ([`EngineConfig::schedule_points`](active_threads::EngineConfig))
//! turns every visible operation into a scheduling decision, so a small
//! workload's behaviours form a finite tree of interleavings. The
//! explorer re-executes the deterministic engine once per *task* — a
//! scripted decision prefix plus a sleep set — and derives new tasks
//! only at *racing* transitions: pairs of steps that are dependent
//! (conflicting memory spans, the same sync object, or a join/exit
//! couple) and concurrent under the happens-before relation computed
//! from the observation log via [`VClock`]s. Together with sleep sets
//! this is the classic Flanagan–Godefroid DPOR scheme; a naive mode
//! (branch at every enabled alternative) provides the exact
//! full-enumeration baseline the reduction factor is measured against.
//!
//! Every explored schedule is checked for happens-before data races
//! (the same detector the single-schedule `repro analyze` uses, §7 of
//! DESIGN.md), global deadlocks (classified by the engine's
//! blocked-state introspection into lock-cycle deadlocks and condvar
//! stalls / lost wakeups), and — under the `invariant-checks` feature —
//! scheduler bookkeeping invariants. A violation is emitted as a
//! replayable counterexample: a serialized schedule string that
//! [`replay_counterexample`] deterministically re-executes to the same
//! violation.

use crate::fixtures;
use crate::race::RaceDetector;
use crate::vclock::VClock;
use active_threads::{
    BlockedOn, Engine, EngineConfig, ObsEvent, ObsLog, Program, RuntimeError, SchedulePoint,
    Scheduler,
};
use locality_core::{SanitizedInterval, SharingGraph, ThreadId};
use locality_sim::MachineConfig;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// ---------------------------------------------------------------------
// Workloads.

/// The small workload configurations the model checker explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McWorkload {
    /// The mutex-protected fixture; race-free under every schedule.
    Clean {
        /// Worker loop rounds.
        rounds: u32,
    },
    /// The unsynchronized fixture; races under every schedule.
    Racy {
        /// Worker loop rounds.
        rounds: u32,
    },
    /// The AB–BA lock-order fixture; deadlocks under some schedules.
    Deadlock,
    /// The missed-signal condvar fixture; stalls under some schedules.
    LostWakeup,
}

impl McWorkload {
    /// The workload's CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            McWorkload::Clean { .. } => "clean",
            McWorkload::Racy { .. } => "racy",
            McWorkload::Deadlock => "deadlock",
            McWorkload::LostWakeup => "lostwake",
        }
    }

    /// The worker rounds parameter (1 for the fixed-shape fixtures).
    pub fn rounds(&self) -> u32 {
        match *self {
            McWorkload::Clean { rounds } | McWorkload::Racy { rounds } => rounds,
            _ => 1,
        }
    }

    /// Builds a workload from its serialized `name rounds` form.
    pub fn from_name(name: &str, rounds: u32) -> Option<McWorkload> {
        match name {
            "clean" => Some(McWorkload::Clean { rounds }),
            "racy" => Some(McWorkload::Racy { rounds }),
            "deadlock" => Some(McWorkload::Deadlock),
            "lostwake" => Some(McWorkload::LostWakeup),
            _ => None,
        }
    }

    /// A fresh root program for one execution.
    pub fn program(&self) -> Box<dyn Program> {
        match *self {
            McWorkload::Clean { rounds } => fixtures::clean_workload(rounds),
            McWorkload::Racy { rounds } => fixtures::racy_workload(rounds),
            McWorkload::Deadlock => fixtures::deadlock_workload(),
            McWorkload::LostWakeup => fixtures::lost_wakeup_workload(),
        }
    }
}

// ---------------------------------------------------------------------
// The exploring scheduler.

/// One recorded scheduling decision: the sorted enabled set, the
/// threads asleep at the decision, and the choice taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Ready threads at the decision, sorted by id.
    pub enabled: Vec<ThreadId>,
    /// Sleep-set members at the decision (subset of `enabled` in
    /// general position), sorted by id.
    pub slept: Vec<ThreadId>,
    /// The thread that was run.
    pub chosen: ThreadId,
}

/// A sleep-set seed: thread `tid` goes to sleep when the execution
/// reaches decision `pos`, carrying the step it executed there in the
/// already-explored sibling (used to wake it on a dependent operation).
#[derive(Debug, Clone)]
pub struct SleepEntry {
    /// Decision index at which the entry activates.
    pub pos: usize,
    /// The thread to put to sleep.
    pub tid: ThreadId,
    /// The step the thread performed at `pos` in the explored sibling.
    pub sig: SchedulePoint,
}

/// A scheduler that drives the engine down one prescribed interleaving:
/// scripted choices first, then a deterministic default (prefer the
/// previously-running thread, else the smallest ready thread not in the
/// sleep set). Records every decision for the explorer's race analysis.
#[derive(Debug)]
pub struct ExploringScheduler {
    ready: BTreeSet<ThreadId>,
    script: VecDeque<ThreadId>,
    sleep_init: BTreeMap<usize, Vec<(ThreadId, SchedulePoint)>>,
    sleep: BTreeMap<ThreadId, SchedulePoint>,
    decisions: Vec<Decision>,
    last: Option<ThreadId>,
    depth_bound: usize,
    hit_bound: bool,
    sleep_blocked: bool,
    diverged: bool,
}

impl ExploringScheduler {
    /// Builds a scheduler for one execution.
    pub fn new(script: &[ThreadId], sleep: &[SleepEntry], depth_bound: usize) -> Self {
        let mut sleep_init: BTreeMap<usize, Vec<(ThreadId, SchedulePoint)>> = BTreeMap::new();
        for e in sleep {
            sleep_init.entry(e.pos).or_default().push((e.tid, e.sig.clone()));
        }
        ExploringScheduler {
            ready: BTreeSet::new(),
            script: script.iter().copied().collect(),
            sleep_init,
            sleep: BTreeMap::new(),
            decisions: Vec::new(),
            last: None,
            depth_bound,
            hit_bound: false,
            sleep_blocked: false,
            diverged: false,
        }
    }

    /// The decisions taken so far, in order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Whether the execution was cut off by the depth bound.
    pub fn hit_bound(&self) -> bool {
        self.hit_bound
    }

    /// Whether the execution stopped because every enabled thread was
    /// asleep (a sleep-set prune: the continuation is provably
    /// equivalent to an already-explored one).
    pub fn sleep_blocked(&self) -> bool {
        self.sleep_blocked
    }

    /// Whether a scripted choice named a thread that was not enabled —
    /// an internal-consistency failure (the engine is deterministic, so
    /// a prefix recorded from one run must replay on the next).
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

impl Scheduler for ExploringScheduler {
    fn on_spawn(&mut self, tid: ThreadId) {
        self.ready.insert(tid);
    }

    fn on_ready(&mut self, tid: ThreadId) {
        self.ready.insert(tid);
    }

    fn on_dispatch(&mut self, _cpu: usize, _tid: ThreadId) {}

    fn on_interval_end(
        &mut self,
        _cpu: usize,
        _tid: ThreadId,
        _interval: SanitizedInterval,
        _graph: &SharingGraph,
    ) {
    }

    fn pick(&mut self, _cpu: usize) -> Option<ThreadId> {
        if self.ready.is_empty() || self.hit_bound || self.sleep_blocked || self.diverged {
            return None;
        }
        if self.decisions.len() >= self.depth_bound {
            self.hit_bound = true;
            return None;
        }
        if let Some(entries) = self.sleep_init.remove(&self.decisions.len()) {
            for (tid, sig) in entries {
                self.sleep.insert(tid, sig);
            }
        }
        let enabled: Vec<ThreadId> = self.ready.iter().copied().collect();
        let slept: Vec<ThreadId> = self.sleep.keys().copied().collect();
        let chosen = if let Some(c) = self.script.pop_front() {
            if !self.ready.contains(&c) {
                self.diverged = true;
                return None;
            }
            c
        } else {
            let preferred =
                self.last.filter(|l| self.ready.contains(l) && !self.sleep.contains_key(l));
            let fallback = enabled.iter().copied().find(|t| !self.sleep.contains_key(t));
            match preferred.or(fallback) {
                Some(c) => c,
                None => {
                    self.sleep_blocked = true;
                    return None;
                }
            }
        };
        self.sleep.remove(&chosen);
        self.decisions.push(Decision { enabled, slept, chosen });
        self.ready.remove(&chosen);
        self.last = Some(chosen);
        Some(chosen)
    }

    fn on_schedule_point(&mut self, point: &SchedulePoint) {
        // Sleep-set wake rule: a sleeping thread's pending step becomes
        // worth exploring again once a dependent operation executes.
        self.sleep.retain(|_, sig| !sig.dependent(point));
    }

    fn on_exit(&mut self, tid: ThreadId) {
        self.ready.remove(&tid);
        self.sleep.remove(&tid);
    }

    fn expected_footprint(&self, _cpu: usize, _tid: ThreadId) -> Option<f64> {
        None
    }

    fn ready_count(&self) -> usize {
        // Reporting zero when flagged makes the engine's idle loop take
        // its deadlock exit instead of spinning; the explorer inspects
        // the flags to tell a truncation or prune from a real deadlock.
        if self.hit_bound || self.sleep_blocked || self.diverged {
            0
        } else {
            self.ready.len()
        }
    }

    fn name(&self) -> &'static str {
        "explore"
    }
}

// ---------------------------------------------------------------------
// One execution.

/// Why an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every thread exited.
    Completed,
    /// Global deadlock: all live threads blocked, with what each was
    /// blocked on.
    Deadlocked(Vec<(ThreadId, Option<BlockedOn>)>),
    /// Cut off by the depth bound (not a violation).
    Truncated,
    /// Stopped by the sleep set (redundant continuation; not a
    /// violation).
    SleepBlocked,
    /// A scripted prefix failed to replay (internal error).
    Diverged,
    /// The engine surfaced a runtime error other than deadlock.
    EngineError(String),
}

/// One re-execution of the engine down a prescribed interleaving.
#[derive(Debug)]
pub struct Execution {
    /// The decisions taken, in order (one per executed step).
    pub decisions: Vec<Decision>,
    /// The executed steps (one per decision).
    pub points: Vec<SchedulePoint>,
    /// Per-step happens-before clocks (snapshot at step start).
    pub clocks: Vec<VClock>,
    /// Data races the happens-before detector found on this schedule.
    pub races: Vec<crate::race::Race>,
    /// How the execution ended.
    pub outcome: Outcome,
}

/// Runs the engine once down `script` (then defaults), with the given
/// sleep seeds and depth bound, and returns the full execution record.
pub fn run_schedule(
    workload: McWorkload,
    script: &[ThreadId],
    sleep: &[SleepEntry],
    depth_bound: usize,
) -> Execution {
    let sched = ExploringScheduler::new(script, sleep, depth_bound);
    let config = EngineConfig { schedule_points: true, ..EngineConfig::default() };
    // Infallible: `ultra1()` is a validated built-in description.
    #[allow(clippy::expect_used)]
    let mut engine = Engine::with_scheduler(MachineConfig::ultra1(), sched, config)
        .expect("ultra1 machine is always valid");
    engine.enable_observation();
    engine.spawn(workload.program());
    let result = engine.run();
    let points = engine.take_schedule_points();
    let log = engine.take_observation().unwrap_or_default();
    let outcome = match result {
        Ok(_) => Outcome::Completed,
        Err(RuntimeError::Deadlock { .. }) if engine.scheduler().hit_bound() => Outcome::Truncated,
        Err(RuntimeError::Deadlock { .. }) if engine.scheduler().sleep_blocked() => {
            Outcome::SleepBlocked
        }
        Err(RuntimeError::Deadlock { .. }) if engine.scheduler().diverged() => Outcome::Diverged,
        Err(RuntimeError::Deadlock { .. }) => Outcome::Deadlocked(engine.blocked_threads()),
        Err(e) => Outcome::EngineError(e.to_string()),
    };
    let decisions = engine.scheduler().decisions().to_vec();
    debug_assert!(
        matches!(outcome, Outcome::EngineError(_)) || decisions.len() == points.len(),
        "one decision per executed step ({} vs {})",
        decisions.len(),
        points.len(),
    );
    let clocks = step_clocks(&log, &points);
    let races = RaceDetector::run(&log).races().to_vec();
    Execution { decisions, points, clocks, races, outcome }
}

/// Computes each step's happens-before clock by replaying the
/// observation log with the same rules as the race detector, plus one
/// tick at the start of every step so each step owns a unique component
/// value. Step `i` happens-before step `j` iff
/// `clocks[j].get(tid_i) >= clocks[i].get(tid_i)`.
fn step_clocks(log: &ObsLog, points: &[SchedulePoint]) -> Vec<VClock> {
    let events = log.events();
    let mut clocks: BTreeMap<ThreadId, VClock> = BTreeMap::new();
    let mut mutex_clocks: BTreeMap<usize, VClock> = BTreeMap::new();
    let mut sem_clocks: BTreeMap<usize, VClock> = BTreeMap::new();
    let mut out = Vec::with_capacity(points.len());
    let mut pos = 0usize;
    let clock_of = |clocks: &mut BTreeMap<ThreadId, VClock>, t: ThreadId| -> VClock {
        clocks.entry(t).or_default().clone()
    };
    let apply = |clocks: &mut BTreeMap<ThreadId, VClock>,
                 mutex_clocks: &mut BTreeMap<usize, VClock>,
                 sem_clocks: &mut BTreeMap<usize, VClock>,
                 ev: &ObsEvent| {
        match *ev {
            ObsEvent::Spawn { parent, child } => {
                let inherited = match parent {
                    Some(p) => {
                        let pc = clocks.entry(p).or_default();
                        pc.tick(p);
                        pc.clone()
                    }
                    None => VClock::new(),
                };
                let cc = clocks.entry(child).or_default();
                *cc = inherited;
                cc.tick(child);
            }
            ObsEvent::Exit { tid } | ObsEvent::Abort { tid } => {
                clocks.entry(tid).or_default().tick(tid);
            }
            ObsEvent::JoinWake { waiter, target } => {
                let tc = clock_of(clocks, target);
                let wc = clocks.entry(waiter).or_default();
                wc.join(&tc);
                wc.tick(waiter);
            }
            ObsEvent::MutexAcquire { tid, mutex } => {
                if let Some(mc) = mutex_clocks.get(&mutex.0) {
                    let mc = mc.clone();
                    clocks.entry(tid).or_default().join(&mc);
                }
                clocks.entry(tid).or_default().tick(tid);
            }
            ObsEvent::MutexRelease { tid, mutex } => {
                let tc = clocks.entry(tid).or_default();
                tc.tick(tid);
                mutex_clocks.insert(mutex.0, tc.clone());
            }
            ObsEvent::SemPost { tid, sem } => {
                let tc = clocks.entry(tid).or_default();
                tc.tick(tid);
                let tc = tc.clone();
                sem_clocks.entry(sem.0).or_default().join(&tc);
            }
            ObsEvent::SemAcquire { tid, sem } => {
                if let Some(sc) = sem_clocks.get(&sem.0) {
                    let sc = sc.clone();
                    clocks.entry(tid).or_default().join(&sc);
                }
                clocks.entry(tid).or_default().tick(tid);
            }
            ObsEvent::BarrierCross { barrier: _, ref parties } => {
                let mut merged = VClock::new();
                for &p in parties {
                    merged.join(clocks.entry(p).or_default());
                }
                for &p in parties {
                    let pc = clocks.entry(p).or_default();
                    *pc = merged.clone();
                    pc.tick(p);
                }
            }
            ObsEvent::CondWake { signaler, woken, cond: _ } => {
                let sc = clocks.entry(signaler).or_default();
                sc.tick(signaler);
                let sc = sc.clone();
                let wc = clocks.entry(woken).or_default();
                wc.join(&sc);
                wc.tick(woken);
            }
            ObsEvent::Access { .. } | ObsEvent::AtShare { .. } => {}
        }
    };
    for point in points {
        let (lo, hi) = point.obs_range;
        // Events emitted outside any step (root spawns) come first.
        for ev in events.iter().take(lo.min(events.len())).skip(pos) {
            apply(&mut clocks, &mut mutex_clocks, &mut sem_clocks, ev);
        }
        pos = pos.max(lo.min(events.len()));
        let tc = clocks.entry(point.tid).or_default();
        tc.tick(point.tid);
        out.push(tc.clone());
        for ev in events.iter().take(hi.min(events.len())).skip(pos) {
            apply(&mut clocks, &mut mutex_clocks, &mut sem_clocks, ev);
        }
        pos = pos.max(hi.min(events.len()));
    }
    out
}

// ---------------------------------------------------------------------
// Violations and counterexamples.

/// What kind of property a schedule violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A happens-before data race.
    Race,
    /// A global deadlock over locks/joins/barriers/semaphores.
    Deadlock,
    /// A global deadlock with a thread parked on a condition variable —
    /// a lost wakeup.
    CondvarStall,
    /// A scheduler bookkeeping invariant failed (`invariant-checks`).
    Invariant,
}

impl ViolationKind {
    /// Stable serialized name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::Race => "race",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::CondvarStall => "condvar-stall",
            ViolationKind::Invariant => "invariant",
        }
    }

    /// Parses a serialized name.
    pub fn from_str_opt(s: &str) -> Option<ViolationKind> {
        match s {
            "race" => Some(ViolationKind::Race),
            "deadlock" => Some(ViolationKind::Deadlock),
            "condvar-stall" => Some(ViolationKind::CondvarStall),
            "invariant" => Some(ViolationKind::Invariant),
            _ => None,
        }
    }
}

/// A violation found on one explored schedule, with the serialized
/// schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McViolation {
    /// What was violated.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub detail: String,
    /// The full decision sequence (thread ids) reproducing it.
    pub schedule: Vec<u64>,
}

/// Extracts the violations of one execution, in severity-stable order.
pub fn violations_of(exec: &Execution) -> Vec<McViolation> {
    let schedule: Vec<u64> = exec.decisions.iter().map(|d| d.chosen.0).collect();
    let mut out = Vec::new();
    if let Some(race) = exec.races.first() {
        out.push(McViolation {
            kind: ViolationKind::Race,
            detail: race.to_string(),
            schedule: schedule.clone(),
        });
    }
    if let Outcome::Deadlocked(blocked) = &exec.outcome {
        let stall = blocked.iter().any(|(_, b)| matches!(b, Some(BlockedOn::Cond(_))));
        let detail = blocked
            .iter()
            .map(|(tid, on)| match on {
                Some(on) => format!("{tid} blocked on {on}"),
                None => format!("{tid} blocked"),
            })
            .collect::<Vec<_>>()
            .join("; ");
        out.push(McViolation {
            kind: if stall { ViolationKind::CondvarStall } else { ViolationKind::Deadlock },
            detail,
            schedule: schedule.clone(),
        });
    }
    #[cfg(feature = "invariant-checks")]
    if let Some(what) = scheduler_invariant_failure(exec) {
        out.push(McViolation { kind: ViolationKind::Invariant, detail: what, schedule });
    }
    out
}

/// Differential checks over the exploring scheduler's own bookkeeping,
/// re-validated per explored schedule when `invariant-checks` is on:
/// every choice came from its enabled set and was not asleep, enabled
/// sets are sorted and duplicate-free, and each decision maps to
/// exactly one executed step by the same thread.
#[cfg(feature = "invariant-checks")]
fn scheduler_invariant_failure(exec: &Execution) -> Option<String> {
    if !matches!(exec.outcome, Outcome::EngineError(_)) && exec.decisions.len() != exec.points.len()
    {
        return Some(format!(
            "decision/step mismatch: {} decisions vs {} steps",
            exec.decisions.len(),
            exec.points.len()
        ));
    }
    for (i, d) in exec.decisions.iter().enumerate() {
        if !d.enabled.contains(&d.chosen) {
            return Some(format!("decision {i} chose {} outside its enabled set", d.chosen));
        }
        if d.slept.contains(&d.chosen) {
            return Some(format!("decision {i} chose sleeping thread {}", d.chosen));
        }
        if d.enabled.windows(2).any(|w| w[0] >= w[1]) {
            return Some(format!("decision {i} has an unsorted or duplicated enabled set"));
        }
        if let Some(p) = exec.points.get(i) {
            if p.tid != d.chosen {
                return Some(format!("decision {i} chose {} but step {i} ran {}", d.chosen, p.tid));
            }
        }
    }
    None
}

/// A parsed replayable counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The workload it was found on.
    pub workload: McWorkload,
    /// The violation it reproduces.
    pub kind: ViolationKind,
    /// The decision sequence to replay.
    pub schedule: Vec<u64>,
    /// The original detail line.
    pub detail: String,
}

/// Magic first line of the counterexample format.
const CE_HEADER: &str = "locality-modelcheck counterexample v1";

/// Serializes a violation as a replayable counterexample file.
pub fn serialize_counterexample(workload: McWorkload, v: &McViolation) -> String {
    let schedule = v.schedule.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",");
    format!(
        "{CE_HEADER}\nworkload {} {}\nviolation {}\nschedule {}\ndetail {}\n",
        workload.name(),
        workload.rounds(),
        v.kind.as_str(),
        schedule,
        v.detail.replace('\n', " "),
    )
}

/// Parses a counterexample file produced by [`serialize_counterexample`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_counterexample(text: &str) -> Result<Counterexample, String> {
    let mut lines = text.lines();
    if lines.next() != Some(CE_HEADER) {
        return Err(format!("missing header line `{CE_HEADER}`"));
    }
    let mut workload = None;
    let mut kind = None;
    let mut schedule = None;
    let mut detail = String::new();
    for line in lines {
        if let Some(rest) = line.strip_prefix("workload ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("workload line missing name")?;
            let rounds: u32 = parts
                .next()
                .ok_or("workload line missing rounds")?
                .parse()
                .map_err(|e| format!("bad rounds: {e}"))?;
            workload = Some(
                McWorkload::from_name(name, rounds)
                    .ok_or_else(|| format!("unknown workload `{name}`"))?,
            );
        } else if let Some(rest) = line.strip_prefix("violation ") {
            kind = Some(
                ViolationKind::from_str_opt(rest.trim())
                    .ok_or_else(|| format!("unknown violation kind `{rest}`"))?,
            );
        } else if let Some(rest) = line.strip_prefix("schedule ") {
            let parsed: Result<Vec<u64>, _> =
                rest.trim().split(',').filter(|s| !s.is_empty()).map(str::parse).collect();
            schedule = Some(parsed.map_err(|e| format!("bad schedule: {e}"))?);
        } else if let Some(rest) = line.strip_prefix("detail ") {
            detail = rest.to_string();
        }
    }
    Ok(Counterexample {
        workload: workload.ok_or("missing workload line")?,
        kind: kind.ok_or("missing violation line")?,
        schedule: schedule.ok_or("missing schedule line")?,
        detail,
    })
}

/// Replays a counterexample: re-executes the engine down the serialized
/// schedule and checks the same violation kind recurs.
///
/// # Errors
///
/// Returns a description when the schedule no longer reproduces the
/// recorded violation (e.g. the counterexample is from another build).
pub fn replay_counterexample(ce: &Counterexample) -> Result<McViolation, String> {
    let script: Vec<ThreadId> = ce.schedule.iter().map(|&t| ThreadId(t)).collect();
    let exec = run_schedule(ce.workload, &script, &[], usize::MAX);
    if matches!(exec.outcome, Outcome::Diverged) {
        return Err("schedule diverged: a scripted thread was not enabled".to_string());
    }
    violations_of(&exec).into_iter().find(|v| v.kind == ce.kind).ok_or_else(|| {
        format!(
            "schedule replayed to {:?} without reproducing a {} violation",
            exec.outcome,
            ce.kind.as_str()
        )
    })
}

// ---------------------------------------------------------------------
// The explorer.

/// Exploration tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum scheduling decisions per execution.
    pub depth_bound: usize,
    /// Maximum executions across the whole exploration.
    pub max_schedules: usize,
    /// Iterative preemption bounding: skip branches whose forced prefix
    /// preempts a still-runnable thread more than this many times.
    pub preempt_bound: Option<usize>,
    /// Naive full enumeration (the DPOR baseline) instead of DPOR.
    pub naive: bool,
    /// Worker threads for parallel exploration of independent subtrees
    /// within one frontier wave (results are order-independent).
    pub jobs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            depth_bound: 64,
            max_schedules: 50_000,
            preempt_bound: None,
            naive: false,
            jobs: 1,
        }
    }
}

/// Aggregated result of one exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreSummary {
    /// Terminal executions (completed or violating).
    pub schedules: u64,
    /// Sleep-set–pruned executions (redundant continuations).
    pub pruned: u64,
    /// Executions cut off by the depth bound.
    pub truncated: u64,
    /// Scripted prefixes that failed to replay (must stay 0).
    pub diverged: u64,
    /// Whether `max_schedules` cut the exploration short.
    pub capped: bool,
    /// Longest schedule seen (decisions).
    pub max_depth: u64,
    /// Distinct violations (first witness per kind, deterministic).
    pub violations: Vec<McViolation>,
    /// Unordered racing thread pairs observed across all schedules
    /// (for cross-validation against the single-schedule detector).
    pub race_pairs: BTreeSet<(u64, u64)>,
}

impl ExploreSummary {
    /// Whether any property was violated.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The count of violations of one kind (0 or 1 after dedup).
    pub fn count_of(&self, kind: ViolationKind) -> u64 {
        self.violations.iter().filter(|v| v.kind == kind).count() as u64
    }
}

/// One node of the exploration tree: a forced decision prefix plus
/// sleep-set seeds.
#[derive(Debug, Clone)]
struct Task {
    prefix: Vec<ThreadId>,
    sleep: Vec<SleepEntry>,
}

/// Canonical order/dedup key of a [`Task`]: raw prefix thread ids plus
/// the sorted `(pos, tid)` sleep entries.
type TaskKey = (Vec<u64>, Vec<(usize, u64)>);

impl Task {
    /// Order/dedup key. Two tasks with equal keys execute identically:
    /// the engine is deterministic, so equal prefixes produce equal
    /// steps, and a sleep entry's signature is determined by its
    /// `(pos, tid)` under a shared prefix.
    fn key(&self) -> TaskKey {
        let mut sleep: Vec<(usize, u64)> = self.sleep.iter().map(|e| (e.pos, e.tid.0)).collect();
        sleep.sort_unstable();
        (self.prefix.iter().map(|t| t.0).collect(), sleep)
    }
}

/// Number of preemptions in a decision prefix: positions where the
/// previously-running thread was still enabled but a different thread
/// was scheduled.
fn preemptions(choices: &[ThreadId], enabled: &[Vec<ThreadId>]) -> usize {
    choices
        .windows(2)
        .enumerate()
        .filter(|(k, w)| w[1] != w[0] && enabled.get(k + 1).is_some_and(|e| e.contains(&w[0])))
        .count()
}

/// Child tasks of one executed task under DPOR: for every racing pair
/// of steps `(i, j)` — dependent, different threads, concurrent — add a
/// backtrack point at `i` running `j`'s thread (or, if it was not
/// enabled there, every enabled alternative: the persistent-set
/// fallback), with the explored choice at `i` moved into the child's
/// sleep set.
fn children_dpor(task: &Task, exec: &Execution, cfg: &ExploreConfig) -> Vec<Task> {
    let n = exec.points.len().min(exec.decisions.len()).min(exec.clocks.len());
    let enabled: Vec<Vec<ThreadId>> = exec.decisions.iter().map(|d| d.enabled.clone()).collect();
    let mut out = Vec::new();
    for j in 0..n {
        for i in 0..j {
            let (pi, pj) = (&exec.points[i], &exec.points[j]);
            if pi.tid == pj.tid || !pi.dependent(pj) {
                continue;
            }
            if exec.clocks[j].get(pi.tid) >= exec.clocks[i].get(pi.tid) {
                continue; // happens-before ordered: not a race
            }
            let di = &exec.decisions[i];
            let candidates: Vec<ThreadId> =
                if di.enabled.contains(&pj.tid) { vec![pj.tid] } else { di.enabled.clone() };
            for c in candidates {
                if c == di.chosen || di.slept.contains(&c) {
                    continue;
                }
                let mut prefix: Vec<ThreadId> =
                    exec.decisions[..i].iter().map(|d| d.chosen).collect();
                prefix.push(c);
                if let Some(bound) = cfg.preempt_bound {
                    if preemptions(&prefix, &enabled) > bound {
                        continue;
                    }
                }
                let mut sleep: Vec<SleepEntry> =
                    task.sleep.iter().filter(|e| e.pos <= i).cloned().collect();
                sleep.push(SleepEntry { pos: i, tid: di.chosen, sig: exec.points[i].clone() });
                out.push(Task { prefix, sleep });
            }
        }
    }
    out
}

/// Child tasks under naive enumeration: branch at every position past
/// the forced prefix, for every enabled alternative. Together with the
/// default suffix this enumerates the full schedule tree exactly once.
fn children_naive(task: &Task, exec: &Execution, cfg: &ExploreConfig) -> Vec<Task> {
    let enabled: Vec<Vec<ThreadId>> = exec.decisions.iter().map(|d| d.enabled.clone()).collect();
    let mut out = Vec::new();
    for p in task.prefix.len()..exec.decisions.len() {
        for &c in &exec.decisions[p].enabled {
            if c == exec.decisions[p].chosen {
                continue;
            }
            let mut prefix: Vec<ThreadId> = exec.decisions[..p].iter().map(|d| d.chosen).collect();
            prefix.push(c);
            if let Some(bound) = cfg.preempt_bound {
                if preemptions(&prefix, &enabled) > bound {
                    continue;
                }
            }
            out.push(Task { prefix, sleep: Vec::new() });
        }
    }
    out
}

/// Runs a frontier wave, in parallel when `jobs > 1`, preserving task
/// order in the returned executions (results are a pure function of
/// each task, so the jobs count cannot change any output).
fn run_wave(workload: McWorkload, tasks: &[Task], cfg: &ExploreConfig) -> Vec<Execution> {
    if cfg.jobs <= 1 || tasks.len() <= 1 {
        return tasks
            .iter()
            .map(|t| run_schedule(workload, &t.prefix, &t.sleep, cfg.depth_bound))
            .collect();
    }
    let slots: Vec<std::sync::OnceLock<Execution>> =
        (0..tasks.len()).map(|_| std::sync::OnceLock::new()).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..cfg.jobs.min(tasks.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let exec = run_schedule(workload, &task.prefix, &task.sleep, cfg.depth_bound);
                let _ = slots[i].set(exec);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(|| Execution {
                decisions: Vec::new(),
                points: Vec::new(),
                clocks: Vec::new(),
                races: Vec::new(),
                outcome: Outcome::EngineError("worker produced no result".to_string()),
            })
        })
        .collect()
}

/// Explores a workload's schedule tree breadth-first from the default
/// schedule, deterministically: each wave is sorted by task key before
/// execution, children are deduplicated globally, and capping truncates
/// the sorted wave — so two runs (at any `jobs` values) produce
/// identical summaries.
pub fn explore(workload: McWorkload, cfg: &ExploreConfig) -> ExploreSummary {
    let mut summary = ExploreSummary {
        schedules: 0,
        pruned: 0,
        truncated: 0,
        diverged: 0,
        capped: false,
        max_depth: 0,
        violations: Vec::new(),
        race_pairs: BTreeSet::new(),
    };
    let mut seen_kinds: BTreeSet<ViolationKind> = BTreeSet::new();
    let root = Task { prefix: Vec::new(), sleep: Vec::new() };
    let mut seen: BTreeSet<TaskKey> = BTreeSet::new();
    seen.insert(root.key());
    let mut frontier = vec![root];
    let mut executed = 0usize;
    while !frontier.is_empty() {
        frontier.sort_by_cached_key(Task::key);
        if executed + frontier.len() > cfg.max_schedules {
            summary.capped = true;
            frontier.truncate(cfg.max_schedules.saturating_sub(executed));
            if frontier.is_empty() {
                break;
            }
        }
        let execs = run_wave(workload, &frontier, cfg);
        let mut next = Vec::new();
        for (task, exec) in frontier.iter().zip(&execs) {
            executed += 1;
            summary.max_depth = summary.max_depth.max(exec.decisions.len() as u64);
            match &exec.outcome {
                Outcome::Completed | Outcome::Deadlocked(_) | Outcome::EngineError(_) => {
                    summary.schedules += 1;
                }
                Outcome::Truncated => summary.truncated += 1,
                Outcome::SleepBlocked => summary.pruned += 1,
                Outcome::Diverged => summary.diverged += 1,
            }
            for race in &exec.races {
                let (a, b) = (race.first.tid.0, race.second.tid.0);
                summary.race_pairs.insert((a.min(b), a.max(b)));
            }
            for v in violations_of(exec) {
                if seen_kinds.insert(v.kind) {
                    summary.violations.push(v);
                }
            }
            if matches!(exec.outcome, Outcome::Diverged | Outcome::EngineError(_)) {
                continue;
            }
            let children = if cfg.naive {
                children_naive(task, exec, cfg)
            } else {
                children_dpor(task, exec, cfg)
            };
            for child in children {
                if seen.insert(child.key()) {
                    next.push(child);
                }
            }
        }
        frontier = next;
    }
    summary.violations.sort_by_key(|v| v.kind);
    summary
}

/// Racing thread pairs the *single-schedule* detector reports for a
/// workload under the engine's default (uncontrolled) scheduling — the
/// cross-validation baseline: every pair it reports must also be
/// observed in some explored schedule.
pub fn single_schedule_race_pairs(workload: McWorkload) -> BTreeSet<(u64, u64)> {
    let mut engine = match Engine::new(
        MachineConfig::ultra1(),
        active_threads::SchedPolicy::Fcfs,
        EngineConfig::default(),
    ) {
        Ok(e) => e,
        Err(_) => return BTreeSet::new(),
    };
    engine.enable_observation();
    engine.spawn(workload.program());
    let _ = engine.run();
    let log = engine.take_observation().unwrap_or_default();
    RaceDetector::run(&log)
        .races()
        .iter()
        .map(|r| {
            let (a, b) = (r.first.tid.0, r.second.tid.0);
            (a.min(b), a.max(b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max: usize) -> ExploreConfig {
        ExploreConfig { max_schedules: max, ..ExploreConfig::default() }
    }

    #[test]
    fn default_schedule_of_clean_completes() {
        let exec = run_schedule(McWorkload::Clean { rounds: 1 }, &[], &[], 64);
        assert_eq!(exec.outcome, Outcome::Completed);
        assert!(exec.races.is_empty());
        assert_eq!(exec.decisions.len(), exec.points.len());
        assert_eq!(exec.clocks.len(), exec.points.len());
    }

    #[test]
    fn clean_explores_to_quiescence_without_violations() {
        let summary = explore(McWorkload::Clean { rounds: 1 }, &cfg(50_000));
        assert!(!summary.capped, "clean fixture should explore exhaustively");
        assert!(summary.violations.is_empty(), "{:?}", summary.violations);
        assert_eq!(summary.diverged, 0);
        assert!(summary.schedules > 1);
    }

    #[test]
    fn racy_exploration_finds_the_race() {
        let summary = explore(McWorkload::Racy { rounds: 1 }, &cfg(5_000));
        assert!(summary.count_of(ViolationKind::Race) > 0, "{summary:?}");
        assert_eq!(summary.diverged, 0);
    }

    #[test]
    fn deadlock_exploration_finds_the_deadlock() {
        let summary = explore(McWorkload::Deadlock, &cfg(5_000));
        assert!(summary.count_of(ViolationKind::Deadlock) > 0, "{summary:?}");
        assert_eq!(summary.count_of(ViolationKind::CondvarStall), 0);
        assert_eq!(summary.diverged, 0);
    }

    #[test]
    fn lost_wakeup_exploration_finds_the_stall() {
        let summary = explore(McWorkload::LostWakeup, &cfg(5_000));
        assert!(summary.count_of(ViolationKind::CondvarStall) > 0, "{summary:?}");
        assert_eq!(summary.diverged, 0);
    }

    #[test]
    fn dpor_reduces_vs_naive_on_clean() {
        let dpor = explore(McWorkload::Clean { rounds: 1 }, &cfg(50_000));
        let naive =
            explore(McWorkload::Clean { rounds: 1 }, &ExploreConfig { naive: true, ..cfg(50_000) });
        assert!(!dpor.capped);
        assert!(
            naive.schedules > dpor.schedules,
            "naive {} should exceed dpor {}",
            naive.schedules,
            dpor.schedules
        );
        // Both agree the fixture is clean.
        assert!(naive.violations.is_empty());
        assert!(dpor.violations.is_empty());
    }

    #[test]
    fn exploration_is_deterministic_across_jobs() {
        let base = explore(McWorkload::Deadlock, &cfg(2_000));
        for jobs in [2usize, 4] {
            let par = explore(McWorkload::Deadlock, &ExploreConfig { jobs, ..cfg(2_000) });
            assert_eq!(base, par, "jobs={jobs} changed the summary");
        }
    }

    #[test]
    fn counterexamples_round_trip_and_replay() {
        let summary = explore(McWorkload::Deadlock, &cfg(5_000));
        let v = summary
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::Deadlock)
            .expect("deadlock violation");
        let text = serialize_counterexample(McWorkload::Deadlock, v);
        let ce = parse_counterexample(&text).expect("parse back");
        assert_eq!(ce.kind, ViolationKind::Deadlock);
        assert_eq!(ce.schedule, v.schedule);
        let replayed = replay_counterexample(&ce).expect("replay reproduces");
        assert_eq!(replayed.kind, ViolationKind::Deadlock);
        assert_eq!(replayed.detail, v.detail, "replay is deterministic");
    }

    #[test]
    fn race_counterexample_replays() {
        let summary = explore(McWorkload::Racy { rounds: 1 }, &cfg(2_000));
        let v = summary
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::Race)
            .expect("race violation");
        let text = serialize_counterexample(McWorkload::Racy { rounds: 1 }, v);
        let ce = parse_counterexample(&text).expect("parse");
        let replayed = replay_counterexample(&ce).expect("replay");
        assert_eq!(replayed.kind, ViolationKind::Race);
    }

    #[test]
    fn parse_rejects_malformed_counterexamples() {
        assert!(parse_counterexample("nonsense").is_err());
        assert!(parse_counterexample(&format!("{CE_HEADER}\nworkload clean 1\n")).is_err());
        assert!(parse_counterexample(&format!(
            "{CE_HEADER}\nworkload bogus 1\nviolation race\nschedule 1\n"
        ))
        .is_err());
    }

    #[test]
    fn single_schedule_races_are_realizable_in_exploration() {
        // Cross-validation of the §7 single-schedule detector: every
        // racing pair it reports must appear in some explored schedule.
        for (w, cap) in
            [(McWorkload::Racy { rounds: 1 }, 5_000), (McWorkload::Clean { rounds: 1 }, 50_000)]
        {
            let single = single_schedule_race_pairs(w);
            let explored = explore(w, &cfg(cap));
            assert!(
                single.is_subset(&explored.race_pairs),
                "{}: single-schedule pairs {:?} not all realizable in {:?}",
                w.name(),
                single,
                explored.race_pairs
            );
        }
    }

    #[test]
    fn preempt_bound_zero_still_finds_the_deadlock() {
        // The AB–BA deadlock needs no preemption of a runnable thread:
        // each worker blocks voluntarily on its second lock.
        let summary =
            explore(McWorkload::Deadlock, &ExploreConfig { preempt_bound: Some(1), ..cfg(5_000) });
        assert!(summary.count_of(ViolationKind::Deadlock) > 0, "{summary:?}");
    }

    #[test]
    fn depth_bound_truncates_instead_of_reporting_deadlock() {
        let exec = run_schedule(McWorkload::Clean { rounds: 1 }, &[], &[], 3);
        assert_eq!(exec.outcome, Outcome::Truncated);
        assert_eq!(exec.decisions.len(), 3);
    }
}
