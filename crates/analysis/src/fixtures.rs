//! Deterministic racy/clean workload fixtures.
//!
//! Both workloads have the same shape — a parent initialises a shared
//! buffer, spawns two workers that repeatedly write it plus a private
//! buffer each, then joins them and reads the result — and differ only in
//! synchronization and annotations:
//!
//! * [`clean_workload`] guards the shared buffer with a mutex and
//!   annotates every sharing pair: race-free under **every** schedule,
//!   no lint findings.
//! * [`racy_workload`] has no inter-worker synchronization at all (only
//!   the common spawn and the final joins) and omits the worker↔worker
//!   annotations: the workers' writes are concurrent under every
//!   schedule, so the race verdict cannot depend on scheduling, and the
//!   missing annotation surfaces as `drift-missing`.

use active_threads::{BatchCtx, CondId, Control, MutexId, Program};
use locality_sim::VAddr;

/// Bytes of the parent-owned buffer both workers write.
pub const SHARED_BYTES: u64 = 8192;
/// Bytes of each worker's private buffer.
pub const PRIVATE_BYTES: u64 = 4096;
const STRIDE: u64 = 64;
/// Coefficient used for every annotation edge; chosen so each thread's
/// out-weights sum to exactly 1 in the clean workload.
const Q: f64 = 0.5;

struct Worker {
    shared: VAddr,
    mutex: Option<MutexId>,
    rounds: u32,
    phase: u8,
    private: Option<VAddr>,
}

impl Worker {
    fn new(shared: VAddr, mutex: Option<MutexId>, rounds: u32) -> Self {
        Worker { shared, mutex, rounds: rounds.max(1), phase: 0, private: None }
    }

    fn touch(&self, ctx: &mut BatchCtx<'_>) {
        ctx.write_range(self.shared, SHARED_BYTES, STRIDE);
        ctx.write_range(self.private.expect("private allocated in phase 0"), PRIVATE_BYTES, STRIDE);
    }
}

impl Program for Worker {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            0 => {
                ctx.register_region(self.shared, SHARED_BYTES);
                let p = ctx.alloc(PRIVATE_BYTES, 64);
                ctx.register_region(p, PRIVATE_BYTES);
                self.private = Some(p);
                self.phase = if self.mutex.is_some() { 1 } else { 4 };
                Control::Yield
            }
            1 => {
                self.phase = 2;
                Control::Lock(self.mutex.expect("phase 1 only entered with a mutex"))
            }
            2 => {
                self.touch(ctx);
                self.phase = 3;
                Control::Unlock(self.mutex.expect("phase 2 only entered with a mutex"))
            }
            3 => {
                self.rounds -= 1;
                if self.rounds == 0 {
                    Control::Exit
                } else {
                    self.phase = 1;
                    Control::Yield
                }
            }
            _ => {
                // Racy path: unsynchronized writes to the shared buffer.
                self.touch(ctx);
                self.rounds -= 1;
                if self.rounds == 0 {
                    Control::Exit
                } else {
                    Control::Yield
                }
            }
        }
    }

    fn name(&self) -> &str {
        if self.mutex.is_some() {
            "clean-worker"
        } else {
            "racy-worker"
        }
    }
}

struct Parent {
    clean: bool,
    rounds: u32,
    phase: u8,
    buf: Option<VAddr>,
    second_worker: Option<locality_core::ThreadId>,
}

impl Program for Parent {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            0 => {
                let buf = ctx.alloc(SHARED_BYTES, 64);
                ctx.register_region(buf, SHARED_BYTES);
                ctx.write_range(buf, SHARED_BYTES, STRIDE);
                let mutex = self.clean.then(|| ctx.create_mutex());
                let w1 = ctx.spawn(Box::new(Worker::new(buf, mutex, self.rounds)));
                let w2 = ctx.spawn(Box::new(Worker::new(buf, mutex, self.rounds)));
                let me = ctx.self_id();
                let _ = ctx.at_share(me, w1, Q);
                let _ = ctx.at_share(me, w2, Q);
                let _ = ctx.at_share(w1, me, Q);
                let _ = ctx.at_share(w2, me, Q);
                if self.clean {
                    let _ = ctx.at_share(w1, w2, Q);
                    let _ = ctx.at_share(w2, w1, Q);
                }
                self.buf = Some(buf);
                self.second_worker = Some(w2);
                self.phase = 1;
                Control::Join(w1)
            }
            1 => {
                self.phase = 2;
                Control::Join(self.second_worker.expect("workers spawned in phase 0"))
            }
            _ => {
                ctx.read_range(
                    self.buf.expect("buffer allocated in phase 0"),
                    SHARED_BYTES,
                    STRIDE,
                );
                Control::Exit
            }
        }
    }

    fn name(&self) -> &str {
        if self.clean {
            "clean-parent"
        } else {
            "racy-parent"
        }
    }
}

/// The mutex-protected, fully annotated workload. Race-free.
pub fn clean_workload(rounds: u32) -> Box<dyn Program> {
    Box::new(Parent {
        clean: true,
        rounds: rounds.max(1),
        phase: 0,
        buf: None,
        second_worker: None,
    })
}

/// The unsynchronized, under-annotated workload. Races under every
/// schedule.
pub fn racy_workload(rounds: u32) -> Box<dyn Program> {
    Box::new(Parent {
        clean: false,
        rounds: rounds.max(1),
        phase: 0,
        buf: None,
        second_worker: None,
    })
}

/// A worker that acquires `first` then `second`, then releases both.
struct LockPair {
    first: MutexId,
    second: MutexId,
    phase: u8,
}

impl Program for LockPair {
    fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
        let phase = self.phase;
        self.phase += 1;
        match phase {
            0 => Control::Lock(self.first),
            1 => Control::Lock(self.second),
            2 => Control::Unlock(self.second),
            3 => Control::Unlock(self.first),
            _ => Control::Exit,
        }
    }

    fn name(&self) -> &str {
        "lock-pair"
    }
}

/// Deferred constructor for [`JoinTwo`]'s child pair.
type SpawnPair = Box<dyn FnOnce(&mut BatchCtx<'_>) -> (Box<dyn Program>, Box<dyn Program>)>;

/// A two-phase parent that spawns two children and joins them in order.
struct JoinTwo {
    children: Option<(locality_core::ThreadId, locality_core::ThreadId)>,
    spawn: Option<SpawnPair>,
    phase: u8,
}

impl Program for JoinTwo {
    fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
        match self.phase {
            0 => {
                let spawn = self.spawn.take().expect("phase 0 runs once");
                let (a, b) = spawn(ctx);
                let c1 = ctx.spawn(a);
                let c2 = ctx.spawn(b);
                self.children = Some((c1, c2));
                self.phase = 1;
                Control::Join(c1)
            }
            1 => {
                self.phase = 2;
                Control::Join(self.children.expect("children spawned in phase 0").1)
            }
            _ => Control::Exit,
        }
    }

    fn name(&self) -> &str {
        "join-two"
    }
}

/// The AB–BA deadlock workload: two workers acquire two mutexes in
/// opposite orders. Under most schedules (including the engine's
/// default run-to-block dispatch) each worker holds and releases both
/// locks without contention and the run completes; under schedules
/// where the acquires interleave, the workers deadlock. A
/// single-schedule analysis sees at most a lock-order-cycle *warning* —
/// only exhaustive exploration proves the deadlock is realizable.
pub fn deadlock_workload() -> Box<dyn Program> {
    Box::new(JoinTwo {
        children: None,
        spawn: Some(Box::new(|ctx| {
            let a = ctx.create_mutex();
            let b = ctx.create_mutex();
            (
                Box::new(LockPair { first: a, second: b, phase: 0 }),
                Box::new(LockPair { first: b, second: a, phase: 0 }),
            )
        })),
        phase: 0,
    })
}

/// The condvar waiter of [`lost_wakeup_workload`].
struct CondWaiter {
    mutex: MutexId,
    cond: CondId,
    phase: u8,
}

impl Program for CondWaiter {
    fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
        let phase = self.phase;
        self.phase += 1;
        match phase {
            0 => Control::Lock(self.mutex),
            1 => Control::CondWait(self.cond, self.mutex),
            2 => Control::Unlock(self.mutex),
            _ => Control::Exit,
        }
    }

    fn name(&self) -> &str {
        "cond-waiter"
    }
}

/// The one-shot signaler of [`lost_wakeup_workload`].
struct CondSignaler {
    cond: CondId,
    phase: u8,
}

impl Program for CondSignaler {
    fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
        let phase = self.phase;
        self.phase += 1;
        match phase {
            0 => Control::CondSignal(self.cond),
            _ => Control::Exit,
        }
    }

    fn name(&self) -> &str {
        "cond-signaler"
    }
}

/// The lost-wakeup workload: a waiter does `lock; cond_wait` while a
/// signaler fires a single `cond_signal` with no predicate re-check.
/// Schedules where the signal lands before the wait leave the waiter
/// parked on the condvar forever — a condvar stall the model checker
/// classifies separately from a lock-cycle deadlock.
pub fn lost_wakeup_workload() -> Box<dyn Program> {
    Box::new(JoinTwo {
        children: None,
        spawn: Some(Box::new(|ctx| {
            let m = ctx.create_mutex();
            let c = ctx.create_cond();
            (
                Box::new(CondWaiter { mutex: m, cond: c, phase: 0 }),
                Box::new(CondSignaler { cond: c, phase: 0 }),
            )
        })),
        phase: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_log, AnalysisConfig};
    use active_threads::{Engine, EngineConfig, SchedPolicy};
    use locality_sim::MachineConfig;

    fn run(prog: Box<dyn Program>) -> crate::AnalysisReport {
        let mut engine = Engine::new(
            MachineConfig::enterprise5000(2),
            SchedPolicy::Lff,
            EngineConfig::default(),
        )
        .unwrap();
        engine.enable_observation();
        engine.spawn(prog);
        engine.run().expect("fixture run");
        let log = engine.take_observation().expect("observation enabled");
        analyze_log(&log, &AnalysisConfig::default())
    }

    #[test]
    fn racy_workload_is_flagged() {
        let report = run(racy_workload(3));
        assert!(report.has_errors());
        assert!(!report.races.is_empty());
        let codes: Vec<_> = report.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"drift-missing"), "{codes:?}");
    }

    #[test]
    fn clean_workload_is_quiet() {
        let report = run(clean_workload(3));
        assert!(!report.has_errors(), "{:?}", report.findings);
        assert!(report.races.is_empty());
        // Fully annotated and mutex-protected: nothing at all to report.
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn verdicts_are_stable_across_reruns() {
        for _ in 0..3 {
            let racy = run(racy_workload(2));
            let clean = run(clean_workload(2));
            assert!(racy.has_errors());
            assert!(!clean.has_errors());
        }
    }
}
