//! # locality-analyze
//!
//! Offline analyses over the deterministic observation log produced by
//! the `active-threads` engine ([`ObsLog`]):
//!
//! * **Happens-before race detection** ([`race`]) — vector clocks
//!   ([`vclock`]) advance at every synchronization event (spawn, join,
//!   mutex hand-off, semaphore post/wait, barrier crossing, condition
//!   signal); conflicting access spans with concurrent clocks are
//!   confirmed data races. Deterministic: the engine's execution — and
//!   therefore the log — is a pure function of the program and
//!   configuration.
//! * **Lock-order cycle detection** ([`lockorder`]) — a cycle in the
//!   acquired-while-holding graph is a potential deadlock.
//! * **Annotation-consistency lints** ([`lint`]) — `at_share` annotations
//!   cross-checked against observed sharing: self edges, non-finite or
//!   out-of-range coefficients, dangling endpoints, per-source out-weight
//!   sums above 1, and annotation drift in both directions.
//!
//! * **Stateless model checking** ([`explore`]) — exhaustive schedule
//!   exploration of the small fixture workloads with dynamic
//!   partial-order reduction and sleep sets, driven through the engine's
//!   controlled-scheduling mode; every explored schedule is checked for
//!   races, deadlocks, and condvar stalls, and violations are emitted as
//!   replayable counterexamples.
//!
//! [`analyze_log`] runs everything and assembles an [`AnalysisReport`];
//! [`fixtures`] provides the deterministic racy/clean workload pair used
//! by the `repro analyze` binary and CI, plus the deadlock and
//! lost-wakeup fixtures the model checker explores.
//!
//! The scheduler invariant checker (the third leg of the analysis layer)
//! lives in `locality-core` behind the `invariant-checks` cargo feature,
//! because it must observe the estimator's internal state on every
//! context switch; enabling this crate's `invariant-checks` feature
//! forwards to it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod fixtures;
pub mod lint;
pub mod lockorder;
pub mod race;
pub mod report;
pub mod vclock;

pub use explore::{
    explore, parse_counterexample, replay_counterexample, serialize_counterexample, Counterexample,
    ExploreConfig, ExploreSummary, McViolation, McWorkload, ViolationKind,
};
pub use lint::{lint_annotations, LintConfig, ObservedSharing};
pub use lockorder::{LockOrderGraph, WitnessEdge};
pub use race::{AccessInfo, Race, RaceDetector};
pub use report::{AnalysisReport, Finding, Severity};
pub use vclock::VClock;

use active_threads::ObsLog;

/// Configuration for [`analyze_log`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisConfig {
    /// Thresholds for the annotation drift lints.
    pub lint: LintConfig,
}

/// Runs every analysis over a log and assembles the combined report.
pub fn analyze_log(log: &ObsLog, cfg: &AnalysisConfig) -> AnalysisReport {
    let detector = RaceDetector::run(log);
    let lints = lint_annotations(log, &cfg.lint);
    let races = detector.races().to_vec();
    AnalysisReport::assemble(races, detector.lock_order(), lints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_threads::ObsEvent;
    use locality_core::ThreadId;
    use locality_sim::VAddr;

    #[test]
    fn analyze_log_combines_races_and_lints() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: ThreadId(1) });
        log.record(ObsEvent::Spawn { parent: Some(ThreadId(1)), child: ThreadId(2) });
        log.record(ObsEvent::Spawn { parent: Some(ThreadId(1)), child: ThreadId(3) });
        log.record(ObsEvent::Access {
            tid: ThreadId(2),
            start: VAddr(0),
            bytes: 4096,
            write: true,
        });
        log.record(ObsEvent::Access {
            tid: ThreadId(3),
            start: VAddr(0),
            bytes: 4096,
            write: true,
        });
        log.record(ObsEvent::AtShare {
            src: ThreadId(2),
            dst: ThreadId(2),
            q: 0.5,
            accepted: false,
        });

        let report = analyze_log(&log, &AnalysisConfig::default());
        assert!(report.has_errors());
        assert_eq!(report.races.len(), 1);
        let codes: Vec<_> = report.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"data-race"), "{codes:?}");
        assert!(codes.contains(&"self-edge"), "{codes:?}");
    }
}
