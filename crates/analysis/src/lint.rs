//! Annotation-consistency lints: cross-check `at_share` annotations
//! against the sharing the run actually exhibited.
//!
//! The lints consume the raw [`ObsEvent::AtShare`] stream (not the
//! post-run [`SharingGraph`], which the engine prunes as threads exit)
//! plus per-thread observed footprints reconstructed from access spans.
//! "Observed sharing" between two threads is the byte overlap of their
//! merged access-interval sets; "annotation drift" is a mismatch in either
//! direction — substantial observed sharing with no annotation, or an
//! annotation whose pair never shared a byte.
//!
//! [`ObsEvent::AtShare`]: active_threads::ObsEvent::AtShare
//! [`SharingGraph`]: locality_core::SharingGraph

use crate::report::{Finding, Severity};
use active_threads::{ObsEvent, ObsLog};
use locality_core::ThreadId;
use std::collections::{BTreeMap, BTreeSet};

/// Thresholds for the drift lints.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Minimum shared bytes before a missing annotation is reported.
    pub drift_min_bytes: u64,
    /// Minimum shared fraction of the smaller thread's state before a
    /// missing annotation is reported.
    pub drift_min_fraction: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { drift_min_bytes: 1024, drift_min_fraction: 0.25 }
    }
}

/// Per-thread observed state: merged, disjoint, sorted access intervals.
#[derive(Debug, Default)]
struct Footprint {
    /// Half-open `[start, end)` intervals, sorted and non-overlapping.
    intervals: Vec<(u64, u64)>,
}

impl Footprint {
    fn add(&mut self, start: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.intervals.push((start, start + bytes));
    }

    fn normalize(&mut self) {
        self.intervals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.intervals.len());
        for &(s, e) in &self.intervals {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.intervals = merged;
    }

    fn bytes(&self) -> u64 {
        self.intervals.iter().map(|&(s, e)| e - s).sum()
    }

    fn shared_bytes(&self, other: &Footprint) -> u64 {
        let mut total = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (a0, a1) = self.intervals[i];
            let (b0, b1) = other.intervals[j];
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo < hi {
                total += hi - lo;
            }
            if a1 <= b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }
}

/// Observed sharing reconstructed from a log: threads, footprints, and
/// the effective (last-writer-wins) annotation set.
#[derive(Debug, Default)]
pub struct ObservedSharing {
    threads: BTreeSet<ThreadId>,
    footprints: BTreeMap<ThreadId, Footprint>,
    /// Every raw annotation in log order: `(src, dst, q, accepted)`.
    annotations: Vec<(ThreadId, ThreadId, f64, bool)>,
}

impl ObservedSharing {
    /// Builds the observed-sharing view from a log.
    pub fn from_log(log: &ObsLog) -> Self {
        let mut obs = ObservedSharing::default();
        for ev in log.events() {
            match *ev {
                ObsEvent::Spawn { child, .. } => {
                    obs.threads.insert(child);
                }
                ObsEvent::Access { tid, start, bytes, .. } => {
                    obs.footprints.entry(tid).or_default().add(start.0, bytes);
                }
                ObsEvent::AtShare { src, dst, q, accepted } => {
                    obs.annotations.push((src, dst, q, accepted));
                }
                _ => {}
            }
        }
        for fp in obs.footprints.values_mut() {
            fp.normalize();
        }
        obs
    }

    /// Bytes two threads both touched.
    pub fn shared_bytes(&self, a: ThreadId, b: ThreadId) -> u64 {
        match (self.footprints.get(&a), self.footprints.get(&b)) {
            (Some(fa), Some(fb)) => fa.shared_bytes(fb),
            _ => 0,
        }
    }

    /// Total bytes a thread touched.
    pub fn state_bytes(&self, t: ThreadId) -> u64 {
        self.footprints.get(&t).map_or(0, Footprint::bytes)
    }

    /// The effective annotation edges after replaying the log:
    /// last valid annotation per `(src, dst)` wins; `q = 0` removes.
    fn effective_edges(&self) -> BTreeMap<(ThreadId, ThreadId), f64> {
        let mut edges = BTreeMap::new();
        for &(src, dst, q, accepted) in &self.annotations {
            if !accepted {
                continue;
            }
            if q == 0.0 {
                edges.remove(&(src, dst));
            } else {
                edges.insert((src, dst), q);
            }
        }
        edges
    }
}

/// Runs every annotation lint over a log. Findings are deterministic and
/// sorted by lint code, then by the threads involved.
pub fn lint_annotations(log: &ObsLog, cfg: &LintConfig) -> Vec<Finding> {
    let obs = ObservedSharing::from_log(log);
    let mut findings = Vec::new();

    // Raw-coefficient lints run on every annotation, including rejected
    // ones — the rejection is exactly what they report.
    for &(src, dst, q, _) in &obs.annotations {
        if src == dst {
            findings.push(Finding::new(
                Severity::Warning,
                "self-edge",
                format!("at_share({src}, {dst}, {q}) declares a thread sharing with itself"),
            ));
        }
        if q.is_nan() || q.is_infinite() {
            findings.push(Finding::new(
                Severity::Warning,
                "non-finite-q",
                format!("at_share({src}, {dst}, {q}) has a non-finite coefficient"),
            ));
        } else if !(0.0..=1.0).contains(&q) {
            findings.push(Finding::new(
                Severity::Warning,
                "q-out-of-range",
                format!("at_share({src}, {dst}, {q}) has q outside [0, 1]"),
            ));
        }
    }

    let edges = obs.effective_edges();

    // Dangling edges: an endpoint that never appeared as a thread.
    for (&(src, dst), &q) in &edges {
        for t in [src, dst] {
            if !obs.threads.contains(&t) {
                findings.push(Finding::new(
                    Severity::Warning,
                    "dangling-edge",
                    format!("at_share({src}, {dst}, {q}) names {t}, which never ran"),
                ));
            }
        }
    }

    // Per-source out-weight sums. The model caps total shared fraction at
    // 1; a sum above it means the annotations are mutually inconsistent.
    let mut out_sums: BTreeMap<ThreadId, f64> = BTreeMap::new();
    for (&(src, _), &q) in &edges {
        *out_sums.entry(src).or_insert(0.0) += q;
    }
    for (&src, &sum) in &out_sums {
        if sum > 1.0 + 1e-9 {
            findings.push(Finding::new(
                Severity::Warning,
                "out-weight-sum",
                format!("{src}'s outgoing sharing coefficients sum to {sum:.3} > 1"),
            ));
        }
    }

    // Drift, direction 1: substantial observed sharing with no annotation.
    let threads: Vec<ThreadId> = obs.threads.iter().copied().collect();
    for (i, &a) in threads.iter().enumerate() {
        for &b in &threads[i + 1..] {
            let shared = obs.shared_bytes(a, b);
            if shared < cfg.drift_min_bytes {
                continue;
            }
            let smaller = obs.state_bytes(a).min(obs.state_bytes(b)).max(1);
            if (shared as f64) / (smaller as f64) < cfg.drift_min_fraction {
                continue;
            }
            let annotated = edges.contains_key(&(a, b)) || edges.contains_key(&(b, a));
            if !annotated {
                findings.push(Finding::new(
                    Severity::Warning,
                    "drift-missing",
                    format!(
                        "{a} and {b} shared {shared} bytes \
                         ({:.0}% of the smaller state) with no at_share edge",
                        100.0 * shared as f64 / smaller as f64
                    ),
                ));
            }
        }
    }

    // Drift, direction 2: an annotation whose pair never shared a byte
    // even though both threads touched memory.
    for (&(src, dst), &q) in &edges {
        if src == dst {
            continue;
        }
        if obs.state_bytes(src) > 0 && obs.state_bytes(dst) > 0 && obs.shared_bytes(src, dst) == 0 {
            findings.push(Finding::new(
                Severity::Warning,
                "drift-stale",
                format!("at_share({src}, {dst}, {q}) but the pair shared no bytes"),
            ));
        }
    }

    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_sim::VAddr;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    fn spawn(log: &mut ObsLog, parent: Option<u64>, child: u64) {
        log.record(ObsEvent::Spawn { parent: parent.map(t), child: t(child) });
    }

    fn access(log: &mut ObsLog, tid: u64, start: u64, bytes: u64) {
        log.record(ObsEvent::Access { tid: t(tid), start: VAddr(start), bytes, write: true });
    }

    fn share(log: &mut ObsLog, src: u64, dst: u64, q: f64, accepted: bool) {
        log.record(ObsEvent::AtShare { src: t(src), dst: t(dst), q, accepted });
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    /// The issue's synthetic fixture: one log exhibiting out-weight-sum,
    /// dangling-edge, and both drift directions at once.
    #[test]
    fn synthetic_fixture_triggers_expected_lints() {
        let mut log = ObsLog::new();
        spawn(&mut log, None, 1);
        spawn(&mut log, Some(1), 2);
        spawn(&mut log, Some(1), 3);
        // t1 and t2 share 4096 bytes with no annotation → drift-missing.
        access(&mut log, 1, 0, 4096);
        log.record(ObsEvent::Exit { tid: t(1) }); // break coalescing
        access(&mut log, 2, 0, 4096);
        access(&mut log, 3, 65536, 4096); // t3 is fully private
                                          // t2's out-weights sum to 1.3 → out-weight-sum.
                                          // t2 → t3 never actually share → drift-stale.
        share(&mut log, 2, 3, 0.6, true);
        // Edge naming a thread that never ran → dangling-edge.
        share(&mut log, 2, 9, 0.7, true);

        let findings = lint_annotations(&log, &LintConfig::default());
        let cs = codes(&findings);
        assert!(cs.contains(&"out-weight-sum"), "{cs:?}");
        assert!(cs.contains(&"dangling-edge"), "{cs:?}");
        assert!(cs.contains(&"drift-missing"), "{cs:?}");
        assert!(cs.contains(&"drift-stale"), "{cs:?}");
        // Exactly one stale edge (t2 → t3); the dangling t2 → t9 edge is
        // not double-reported as stale because t9 has no state at all.
        assert_eq!(cs.iter().filter(|c| **c == "drift-stale").count(), 1);
    }

    #[test]
    fn clean_annotations_produce_no_findings() {
        let mut log = ObsLog::new();
        spawn(&mut log, None, 1);
        spawn(&mut log, Some(1), 2);
        access(&mut log, 1, 0, 4096);
        log.record(ObsEvent::Exit { tid: t(1) });
        access(&mut log, 2, 0, 4096);
        share(&mut log, 1, 2, 0.9, true);
        share(&mut log, 2, 1, 0.9, true);
        let findings = lint_annotations(&log, &LintConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn raw_coefficient_lints_fire_even_when_rejected() {
        let mut log = ObsLog::new();
        spawn(&mut log, None, 1);
        share(&mut log, 1, 1, 0.5, false); // self edge
        share(&mut log, 1, 2, f64::NAN, false);
        share(&mut log, 1, 2, 1.5, false);
        let cs = codes(&lint_annotations(&log, &LintConfig::default()));
        assert!(cs.contains(&"self-edge"), "{cs:?}");
        assert!(cs.contains(&"non-finite-q"), "{cs:?}");
        assert!(cs.contains(&"q-out-of-range"), "{cs:?}");
    }

    #[test]
    fn zero_q_annotation_removes_the_edge() {
        let mut log = ObsLog::new();
        spawn(&mut log, None, 1);
        spawn(&mut log, Some(1), 2);
        access(&mut log, 1, 0, 65536);
        log.record(ObsEvent::Exit { tid: t(1) });
        access(&mut log, 2, 1 << 20, 65536);
        share(&mut log, 1, 2, 0.5, true); // would be stale...
        share(&mut log, 1, 2, 0.0, true); // ...but is retracted
        let cs = codes(&lint_annotations(&log, &LintConfig::default()));
        assert!(!cs.contains(&"drift-stale"), "{cs:?}");
    }

    #[test]
    fn small_sharing_stays_below_drift_thresholds() {
        let mut log = ObsLog::new();
        spawn(&mut log, None, 1);
        spawn(&mut log, Some(1), 2);
        access(&mut log, 1, 0, 65536);
        log.record(ObsEvent::Exit { tid: t(1) });
        // 512 bytes shared: below drift_min_bytes and the fraction floor.
        access(&mut log, 2, 0, 512);
        access(&mut log, 2, 1 << 20, 65536);
        let cs = codes(&lint_annotations(&log, &LintConfig::default()));
        assert!(!cs.contains(&"drift-missing"), "{cs:?}");
    }
}
