//! Lock-acquisition-order graph with cycle detection and witnesses.
//!
//! Whenever a thread acquires mutex `b` while already holding mutex `a`,
//! the directed edge `a → b` is added, remembering the first thread that
//! exhibited it. A cycle in this graph means two executions could
//! acquire the same locks in opposite orders — a potential deadlock even
//! if this particular run completed. [`cycles`](LockOrderGraph::cycles)
//! reports the conflicting lock sets; [`cycle_witnesses`](LockOrderGraph::cycle_witnesses)
//! additionally produces, per cycle, a *minimal* edge path with the
//! acquiring thread of every edge — the concrete evidence `repro
//! analyze` prints.

use active_threads::MutexId;
use locality_core::ThreadId;
use std::collections::{BTreeMap, VecDeque};

/// One `outer → inner` edge of a cycle witness: `tid` acquired `inner`
/// while holding `outer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessEdge {
    /// The already-held mutex.
    pub outer: MutexId,
    /// The mutex acquired while holding `outer`.
    pub inner: MutexId,
    /// The first thread observed taking the locks in this order.
    pub tid: ThreadId,
}

impl std::fmt::Display for WitnessEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} took m{} while holding m{}", self.tid, self.inner.0, self.outer.0)
    }
}

/// Directed graph over mutexes, edges meaning "acquired before", each
/// edge carrying the first acquiring thread as its witness.
#[derive(Debug, Clone, Default)]
pub struct LockOrderGraph {
    edges: BTreeMap<MutexId, BTreeMap<MutexId, ThreadId>>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockOrderGraph::default()
    }

    /// Records that `tid` acquired `inner` while holding `outer`. The
    /// first acquiring thread per edge is kept as the edge's witness.
    pub fn add_edge(&mut self, outer: MutexId, inner: MutexId, tid: ThreadId) {
        self.edges.entry(outer).or_default().entry(inner).or_insert(tid);
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeMap::len).sum()
    }

    /// Node list and a compact adjacency list over node indices,
    /// computed once so traversals don't rebuild successor sets per
    /// visit.
    fn adjacency(&self) -> (Vec<MutexId>, Vec<Vec<usize>>) {
        let nodes: Vec<MutexId> = {
            let mut set: BTreeMap<MutexId, ()> = BTreeMap::new();
            for (&a, bs) in &self.edges {
                set.insert(a, ());
                for &b in bs.keys() {
                    set.insert(b, ());
                }
            }
            set.into_keys().collect()
        };
        let index_of: BTreeMap<MutexId, usize> =
            nodes.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|m| {
                self.edges
                    .get(m)
                    .map(|s| s.keys().map(|b| index_of[b]).collect())
                    .unwrap_or_default()
            })
            .collect();
        (nodes, adj)
    }

    /// Strongly-connected components as node-index sets (Tarjan,
    /// iterative), using the precomputed adjacency.
    fn sccs(nodes: &[MutexId], adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let n = nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack of (node, next-neighbor position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ni)) = call.last_mut() {
                if *ni == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ni < adj[v].len() {
                    let w = adj[v][*ni];
                    *ni += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// Strongly-connected components with more than one mutex (or a
    /// self-loop): each is a set of locks that can be acquired in
    /// conflicting orders. Components are returned sorted, deterministic.
    pub fn cycles(&self) -> Vec<Vec<MutexId>> {
        let (nodes, adj) = self.adjacency();
        let mut cycles: Vec<Vec<MutexId>> = Vec::new();
        for comp in Self::sccs(&nodes, &adj) {
            let self_loop = comp.len() == 1 && adj[comp[0]].contains(&comp[0]);
            if comp.len() > 1 || self_loop {
                let mut ms: Vec<MutexId> = comp.into_iter().map(|i| nodes[i]).collect();
                ms.sort_unstable_by_key(|m| m.0);
                cycles.push(ms);
            }
        }
        cycles.sort();
        cycles
    }

    /// A minimal concrete witness per cycle: the shortest edge path from
    /// the component's smallest mutex back to itself, each edge labelled
    /// with the thread that first exhibited it. Same order as
    /// [`cycles`](Self::cycles).
    pub fn cycle_witnesses(&self) -> Vec<Vec<WitnessEdge>> {
        let (nodes, adj) = self.adjacency();
        let mut comps: Vec<Vec<usize>> = Self::sccs(&nodes, &adj)
            .into_iter()
            .filter(|c| c.len() > 1 || (c.len() == 1 && adj[c[0]].contains(&c[0])))
            .collect();
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort();
        let witness_of = |outer: usize, inner: usize| -> WitnessEdge {
            let tid = self.edges[&nodes[outer]][&nodes[inner]];
            WitnessEdge { outer: nodes[outer], inner: nodes[inner], tid }
        };
        let mut out = Vec::with_capacity(comps.len());
        for comp in comps {
            let in_comp = {
                let mut v = vec![false; nodes.len()];
                for &i in &comp {
                    v[i] = true;
                }
                v
            };
            let start = comp[0];
            if adj[start].contains(&start) {
                out.push(vec![witness_of(start, start)]);
                continue;
            }
            // BFS within the component for the shortest path start → …
            // → u with an edge u → start closing the cycle.
            let mut parent = vec![usize::MAX; nodes.len()];
            let mut dist = vec![usize::MAX; nodes.len()];
            dist[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &w in &adj[v] {
                    if in_comp[w] && dist[w] == usize::MAX {
                        dist[w] = dist[v] + 1;
                        parent[w] = v;
                        queue.push_back(w);
                    }
                }
            }
            let closer = comp
                .iter()
                .copied()
                .filter(|&u| u != start && dist[u] != usize::MAX && adj[u].contains(&start))
                .min_by_key(|&u| (dist[u], nodes[u].0));
            let Some(closer) = closer else {
                // Unreachable for a genuine SCC; skip defensively.
                continue;
            };
            let mut rev = vec![witness_of(closer, start)];
            let mut cur = closer;
            while cur != start {
                rev.push(witness_of(parent[cur], cur));
                cur = parent[cur];
            }
            rev.reverse();
            out.push(rev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: usize) -> MutexId {
        MutexId(i)
    }

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1), t(1));
        g.add_edge(m(1), m(2), t(1));
        g.add_edge(m(0), m(2), t(2));
        assert!(g.cycles().is_empty());
        assert!(g.cycle_witnesses().is_empty());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn ab_ba_cycle_detected() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1), t(1));
        g.add_edge(m(1), m(0), t(2));
        assert_eq!(g.cycles(), vec![vec![m(0), m(1)]]);
    }

    #[test]
    fn three_lock_ring_detected() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1), t(1));
        g.add_edge(m(1), m(2), t(2));
        g.add_edge(m(2), m(0), t(3));
        g.add_edge(m(5), m(6), t(1)); // unrelated acyclic part
        assert_eq!(g.cycles(), vec![vec![m(0), m(1), m(2)]]);
    }

    #[test]
    fn duplicate_edges_are_idempotent_and_keep_first_witness() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1), t(1));
        g.add_edge(m(0), m(1), t(9));
        g.add_edge(m(1), m(0), t(2));
        assert_eq!(g.edge_count(), 2);
        let w = g.cycle_witnesses();
        assert_eq!(
            w,
            vec![vec![
                WitnessEdge { outer: m(0), inner: m(1), tid: t(1) },
                WitnessEdge { outer: m(1), inner: m(0), tid: t(2) },
            ]]
        );
    }

    #[test]
    fn witness_path_is_minimal() {
        // Two ways around: a long ring 0→1→2→3→0 and a chord 1→0 that
        // shortens the cycle through node 0 to two edges.
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1), t(1));
        g.add_edge(m(1), m(2), t(1));
        g.add_edge(m(2), m(3), t(2));
        g.add_edge(m(3), m(0), t(2));
        g.add_edge(m(1), m(0), t(3));
        let w = g.cycle_witnesses();
        assert_eq!(w.len(), 1);
        assert_eq!(
            w[0],
            vec![
                WitnessEdge { outer: m(0), inner: m(1), tid: t(1) },
                WitnessEdge { outer: m(1), inner: m(0), tid: t(3) },
            ]
        );
    }

    #[test]
    fn self_loop_witnessed_as_single_edge() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(4), m(4), t(7));
        assert_eq!(g.cycles(), vec![vec![m(4)]]);
        assert_eq!(
            g.cycle_witnesses(),
            vec![vec![WitnessEdge { outer: m(4), inner: m(4), tid: t(7) }]]
        );
    }

    #[test]
    fn witness_edges_form_a_closed_cycle() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1), t(1));
        g.add_edge(m(1), m(2), t(2));
        g.add_edge(m(2), m(0), t(3));
        let w = g.cycle_witnesses();
        assert_eq!(w.len(), 1);
        let path = &w[0];
        for pair in path.windows(2) {
            assert_eq!(pair[0].inner, pair[1].outer);
        }
        assert_eq!(path.last().unwrap().inner, path[0].outer);
    }
}
