//! Lock-acquisition-order graph with cycle detection.
//!
//! Whenever a thread acquires mutex `b` while already holding mutex `a`,
//! the directed edge `a → b` is added. A cycle in this graph means two
//! executions could acquire the same locks in opposite orders — a
//! potential deadlock even if this particular run completed.

use active_threads::MutexId;
use std::collections::{BTreeMap, BTreeSet};

/// Directed graph over mutexes, edges meaning "acquired before".
#[derive(Debug, Clone, Default)]
pub struct LockOrderGraph {
    edges: BTreeMap<MutexId, BTreeSet<MutexId>>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockOrderGraph::default()
    }

    /// Records that some thread acquired `inner` while holding `outer`.
    pub fn add_edge(&mut self, outer: MutexId, inner: MutexId) {
        self.edges.entry(outer).or_default().insert(inner);
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Strongly-connected components with more than one mutex (or a
    /// self-loop): each is a set of locks that can be acquired in
    /// conflicting orders. Components are returned sorted, deterministic.
    pub fn cycles(&self) -> Vec<Vec<MutexId>> {
        // Iterative Tarjan SCC over the (small) lock graph.
        let nodes: Vec<MutexId> = self
            .edges
            .iter()
            .flat_map(|(&a, bs)| std::iter::once(a).chain(bs.iter().copied()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let index_of: BTreeMap<MutexId, usize> =
            nodes.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let n = nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack of (node, next-neighbor position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ni)) = call.last_mut() {
                if *ni == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succs: Vec<usize> = self
                    .edges
                    .get(&nodes[v])
                    .map(|s| s.iter().map(|m| index_of[m]).collect())
                    .unwrap_or_default();
                if *ni < succs.len() {
                    let w = succs[*ni];
                    *ni += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }

        let mut cycles: Vec<Vec<MutexId>> = Vec::new();
        for comp in sccs {
            let self_loop = comp.len() == 1
                && self.edges.get(&nodes[comp[0]]).is_some_and(|s| s.contains(&nodes[comp[0]]));
            if comp.len() > 1 || self_loop {
                let mut ms: Vec<MutexId> = comp.into_iter().map(|i| nodes[i]).collect();
                ms.sort_unstable_by_key(|m| m.0);
                cycles.push(ms);
            }
        }
        cycles.sort();
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: usize) -> MutexId {
        MutexId(i)
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1));
        g.add_edge(m(1), m(2));
        g.add_edge(m(0), m(2));
        assert!(g.cycles().is_empty());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn ab_ba_cycle_detected() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1));
        g.add_edge(m(1), m(0));
        assert_eq!(g.cycles(), vec![vec![m(0), m(1)]]);
    }

    #[test]
    fn three_lock_ring_detected() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1));
        g.add_edge(m(1), m(2));
        g.add_edge(m(2), m(0));
        g.add_edge(m(5), m(6)); // unrelated acyclic part
        assert_eq!(g.cycles(), vec![vec![m(0), m(1), m(2)]]);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut g = LockOrderGraph::new();
        g.add_edge(m(0), m(1));
        g.add_edge(m(0), m(1));
        assert_eq!(g.edge_count(), 1);
    }
}
