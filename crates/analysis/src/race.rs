//! Vector-clock happens-before race detection over an [`ObsLog`].
//!
//! The detector replays the deterministic observation log, maintaining one
//! [`VClock`] per thread plus one per synchronization object, and flags
//! every pair of conflicting access spans (different threads, at least one
//! write, overlapping byte ranges) whose clocks are concurrent. Because the
//! engine only changes a thread's causal frontier at synchronization
//! events — all of which appear in the log — accesses themselves need no
//! tick: a historical access `r` by thread `t` happens-before the current
//! access iff the current thread's clock already covers `r`'s own
//! component, i.e. `cur.get(t) ≥ r.clock.get(t)`.
//!
//! As a byproduct the replay also builds the lock-acquisition-order graph
//! (edge `a → b` when some thread acquires `b` while holding `a`), whose
//! cycles indicate potential deadlocks.

use crate::lockorder::LockOrderGraph;
use crate::vclock::VClock;
use active_threads::{MutexId, ObsEvent, ObsLog, SemId};
use locality_core::ThreadId;
use locality_sim::VAddr;
use std::collections::{BTreeMap, BTreeSet};

/// One side of a race: an access span with the clock it executed under.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessInfo {
    /// The accessing thread.
    pub tid: ThreadId,
    /// First byte of the span.
    pub start: VAddr,
    /// Length of the span in bytes.
    pub bytes: u64,
    /// True for stores.
    pub write: bool,
    /// The thread's vector clock at the access.
    pub clock: VClock,
}

impl AccessInfo {
    fn overlaps(&self, other: &AccessInfo) -> bool {
        let (a0, a1) = (self.start.0, self.start.0 + self.bytes);
        let (b0, b1) = (other.start.0, other.start.0 + other.bytes);
        a0 < b1 && b0 < a1
    }
}

/// A confirmed data race: two conflicting, concurrent accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct Race {
    /// The earlier access (log order).
    pub first: AccessInfo,
    /// The later access (log order).
    pub second: AccessInfo,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = |w: bool| if w { "write" } else { "read" };
        write!(
            f,
            "{} {} of [{:#x}, {:#x}) @ {} is concurrent with {} {} of [{:#x}, {:#x}) @ {}",
            self.first.tid,
            kind(self.first.write),
            self.first.start.0,
            self.first.start.0 + self.first.bytes,
            self.first.clock,
            self.second.tid,
            kind(self.second.write),
            self.second.start.0,
            self.second.start.0 + self.second.bytes,
            self.second.clock,
        )
    }
}

/// Cap on reported races; racy loops would otherwise flood the report
/// with one race per iteration.
const MAX_RACES: usize = 64;

/// The happens-before replay engine.
#[derive(Debug, Default)]
pub struct RaceDetector {
    clocks: BTreeMap<ThreadId, VClock>,
    mutex_clocks: BTreeMap<MutexId, VClock>,
    sem_clocks: BTreeMap<SemId, VClock>,
    history: Vec<AccessInfo>,
    held: BTreeMap<ThreadId, Vec<MutexId>>,
    lock_order: LockOrderGraph,
    races: Vec<Race>,
    /// Unordered racing thread pairs already reported (dedup).
    reported_pairs: BTreeSet<(ThreadId, ThreadId)>,
}

impl RaceDetector {
    /// Replays a full log and returns the populated detector.
    pub fn run(log: &ObsLog) -> Self {
        let mut d = RaceDetector::default();
        for ev in log.events() {
            d.step(ev);
        }
        d
    }

    /// Races found, in log order (capped and deduplicated per thread pair).
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The lock-acquisition-order graph built during the replay.
    pub fn lock_order(&self) -> &LockOrderGraph {
        &self.lock_order
    }

    fn clock_mut(&mut self, t: ThreadId) -> &mut VClock {
        self.clocks.entry(t).or_default()
    }

    fn step(&mut self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::Spawn { parent, child } => {
                let inherited = match parent {
                    Some(p) => {
                        let pc = self.clock_mut(p);
                        pc.tick(p);
                        pc.clone()
                    }
                    None => VClock::new(),
                };
                let cc = self.clock_mut(child);
                *cc = inherited;
                cc.tick(child);
            }
            ObsEvent::Exit { tid } => {
                self.clock_mut(tid).tick(tid);
            }
            // An abort is the dead thread's final event: tick its clock so
            // everything it did is below the abort. The engine emits the
            // reclamation `MutexRelease`s (and `JoinWake`s) *after* the
            // abort, by the dead thread itself — the release handler then
            // publishes the post-abort clock into the mutex, so whoever
            // reclaims the lock is happens-after everything the dead
            // thread did while holding it. No phantom races against dead
            // threads.
            ObsEvent::Abort { tid } => {
                self.clock_mut(tid).tick(tid);
            }
            ObsEvent::JoinWake { waiter, target } => {
                let tc = self.clock_mut(target).clone();
                let wc = self.clock_mut(waiter);
                wc.join(&tc);
                wc.tick(waiter);
            }
            ObsEvent::MutexAcquire { tid, mutex } => {
                if let Some(mc) = self.mutex_clocks.get(&mutex) {
                    let mc = mc.clone();
                    self.clock_mut(tid).join(&mc);
                }
                self.clock_mut(tid).tick(tid);
                let held = self.held.entry(tid).or_default();
                for &outer in held.iter() {
                    self.lock_order.add_edge(outer, mutex, tid);
                }
                held.push(mutex);
            }
            ObsEvent::MutexRelease { tid, mutex } => {
                let tc = self.clock_mut(tid);
                tc.tick(tid);
                let tc = tc.clone();
                self.mutex_clocks.insert(mutex, tc);
                if let Some(held) = self.held.get_mut(&tid) {
                    if let Some(pos) = held.iter().rposition(|&m| m == mutex) {
                        held.remove(pos);
                    }
                }
            }
            ObsEvent::SemPost { tid, sem } => {
                let tc = self.clock_mut(tid);
                tc.tick(tid);
                let tc = tc.clone();
                // Posts accumulate: a waiter may be released by any prior
                // post, so the semaphore clock joins rather than replaces.
                self.sem_clocks.entry(sem).or_default().join(&tc);
            }
            ObsEvent::SemAcquire { tid, sem } => {
                if let Some(sc) = self.sem_clocks.get(&sem) {
                    let sc = sc.clone();
                    self.clock_mut(tid).join(&sc);
                }
                self.clock_mut(tid).tick(tid);
            }
            ObsEvent::BarrierCross { barrier: _, ref parties } => {
                let mut merged = VClock::new();
                for &p in parties {
                    merged.join(self.clock_mut(p));
                }
                for &p in parties {
                    let pc = self.clock_mut(p);
                    *pc = merged.clone();
                    pc.tick(p);
                }
            }
            ObsEvent::CondWake { signaler, woken, cond: _ } => {
                let sc = self.clock_mut(signaler);
                sc.tick(signaler);
                let sc = sc.clone();
                let wc = self.clock_mut(woken);
                wc.join(&sc);
                wc.tick(woken);
            }
            ObsEvent::Access { tid, start, bytes, write } => {
                let clock = self.clock_mut(tid).clone();
                let cur = AccessInfo { tid, start, bytes, write, clock };
                self.check_race(&cur);
                self.history.push(cur);
            }
            ObsEvent::AtShare { .. } => {}
        }
    }

    fn check_race(&mut self, cur: &AccessInfo) {
        if self.races.len() >= MAX_RACES {
            return;
        }
        for rec in &self.history {
            if rec.tid == cur.tid || !(rec.write || cur.write) || !rec.overlaps(cur) {
                continue;
            }
            // `rec` happened-before `cur` iff `cur`'s clock already covers
            // `rec.tid`'s component at the time of `rec`.
            if cur.clock.get(rec.tid) >= rec.clock.get(rec.tid) {
                continue;
            }
            let pair = (rec.tid.min(cur.tid), rec.tid.max(cur.tid));
            if self.reported_pairs.insert(pair) {
                self.races.push(Race { first: rec.clone(), second: cur.clone() });
                if self.races.len() >= MAX_RACES {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    fn access(tid: u64, start: u64, bytes: u64, write: bool) -> ObsEvent {
        ObsEvent::Access { tid: t(tid), start: VAddr(start), bytes, write }
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(access(2, 0, 64, true));
        log.record(access(3, 32, 64, true));
        let d = RaceDetector::run(&log);
        assert_eq!(d.races().len(), 1);
        let r = &d.races()[0];
        assert_eq!(r.first.tid, t(2));
        assert_eq!(r.second.tid, t(3));
        assert!(r.first.clock.concurrent_with(&r.second.clock));
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(access(2, 0, 64, false));
        log.record(access(3, 0, 64, false));
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(access(2, 0, 64, true));
        log.record(access(3, 64, 64, true));
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn mutex_orders_critical_sections() {
        let m = MutexId(0);
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(ObsEvent::MutexAcquire { tid: t(2), mutex: m });
        log.record(access(2, 0, 64, true));
        log.record(ObsEvent::MutexRelease { tid: t(2), mutex: m });
        log.record(ObsEvent::MutexAcquire { tid: t(3), mutex: m });
        log.record(access(3, 0, 64, true));
        log.record(ObsEvent::MutexRelease { tid: t(3), mutex: m });
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn spawn_and_join_order_parent_child_accesses() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(access(1, 0, 128, true)); // parent init
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(access(2, 0, 128, true)); // child sees init via spawn
        log.record(ObsEvent::Exit { tid: t(2) });
        log.record(ObsEvent::JoinWake { waiter: t(1), target: t(2) });
        log.record(access(1, 0, 128, false)); // parent reads after join
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn semaphore_post_wait_creates_edge() {
        let s = SemId(0);
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(access(2, 0, 64, true));
        log.record(ObsEvent::SemPost { tid: t(2), sem: s });
        log.record(ObsEvent::SemAcquire { tid: t(3), sem: s });
        log.record(access(3, 0, 64, true));
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn barrier_synchronizes_all_parties() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(access(2, 0, 64, true));
        log.record(ObsEvent::BarrierCross {
            barrier: active_threads::BarrierId(0),
            parties: vec![t(2), t(3)],
        });
        log.record(access(3, 0, 64, true));
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn abort_reclamation_is_not_a_race() {
        // Thread 2 dies holding the mutex; the engine reclaims the lock
        // on its behalf (Abort, then MutexRelease by the corpse, then
        // the hand-off MutexAcquire). The reclaiming thread's accesses
        // to the protected range must be ordered, not racy.
        let m = MutexId(0);
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        log.record(ObsEvent::MutexAcquire { tid: t(2), mutex: m });
        log.record(access(2, 0, 64, true));
        log.record(ObsEvent::Abort { tid: t(2) });
        log.record(ObsEvent::MutexRelease { tid: t(2), mutex: m });
        log.record(ObsEvent::MutexAcquire { tid: t(3), mutex: m });
        log.record(access(3, 0, 64, true));
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn abort_join_wake_orders_the_joiner() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(access(2, 0, 64, true));
        log.record(ObsEvent::Abort { tid: t(2) });
        log.record(ObsEvent::JoinWake { waiter: t(1), target: t(2) });
        log.record(access(1, 0, 64, true));
        assert!(RaceDetector::run(&log).races().is_empty());
    }

    #[test]
    fn races_are_deduplicated_per_thread_pair() {
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(2) });
        log.record(ObsEvent::Spawn { parent: Some(t(1)), child: t(3) });
        for round in 0..10 {
            log.record(access(2, 0, 64, true));
            // A sync-free event between accesses prevents coalescing from
            // hiding the repeats.
            log.record(access(3, 0, 64, true));
            log.record(access(2, 4096 + round * 128, 64, true));
            log.record(access(3, 8192 + round * 128, 64, true));
        }
        let d = RaceDetector::run(&log);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn nested_locks_build_order_graph() {
        let (a, b) = (MutexId(0), MutexId(1));
        let mut log = ObsLog::new();
        log.record(ObsEvent::Spawn { parent: None, child: t(1) });
        log.record(ObsEvent::MutexAcquire { tid: t(1), mutex: a });
        log.record(ObsEvent::MutexAcquire { tid: t(1), mutex: b });
        log.record(ObsEvent::MutexRelease { tid: t(1), mutex: b });
        log.record(ObsEvent::MutexRelease { tid: t(1), mutex: a });
        log.record(ObsEvent::MutexAcquire { tid: t(1), mutex: b });
        log.record(ObsEvent::MutexAcquire { tid: t(1), mutex: a });
        let d = RaceDetector::run(&log);
        assert_eq!(d.lock_order().cycles(), vec![vec![a, b]]);
    }
}
