//! Analysis findings, severities, and the combined report.

use crate::lockorder::{LockOrderGraph, WitnessEdge};
use crate::race::Race;

/// How serious a finding is. Only [`Severity::Error`] affects exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; nothing is wrong.
    Info,
    /// A likely annotation or locking problem; the run is still correct.
    Warning,
    /// A confirmed correctness problem (a data race).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic produced by an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Stable lint/check code (e.g. `data-race`, `out-weight-sum`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Severity level.
    pub severity: Severity,
}

impl Finding {
    /// Creates a finding.
    pub fn new(severity: Severity, code: &'static str, message: String) -> Self {
        Finding { code, message, severity }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Everything the analyzer concluded about one run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// All findings: races first (as errors), then lock-order cycles and
    /// annotation lints (as warnings), each group deterministic.
    pub findings: Vec<Finding>,
    /// The confirmed races in structured form (also present in
    /// [`findings`](Self::findings) as `data-race` errors).
    pub races: Vec<Race>,
}

impl AnalysisReport {
    /// Builds the findings list from the analysis pieces.
    pub fn assemble(races: Vec<Race>, lock_order: &LockOrderGraph, lints: Vec<Finding>) -> Self {
        let mut findings = Vec::new();
        for race in &races {
            findings.push(Finding::new(Severity::Error, "data-race", race.to_string()));
        }
        for (cycle, witness) in lock_order.cycles().iter().zip(lock_order.cycle_witnesses()) {
            let locks: Vec<String> = cycle.iter().map(|m| format!("m{}", m.0)).collect();
            let steps: Vec<String> = witness.iter().map(WitnessEdge::to_string).collect();
            findings.push(Finding::new(
                Severity::Warning,
                "lock-order-cycle",
                format!(
                    "locks {{{}}} are acquired in conflicting orders; witness: {}",
                    locks.join(", "),
                    steps.join("; "),
                ),
            ));
        }
        findings.extend(lints);
        AnalysisReport { findings, races }
    }

    /// True when any finding is an error (currently: any confirmed race).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Findings at exactly the given severity.
    pub fn at_severity(&self, s: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn finding_display_includes_code() {
        let f = Finding::new(Severity::Warning, "out-weight-sum", "sum is 1.3".into());
        assert_eq!(f.to_string(), "warning[out-weight-sum]: sum is 1.3");
    }

    #[test]
    fn empty_report_has_no_errors() {
        let r = AnalysisReport::assemble(Vec::new(), &LockOrderGraph::new(), Vec::new());
        assert!(!r.has_errors());
        assert!(r.findings.is_empty());
    }
}
