//! Vector clocks over [`ThreadId`]s.
//!
//! A vector clock maps each thread to the number of causally-significant
//! events it has performed; component-wise comparison decides whether two
//! events are ordered by happens-before or concurrent. Clocks are sparse
//! (absent components are 0) and backed by an ordered map so rendering is
//! deterministic.

use locality_core::ThreadId;
use std::collections::BTreeMap;
use std::fmt;

/// A sparse vector clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(BTreeMap<ThreadId, u64>);

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// The component for `t` (0 when absent).
    pub fn get(&self, t: ThreadId) -> u64 {
        self.0.get(&t).copied().unwrap_or(0)
    }

    /// Increments `t`'s own component (the thread performed an event).
    pub fn tick(&mut self, t: ThreadId) {
        *self.0.entry(t).or_insert(0) += 1;
    }

    /// Point-wise maximum with `other` (a happens-before edge from the
    /// clock's owner receiving knowledge of `other`).
    pub fn join(&mut self, other: &VClock) {
        for (&t, &v) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            *e = (*e).max(v);
        }
    }

    /// Component-wise `self ≤ other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().all(|(&t, &v)| v <= other.get(t))
    }

    /// True if the two clocks are ordered in neither direction.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(t(1)), 0);
        c.tick(t(1));
        c.tick(t(1));
        assert_eq!(c.get(t(1)), 2);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(t(1));
        let mut b = VClock::new();
        b.tick(t(2));
        b.tick(t(2));
        a.join(&b);
        assert_eq!(a.get(t(1)), 1);
        assert_eq!(a.get(t(2)), 2);
    }

    #[test]
    fn ordering_and_concurrency() {
        let mut a = VClock::new();
        a.tick(t(1));
        let mut b = a.clone();
        b.tick(t(2));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent_with(&b));

        let mut c = VClock::new();
        c.tick(t(3));
        assert!(b.concurrent_with(&c));
    }

    #[test]
    fn display_is_deterministic() {
        let mut c = VClock::new();
        c.tick(t(2));
        c.tick(t(1));
        assert_eq!(c.to_string(), "{t1:1, t2:1}");
    }

    // ------------------------------------------------------------------
    // Algebraic laws, property-tested over arbitrary sparse clocks. The
    // race detector and model checker lean on `join` being a semilattice
    // operation and `le` being the matching partial order; these pin the
    // laws down directly.

    use proptest::prelude::*;

    /// Builds a clock from a list of (thread, ticks) pairs.
    fn clock(parts: &[(u64, u64)]) -> VClock {
        let mut c = VClock::new();
        for &(tid, n) in parts {
            for _ in 0..n {
                c.tick(t(tid));
            }
        }
        c
    }

    /// Arbitrary sparse clock: up to 8 components over 6 threads with up
    /// to 4 ticks each (duplicates accumulate).
    fn clock_parts() -> impl Strategy<Value = Vec<(u64, u64)>> {
        proptest::collection::vec((0u64..6, 0u64..5), 0..8)
    }

    fn joined(a: &VClock, b: &VClock) -> VClock {
        let mut j = a.clone();
        j.join(b);
        j
    }

    proptest! {
        /// `join` is commutative: max is symmetric per component.
        #[test]
        fn join_commutes(xa in clock_parts(), xb in clock_parts()) {
            let (a, b) = (clock(&xa), clock(&xb));
            prop_assert_eq!(joined(&a, &b), joined(&b, &a));
        }

        /// `join` is associative.
        #[test]
        fn join_is_associative(
            xa in clock_parts(),
            xb in clock_parts(),
            xc in clock_parts(),
        ) {
            let (a, b, c) = (clock(&xa), clock(&xb), clock(&xc));
            prop_assert_eq!(joined(&joined(&a, &b), &c), joined(&a, &joined(&b, &c)));
        }

        /// `join` is idempotent, with the zero clock as identity.
        #[test]
        fn join_is_idempotent_with_identity(xa in clock_parts()) {
            let a = clock(&xa);
            prop_assert_eq!(joined(&a, &a), a.clone());
            prop_assert_eq!(joined(&a, &VClock::new()), a);
        }

        /// `le` is the partial order induced by `join`: reflexive,
        /// antisymmetric, and both operands precede their join.
        #[test]
        fn le_is_a_partial_order_under_join(xa in clock_parts(), xb in clock_parts()) {
            let (a, b) = (clock(&xa), clock(&xb));
            prop_assert!(a.le(&a));
            if a.le(&b) && b.le(&a) {
                prop_assert_eq!(a.clone(), b.clone());
            }
            let j = joined(&a, &b);
            prop_assert!(a.le(&j));
            prop_assert!(b.le(&j));
        }

        /// `le` is transitive (third clock built above the second so the
        /// premise is frequently exercised, not vacuous).
        #[test]
        fn le_is_transitive(xa in clock_parts(), xb in clock_parts(), xc in clock_parts()) {
            let (a, b) = (clock(&xa), clock(&xb));
            let c = joined(&b, &clock(&xc));
            if a.le(&b) {
                prop_assert!(b.le(&c));
                prop_assert!(a.le(&c));
            }
        }

        /// `concurrent_with` is symmetric and irreflexive, and ticking
        /// one side of equal clocks orders them instead of making them
        /// concurrent.
        #[test]
        fn concurrency_is_symmetric_and_irreflexive(
            xa in clock_parts(),
            xb in clock_parts(),
            tid in 0u64..6,
        ) {
            let (a, b) = (clock(&xa), clock(&xb));
            prop_assert_eq!(a.concurrent_with(&b), b.concurrent_with(&a));
            prop_assert!(!a.concurrent_with(&a));
            let mut ticked = a.clone();
            ticked.tick(t(tid));
            prop_assert!(!a.concurrent_with(&ticked));
            prop_assert!(a.le(&ticked));
        }
    }
}
