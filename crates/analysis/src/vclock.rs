//! Vector clocks over [`ThreadId`]s.
//!
//! A vector clock maps each thread to the number of causally-significant
//! events it has performed; component-wise comparison decides whether two
//! events are ordered by happens-before or concurrent. Clocks are sparse
//! (absent components are 0) and backed by an ordered map so rendering is
//! deterministic.

use locality_core::ThreadId;
use std::collections::BTreeMap;
use std::fmt;

/// A sparse vector clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(BTreeMap<ThreadId, u64>);

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// The component for `t` (0 when absent).
    pub fn get(&self, t: ThreadId) -> u64 {
        self.0.get(&t).copied().unwrap_or(0)
    }

    /// Increments `t`'s own component (the thread performed an event).
    pub fn tick(&mut self, t: ThreadId) {
        *self.0.entry(t).or_insert(0) += 1;
    }

    /// Point-wise maximum with `other` (a happens-before edge from the
    /// clock's owner receiving knowledge of `other`).
    pub fn join(&mut self, other: &VClock) {
        for (&t, &v) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            *e = (*e).max(v);
        }
    }

    /// Component-wise `self ≤ other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().all(|(&t, &v)| v <= other.get(t))
    }

    /// True if the two clocks are ordered in neither direction.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(t(1)), 0);
        c.tick(t(1));
        c.tick(t(1));
        assert_eq!(c.get(t(1)), 2);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(t(1));
        let mut b = VClock::new();
        b.tick(t(2));
        b.tick(t(2));
        a.join(&b);
        assert_eq!(a.get(t(1)), 1);
        assert_eq!(a.get(t(2)), 2);
    }

    #[test]
    fn ordering_and_concurrency() {
        let mut a = VClock::new();
        a.tick(t(1));
        let mut b = a.clone();
        b.tick(t(2));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent_with(&b));

        let mut c = VClock::new();
        c.tick(t(3));
        assert!(b.concurrent_with(&c));
    }

    #[test]
    fn display_is_deterministic() {
        let mut c = VClock::new();
        c.tick(t(2));
        c.tick(t(1));
        assert_eq!(c.to_string(), "{t1:1, t2:1}");
    }
}
