//! Simulated memory-access throughput: the substrate cost per access on
//! the L1-hit, L2-hit, and L2-miss paths, and the footprint ground-truth
//! query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locality_core::ThreadId;
use locality_sim::{AccessKind, Machine, MachineConfig};

fn bench_access_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_access");

    // L1 hit: repeatedly touch one address.
    group.bench_function("l1_hit", |b| {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let a = m.alloc(64, 64);
        m.access(0, a, AccessKind::Read);
        b.iter(|| black_box(m.access(0, a, AccessKind::Read)))
    });

    // L2 hit: alternate two lines that share an L1 set but not an L2 set.
    group.bench_function("l2_hit", |b| {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let a = m.alloc(64 * 1024, 64);
        // 16 KiB apart: same L1-D index (16 KiB direct), different L2 index.
        let (x, y) = (a, a.offset(16 * 1024));
        m.access(0, x, AccessKind::Read);
        m.access(0, y, AccessKind::Read);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            black_box(m.access(0, if flip { x } else { y }, AccessKind::Read))
        })
    });

    // L2 miss: stream over a region far larger than the cache.
    group.bench_function("l2_miss_stream", |b| {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let lines = 8192u64 * 4;
        let a = m.alloc(lines * 64, 64);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % lines;
            black_box(m.access(0, a.offset(i * 64), AccessKind::Read))
        })
    });

    // Coherent write with one remote sharer.
    group.bench_function("coherent_write", |b| {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(64, 64);
        b.iter(|| {
            m.access(0, a, AccessKind::Read);
            black_box(m.access(1, a, AccessKind::Write))
        })
    });

    group.finish();

    // Footprint ground truth over a warm cache.
    c.bench_function("l2_footprint_query", |b| {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let t = ThreadId(1);
        let a = m.alloc(8192 * 64, 64);
        m.register_region(t, a, 8192 * 64);
        for i in 0..8192u64 {
            m.access(0, a.offset(i * 64), AccessKind::Read);
        }
        b.iter(|| black_box(m.l2_footprint_lines(0, t)))
    });
}

criterion_group!(benches, bench_access_paths);
criterion_main!(benches);
