//! The reason the paper derives closed forms: the exact Markov chain is
//! O(n·N) per query while the closed form is O(1).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locality_core::markov::DependentChain;
use locality_core::{FootprintModel, ModelParams};

fn bench_model(c: &mut Criterion) {
    let params = ModelParams::new(1024).unwrap();
    let model = FootprintModel::new(params);
    let chain = DependentChain::new(params, 0.5).unwrap();

    c.bench_function("closed_form_dependent", |b| {
        let mut n = 1u64;
        b.iter(|| {
            n = n % 10_000 + 1;
            black_box(model.expected_dependent(0.5, 100.0, n))
        })
    });

    c.bench_function("markov_chain_n100", |b| {
        b.iter(|| black_box(chain.expected_after(100, 100)))
    });

    c.bench_function("markov_recurrence_n10000", |b| {
        b.iter(|| black_box(chain.expected_after_recurrence(100.0, 10_000)))
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
