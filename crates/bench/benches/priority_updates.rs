//! Table 3 companion: cost of one priority update per thread class.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locality_core::{FootprintEntry, ModelParams, PolicyKind, PrioritySchemes};

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_update");
    for policy in [PolicyKind::Lff, PolicyKind::Crt] {
        let schemes = PrioritySchemes::new(policy, ModelParams::new(8192).unwrap());
        let mut entry = FootprintEntry::cold();
        schemes.on_dispatch(&mut entry, 0);
        schemes.on_block_self(&mut entry, 100, 100);

        group.bench_function(format!("{}/blocking", policy.name()), |b| {
            let mut m = 200u64;
            b.iter(|| {
                let p = schemes.on_block_self(black_box(&mut entry), 13, m);
                m += 13;
                black_box(p)
            })
        });
        group.bench_function(format!("{}/dependent", policy.name()), |b| {
            let mut m = 200u64;
            b.iter(|| {
                let p = schemes.on_dependent(black_box(&mut entry), 0.5, 13, m);
                m += 13;
                black_box(p)
            })
        });
        group.bench_function(format!("{}/independent", policy.name()), |b| {
            b.iter(|| {
                schemes.on_independent();
                black_box(())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
