//! End-to-end scheduler overhead: the same yield-heavy workload under
//! FCFS and the locality policies ("the policy that optimizes cache
//! reload transient induces … about 3% slower than the base FCFS version"
//! — paper §5), plus raw priority-heap operation costs.

use active_threads::heap::PrioHeap;
use active_threads::{Engine, EngineConfig, SchedPolicy};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use locality_core::{ThreadId, ThreadSlots};
use locality_sim::MachineConfig;
use locality_workloads::tasks::{spawn_parallel, TasksParams};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    group.sample_size(10);
    let params = TasksParams { tasks: 64, footprint_lines: 40, periods: 6, overlap: 0.0 };
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Lff, SchedPolicy::Crt] {
        group.bench_function(format!("tasks_small/{:?}", policy).to_lowercase(), |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(
                        MachineConfig::ultra1(),
                        policy,
                        EngineConfig::default(),
                    )
                    .unwrap();
                    spawn_parallel(&mut e, &params);
                    e
                },
                |mut e| black_box(e.run().unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("prio_heap");
    let mut slots = ThreadSlots::new();
    let handles: Vec<_> = (0..1024u64).map(|i| slots.bind(ThreadId(i))).collect();
    group.bench_function("push_pop_1024", |b| {
        b.iter(|| {
            let mut h = PrioHeap::new();
            for i in 0..1024u64 {
                h.push(ThreadId(i), handles[i as usize], ((i * 2654435761) % 10_000) as f64);
            }
            while let Some(x) = h.pop_max() {
                black_box(x);
            }
        })
    });
    group.bench_function("update_key", |b| {
        let mut h = PrioHeap::new();
        for i in 0..1024u64 {
            h.push(ThreadId(i), handles[i as usize], ((i * 2654435761) % 10_000) as f64);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 16807 + 7) % 1024;
            h.update(handles[i as usize], ((i * 31) % 5000) as f64);
            black_box(h.peek_max())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_heap);
criterion_main!(benches);
