//! # locality-bench
//!
//! Criterion benchmarks for the reproduction stack. The benches measure
//! the costs the paper argues must be tiny for locality scheduling to
//! pay off:
//!
//! * `priority_updates` — Table 3's companion: nanoseconds per LFF/CRT
//!   priority update for blocking, dependent, and independent threads;
//! * `cache_sim` — simulated memory-access throughput (hit and miss
//!   paths), which bounds how fast the experiments run;
//! * `scheduler` — end-to-end context-switch overhead of FCFS vs the
//!   locality schedulers on a yield-heavy microbenchmark, plus priority
//!   heap operations;
//! * `model` — closed-form evaluation vs the exact Markov-chain oracle
//!   (why the paper needed closed forms at all).

#![forbid(unsafe_code)]
