use std::error::Error;
use std::fmt;

/// Errors raised when constructing or feeding the shared-state cache model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The cache size in lines must be at least 2 for `k = (N-1)/N` to be a
    /// meaningful decay factor.
    CacheTooSmall {
        /// The rejected number of lines.
        lines: usize,
    },
    /// A sharing coefficient was outside the `[0, 1]` interval.
    InvalidSharingCoefficient {
        /// The rejected coefficient.
        q: f64,
    },
    /// A sharing coefficient was NaN or infinite. Distinct from
    /// [`ModelError::InvalidSharingCoefficient`] so callers (and lints)
    /// can tell a bad-but-real value from a corrupted one.
    NonFiniteSharingCoefficient {
        /// The rejected coefficient.
        q: f64,
    },
    /// A footprint was negative, not finite, or exceeded the cache size.
    InvalidFootprint {
        /// The rejected footprint in lines.
        footprint: f64,
        /// The cache size in lines.
        lines: usize,
    },
    /// A fill fraction passed to
    /// [`FootprintModel::misses_to_fill`](crate::FootprintModel::misses_to_fill)
    /// was NaN. `ceil() as u64` on a NaN quietly produces 0, so the old
    /// code turned a corrupted input into "already full" — reject it
    /// instead.
    NonFiniteFillFraction {
        /// The rejected fraction.
        frac: f64,
    },
    /// A per-set estimator geometry was invalid: zero lines, ways, or
    /// processors, or more ways than lines.
    BadEstimatorGeometry {
        /// Human-readable description of the rejected geometry.
        reason: String,
    },
    /// A self-edge `at_share(t, t, q)` was requested; a thread trivially
    /// shares all of its state with itself and such edges are rejected to
    /// keep the dependency graph meaningful.
    SelfSharing {
        /// The offending thread.
        thread: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CacheTooSmall { lines } => {
                write!(f, "cache of {lines} lines is too small for the model (need >= 2)")
            }
            ModelError::InvalidSharingCoefficient { q } => {
                write!(f, "sharing coefficient {q} is outside [0, 1]")
            }
            ModelError::NonFiniteSharingCoefficient { q } => {
                write!(f, "sharing coefficient {q} is not a finite number")
            }
            ModelError::InvalidFootprint { footprint, lines } => {
                write!(f, "footprint {footprint} is invalid for a cache of {lines} lines")
            }
            ModelError::NonFiniteFillFraction { frac } => {
                write!(f, "fill fraction {frac} is not a number")
            }
            ModelError::BadEstimatorGeometry { reason } => {
                write!(f, "bad estimator geometry: {reason}")
            }
            ModelError::SelfSharing { thread } => {
                write!(f, "thread t{thread} cannot share state with itself")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::CacheTooSmall { lines: 1 };
        assert!(e.to_string().contains("1 lines"));
        let e = ModelError::InvalidSharingCoefficient { q: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = ModelError::NonFiniteSharingCoefficient { q: f64::NAN };
        assert!(e.to_string().contains("not a finite"));
        let e = ModelError::InvalidFootprint { footprint: -3.0, lines: 8192 };
        assert!(e.to_string().contains("-3"));
        let e = ModelError::NonFiniteFillFraction { frac: f64::NAN };
        assert!(e.to_string().contains("not a number"));
        let e = ModelError::SelfSharing { thread: 4 };
        assert!(e.to_string().contains("t4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
