//! The online per-processor footprint estimator.
//!
//! [`LocalityEstimator`] is the piece the runtime talks to: it owns one
//! footprint table per processor, the processor-wide miss counts `m_p(t)`,
//! and a [`PrioritySchemes`] engine. At every context switch the runtime
//! reports the interval's miss count (read from the performance counters)
//! and receives back the `O(out-degree)` set of priority changes to apply
//! to its run queues — the complete realization of the paper's "no work
//! for independent threads" property.

use crate::graph::SharingGraph;
use crate::priority::{FootprintEntry, PolicyKind, PrioritySchemes, PriorityUpdate};
use crate::tables::PrecomputedTables;
use crate::{CpuId, ModelParams, ThreadId};
use std::collections::HashMap;

/// The seam between the schedulers and a footprint model.
///
/// LFF/CRT only ever need four operations from whatever model predicts
/// per-thread cache footprints: note a dispatch, consume an interval's
/// miss count, read back an estimate/priority, and forget exited
/// threads. [`LocalityEstimator`] (the paper's direct-mapped Markov
/// closed forms with `O(out-degree)` log-space updates) is the default
/// implementation; [`PerSetEstimator`](crate::perset::PerSetEstimator)
/// generalizes the birth–death chain to set-associative LRU geometries,
/// and a reuse-distance competitor would plug in the same way.
pub trait FootprintEstimator {
    /// Records that `tid` was dispatched on `cpu` (its interval begins).
    fn on_switch(&mut self, cpu: CpuId, tid: ThreadId);

    /// Records the end of `tid`'s interval on `cpu` with `n` misses and
    /// returns the priority updates to apply to run queues — the blocking
    /// thread first, its `graph` dependents after.
    fn on_miss(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        n: u64,
        graph: &SharingGraph,
    ) -> Vec<PriorityUpdate>;

    /// Current expected footprint of `tid` in `cpu`'s cache, in lines
    /// (0 if the thread has no state there).
    fn estimate(&self, cpu: CpuId, tid: ThreadId) -> f64;

    /// Current scheduling priority of `tid` on `cpu`. Must order threads
    /// identically to [`estimate`](Self::estimate) on any one processor.
    fn priority(&self, cpu: CpuId, tid: ThreadId) -> f64;

    /// Forgets `tid` on every processor (thread exit).
    fn retire(&mut self, tid: ThreadId);

    /// `(flops, table lookups)` spent on priority maintenance so far, if
    /// the implementation counts them (Table 3); `(0, 0)` otherwise.
    fn flop_counts(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Configuration of a [`LocalityEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Which policy's priorities to maintain.
    pub policy: PolicyKind,
    /// The cache model parameters (one secondary cache per processor).
    pub params: ModelParams,
    /// Number of processors.
    pub cpus: usize,
    /// Optional override of the `kⁿ` table length.
    pub kpow_entries: Option<usize>,
}

impl EstimatorConfig {
    /// Convenience constructor with the default table sizes.
    pub fn new(policy: PolicyKind, params: ModelParams, cpus: usize) -> Self {
        EstimatorConfig { policy, params, cpus, kpow_entries: None }
    }
}

#[derive(Debug, Default)]
struct CpuState {
    /// Total secondary-cache misses on this processor since program start.
    m: u64,
    /// Footprint entries for threads with (expected) state in this cache.
    entries: HashMap<ThreadId, FootprintEntry>,
    /// Eagerly-recomputed footprints (naive `O(threads)` per switch),
    /// maintained purely to cross-check the incremental path.
    #[cfg(feature = "invariant-checks")]
    shadow: HashMap<ThreadId, f64>,
}

/// Online estimator of every thread's expected footprint in every
/// processor's cache, with incremental priority maintenance.
///
/// ```
/// use locality_core::{
///     CpuId, EstimatorConfig, LocalityEstimator, ModelParams, PolicyKind, SharingGraph, ThreadId,
/// };
/// let params = ModelParams::new(8192)?;
/// let mut est = LocalityEstimator::new(EstimatorConfig::new(PolicyKind::Lff, params, 2));
/// let graph = SharingGraph::new();
/// let (cpu, t) = (CpuId(0), ThreadId(1));
///
/// est.on_dispatch(cpu, t);
/// let updates = est.on_interval_end(cpu, t, 4000, &graph);
/// assert_eq!(updates.len(), 1); // only the blocking thread itself
/// assert!(est.expected_footprint(cpu, t) > 3000.0);
/// assert_eq!(est.expected_footprint(CpuId(1), t), 0.0); // never ran there
/// # Ok::<(), locality_core::ModelError>(())
/// ```
#[derive(Debug)]
pub struct LocalityEstimator {
    schemes: PrioritySchemes,
    cpus: Vec<CpuState>,
    #[cfg(feature = "invariant-checks")]
    checks: u64,
}

impl LocalityEstimator {
    /// Creates an estimator for `config.cpus` processors.
    pub fn new(config: EstimatorConfig) -> Self {
        let tables = match config.kpow_entries {
            Some(entries) => PrecomputedTables::with_kpow_entries(config.params, entries),
            None => PrecomputedTables::new(config.params),
        };
        let schemes = PrioritySchemes::with_tables(config.policy, tables);
        let cpus = (0..config.cpus).map(|_| CpuState::default()).collect();
        LocalityEstimator {
            schemes,
            cpus,
            #[cfg(feature = "invariant-checks")]
            checks: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> PolicyKind {
        self.schemes.policy()
    }

    /// The model parameters in use.
    pub fn params(&self) -> ModelParams {
        self.schemes.params()
    }

    /// The priority-update engine (exposes the flop counter for Table 3).
    pub fn schemes(&self) -> &PrioritySchemes {
        &self.schemes
    }

    /// Number of processors.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Total secondary-cache misses recorded for `cpu` so far (`m_p(t)`).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn misses(&self, cpu: CpuId) -> u64 {
        self.cpus[cpu.0].m
    }

    /// Records that `tid` was dispatched on `cpu`: snapshots its footprint
    /// at the interval start (`S` of the case-1 formula).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn on_dispatch(&mut self, cpu: CpuId, tid: ThreadId) {
        let state = &mut self.cpus[cpu.0];
        let m_now = state.m;
        let entry = state.entries.entry(tid).or_insert_with(FootprintEntry::cold);
        self.schemes.on_dispatch(entry, m_now);
        #[cfg(feature = "invariant-checks")]
        state.shadow.entry(tid).or_insert(0.0);
    }

    /// Records the end of `tid`'s scheduling interval on `cpu` with `n`
    /// misses (from the performance counters), applying:
    ///
    /// * case 1 to `tid` itself,
    /// * case 3 to every dependent of `tid` in `graph`,
    /// * case 2 (nothing!) to everyone else.
    ///
    /// Returns the priority updates to apply to run queues, the blocking
    /// thread first, dependents after in thread-id order.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn on_interval_end(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        n: u64,
        graph: &SharingGraph,
    ) -> Vec<PriorityUpdate> {
        // Differential check, step 1: the naive O(threads) recompute. Every
        // tracked thread gets the exact case-1/2/3 formula applied eagerly;
        // the incremental path below touches only the blocker and its
        // dependents. `verify_invariants` compares the two afterwards.
        #[cfg(feature = "invariant-checks")]
        {
            let nn = self.schemes.params().n();
            let kn = self.schemes.tables().k_pow(n);
            let state = &mut self.cpus[cpu.0];
            state.shadow.entry(tid).or_insert(0.0);
            let deps: Vec<ThreadId> = graph.dependents_of(tid).map(|(t, _)| t).collect();
            for dep in deps {
                state.shadow.entry(dep).or_insert(0.0);
            }
            for (&x, f) in state.shadow.iter_mut() {
                if x == tid {
                    // Case 1: the blocker grows toward N.
                    *f = nn - (nn - *f) * kn;
                } else {
                    let q = graph.weight(tid, x);
                    if q > 0.0 {
                        // Case 3: dependents grow toward q·N.
                        let target = q * nn;
                        *f = target - (target - *f) * kn;
                    } else {
                        // Case 2: independent threads decay by kⁿ.
                        *f *= kn;
                    }
                }
            }
        }

        let state = &mut self.cpus[cpu.0];
        let m_t0 = state.m;
        let m_new = m_t0 + n;
        let mut updates = Vec::with_capacity(1 + graph.out_degree(tid));

        let entry = state.entries.entry(tid).or_insert_with(FootprintEntry::cold);
        let prio = self.schemes.on_block_self(entry, n, m_new);
        updates.push(PriorityUpdate { thread: tid, prio });

        for (dep, q) in graph.dependents_of(tid) {
            let entry = state.entries.entry(dep).or_insert_with(FootprintEntry::cold);
            let prio = self.schemes.on_dependent(entry, q, n, m_t0);
            updates.push(PriorityUpdate { thread: dep, prio });
        }
        self.schemes.on_independent(); // case 2: all other threads, zero work

        state.m = m_new;
        #[cfg(feature = "invariant-checks")]
        self.verify_invariants(cpu, tid);
        locality_trace::emit_with(|| locality_trace::TraceEvent::PriorityUpdates {
            tid: tid.0,
            fanout: updates.len() as u32,
        });
        updates
    }

    /// Differential check, step 2: after the incremental updates, every
    /// tracked entry's lazily-decayed footprint must match the naive eager
    /// recompute, stay within `[0, N]`, and its stored log-space priority
    /// must be reconstructible from the current footprint (the paper's
    /// invariance-under-independent-decay property, §4.1).
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic message on any divergence — the point of
    /// the feature is to fail loudly in CI.
    #[cfg(feature = "invariant-checks")]
    fn verify_invariants(&mut self, cpu: CpuId, blocker: ThreadId) {
        use crate::priority::PolicyKind;
        let state = &self.cpus[cpu.0];
        let nn = self.schemes.params().n();
        let m_now = state.m;
        let tables = self.schemes.tables();
        for (&x, entry) in &state.entries {
            let lazy = self.schemes.expected_footprint(entry, m_now);
            let naive = *state.shadow.get(&x).unwrap_or_else(|| {
                panic!("invariant-checks: {x} tracked on cpu{} but absent from shadow", cpu.0)
            });
            // The lazy path composes decays in one k^(Δm) jump (clamped to
            // 0 past the table) while the shadow multiplies per-interval
            // factors; allow only floating-point noise between them.
            let tol = 1e-7 * nn + 1e-9 * lazy.abs().max(naive.abs());
            assert!(
                (lazy - naive).abs() <= tol,
                "invariant-checks: cpu{} {x} after {blocker} blocked at m={m_now}: \
                 incremental footprint {lazy} != naive recompute {naive} (tol {tol})",
                cpu.0
            );
            assert!(
                (-1e-9..=nn * (1.0 + 1e-9)).contains(&lazy),
                "invariant-checks: cpu{} {x}: E[F] = {lazy} outside [0, N={nn}]",
                cpu.0
            );
            // Log-space priority consistency: reconstruct the priority from
            // the *current* footprint; it must equal the stored (possibly
            // never-updated) priority up to the whole-line rounding of the
            // log table (~1/F per lookup). Entries decayed below two lines
            // hit the log-table clamp and are excluded.
            if lazy >= 2.0 {
                let reconstructed = match self.schemes.policy() {
                    PolicyKind::Lff => tables.log_footprint(lazy) - m_now as f64 * tables.log_k(),
                    PolicyKind::Crt => {
                        tables.log_footprint(lazy)
                            - tables.log_footprint(entry.e_f_last_run)
                            - m_now as f64 * tables.log_k()
                    }
                };
                let tol = 2.5 / lazy + 1e-6;
                assert!(
                    (entry.prio - reconstructed).abs() <= tol,
                    "invariant-checks: cpu{} {x}: stored priority {} inconsistent with \
                     footprint {lazy} at m={m_now} (reconstructed {reconstructed}, tol {tol})",
                    cpu.0,
                    entry.prio
                );
            }
        }
        self.checks += 1;
    }

    /// Number of context switches the differential invariant checker has
    /// verified so far.
    #[cfg(feature = "invariant-checks")]
    pub fn invariant_checks(&self) -> u64 {
        self.checks
    }

    /// Current priority of `tid` on `cpu` (the cold priority if the thread
    /// has no state there).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn priority(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        let state = &self.cpus[cpu.0];
        match state.entries.get(&tid) {
            Some(e) => e.prio,
            None => self.schemes.cold_priority(state.m),
        }
    }

    /// Current expected footprint of `tid` in `cpu`'s cache, in lines.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn expected_footprint(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        let state = &self.cpus[cpu.0];
        match state.entries.get(&tid) {
            Some(e) => self.schemes.expected_footprint(e, state.m),
            None => 0.0,
        }
    }

    /// Drops `tid`'s entry on `cpu` (e.g. after threshold eviction from
    /// that processor's heap).
    pub fn remove_on_cpu(&mut self, cpu: CpuId, tid: ThreadId) {
        self.cpus[cpu.0].entries.remove(&tid);
        #[cfg(feature = "invariant-checks")]
        self.cpus[cpu.0].shadow.remove(&tid);
    }

    /// Drops `tid` everywhere (thread exit).
    pub fn remove_thread(&mut self, tid: ThreadId) {
        for cpu in &mut self.cpus {
            cpu.entries.remove(&tid);
            #[cfg(feature = "invariant-checks")]
            cpu.shadow.remove(&tid);
        }
    }

    /// Number of tracked entries on `cpu` (for bounding heap sizes).
    pub fn tracked_on(&self, cpu: CpuId) -> usize {
        self.cpus[cpu.0].entries.len()
    }

    /// The processor (if any) where `tid`'s expected footprint is largest,
    /// with that footprint. Useful for wake-up placement hints.
    pub fn best_cpu(&self, tid: ThreadId) -> Option<(CpuId, f64)> {
        let mut best: Option<(CpuId, f64)> = None;
        for (i, state) in self.cpus.iter().enumerate() {
            if let Some(e) = state.entries.get(&tid) {
                let f = self.schemes.expected_footprint(e, state.m);
                if best.is_none_or(|(_, bf)| f > bf) {
                    best = Some((CpuId(i), f));
                }
            }
        }
        best
    }
}

impl FootprintEstimator for LocalityEstimator {
    fn on_switch(&mut self, cpu: CpuId, tid: ThreadId) {
        self.on_dispatch(cpu, tid);
    }

    fn on_miss(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        n: u64,
        graph: &SharingGraph,
    ) -> Vec<PriorityUpdate> {
        self.on_interval_end(cpu, tid, n, graph)
    }

    fn estimate(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        self.expected_footprint(cpu, tid)
    }

    fn priority(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        LocalityEstimator::priority(self, cpu, tid)
    }

    fn retire(&mut self, tid: ThreadId) {
        self.remove_thread(tid);
    }

    fn flop_counts(&self) -> (u64, u64) {
        let c = self.schemes.flop_counter();
        (c.flops(), c.lookups())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator(policy: PolicyKind, cpus: usize) -> LocalityEstimator {
        let params = ModelParams::new(1024).unwrap();
        LocalityEstimator::new(EstimatorConfig {
            policy,
            params,
            cpus,
            kpow_entries: Some(1 << 16),
        })
    }

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn run_and_block_builds_footprint() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        let ups = est.on_interval_end(CpuId(0), t(1), 500, &g);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].thread, t(1));
        let f = est.expected_footprint(CpuId(0), t(1));
        let expect = 1024.0 * (1.0 - est.params().k_pow(500));
        assert!((f - expect).abs() < 1e-9);
        assert_eq!(est.misses(CpuId(0)), 500);
    }

    #[test]
    fn independent_threads_untouched() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        // t1 builds state and blocks.
        est.on_dispatch(CpuId(0), t(1));
        est.on_interval_end(CpuId(0), t(1), 500, &g);
        let p1 = est.priority(CpuId(0), t(1));
        // t2 runs; t1 is independent: its stored priority must not move.
        est.on_dispatch(CpuId(0), t(2));
        let ups = est.on_interval_end(CpuId(0), t(2), 300, &g);
        assert_eq!(ups.len(), 1, "only the blocker updates");
        assert_eq!(est.priority(CpuId(0), t(1)), p1);
        // ...but its *footprint* decayed.
        let f1 = est.expected_footprint(CpuId(0), t(1));
        let expect = 1024.0 * (1.0 - est.params().k_pow(500)) * est.params().k_pow(300);
        assert!((f1 - expect).abs() < 1e-9);
    }

    #[test]
    fn dependents_updated_and_reported() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        g.set(t(1), t(3), 0.25).unwrap();
        est.on_dispatch(CpuId(0), t(1));
        let ups = est.on_interval_end(CpuId(0), t(1), 1000, &g);
        assert_eq!(ups.len(), 3);
        assert_eq!(ups[0].thread, t(1));
        assert_eq!(ups[1].thread, t(2));
        assert_eq!(ups[2].thread, t(3));
        let f2 = est.expected_footprint(CpuId(0), t(2));
        let f3 = est.expected_footprint(CpuId(0), t(3));
        let e2 = 512.0 * (1.0 - est.params().k_pow(1000));
        let e3 = 256.0 * (1.0 - est.params().k_pow(1000));
        assert!((f2 - e2).abs() < 1e-9);
        assert!((f3 - e3).abs() < 1e-9);
        assert!(f2 > f3);
    }

    #[test]
    fn per_cpu_isolation() {
        let mut est = estimator(PolicyKind::Lff, 2);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        est.on_interval_end(CpuId(0), t(1), 400, &g);
        assert!(est.expected_footprint(CpuId(0), t(1)) > 0.0);
        assert_eq!(est.expected_footprint(CpuId(1), t(1)), 0.0);
        assert_eq!(est.misses(CpuId(1)), 0);
    }

    #[test]
    fn best_cpu_finds_largest_footprint() {
        let mut est = estimator(PolicyKind::Lff, 3);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        est.on_interval_end(CpuId(0), t(1), 100, &g);
        est.on_dispatch(CpuId(2), t(1));
        est.on_interval_end(CpuId(2), t(1), 700, &g);
        let (cpu, f) = est.best_cpu(t(1)).unwrap();
        assert_eq!(cpu, CpuId(2));
        assert!(f > est.expected_footprint(CpuId(0), t(1)));
        assert!(est.best_cpu(t(9)).is_none());
    }

    #[test]
    fn remove_thread_clears_everywhere() {
        let mut est = estimator(PolicyKind::Crt, 2);
        let g = SharingGraph::new();
        for cpu in 0..2 {
            est.on_dispatch(CpuId(cpu), t(1));
            est.on_interval_end(CpuId(cpu), t(1), 100, &g);
        }
        est.remove_thread(t(1));
        assert_eq!(est.expected_footprint(CpuId(0), t(1)), 0.0);
        assert_eq!(est.expected_footprint(CpuId(1), t(1)), 0.0);
        assert_eq!(est.tracked_on(CpuId(0)), 0);
    }

    #[test]
    fn remove_on_cpu_is_local() {
        let mut est = estimator(PolicyKind::Lff, 2);
        let g = SharingGraph::new();
        for cpu in 0..2 {
            est.on_dispatch(CpuId(cpu), t(1));
            est.on_interval_end(CpuId(cpu), t(1), 100, &g);
        }
        est.remove_on_cpu(CpuId(0), t(1));
        assert_eq!(est.expected_footprint(CpuId(0), t(1)), 0.0);
        assert!(est.expected_footprint(CpuId(1), t(1)) > 0.0);
    }

    #[test]
    fn lff_scheduler_would_pick_largest_footprint() {
        // End-to-end ordering check at the estimator level: three threads
        // run in turn; at the end, priorities order by current footprint.
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        let intervals = [(t(1), 2000u64), (t(2), 100), (t(3), 800)];
        for (tid, n) in intervals {
            est.on_dispatch(CpuId(0), tid);
            est.on_interval_end(CpuId(0), tid, n, &g);
        }
        let mut by_prio: Vec<_> = (1..=3).map(|i| (est.priority(CpuId(0), t(i)), t(i))).collect();
        by_prio.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mut by_foot: Vec<_> =
            (1..=3).map(|i| (est.expected_footprint(CpuId(0), t(i)), t(i))).collect();
        by_foot.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let prio_order: Vec<_> = by_prio.iter().map(|x| x.1).collect();
        let foot_order: Vec<_> = by_foot.iter().map(|x| x.1).collect();
        assert_eq!(prio_order, foot_order);
    }

    #[cfg(feature = "invariant-checks")]
    #[test]
    fn differential_checker_runs_and_passes() {
        // Mixed blockers, dependents, cpus, and interval sizes: the naive
        // O(threads) recompute must agree with the incremental updates at
        // every single interval end, for both policies.
        for policy in [PolicyKind::Lff, PolicyKind::Crt] {
            let params = ModelParams::new(1024).unwrap();
            let mut est = LocalityEstimator::new(EstimatorConfig::new(policy, params, 2));
            let mut g = SharingGraph::new();
            g.set(t(1), t(2), 0.5).unwrap();
            g.set(t(2), t(3), 0.25).unwrap();
            let pattern = [(1u64, 400u64), (2, 150), (3, 900), (1, 10), (2, 0), (3, 2000)];
            for round in 0..50usize {
                for &(tid, n) in &pattern {
                    let cpu = CpuId((round + tid as usize) % 2);
                    est.on_dispatch(cpu, t(tid));
                    est.on_interval_end(cpu, t(tid), n, &g);
                }
            }
            assert!(est.invariant_checks() >= 300, "checker must run at every interval end");
        }
    }

    #[test]
    fn trait_surface_delegates_to_inherent_methods() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        FootprintEstimator::on_switch(&mut est, CpuId(0), t(1));
        let ups = FootprintEstimator::on_miss(&mut est, CpuId(0), t(1), 500, &g);
        assert_eq!(ups.len(), 1);
        assert_eq!(est.estimate(CpuId(0), t(1)), est.expected_footprint(CpuId(0), t(1)));
        assert_eq!(
            FootprintEstimator::priority(&est, CpuId(0), t(1)),
            LocalityEstimator::priority(&est, CpuId(0), t(1))
        );
        let (flops, lookups) = est.flop_counts();
        assert!(flops > 0 && lookups > 0, "the Markov impl counts its work");
        FootprintEstimator::retire(&mut est, t(1));
        assert_eq!(est.estimate(CpuId(0), t(1)), 0.0);
    }

    #[test]
    fn zero_miss_interval_is_harmless() {
        let mut est = estimator(PolicyKind::Crt, 1);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        let ups = est.on_interval_end(CpuId(0), t(1), 0, &g);
        assert_eq!(ups.len(), 1);
        assert_eq!(est.misses(CpuId(0)), 0);
        assert_eq!(est.expected_footprint(CpuId(0), t(1)), 0.0);
    }
}
