//! The online per-processor footprint estimator.
//!
//! [`LocalityEstimator`] is the piece the runtime talks to: it owns one
//! footprint table per processor, the processor-wide miss counts `m_p(t)`,
//! and a [`PrioritySchemes`] engine. At every context switch the runtime
//! reports the interval's miss count (read from the performance counters)
//! and receives back the `O(out-degree)` set of priority changes to apply
//! to its run queues — the complete realization of the paper's "no work
//! for independent threads" property.

use crate::graph::SharingGraph;
use crate::priority::{FootprintEntry, PolicyKind, PrioritySchemes, PriorityUpdate};
use crate::tables::PrecomputedTables;
use crate::{CpuId, ModelParams, ThreadId};
use std::collections::HashMap;

/// Configuration of a [`LocalityEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Which policy's priorities to maintain.
    pub policy: PolicyKind,
    /// The cache model parameters (one secondary cache per processor).
    pub params: ModelParams,
    /// Number of processors.
    pub cpus: usize,
    /// Optional override of the `kⁿ` table length.
    pub kpow_entries: Option<usize>,
}

impl EstimatorConfig {
    /// Convenience constructor with the default table sizes.
    pub fn new(policy: PolicyKind, params: ModelParams, cpus: usize) -> Self {
        EstimatorConfig { policy, params, cpus, kpow_entries: None }
    }
}

#[derive(Debug, Default)]
struct CpuState {
    /// Total secondary-cache misses on this processor since program start.
    m: u64,
    /// Footprint entries for threads with (expected) state in this cache.
    entries: HashMap<ThreadId, FootprintEntry>,
}

/// Online estimator of every thread's expected footprint in every
/// processor's cache, with incremental priority maintenance.
///
/// ```
/// use locality_core::{
///     CpuId, EstimatorConfig, LocalityEstimator, ModelParams, PolicyKind, SharingGraph, ThreadId,
/// };
/// let params = ModelParams::new(8192)?;
/// let mut est = LocalityEstimator::new(EstimatorConfig::new(PolicyKind::Lff, params, 2));
/// let graph = SharingGraph::new();
/// let (cpu, t) = (CpuId(0), ThreadId(1));
///
/// est.on_dispatch(cpu, t);
/// let updates = est.on_interval_end(cpu, t, 4000, &graph);
/// assert_eq!(updates.len(), 1); // only the blocking thread itself
/// assert!(est.expected_footprint(cpu, t) > 3000.0);
/// assert_eq!(est.expected_footprint(CpuId(1), t), 0.0); // never ran there
/// # Ok::<(), locality_core::ModelError>(())
/// ```
#[derive(Debug)]
pub struct LocalityEstimator {
    schemes: PrioritySchemes,
    cpus: Vec<CpuState>,
}

impl LocalityEstimator {
    /// Creates an estimator for `config.cpus` processors.
    pub fn new(config: EstimatorConfig) -> Self {
        let tables = match config.kpow_entries {
            Some(entries) => PrecomputedTables::with_kpow_entries(config.params, entries),
            None => PrecomputedTables::new(config.params),
        };
        let schemes = PrioritySchemes::with_tables(config.policy, tables);
        let cpus = (0..config.cpus).map(|_| CpuState::default()).collect();
        LocalityEstimator { schemes, cpus }
    }

    /// The policy in use.
    pub fn policy(&self) -> PolicyKind {
        self.schemes.policy()
    }

    /// The model parameters in use.
    pub fn params(&self) -> ModelParams {
        self.schemes.params()
    }

    /// The priority-update engine (exposes the flop counter for Table 3).
    pub fn schemes(&self) -> &PrioritySchemes {
        &self.schemes
    }

    /// Number of processors.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Total secondary-cache misses recorded for `cpu` so far (`m_p(t)`).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn misses(&self, cpu: CpuId) -> u64 {
        self.cpus[cpu.0].m
    }

    /// Records that `tid` was dispatched on `cpu`: snapshots its footprint
    /// at the interval start (`S` of the case-1 formula).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn on_dispatch(&mut self, cpu: CpuId, tid: ThreadId) {
        let state = &mut self.cpus[cpu.0];
        let m_now = state.m;
        let entry = state.entries.entry(tid).or_insert_with(FootprintEntry::cold);
        self.schemes.on_dispatch(entry, m_now);
    }

    /// Records the end of `tid`'s scheduling interval on `cpu` with `n`
    /// misses (from the performance counters), applying:
    ///
    /// * case 1 to `tid` itself,
    /// * case 3 to every dependent of `tid` in `graph`,
    /// * case 2 (nothing!) to everyone else.
    ///
    /// Returns the priority updates to apply to run queues, the blocking
    /// thread first, dependents after in thread-id order.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn on_interval_end(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        n: u64,
        graph: &SharingGraph,
    ) -> Vec<PriorityUpdate> {
        let state = &mut self.cpus[cpu.0];
        let m_t0 = state.m;
        let m_new = m_t0 + n;
        let mut updates = Vec::with_capacity(1 + graph.out_degree(tid));

        let entry = state.entries.entry(tid).or_insert_with(FootprintEntry::cold);
        let prio = self.schemes.on_block_self(entry, n, m_new);
        updates.push(PriorityUpdate { thread: tid, prio });

        for (dep, q) in graph.dependents_of(tid) {
            let entry = state.entries.entry(dep).or_insert_with(FootprintEntry::cold);
            let prio = self.schemes.on_dependent(entry, q, n, m_t0);
            updates.push(PriorityUpdate { thread: dep, prio });
        }
        self.schemes.on_independent(); // case 2: all other threads, zero work

        state.m = m_new;
        updates
    }

    /// Current priority of `tid` on `cpu` (the cold priority if the thread
    /// has no state there).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn priority(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        let state = &self.cpus[cpu.0];
        match state.entries.get(&tid) {
            Some(e) => e.prio,
            None => self.schemes.cold_priority(state.m),
        }
    }

    /// Current expected footprint of `tid` in `cpu`'s cache, in lines.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn expected_footprint(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        let state = &self.cpus[cpu.0];
        match state.entries.get(&tid) {
            Some(e) => self.schemes.expected_footprint(e, state.m),
            None => 0.0,
        }
    }

    /// Drops `tid`'s entry on `cpu` (e.g. after threshold eviction from
    /// that processor's heap).
    pub fn remove_on_cpu(&mut self, cpu: CpuId, tid: ThreadId) {
        self.cpus[cpu.0].entries.remove(&tid);
    }

    /// Drops `tid` everywhere (thread exit).
    pub fn remove_thread(&mut self, tid: ThreadId) {
        for cpu in &mut self.cpus {
            cpu.entries.remove(&tid);
        }
    }

    /// Number of tracked entries on `cpu` (for bounding heap sizes).
    pub fn tracked_on(&self, cpu: CpuId) -> usize {
        self.cpus[cpu.0].entries.len()
    }

    /// The processor (if any) where `tid`'s expected footprint is largest,
    /// with that footprint. Useful for wake-up placement hints.
    pub fn best_cpu(&self, tid: ThreadId) -> Option<(CpuId, f64)> {
        let mut best: Option<(CpuId, f64)> = None;
        for (i, state) in self.cpus.iter().enumerate() {
            if let Some(e) = state.entries.get(&tid) {
                let f = self.schemes.expected_footprint(e, state.m);
                if best.is_none_or(|(_, bf)| f > bf) {
                    best = Some((CpuId(i), f));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator(policy: PolicyKind, cpus: usize) -> LocalityEstimator {
        let params = ModelParams::new(1024).unwrap();
        LocalityEstimator::new(EstimatorConfig {
            policy,
            params,
            cpus,
            kpow_entries: Some(1 << 16),
        })
    }

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn run_and_block_builds_footprint() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        let ups = est.on_interval_end(CpuId(0), t(1), 500, &g);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].thread, t(1));
        let f = est.expected_footprint(CpuId(0), t(1));
        let expect = 1024.0 * (1.0 - est.params().k_pow(500));
        assert!((f - expect).abs() < 1e-9);
        assert_eq!(est.misses(CpuId(0)), 500);
    }

    #[test]
    fn independent_threads_untouched() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        // t1 builds state and blocks.
        est.on_dispatch(CpuId(0), t(1));
        est.on_interval_end(CpuId(0), t(1), 500, &g);
        let p1 = est.priority(CpuId(0), t(1));
        // t2 runs; t1 is independent: its stored priority must not move.
        est.on_dispatch(CpuId(0), t(2));
        let ups = est.on_interval_end(CpuId(0), t(2), 300, &g);
        assert_eq!(ups.len(), 1, "only the blocker updates");
        assert_eq!(est.priority(CpuId(0), t(1)), p1);
        // ...but its *footprint* decayed.
        let f1 = est.expected_footprint(CpuId(0), t(1));
        let expect = 1024.0 * (1.0 - est.params().k_pow(500)) * est.params().k_pow(300);
        assert!((f1 - expect).abs() < 1e-9);
    }

    #[test]
    fn dependents_updated_and_reported() {
        let mut est = estimator(PolicyKind::Lff, 1);
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        g.set(t(1), t(3), 0.25).unwrap();
        est.on_dispatch(CpuId(0), t(1));
        let ups = est.on_interval_end(CpuId(0), t(1), 1000, &g);
        assert_eq!(ups.len(), 3);
        assert_eq!(ups[0].thread, t(1));
        assert_eq!(ups[1].thread, t(2));
        assert_eq!(ups[2].thread, t(3));
        let f2 = est.expected_footprint(CpuId(0), t(2));
        let f3 = est.expected_footprint(CpuId(0), t(3));
        let e2 = 512.0 * (1.0 - est.params().k_pow(1000));
        let e3 = 256.0 * (1.0 - est.params().k_pow(1000));
        assert!((f2 - e2).abs() < 1e-9);
        assert!((f3 - e3).abs() < 1e-9);
        assert!(f2 > f3);
    }

    #[test]
    fn per_cpu_isolation() {
        let mut est = estimator(PolicyKind::Lff, 2);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        est.on_interval_end(CpuId(0), t(1), 400, &g);
        assert!(est.expected_footprint(CpuId(0), t(1)) > 0.0);
        assert_eq!(est.expected_footprint(CpuId(1), t(1)), 0.0);
        assert_eq!(est.misses(CpuId(1)), 0);
    }

    #[test]
    fn best_cpu_finds_largest_footprint() {
        let mut est = estimator(PolicyKind::Lff, 3);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        est.on_interval_end(CpuId(0), t(1), 100, &g);
        est.on_dispatch(CpuId(2), t(1));
        est.on_interval_end(CpuId(2), t(1), 700, &g);
        let (cpu, f) = est.best_cpu(t(1)).unwrap();
        assert_eq!(cpu, CpuId(2));
        assert!(f > est.expected_footprint(CpuId(0), t(1)));
        assert!(est.best_cpu(t(9)).is_none());
    }

    #[test]
    fn remove_thread_clears_everywhere() {
        let mut est = estimator(PolicyKind::Crt, 2);
        let g = SharingGraph::new();
        for cpu in 0..2 {
            est.on_dispatch(CpuId(cpu), t(1));
            est.on_interval_end(CpuId(cpu), t(1), 100, &g);
        }
        est.remove_thread(t(1));
        assert_eq!(est.expected_footprint(CpuId(0), t(1)), 0.0);
        assert_eq!(est.expected_footprint(CpuId(1), t(1)), 0.0);
        assert_eq!(est.tracked_on(CpuId(0)), 0);
    }

    #[test]
    fn remove_on_cpu_is_local() {
        let mut est = estimator(PolicyKind::Lff, 2);
        let g = SharingGraph::new();
        for cpu in 0..2 {
            est.on_dispatch(CpuId(cpu), t(1));
            est.on_interval_end(CpuId(cpu), t(1), 100, &g);
        }
        est.remove_on_cpu(CpuId(0), t(1));
        assert_eq!(est.expected_footprint(CpuId(0), t(1)), 0.0);
        assert!(est.expected_footprint(CpuId(1), t(1)) > 0.0);
    }

    #[test]
    fn lff_scheduler_would_pick_largest_footprint() {
        // End-to-end ordering check at the estimator level: three threads
        // run in turn; at the end, priorities order by current footprint.
        let mut est = estimator(PolicyKind::Lff, 1);
        let g = SharingGraph::new();
        let intervals = [(t(1), 2000u64), (t(2), 100), (t(3), 800)];
        for (tid, n) in intervals {
            est.on_dispatch(CpuId(0), tid);
            est.on_interval_end(CpuId(0), tid, n, &g);
        }
        let mut by_prio: Vec<_> = (1..=3).map(|i| (est.priority(CpuId(0), t(i)), t(i))).collect();
        by_prio.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mut by_foot: Vec<_> =
            (1..=3).map(|i| (est.expected_footprint(CpuId(0), t(i)), t(i))).collect();
        by_foot.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let prio_order: Vec<_> = by_prio.iter().map(|x| x.1).collect();
        let foot_order: Vec<_> = by_foot.iter().map(|x| x.1).collect();
        assert_eq!(prio_order, foot_order);
    }

    #[test]
    fn zero_miss_interval_is_harmless() {
        let mut est = estimator(PolicyKind::Crt, 1);
        let g = SharingGraph::new();
        est.on_dispatch(CpuId(0), t(1));
        let ups = est.on_interval_end(CpuId(0), t(1), 0, &g);
        assert_eq!(ups.len(), 1);
        assert_eq!(est.misses(CpuId(0)), 0);
        assert_eq!(est.expected_footprint(CpuId(0), t(1)), 0.0);
    }
}
