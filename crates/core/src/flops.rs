//! Floating-point operation accounting for priority updates.
//!
//! Table 3 of the paper reports the cost of priority updates *in floating
//! point instructions per thread* for each policy and thread class. To
//! regenerate that table faithfully, the priority schemes count every
//! floating-point arithmetic operation and every table lookup they perform.
//! Counting is a couple of integer increments — cheap enough to leave on
//! unconditionally.

use std::cell::Cell;

/// A cheap interior-mutability counter of floating-point operations and
/// table lookups.
///
/// ```
/// use locality_core::flops::FlopCounter;
/// let c = FlopCounter::new();
/// c.add_flops(3);
/// c.add_lookups(1);
/// assert_eq!(c.flops(), 3);
/// assert_eq!(c.take().0, 3); // take resets
/// assert_eq!(c.flops(), 0);
/// ```
#[derive(Debug, Default)]
pub struct FlopCounter {
    flops: Cell<u64>,
    lookups: Cell<u64>,
}

impl FlopCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        FlopCounter::default()
    }

    /// Records `n` floating-point arithmetic operations.
    pub fn add_flops(&self, n: u64) {
        self.flops.set(self.flops.get() + n);
    }

    /// Records `n` precomputed-table lookups.
    pub fn add_lookups(&self, n: u64) {
        self.lookups.set(self.lookups.get() + n);
    }

    /// Floating-point operations recorded so far.
    pub fn flops(&self) -> u64 {
        self.flops.get()
    }

    /// Table lookups recorded so far.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Returns `(flops, lookups)` and resets both to zero.
    pub fn take(&self) -> (u64, u64) {
        let out = (self.flops.get(), self.lookups.get());
        self.flops.set(0);
        self.lookups.set(0);
        out
    }
}

impl Clone for FlopCounter {
    fn clone(&self) -> Self {
        let c = FlopCounter::new();
        c.add_flops(self.flops());
        c.add_lookups(self.lookups());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let c = FlopCounter::new();
        c.add_flops(2);
        c.add_flops(3);
        c.add_lookups(1);
        assert_eq!(c.flops(), 5);
        assert_eq!(c.lookups(), 1);
    }

    #[test]
    fn take_resets() {
        let c = FlopCounter::new();
        c.add_flops(7);
        c.add_lookups(2);
        assert_eq!(c.take(), (7, 2));
        assert_eq!(c.take(), (0, 0));
    }

    #[test]
    fn clone_copies_counts() {
        let c = FlopCounter::new();
        c.add_flops(4);
        let d = c.clone();
        assert_eq!(d.flops(), 4);
        c.add_flops(1);
        assert_eq!(d.flops(), 4, "clone must be independent");
    }
}
