//! Closed-form expected footprints of the shared-state cache model
//! (paper §2.4).
//!
//! All three cases describe the evolution of a thread's expected footprint
//! in the cache of processor `p` while thread *A*, running on `p`, takes
//! `n` misses. Misses are assumed independent and uniformly distributed
//! over the `N` cache lines (paper §2.1), so a single miss leaves any given
//! line untouched with probability `k = (N−1)/N`.

use crate::params::check_coefficient;
use crate::{ModelError, ModelParams};

/// The analytical shared-state cache model.
///
/// A thin wrapper over [`ModelParams`] exposing the three closed forms plus
/// convenience combinators. The model is cheap enough to evaluate at every
/// thread context switch (the point of the paper).
///
/// ```
/// use locality_core::{FootprintModel, ModelParams};
/// let model = FootprintModel::new(ModelParams::new(8192)?);
/// // A cold thread that misses a lot approaches the full cache:
/// assert!(model.expected_blocking(0.0, 2_000_000) > 8191.0);
/// # Ok::<(), locality_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintModel {
    params: ModelParams,
}

impl FootprintModel {
    /// Creates a model for the given parameters.
    pub fn new(params: ModelParams) -> Self {
        FootprintModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// Case 1 — the **blocking thread A** itself.
    ///
    /// Starting from footprint `s` lines, after taking `n` misses of its
    /// own, A's expected footprint is `N − (N − s)·kⁿ`: every miss either
    /// lands on a line A already owns or claims a new one, so the footprint
    /// grows monotonically toward `N`.
    pub fn expected_blocking(&self, s: f64, n: u64) -> f64 {
        // Zero misses leave the footprint untouched. The algebraic form
        // is `N − (N − s)·k⁰ = N − (N − s)`, whose re-rounding can drift
        // one ulp away from `s` for large `N`; return `s` exactly, which
        // is also what the Markov chain says about an empty interval.
        if n == 0 {
            return s;
        }
        let nn = self.params.n();
        nn - (nn - s) * self.params.k_pow(n)
    }

    /// Case 2 — a thread **independent of A** (no sharing edge from A).
    ///
    /// Its `s` cached lines each survive a miss with probability `k`, so
    /// the footprint decays geometrically: `s·kⁿ`.
    pub fn expected_independent(&self, s: f64, n: u64) -> f64 {
        s * self.params.k_pow(n)
    }

    /// Case 3 — a thread **dependent on A** through a sharing edge of
    /// weight `q` (fraction of A's state shared with the dependent).
    ///
    /// `E[F_C] = qN − (qN − s)·kⁿ` (derived from the birth–death Markov
    /// chain in the paper's appendix; see [`crate::markov`] for the exact
    /// chain used as a test oracle). Depending on whether `s` is below or
    /// above the fixed point `qN`, the footprint grows or decays toward it.
    ///
    /// Setting `q = 1` recovers case 1 and `q = 0` recovers case 2.
    pub fn expected_dependent(&self, q: f64, s: f64, n: u64) -> f64 {
        // See expected_blocking: `target − (target − s)` need not round
        // back to `s` exactly, and an empty interval changes nothing.
        if n == 0 {
            return s;
        }
        let target = q * self.params.n();
        target - (target - s) * self.params.k_pow(n)
    }

    /// Validated variant of [`expected_dependent`](Self::expected_dependent).
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is outside `[0, 1]` or `s` is outside
    /// `[0, N]`.
    pub fn try_expected_dependent(&self, q: f64, s: f64, n: u64) -> Result<f64, ModelError> {
        check_coefficient(q)?;
        self.params.check_footprint(s)?;
        Ok(self.expected_dependent(q, s, n))
    }

    /// The **cache-reload ratio** `R = (E[F₀] − E[F]) / E[F₀]` used by the
    /// CRT policy (paper §4.2): the fraction of the footprint a thread had
    /// when it last ran (`f_last`) that it would have to reload now
    /// (current expected footprint `f_now`).
    ///
    /// Returns 0 when `f_last` is zero (nothing to reload).
    pub fn reload_ratio(&self, f_last: f64, f_now: f64) -> f64 {
        if f_last <= 0.0 {
            0.0
        } else {
            ((f_last - f_now) / f_last).max(0.0)
        }
    }

    /// Number of misses needed for a cold thread to reach a fraction
    /// `frac ∈ (0, 1)` of the full cache: inverse of case 1 with `s = 0`.
    ///
    /// Useful for sizing experiments (e.g. how long a reload transient
    /// lasts). Saturates at `u64::MAX` for `frac ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonFiniteFillFraction`] when `frac` is NaN.
    /// (The previous unchecked version computed `NaN.ceil() as u64`,
    /// which silently saturates to 0 — a corrupted fraction looked like
    /// an instantly-full cache.)
    pub fn misses_to_fill(&self, frac: f64) -> Result<u64, ModelError> {
        if frac.is_nan() {
            return Err(ModelError::NonFiniteFillFraction { frac });
        }
        if frac >= 1.0 {
            return Ok(u64::MAX);
        }
        if frac <= 0.0 {
            return Ok(0);
        }
        // N - N k^n = frac*N  =>  k^n = 1-frac  =>  n = ln(1-frac)/ln k
        // frac in (0, 1) here, so the quotient is finite and non-negative.
        Ok(((1.0 - frac).ln() / self.params.log_k()).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(lines: usize) -> FootprintModel {
        FootprintModel::new(ModelParams::new(lines).unwrap())
    }

    #[test]
    fn blocking_grows_toward_n() {
        let m = model(1024);
        let mut prev = 100.0;
        for n in [1u64, 10, 100, 1000, 10_000, 100_000] {
            let f = m.expected_blocking(100.0, n);
            assert!(f > prev || n == 1, "footprint must grow with misses");
            assert!(f <= 1024.0);
            prev = f;
        }
        assert!((m.expected_blocking(100.0, 10_000_000) - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn blocking_identity_at_zero_misses() {
        let m = model(512);
        assert_eq!(m.expected_blocking(77.0, 0), 77.0);
        assert_eq!(m.expected_independent(77.0, 0), 77.0);
        assert_eq!(m.expected_dependent(0.3, 77.0, 0), 77.0);
        // Values whose `target − (target − s)` round-trip drifts without
        // the explicit n = 0 case: s with more mantissa bits than N − s
        // can absorb.
        let m = model(1 << 20);
        for &s in &[0.1f64, 1e-9, 77.000000001, 1048575.999] {
            assert_eq!(m.expected_blocking(s, 0), s, "blocking s={s}");
            assert_eq!(m.expected_dependent(0.7, s, 0), s, "dependent s={s}");
            assert_eq!(m.expected_independent(s, 0), s, "independent s={s}");
        }
    }

    #[test]
    fn q_edges_collapse_to_sibling_cases_bitwise() {
        // q = 0: target is exactly 0, so qN − (qN − s)kⁿ = s·kⁿ bit for
        // bit; q = 1: target is exactly N, matching blocking. The edges
        // must agree with the sibling closed forms exactly, not just
        // approximately.
        let m = model(8192);
        for &s in &[0.0f64, 1.0, 511.5, 8192.0] {
            for &n in &[0u64, 1, 17, 1000, 100_000] {
                assert_eq!(m.expected_dependent(0.0, s, n), m.expected_independent(s, n));
                assert_eq!(m.expected_dependent(1.0, s, n), m.expected_blocking(s, n));
            }
        }
    }

    #[test]
    fn independent_decays_to_zero() {
        let m = model(1024);
        let f = m.expected_independent(1000.0, 50_000);
        assert!(f < 1.0, "footprint should have decayed, got {f}");
        let f1 = m.expected_independent(1000.0, 1);
        assert!((f1 - 1000.0 * 1023.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_converges_to_q_n() {
        let m = model(2048);
        // From below.
        let f = m.expected_dependent(0.5, 100.0, 1_000_000);
        assert!((f - 1024.0).abs() < 1e-6);
        // From above.
        let f = m.expected_dependent(0.25, 2000.0, 1_000_000);
        assert!((f - 512.0).abs() < 1e-6);
    }

    #[test]
    fn dependent_q1_matches_blocking_and_q0_matches_independent() {
        let m = model(4096);
        for n in [0u64, 1, 17, 400, 9001] {
            for s in [0.0, 13.5, 2048.0, 4096.0] {
                let dep1 = m.expected_dependent(1.0, s, n);
                let blk = m.expected_blocking(s, n);
                assert!((dep1 - blk).abs() < 1e-9, "q=1 mismatch at n={n} s={s}");
                let dep0 = m.expected_dependent(0.0, s, n);
                let ind = m.expected_independent(s, n);
                assert!((dep0 - ind).abs() < 1e-9, "q=0 mismatch at n={n} s={s}");
            }
        }
    }

    #[test]
    fn dependent_monotone_toward_fixed_point() {
        let m = model(1000);
        let q = 0.4; // fixed point at 400 lines
        let mut below = 10.0;
        let mut above = 900.0;
        for n in 1..200u64 {
            let nb = m.expected_dependent(q, 10.0, n);
            let na = m.expected_dependent(q, 900.0, n);
            assert!(nb > below && nb < 400.0);
            assert!(na < above && na > 400.0);
            below = nb;
            above = na;
        }
    }

    #[test]
    fn try_expected_dependent_validates() {
        let m = model(100);
        assert!(m.try_expected_dependent(0.5, 50.0, 10).is_ok());
        assert!(m.try_expected_dependent(1.5, 50.0, 10).is_err());
        assert!(m.try_expected_dependent(0.5, 101.0, 10).is_err());
        assert!(m.try_expected_dependent(-0.1, 50.0, 10).is_err());
    }

    #[test]
    fn reload_ratio_bounds() {
        let m = model(100);
        assert_eq!(m.reload_ratio(0.0, 0.0), 0.0);
        assert_eq!(m.reload_ratio(100.0, 100.0), 0.0);
        assert_eq!(m.reload_ratio(100.0, 0.0), 1.0);
        assert!((m.reload_ratio(80.0, 60.0) - 0.25).abs() < 1e-12);
        // f_now larger than f_last clamps to zero rather than going negative.
        assert_eq!(m.reload_ratio(50.0, 70.0), 0.0);
    }

    #[test]
    fn misses_to_fill_inverse_of_blocking() {
        let m = model(8192);
        for frac in [0.1, 0.5, 0.9, 0.99] {
            let n = m.misses_to_fill(frac).unwrap();
            let f = m.expected_blocking(0.0, n);
            assert!(f >= frac * 8192.0, "n={n} f={f}");
            // One miss fewer should not reach the target.
            let f_prev = m.expected_blocking(0.0, n.saturating_sub(1));
            assert!(f_prev <= frac * 8192.0 + 1.0);
        }
        assert_eq!(m.misses_to_fill(0.0), Ok(0));
        assert_eq!(m.misses_to_fill(1.0), Ok(u64::MAX));
    }

    #[test]
    fn misses_to_fill_rejects_nan() {
        let m = model(8192);
        assert!(matches!(
            m.misses_to_fill(f64::NAN),
            Err(ModelError::NonFiniteFillFraction { frac }) if frac.is_nan()
        ));
        // Infinities have a well-defined answer under the saturation rules.
        assert_eq!(m.misses_to_fill(f64::INFINITY), Ok(u64::MAX));
        assert_eq!(m.misses_to_fill(f64::NEG_INFINITY), Ok(0));
    }

    #[test]
    fn half_fill_takes_n_ln2_misses() {
        // Sanity: filling half a direct-mapped cache takes about N*ln(2)
        // misses, a classic coupon-collector-style result.
        let m = model(8192);
        let n = m.misses_to_fill(0.5).unwrap();
        let expect = (8192.0 * std::f64::consts::LN_2) as i64;
        assert!((n as i64 - expect).abs() < 8, "got {n}, expected ~{expect}");
    }
}
