//! The dynamic shared-state dependency graph built from user annotations
//! (paper §2.3).
//!
//! An `at_share(a, b, q)` annotation adds (or re-weights) the directed edge
//! `(a → b)` with coefficient `q ∈ [0, 1]`: *fraction `q` of thread `a`'s
//! state is shared with thread `b`*. The destination of an edge *depends
//! on* the source: when `a` runs and misses, `b`'s cached state is dragged
//! toward `q·N`.
//!
//! Unspecified edges implicitly carry coefficient 0 (pure decay, the
//! independent case). No transitivity is assumed; edges need not be
//! bidirectional (mergesort's children feed the parent but not vice
//! versa). Annotations are *hints*: wrong or missing ones affect only
//! performance, never correctness — which is why [`SharingGraph::set`]
//! validates the coefficient but the lookup path never fails.

use crate::params::check_coefficient;
use crate::{ModelError, ThreadId};
use std::collections::BTreeMap;

/// A directed, weighted state-sharing graph `G = (V, E)` with coefficients
/// `q ∈ [0, 1]` on each edge.
///
/// The mutation/build side is backed by ordered maps so iteration order
/// (and therefore every simulated schedule that consults the graph) is
/// deterministic. The read side used by the per-switch `O(out-degree)`
/// priority update is a CSR-style adjacency — sorted sources with
/// contiguous `(dst, q)` rows — rebuilt by [`compact`](Self::compact)
/// after mutations; [`dependents_of`](Self::dependents_of) walks the
/// contiguous row when the graph is compact and falls back to the maps
/// (same order, same items) when it is not.
///
/// ```
/// use locality_core::{SharingGraph, ThreadId};
/// let (parent, left, right) = (ThreadId(1), ThreadId(2), ThreadId(3));
/// let mut g = SharingGraph::new();
/// // Mergesort: each child's state is fully contained in the parent's.
/// g.set(left, parent, 1.0)?;
/// g.set(right, parent, 1.0)?;
/// assert_eq!(g.weight(left, parent), 1.0);
/// assert_eq!(g.weight(parent, left), 0.0); // not symmetric
/// assert_eq!(g.out_degree(left), 1);
/// # Ok::<(), locality_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharingGraph {
    /// Out-edges: for each source, destinations and coefficients.
    out: BTreeMap<ThreadId, BTreeMap<ThreadId, f64>>,
    /// In-edges (destinations back to sources), kept so a thread can be
    /// removed in O(degree) when it exits.
    into: BTreeMap<ThreadId, BTreeMap<ThreadId, f64>>,
    edges: usize,
    /// CSR read cache over `out`; valid while `dirty` is false.
    csr: Csr,
    /// Whether `csr` lags behind the maps.
    dirty: bool,
}

/// Compressed sparse rows over the out-edges: `srcs` is sorted, row `i`
/// of `edges` spans `offsets[i] .. offsets[i + 1]` with destinations in
/// thread-id order — the same order the `BTreeMap` side yields.
#[derive(Debug, Clone, Default)]
struct Csr {
    srcs: Vec<ThreadId>,
    offsets: Vec<u32>,
    edges: Vec<(ThreadId, f64)>,
}

impl Csr {
    fn row(&self, src: ThreadId) -> &[(ThreadId, f64)] {
        match self.srcs.binary_search(&src) {
            Ok(i) => &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }
}

/// Equality is defined over the logical edge set only; the CSR cache is
/// a rebuildable view and two graphs differing only in compaction state
/// are equal.
impl PartialEq for SharingGraph {
    fn eq(&self, other: &Self) -> bool {
        self.out == other.out && self.into == other.into && self.edges == other.edges
    }
}

impl SharingGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SharingGraph::default()
    }

    /// Adds or re-weights the edge `(src → dst)` with coefficient `q`.
    ///
    /// This is the runtime effect of the `at_share(src, dst, q)` annotation.
    /// Setting `q = 0` removes the edge (an absent edge and a zero edge are
    /// indistinguishable to the model).
    ///
    /// # Errors
    ///
    /// * [`ModelError::NonFiniteSharingCoefficient`] if `q` is NaN or
    ///   infinite;
    /// * [`ModelError::InvalidSharingCoefficient`] if `q ∉ [0, 1]`;
    /// * [`ModelError::SelfSharing`] if `src == dst`.
    pub fn set(&mut self, src: ThreadId, dst: ThreadId, q: f64) -> Result<(), ModelError> {
        check_coefficient(q)?;
        if src == dst {
            return Err(ModelError::SelfSharing { thread: src.0 });
        }
        if q == 0.0 {
            self.remove_edge(src, dst);
            return Ok(());
        }
        let prev = self.out.entry(src).or_default().insert(dst, q);
        self.into.entry(dst).or_default().insert(src, q);
        if prev.is_none() {
            self.edges += 1;
        }
        if prev != Some(q) {
            self.dirty = true;
        }
        Ok(())
    }

    /// Removes the edge `(src → dst)`; returns its previous weight, if any.
    pub fn remove_edge(&mut self, src: ThreadId, dst: ThreadId) -> Option<f64> {
        let w = self.out.get_mut(&src).and_then(|m| m.remove(&dst));
        if w.is_some() {
            if let Some(m) = self.into.get_mut(&dst) {
                m.remove(&src);
            }
            self.edges -= 1;
            self.dirty = true;
        }
        w
    }

    /// Coefficient of the edge `(src → dst)`, or 0 when absent.
    ///
    /// The graph is conceptually complete with unspecified edges carrying
    /// 0 coefficients (paper §2.3), so this lookup never fails.
    pub fn weight(&self, src: ThreadId, dst: ThreadId) -> f64 {
        self.out.get(&src).and_then(|m| m.get(&dst)).copied().unwrap_or(0.0)
    }

    /// Threads whose cached state depends on `src` — the destinations of
    /// edges starting at `src` — with their coefficients, in thread-id
    /// order.
    ///
    /// When the graph [`is_compact`](Self::is_compact) this walks one
    /// contiguous CSR row (the hot `O(out-degree)` path); otherwise it
    /// falls back to the ordered map, yielding the identical sequence.
    pub fn dependents_of(&self, src: ThreadId) -> impl Iterator<Item = (ThreadId, f64)> + '_ {
        let (row, sparse): (&[(ThreadId, f64)], _) =
            if self.dirty { (&[], self.out.get(&src)) } else { (self.csr.row(src), None) };
        row.iter().copied().chain(sparse.into_iter().flatten().map(|(&t, &q)| (t, q)))
    }

    /// Rebuilds the CSR read cache if mutations invalidated it. Called
    /// by the runtime before entering the per-switch priority updates;
    /// a no-op when already compact.
    pub fn compact(&mut self) {
        if !self.dirty {
            return;
        }
        self.csr.srcs.clear();
        self.csr.offsets.clear();
        self.csr.edges.clear();
        self.csr.offsets.push(0);
        for (&src, dsts) in &self.out {
            if dsts.is_empty() {
                continue;
            }
            self.csr.srcs.push(src);
            self.csr.edges.extend(dsts.iter().map(|(&t, &q)| (t, q)));
            let end = u32::try_from(self.csr.edges.len()).expect("more than u32::MAX edges");
            self.csr.offsets.push(end);
        }
        self.dirty = false;
    }

    /// Whether the CSR read cache is in sync with the maps.
    pub fn is_compact(&self) -> bool {
        !self.dirty
    }

    /// Threads `src` depends on — the sources of edges ending at `src`.
    pub fn dependencies_of(&self, dst: ThreadId) -> impl Iterator<Item = (ThreadId, f64)> + '_ {
        self.into.get(&dst).into_iter().flatten().map(|(&t, &q)| (t, q))
    }

    /// Number of dependents of `src` (out-degree `d`; the per-switch
    /// priority-update cost is `O(d)`).
    pub fn out_degree(&self, src: ThreadId) -> usize {
        self.out.get(&src).map_or(0, BTreeMap::len)
    }

    /// Total number of edges with non-zero coefficients.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges == 0
    }

    /// Removes every edge incident to `t` (called when the thread exits).
    pub fn remove_thread(&mut self, t: ThreadId) {
        if let Some(dsts) = self.out.remove(&t) {
            self.edges -= dsts.len();
            self.dirty |= !dsts.is_empty();
            for dst in dsts.keys() {
                if let Some(m) = self.into.get_mut(dst) {
                    m.remove(&t);
                }
            }
        }
        if let Some(srcs) = self.into.remove(&t) {
            self.edges -= srcs.len();
            self.dirty |= !srcs.is_empty();
            for src in srcs.keys() {
                if let Some(m) = self.out.get_mut(src) {
                    m.remove(&t);
                }
            }
        }
    }

    /// All edges `(src, dst, q)` in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (ThreadId, ThreadId, f64)> + '_ {
        self.out.iter().flat_map(|(&src, dsts)| dsts.iter().map(move |(&dst, &q)| (src, dst, q)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn set_and_weight() {
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        assert_eq!(g.weight(t(1), t(2)), 0.5);
        assert_eq!(g.weight(t(2), t(1)), 0.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reweight_does_not_duplicate() {
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        g.set(t(1), t(2), 0.9).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(t(1), t(2)), 0.9);
    }

    #[test]
    fn zero_weight_removes() {
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        g.set(t(1), t(2), 0.0).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.weight(t(1), t(2)), 0.0);
    }

    #[test]
    fn rejects_self_edges_and_bad_q() {
        let mut g = SharingGraph::new();
        assert_eq!(g.set(t(1), t(1), 0.5), Err(ModelError::SelfSharing { thread: 1 }));
        assert!(g.set(t(1), t(2), 1.5).is_err());
        assert!(g.set(t(1), t(2), -0.5).is_err());
        assert!(g.is_empty());
    }

    #[test]
    fn rejects_non_finite_q_with_dedicated_variant() {
        let mut g = SharingGraph::new();
        assert!(matches!(
            g.set(t(1), t(2), f64::NAN),
            Err(ModelError::NonFiniteSharingCoefficient { q }) if q.is_nan()
        ));
        assert!(matches!(
            g.set(t(1), t(2), f64::INFINITY),
            Err(ModelError::NonFiniteSharingCoefficient { q }) if q == f64::INFINITY
        ));
        assert!(matches!(
            g.set(t(1), t(2), f64::NEG_INFINITY),
            Err(ModelError::NonFiniteSharingCoefficient { .. })
        ));
        // Out-of-range-but-finite keeps the original variant.
        assert!(matches!(
            g.set(t(1), t(2), 2.0),
            Err(ModelError::InvalidSharingCoefficient { q }) if q == 2.0
        ));
        assert!(g.is_empty(), "rejected annotations must not touch the graph");
    }

    #[test]
    fn dependents_sorted_and_complete() {
        let mut g = SharingGraph::new();
        g.set(t(5), t(9), 0.1).unwrap();
        g.set(t(5), t(2), 0.2).unwrap();
        g.set(t(5), t(7), 0.3).unwrap();
        g.set(t(6), t(2), 0.4).unwrap();
        let deps: Vec<_> = g.dependents_of(t(5)).collect();
        assert_eq!(deps, vec![(t(2), 0.2), (t(7), 0.3), (t(9), 0.1)]);
        assert_eq!(g.out_degree(t(5)), 3);
        assert_eq!(g.out_degree(t(42)), 0);
    }

    #[test]
    fn dependencies_inverse_of_dependents() {
        let mut g = SharingGraph::new();
        g.set(t(1), t(3), 0.5).unwrap();
        g.set(t(2), t(3), 0.7).unwrap();
        let deps: Vec<_> = g.dependencies_of(t(3)).collect();
        assert_eq!(deps, vec![(t(1), 0.5), (t(2), 0.7)]);
    }

    #[test]
    fn remove_thread_cleans_both_directions() {
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        g.set(t(2), t(1), 0.6).unwrap();
        g.set(t(2), t(3), 0.7).unwrap();
        g.set(t(3), t(2), 0.8).unwrap();
        g.remove_thread(t(2));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.weight(t(1), t(2)), 0.0);
        assert_eq!(g.weight(t(3), t(2)), 0.0);
        assert_eq!(g.dependents_of(t(2)).count(), 0);
    }

    #[test]
    fn remove_thread_keeps_unrelated_edges() {
        let mut g = SharingGraph::new();
        g.set(t(1), t(2), 0.5).unwrap();
        g.set(t(3), t(4), 0.6).unwrap();
        g.remove_thread(t(1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(t(3), t(4)), 0.6);
    }

    #[test]
    fn edges_iterator_is_deterministic() {
        let mut g = SharingGraph::new();
        g.set(t(2), t(1), 0.2).unwrap();
        g.set(t(1), t(2), 0.1).unwrap();
        g.set(t(1), t(3), 0.3).unwrap();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all, vec![(t(1), t(2), 0.1), (t(1), t(3), 0.3), (t(2), t(1), 0.2)]);
    }

    #[test]
    fn compact_and_sparse_reads_agree() {
        let mut g = SharingGraph::new();
        g.set(t(5), t(9), 0.1).unwrap();
        g.set(t(5), t(2), 0.2).unwrap();
        g.set(t(6), t(2), 0.4).unwrap();
        assert!(!g.is_compact(), "mutations invalidate the CSR cache");
        let sparse: Vec<_> = g.dependents_of(t(5)).collect();
        g.compact();
        assert!(g.is_compact());
        let compact: Vec<_> = g.dependents_of(t(5)).collect();
        assert_eq!(sparse, compact);
        assert_eq!(compact, vec![(t(2), 0.2), (t(9), 0.1)]);
        assert_eq!(g.dependents_of(t(42)).count(), 0);
    }

    #[test]
    fn compaction_tracks_every_mutation() {
        let mut g = SharingGraph::new();
        g.compact();
        assert!(g.is_compact(), "empty graph compacts trivially");
        g.set(t(1), t(2), 0.5).unwrap();
        assert!(!g.is_compact());
        g.compact();
        // Re-setting the same weight changes nothing: still compact.
        g.set(t(1), t(2), 0.5).unwrap();
        assert!(g.is_compact());
        g.set(t(1), t(2), 0.9).unwrap();
        assert!(!g.is_compact());
        g.compact();
        g.remove_edge(t(1), t(2));
        assert!(!g.is_compact());
        g.compact();
        assert_eq!(g.dependents_of(t(1)).count(), 0);
        g.set(t(1), t(2), 0.5).unwrap();
        g.compact();
        g.remove_thread(t(2));
        assert!(!g.is_compact());
        g.compact();
        assert_eq!(g.dependents_of(t(1)).count(), 0);
    }

    #[test]
    fn equality_ignores_compaction_state() {
        let mut a = SharingGraph::new();
        let mut b = SharingGraph::new();
        a.set(t(1), t(2), 0.5).unwrap();
        b.set(t(1), t(2), 0.5).unwrap();
        a.compact();
        assert_eq!(a, b);
        let cloned = a.clone();
        assert_eq!(cloned, a);
    }

    #[test]
    fn mergesort_annotation_pattern() {
        // Figure 3 of the paper: children point at the parent with q=1,
        // no parent->child edges (parent prefetches nothing for children).
        let mut g = SharingGraph::new();
        let (parent, l, r) = (t(10), t(11), t(12));
        g.set(l, parent, 1.0).unwrap();
        g.set(r, parent, 1.0).unwrap();
        assert_eq!(g.dependents_of(l).collect::<Vec<_>>(), vec![(parent, 1.0)]);
        assert_eq!(g.out_degree(parent), 0);
    }
}
