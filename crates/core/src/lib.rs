//! # locality-core
//!
//! The analytical *shared-state cache model* and the locality scheduling
//! machinery from Boris Weissman's ASPLOS 1998 paper *"Performance Counters
//! and State Sharing Annotations: a Unified Approach to Thread Locality"*.
//!
//! The model predicts, **on-line**, the expected footprint (number of
//! resident cache lines) of every thread in a large direct-mapped secondary
//! cache as the computation unfolds. Its only inputs are:
//!
//! 1. the number of cache misses `n` taken by the running thread during its
//!    scheduling interval, as reported by hardware performance counters, and
//! 2. a dynamic [`SharingGraph`] built from program-centric
//!    `at_share(a, b, q)` annotations: a weighted digraph whose edge
//!    `(a → b, q)` declares that fraction `q` of thread `a`'s state is
//!    shared with thread `b`'s state.
//!
//! For a cache of `N` lines, with `k = (N-1)/N`, a scheduling interval in
//! which thread *A* took `n` misses on processor *p* updates the expected
//! footprints in *p*'s cache as:
//!
//! * **blocking thread A**: `E[F_A] = N − (N − S_A)·kⁿ`
//! * **independent thread B**: `E[F_B] = S_B·kⁿ`
//! * **dependent thread C** (edge `(A → C, q)`): `E[F_C] = qN − (qN − S_C)·kⁿ`
//!
//! where `S_x` is the footprint at the start of the interval. The dependent
//! case is derived from a birth–death Markov chain (paper appendix); the
//! [`markov`] module implements that chain exactly and serves as a test
//! oracle for the closed forms.
//!
//! On top of the model, [`priority`] and [`estimator`] implement the paper's
//! two practical scheduling policies — **LFF** (largest footprint first) and
//! **CRT** (smallest cache-reload ratio) — using the log-space priority
//! transformation that makes priority updates of *independent* threads
//! entirely free: only the blocking thread and its `out-degree` dependents
//! are touched at a context switch.
//!
//! ## Quick example
//!
//! ```
//! use locality_core::{FootprintModel, ModelParams, SharingGraph, ThreadId};
//!
//! # fn main() -> Result<(), locality_core::ModelError> {
//! let params = ModelParams::new(8192)?; // 512 KiB / 64-byte lines
//! let model = FootprintModel::new(params);
//!
//! // Thread A starts with 1000 lines cached and takes 4000 misses.
//! let fa = model.expected_blocking(1000.0, 4000);
//! assert!(fa > 1000.0 && fa < 8192.0);
//!
//! // An independent thread's 1000-line footprint decays.
//! let fb = model.expected_independent(1000.0, 4000);
//! assert!(fb < 1000.0);
//!
//! // A dependent thread sharing half of A's state converges toward q*N.
//! let mut graph = SharingGraph::new();
//! graph.set(ThreadId(1), ThreadId(2), 0.5)?;
//! let q = graph.weight(ThreadId(1), ThreadId(2));
//! let fc = model.expected_dependent(q, 1000.0, 4000);
//! assert!(fc > 1000.0 && fc < 0.5 * 8192.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod params;

pub mod estimator;
pub mod flops;
pub mod footprint;
pub mod graph;
pub mod markov;
pub mod perset;
pub mod priority;
pub mod sanitizer;
pub mod slots;
pub mod tables;

pub use error::ModelError;
pub use estimator::{EstimatorConfig, FootprintEstimator, LocalityEstimator};
pub use footprint::FootprintModel;
pub use graph::SharingGraph;
pub use params::ModelParams;
pub use perset::{PerSetCase, PerSetEstimator};
pub use priority::{FootprintEntry, PolicyKind, PrioritySchemes, PriorityUpdate};
pub use sanitizer::{CounterSanitizer, SanitizedInterval, SanitizerConfig};
pub use slots::{SlotId, ThreadSlots};

use std::fmt;

/// Identifier of a runtime thread instance.
///
/// Thread ids are allocated by the runtime (see the `active-threads` crate)
/// and are never reused within a run, so they double as stable keys for the
/// [`SharingGraph`] and the per-processor footprint tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for ThreadId {
    fn from(raw: u64) -> Self {
        ThreadId(raw)
    }
}

/// Identifier of a (simulated) processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<usize> for CpuId {
    fn from(raw: usize) -> Self {
        CpuId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_order() {
        let a = ThreadId(3);
        let b = ThreadId(7);
        assert!(a < b);
        assert_eq!(a.to_string(), "t3");
        assert_eq!(ThreadId::from(9), ThreadId(9));
    }

    #[test]
    fn cpu_id_display_and_order() {
        assert_eq!(CpuId(2).to_string(), "cpu2");
        assert!(CpuId(0) < CpuId(1));
        assert_eq!(CpuId::from(4), CpuId(4));
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThreadId>();
        assert_send_sync::<CpuId>();
    }
}
