//! Exact birth–death Markov chain for the dependent-thread case
//! (paper appendix).
//!
//! The chain has `N + 1` states; state `i` means the dependent thread *C*
//! holds `i` lines in the cache. Each miss taken by the running thread *A*
//! (sharing coefficient `q = q_{A,C}`) triggers one transition:
//!
//! * `i → i+1` with probability `q·(N−i)/N` — the missed line is shared
//!   with C and lands on a line C does not already own;
//! * `i → i−1` with probability `(1−q)·i/N` — the missed line is not
//!   shared and evicts one of C's lines;
//! * `i → i` otherwise.
//!
//! Iterating the full distribution vector is `O(n·N)` — far too slow for a
//! context switch, which is why the paper derives the closed form
//! `E[F_C] = qN − (qN − S_C)·kⁿ`. This module exists to *prove* that the
//! closed form equals the exact chain expectation (see the property tests
//! and `tests/model_oracle.rs`), and to let users explore full
//! distributions, not just means.

use crate::params::check_coefficient;
use crate::{ModelError, ModelParams};

/// The exact Markov chain of the dependent-thread cache interaction.
#[derive(Debug, Clone)]
pub struct DependentChain {
    params: ModelParams,
    q: f64,
}

impl DependentChain {
    /// Creates the chain for a cache of `params.lines()` lines and a
    /// sharing coefficient `q`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSharingCoefficient`] if `q ∉ [0, 1]`.
    pub fn new(params: ModelParams, q: f64) -> Result<Self, ModelError> {
        check_coefficient(q)?;
        Ok(DependentChain { params, q })
    }

    /// The sharing coefficient `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Transition probabilities out of state `i`:
    /// `(down, stay, up)` = `(P[i→i−1], P[i→i], P[i→i+1])`.
    ///
    /// # Panics
    ///
    /// Panics if `i > N`.
    pub fn transition(&self, i: usize) -> (f64, f64, f64) {
        let n = self.params.n();
        assert!(i <= self.params.lines(), "state {i} out of range");
        let fi = i as f64;
        let up = self.q * (n - fi) / n;
        let down = (1.0 - self.q) * fi / n;
        (down, 1.0 - up - down, up)
    }

    /// Applies one miss-transition to a distribution vector in place.
    ///
    /// `dist[i]` is the probability of C holding `i` lines;
    /// `dist.len()` must be `N + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != N + 1`.
    pub fn step(&self, dist: &mut Vec<f64>) {
        let n = self.params.lines();
        assert_eq!(dist.len(), n + 1, "distribution must have N+1 entries");
        let mut next = vec![0.0; n + 1];
        self.step_into(dist, &mut next);
        *dist = next;
    }

    /// One transition from `src` into the zeroed buffer `dst` — the
    /// allocation-free core of [`step`](Self::step). Both the per-call
    /// allocating form and the double-buffered iteration below perform
    /// exactly these additions in this order, so they are bit-identical.
    fn step_into(&self, src: &[f64], dst: &mut [f64]) {
        let n = src.len() - 1;
        for (i, &p) in src.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let (down, stay, up) = self.transition(i);
            if i > 0 {
                dst[i - 1] += p * down;
            }
            dst[i] += p * stay;
            if i < n {
                dst[i + 1] += p * up;
            }
        }
    }

    /// The full distribution after `n` misses, starting from exactly `s0`
    /// lines cached. Iterates with two reused buffers instead of one
    /// allocation per step; the arithmetic is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `s0 > N`.
    pub fn distribution_after(&self, s0: usize, n: u64) -> Vec<f64> {
        let lines = self.params.lines();
        assert!(s0 <= lines, "initial footprint {s0} exceeds cache size");
        let mut dist = vec![0.0; lines + 1];
        dist[s0] = 1.0;
        let mut next = vec![0.0; lines + 1];
        for _ in 0..n {
            self.step_into(&dist, &mut next);
            std::mem::swap(&mut dist, &mut next);
            next.fill(0.0);
        }
        dist
    }

    /// Exact expected footprint after `n` misses, by iterating the full
    /// distribution. `O(n·N)` — a test oracle, not a runtime tool.
    pub fn expected_after(&self, s0: usize, n: u64) -> f64 {
        expectation(&self.distribution_after(s0, n))
    }

    /// Exact expected footprint via the scalar recurrence
    /// `E_{m+1} = E_m·k + q`, which follows from linearity of the chain's
    /// drift. `O(n)` and numerically independent of the closed form —
    /// a second oracle.
    pub fn expected_after_recurrence(&self, s0: f64, n: u64) -> f64 {
        let k = self.params.k();
        let mut e = s0;
        for _ in 0..n {
            e = e * k + self.q;
        }
        e
    }

    /// Tabulates the chain's transient expectation up to `n_max` misses.
    ///
    /// Pays the `O(n_max·N)` distribution iteration **once**; every
    /// subsequent [`ChainTransientTable::expected_after`] query is `O(log
    /// grid)`. The chain's expectation is exactly linear in the initial
    /// footprint (`E' = E·k + q` regardless of the distribution's shape),
    /// so stepping just two distributions — `s0 = 0` and `s0 = N` — pins
    /// the whole family of transients.
    pub fn tabulate(&self, n_max: u64) -> ChainTransientTable {
        let lines = self.params.lines();
        let nn = self.params.n();

        // Grid: every miss count up to 16, then geometrically spaced
        // (each step grows by n/8), with n_max always included. The
        // transient is an exponential approach to qN, so geometric
        // spacing keeps the interpolation error roughly uniform.
        let mut grid = Vec::new();
        let mut g = 0u64;
        while g < n_max {
            grid.push(g);
            g = if g < 16 { g + 1 } else { g + (g / 8).max(1) };
        }
        grid.push(n_max);

        let mut d0 = vec![0.0; lines + 1];
        d0[0] = 1.0;
        let mut dn = vec![0.0; lines + 1];
        dn[lines] = 1.0;
        let mut scratch = vec![0.0; lines + 1];
        let mut a = Vec::with_capacity(grid.len());
        let mut b = Vec::with_capacity(grid.len());
        let mut cur = 0u64;
        for &point in &grid {
            while cur < point {
                self.step_into(&d0, &mut scratch);
                std::mem::swap(&mut d0, &mut scratch);
                scratch.fill(0.0);
                self.step_into(&dn, &mut scratch);
                std::mem::swap(&mut dn, &mut scratch);
                scratch.fill(0.0);
                cur += 1;
            }
            let e0 = expectation(&d0);
            let en = expectation(&dn);
            a.push(e0);
            b.push((en - e0) / nn);
        }
        ChainTransientTable { params: self.params, q: self.q, grid, a, b }
    }
}

/// Memoized transient of the [`DependentChain`] expectation.
///
/// Holds `E[F | s0, n] = A(n) + s0·B(n)` sampled on a geometric grid of
/// miss counts `n` (dense for small `n`): grid points reproduce the
/// exact chain expectation, off-grid queries interpolate `A` and `B`
/// linearly between neighbors, and queries beyond the tabulated range
/// continue analytically from the last grid point (`E` approaches `qN`
/// as `kᵐ` decays — the exact solution of the drift recurrence).
#[derive(Debug, Clone)]
pub struct ChainTransientTable {
    params: ModelParams,
    q: f64,
    /// Sorted, deduplicated miss counts (always starts at 0).
    grid: Vec<u64>,
    /// `E[F | s0 = 0, n]` at each grid point.
    a: Vec<f64>,
    /// `(E[F | s0 = N, n] − E[F | s0 = 0, n]) / N` at each grid point.
    b: Vec<f64>,
}

impl ChainTransientTable {
    /// Expected footprint after `n` misses from initial footprint `s0`.
    pub fn expected_after(&self, s0: f64, n: u64) -> f64 {
        match self.grid.binary_search(&n) {
            Ok(i) => self.a[i] + s0 * self.b[i],
            Err(i) if i < self.grid.len() => {
                // Between grid[i-1] and grid[i]; i ≥ 1 because grid[0] = 0.
                let (n0, n1) = (self.grid[i - 1], self.grid[i]);
                let t = (n - n0) as f64 / (n1 - n0) as f64;
                let a = self.a[i - 1] + t * (self.a[i] - self.a[i - 1]);
                let b = self.b[i - 1] + t * (self.b[i] - self.b[i - 1]);
                a + s0 * b
            }
            Err(_) => {
                // Past the table: E(n_max + m) = qN + (E(n_max) − qN)·kᵐ.
                let last = self.grid.len() - 1;
                let e_last = self.a[last] + s0 * self.b[last];
                let target = self.q * self.params.n();
                target + (e_last - target) * self.params.k_pow(n - self.grid[last])
            }
        }
    }

    /// The sharing coefficient the table was built for.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Largest tabulated miss count.
    pub fn n_max(&self) -> u64 {
        *self.grid.last().unwrap_or(&0)
    }

    /// Number of grid points.
    pub fn grid_len(&self) -> usize {
        self.grid.len()
    }
}

/// Expectation of a distribution over states `0..dist.len()`.
pub fn expectation(dist: &[f64]) -> f64 {
    dist.iter().enumerate().map(|(i, p)| i as f64 * p).sum()
}

/// Total mass of a distribution (should always be 1 up to rounding).
pub fn total_mass(dist: &[f64]) -> f64 {
    dist.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FootprintModel;

    fn chain(lines: usize, q: f64) -> DependentChain {
        DependentChain::new(ModelParams::new(lines).unwrap(), q).unwrap()
    }

    #[test]
    fn rejects_bad_q() {
        let p = ModelParams::new(64).unwrap();
        assert!(DependentChain::new(p, -0.1).is_err());
        assert!(DependentChain::new(p, 1.1).is_err());
        assert!(DependentChain::new(p, f64::NAN).is_err());
    }

    #[test]
    fn transitions_sum_to_one() {
        let c = chain(64, 0.3);
        for i in 0..=64 {
            let (d, s, u) = c.transition(i);
            assert!((d + s + u - 1.0).abs() < 1e-12);
            assert!(d >= 0.0 && s >= 0.0 && u >= 0.0);
        }
    }

    #[test]
    fn boundary_states_cannot_escape_range() {
        let c = chain(32, 0.7);
        let (down0, _, _) = c.transition(0);
        assert_eq!(down0, 0.0, "state 0 cannot go down");
        let (_, _, up_n) = c.transition(32);
        assert_eq!(up_n, 0.0, "state N cannot go up");
    }

    #[test]
    fn mass_is_conserved() {
        let c = chain(64, 0.42);
        let dist = c.distribution_after(10, 500);
        assert!((total_mass(&dist) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn q_zero_is_pure_decay() {
        let c = chain(128, 0.0);
        let m = FootprintModel::new(ModelParams::new(128).unwrap());
        for n in [1u64, 10, 100, 1000] {
            let exact = c.expected_after(100, n);
            let closed = m.expected_independent(100.0, n);
            assert!((exact - closed).abs() < 1e-8, "n={n}: {exact} vs {closed}");
        }
    }

    #[test]
    fn q_one_is_pure_growth() {
        let c = chain(128, 1.0);
        let m = FootprintModel::new(ModelParams::new(128).unwrap());
        for n in [1u64, 10, 100, 1000] {
            let exact = c.expected_after(10, n);
            let closed = m.expected_blocking(10.0, n);
            assert!((exact - closed).abs() < 1e-8, "n={n}: {exact} vs {closed}");
        }
    }

    #[test]
    fn closed_form_matches_chain_mid_q() {
        let m = FootprintModel::new(ModelParams::new(96).unwrap());
        for &q in &[0.1, 0.5, 0.9] {
            let c = chain(96, q);
            for &s0 in &[0usize, 20, 48, 96] {
                for &n in &[1u64, 7, 50, 300] {
                    let exact = c.expected_after(s0, n);
                    let closed = m.expected_dependent(q, s0 as f64, n);
                    assert!(
                        (exact - closed).abs() < 1e-7,
                        "q={q} s0={s0} n={n}: exact={exact} closed={closed}"
                    );
                }
            }
        }
    }

    #[test]
    fn recurrence_matches_closed_form() {
        let m = FootprintModel::new(ModelParams::new(512).unwrap());
        let c = chain(512, 0.33);
        for &n in &[0u64, 1, 13, 200, 2000] {
            let rec = c.expected_after_recurrence(100.0, n);
            let closed = m.expected_dependent(0.33, 100.0, n);
            assert!((rec - closed).abs() < 1e-6, "n={n}: {rec} vs {closed}");
        }
    }

    #[test]
    fn table_matches_chain_at_grid_points() {
        let c = chain(96, 0.4);
        let t = c.tabulate(512);
        for &s0 in &[0usize, 17, 48, 96] {
            for &n in &[0u64, 1, 5, 16, 512] {
                let exact = c.expected_after(s0, n);
                let tab = t.expected_after(s0 as f64, n);
                assert!((exact - tab).abs() < 1e-9, "s0={s0} n={n}: {exact} vs {tab}");
            }
        }
    }

    #[test]
    fn table_interpolates_between_grid_points() {
        let c = chain(128, 0.6);
        let t = c.tabulate(2048);
        // Off-grid points: interpolation error stays small because the
        // grid is geometric and the transient is a smooth exponential.
        for &n in &[37u64, 101, 419, 1777] {
            let exact = c.expected_after(30, n);
            let tab = t.expected_after(30.0, n);
            assert!((exact - tab).abs() < 0.05, "n={n}: {exact} vs {tab}");
        }
    }

    #[test]
    fn table_continues_beyond_range() {
        let c = chain(64, 0.5);
        let t = c.tabulate(256);
        // Far past the table every transient has converged to qN.
        let far = t.expected_after(10.0, 1_000_000);
        assert!((far - 0.5 * 64.0).abs() < 1e-6, "{far}");
        // Just past the table the analytic continuation tracks the
        // recurrence oracle.
        let rec = c.expected_after_recurrence(10.0, 300);
        let tab = t.expected_after(10.0, 300);
        assert!((rec - tab).abs() < 1e-6, "{rec} vs {tab}");
    }

    #[test]
    fn table_is_linear_in_s0() {
        let c = chain(64, 0.3);
        let t = c.tabulate(128);
        let (e0, e32, e64) =
            (t.expected_after(0.0, 50), t.expected_after(32.0, 50), t.expected_after(64.0, 50));
        assert!((e32 - (e0 + e64) / 2.0).abs() < 1e-9);
        assert_eq!(t.n_max(), 128);
        assert!(t.grid_len() > 16);
        assert!((t.q() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn double_buffered_iteration_matches_per_step_allocation() {
        // distribution_after must be bit-identical to naive repeated step.
        let c = chain(48, 0.37);
        let mut naive = vec![0.0; 49];
        naive[20] = 1.0;
        for _ in 0..200 {
            c.step(&mut naive);
        }
        assert_eq!(c.distribution_after(20, 200), naive);
    }

    #[test]
    fn drift_recurrence_derivation() {
        // One step of the chain moves the mean by up - down =
        // q(N-E)/N - (1-q)E/N = q - E/N, i.e. E' = E*k + q.
        let c = chain(64, 0.25);
        let d0 = c.distribution_after(30, 0);
        let mut d1 = d0.clone();
        c.step(&mut d1);
        let e0 = expectation(&d0);
        let e1 = expectation(&d1);
        assert!((e1 - (e0 * (63.0 / 64.0) + 0.25)).abs() < 1e-12);
    }
}
