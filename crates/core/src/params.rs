use crate::ModelError;

/// Parameters of the shared-state cache model.
///
/// The model targets large physically-indexed **direct-mapped** secondary
/// caches (paper §2.1): the only parameter it needs is the cache size `N`
/// in lines. All probabilities derive from the single-miss survival factor
/// `k = (N − 1) / N`.
///
/// ```
/// use locality_core::ModelParams;
/// let p = ModelParams::new(8192)?; // 512 KiB cache, 64-byte lines
/// assert_eq!(p.lines(), 8192);
/// assert!(p.k() < 1.0 && p.k() > 0.999);
/// # Ok::<(), locality_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    lines: usize,
    k: f64,
    log_k: f64,
}

impl ModelParams {
    /// Creates model parameters for a direct-mapped cache of `lines` lines.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheTooSmall`] if `lines < 2`.
    pub fn new(lines: usize) -> Result<Self, ModelError> {
        if lines < 2 {
            return Err(ModelError::CacheTooSmall { lines });
        }
        let n = lines as f64;
        let k = (n - 1.0) / n;
        Ok(ModelParams { lines, k, log_k: k.ln() })
    }

    /// The cache size `N` in lines.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The cache size `N` as a float, for use in the closed forms.
    pub fn n(&self) -> f64 {
        self.lines as f64
    }

    /// The per-miss survival probability `k = (N − 1) / N`: the probability
    /// that a single randomly-placed miss does *not* displace a given line.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Natural logarithm of `k`; a negative constant used by the log-space
    /// priority schemes (paper §4.1).
    pub fn log_k(&self) -> f64 {
        self.log_k
    }

    /// `kⁿ` computed directly (no table). Exact for any `n`.
    ///
    /// `kⁿ = exp(n · ln k)` decays to zero: after `N·lnN` misses virtually
    /// no unreferenced line survives.
    pub fn k_pow(&self, n: u64) -> f64 {
        (self.log_k * n as f64).exp()
    }

    /// Validates a footprint value against the cache size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFootprint`] unless
    /// `0 ≤ footprint ≤ N` and the value is finite.
    pub fn check_footprint(&self, footprint: f64) -> Result<(), ModelError> {
        if !footprint.is_finite() || footprint < 0.0 || footprint > self.n() {
            return Err(ModelError::InvalidFootprint { footprint, lines: self.lines });
        }
        Ok(())
    }
}

/// Validates a sharing coefficient.
///
/// # Errors
///
/// Returns [`ModelError::NonFiniteSharingCoefficient`] for NaN or
/// infinite values, and [`ModelError::InvalidSharingCoefficient`] for
/// finite values outside `[0, 1]`.
pub fn check_coefficient(q: f64) -> Result<(), ModelError> {
    if !q.is_finite() {
        return Err(ModelError::NonFiniteSharingCoefficient { q });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(ModelError::InvalidSharingCoefficient { q });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_tiny_caches() {
        assert_eq!(ModelParams::new(0), Err(ModelError::CacheTooSmall { lines: 0 }));
        assert_eq!(ModelParams::new(1), Err(ModelError::CacheTooSmall { lines: 1 }));
        assert!(ModelParams::new(2).is_ok());
    }

    #[test]
    fn k_matches_definition() {
        let p = ModelParams::new(8192).unwrap();
        assert!((p.k() - 8191.0 / 8192.0).abs() < 1e-15);
        assert!(p.log_k() < 0.0);
    }

    #[test]
    fn k_pow_decays_monotonically() {
        let p = ModelParams::new(128).unwrap();
        let mut prev = 1.0;
        for n in 1..2000 {
            let v = p.k_pow(n);
            assert!(v < prev, "k^n must strictly decrease");
            assert!(v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn k_pow_zero_is_one() {
        let p = ModelParams::new(64).unwrap();
        assert_eq!(p.k_pow(0), 1.0);
    }

    #[test]
    fn k_pow_matches_naive_product() {
        let p = ModelParams::new(16).unwrap();
        let mut naive = 1.0f64;
        for n in 1..=100u64 {
            naive *= p.k();
            assert!((p.k_pow(n) - naive).abs() < 1e-12, "mismatch at n={n}");
        }
    }

    #[test]
    fn footprint_validation() {
        let p = ModelParams::new(100).unwrap();
        assert!(p.check_footprint(0.0).is_ok());
        assert!(p.check_footprint(100.0).is_ok());
        assert!(p.check_footprint(50.5).is_ok());
        assert!(p.check_footprint(-0.1).is_err());
        assert!(p.check_footprint(100.1).is_err());
        assert!(p.check_footprint(f64::NAN).is_err());
        assert!(p.check_footprint(f64::INFINITY).is_err());
    }

    #[test]
    fn coefficient_validation() {
        assert!(check_coefficient(0.0).is_ok());
        assert!(check_coefficient(1.0).is_ok());
        assert!(check_coefficient(0.5).is_ok());
        assert!(check_coefficient(-0.01).is_err());
        assert!(check_coefficient(1.01).is_err());
        assert!(check_coefficient(f64::NAN).is_err());
    }

    #[test]
    fn out_of_range_coefficients_are_typed_as_invalid() {
        assert!(matches!(
            check_coefficient(-0.5),
            Err(ModelError::InvalidSharingCoefficient { q }) if q == -0.5
        ));
        assert!(matches!(
            check_coefficient(2.0),
            Err(ModelError::InvalidSharingCoefficient { q }) if q == 2.0
        ));
    }

    #[test]
    fn non_finite_coefficients_are_typed_distinctly() {
        assert!(matches!(
            check_coefficient(f64::NAN),
            Err(ModelError::NonFiniteSharingCoefficient { q }) if q.is_nan()
        ));
        assert!(matches!(
            check_coefficient(f64::INFINITY),
            Err(ModelError::NonFiniteSharingCoefficient { q }) if q.is_infinite()
        ));
        assert!(matches!(
            check_coefficient(f64::NEG_INFINITY),
            Err(ModelError::NonFiniteSharingCoefficient { .. })
        ));
    }
}
