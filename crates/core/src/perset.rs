//! A per-set occupancy generalization of the paper's birth–death chain
//! to set-associative LRU caches.
//!
//! The paper's closed forms assume a direct-mapped cache: each of a
//! blocking thread's misses lands in a uniformly random set and displaces
//! whatever single line lives there, giving the per-miss survival factor
//! `k = (N−1)/N`. With `W` ways per set and true-LRU replacement two
//! things change: a miss displaces nothing while its set still has vacant
//! ways, and when it does displace, the victim is the set's LRU way — so
//! *whose* line dies depends on the age ordering of the set's occupants.
//!
//! The generalization therefore tracks one extra scalar alongside each
//! thread's expected footprint `f`: the cache's total expected occupancy
//! `T` (all threads' resident lines). Modelling ways as independently
//! occupied with the population frequencies (`f/N` by the tracked thread,
//! `(T−f)/N` by everyone else, `1 − T/N` vacant), the per-global-miss
//! drifts are:
//!
//! * **total occupancy**: `T' = T + 1 − (T/N)^W` — a miss grows the cache
//!   unless the chosen set was full.
//! * **blocking** (the thread that misses): `f' = f + 1 − (T/N)^W · f/T`
//!   — the inserted line is the blocker's; the evicted LRU way (when the
//!   set is full) is the blocker's own with the age-uniform probability
//!   `f/T`, since its lines are the ones being continuously refreshed.
//! * **independent** (a sleeping, unrelated thread): `f' = f − ((T/N)^W −
//!   ((T−f)/N)^W)` — the sleeper's lines are strictly the *oldest* in any
//!   set they occupy, so it loses a line exactly when the chosen set is
//!   full and holds at least one of its lines.
//! * **dependent** (shares fraction `q > 0` of the blocker's region):
//!   `f' = f + q − (T/N)^W · f/T` — reloads of the shared region insert
//!   the sleeper's lines at rate `q`, and those lines age uniformly like
//!   the blocker's (they are re-touched by the blocker), so eviction uses
//!   the age-uniform form. Fixed point at full cache: `f* = qN`.
//!
//! At `W = 1` every eviction term collapses to `f/N` independently of
//! `T`, so all three reduce exactly to the paper's direct-mapped
//! recurrences (`f' = f + 1 − f/N`, `f' = f·k`, `f' = qN − (qN − f)·k`)
//! and the estimator degenerates to the closed forms on the default
//! geometry. Unlike [`LocalityEstimator`](crate::LocalityEstimator) the
//! drifts have no log-space invariance to exploit, so updates are eager
//! `O(tracked threads)` per interval — the price of generality, and
//! exactly the cost Table 3 motivates avoiding for the common case.

use crate::estimator::FootprintEstimator;
use crate::graph::SharingGraph;
use crate::priority::PriorityUpdate;
use crate::{CpuId, ModelError, ThreadId};
use std::collections::BTreeMap;

/// Per-miss integration is chunked so one huge interval cannot stall a
/// scheduling decision: beyond this many steps the drift is applied in
/// equal-sized Euler super-steps (the drifts are smooth and contractive,
/// so the coarsening error is far below the model error).
const MAX_STEPS_PER_INTERVAL: u64 = 4096;

/// Which drift applies to a tracked thread for one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerSetCase {
    /// The thread doing the missing (case 1).
    Blocking,
    /// An unrelated thread resident in the same cache (case 2).
    Independent,
    /// A thread sharing fraction `q ∈ (0, 1]` of its state (case 3).
    Dependent(f64),
}

/// One per-global-miss Euler step of the per-set drifts (`h = 1` miss).
///
/// `f` is the tracked thread's expected footprint in lines, `total` the
/// cache's total expected occupancy, `n_lines` the capacity `N`, `ways`
/// the associativity `W`. Returns the advanced `(f, total)`, clamped to
/// `0 ≤ f ≤ total ≤ N`.
#[inline]
pub fn drift_step(case: PerSetCase, f: f64, total: f64, n_lines: f64, ways: f64) -> (f64, f64) {
    step_scaled(case, f, total, n_lines, ways, 1.0)
}

#[inline]
fn step_scaled(
    case: PerSetCase,
    f: f64,
    total: f64,
    n_lines: f64,
    ways: f64,
    h: f64,
) -> (f64, f64) {
    let total = total.clamp(f.max(0.0), n_lines);
    let p_full = (total / n_lines).clamp(0.0, 1.0).powf(ways);
    let total_next = (total + h * (1.0 - p_full)).min(n_lines);
    let f_next = match case {
        PerSetCase::Blocking => {
            let evict = if total > 0.0 { p_full * (f / total).clamp(0.0, 1.0) } else { 0.0 };
            f + h * (1.0 - evict)
        }
        PerSetCase::Dependent(q) if q > 0.0 => {
            let evict = if total > 0.0 { p_full * (f / total).clamp(0.0, 1.0) } else { 0.0 };
            f + h * (q - evict)
        }
        // Case 2, and the q → 0 limit of case 3 (a sleeper that shares
        // nothing decays like any other sleeper).
        _ => {
            let p_full_others = (((total - f) / n_lines).clamp(0.0, 1.0)).powf(ways);
            f - h * (p_full - p_full_others)
        }
    };
    (f_next.clamp(0.0, total_next), total_next)
}

/// Expected `(footprint, total occupancy)` after `n` misses of the given
/// case, starting from `s0` tracked lines in a cache holding `total0`
/// lines overall, with capacity `n_lines` and `ways` ways per set.
///
/// This is the pure-function form used by the `repro geometry` validation
/// experiment; [`PerSetEstimator`] applies the same integration online.
pub fn predict_after(
    case: PerSetCase,
    s0: f64,
    total0: f64,
    n: u64,
    n_lines: f64,
    ways: f64,
) -> (f64, f64) {
    let mut f = s0.clamp(0.0, n_lines);
    let mut total = total0.clamp(f, n_lines);
    if n == 0 {
        return (f, total);
    }
    let (steps, h) = if n <= MAX_STEPS_PER_INTERVAL {
        (n, 1.0)
    } else {
        (MAX_STEPS_PER_INTERVAL, n as f64 / MAX_STEPS_PER_INTERVAL as f64)
    };
    for _ in 0..steps {
        (f, total) = step_scaled(case, f, total, n_lines, ways, h);
    }
    (f, total)
}

#[derive(Debug, Default, Clone)]
struct PerSetCpu {
    /// Expected footprint per tracked thread, in lines, kept eagerly
    /// up to date (no lazy decay — the drifts don't factor).
    footprints: BTreeMap<ThreadId, f64>,
    /// Expected total cache occupancy in lines (all threads, including
    /// ones never tracked here — advanced by the total-occupancy drift).
    total: f64,
    /// Total misses observed on this processor (diagnostics only).
    m: u64,
}

/// A [`FootprintEstimator`] built on the per-set drifts above.
///
/// Priorities are the raw expected footprints (monotone in the estimate,
/// which is all the LFF ordering requires). Every interval touches every
/// tracked thread, so there is no flop counter to report — `flop_counts`
/// stays at the trait default.
#[derive(Debug, Clone)]
pub struct PerSetEstimator {
    n_lines: f64,
    ways: f64,
    cpus: Vec<PerSetCpu>,
}

impl PerSetEstimator {
    /// Creates an estimator for a cache of `lines` total lines with
    /// `ways` ways per set, tracked independently on `cpus` processors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadEstimatorGeometry`] if `lines` or `ways`
    /// is zero, `ways` exceeds `lines`, or `cpus` is zero.
    pub fn new(lines: usize, ways: u64, cpus: usize) -> Result<Self, ModelError> {
        if lines == 0 || ways == 0 || ways as usize > lines || cpus == 0 {
            return Err(ModelError::BadEstimatorGeometry {
                reason: format!("lines={lines} ways={ways} cpus={cpus}"),
            });
        }
        Ok(PerSetEstimator {
            n_lines: lines as f64,
            ways: ways as f64,
            cpus: vec![PerSetCpu::default(); cpus],
        })
    }

    /// Total misses recorded on `cpu` so far.
    pub fn misses(&self, cpu: CpuId) -> u64 {
        self.cpus[cpu.0].m
    }

    /// Number of threads tracked on `cpu`.
    pub fn tracked_on(&self, cpu: CpuId) -> usize {
        self.cpus[cpu.0].footprints.len()
    }

    /// Expected total occupancy of `cpu`'s cache, in lines.
    pub fn total_occupancy(&self, cpu: CpuId) -> f64 {
        self.cpus[cpu.0].total
    }
}

impl FootprintEstimator for PerSetEstimator {
    fn on_switch(&mut self, cpu: CpuId, tid: ThreadId) {
        self.cpus[cpu.0].footprints.entry(tid).or_insert(0.0);
    }

    fn on_miss(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        n: u64,
        graph: &SharingGraph,
    ) -> Vec<PriorityUpdate> {
        let state = &mut self.cpus[cpu.0];
        state.m += n;
        state.footprints.entry(tid).or_insert(0.0);
        // Eagerly advance every tracked thread by this interval's misses.
        // Each integrates against the same total-occupancy trajectory
        // (which depends only on its own starting value), so the threads
        // stay mutually consistent.
        let (n_lines, ways, total0) = (self.n_lines, self.ways, state.total);
        let mut total_next = total0;
        for (&x, f) in state.footprints.iter_mut() {
            let case = if x == tid {
                PerSetCase::Blocking
            } else {
                let q = graph.weight(tid, x);
                if q > 0.0 {
                    PerSetCase::Dependent(q)
                } else {
                    PerSetCase::Independent
                }
            };
            (*f, total_next) = predict_after(case, *f, total0, n, n_lines, ways);
        }
        state.total = total_next;
        // Same update contract as the Markov estimator: blocker first,
        // then dependents in graph order.
        let mut updates = Vec::with_capacity(1 + graph.out_degree(tid));
        updates.push(PriorityUpdate { thread: tid, prio: state.footprints[&tid] });
        for (dep, _) in graph.dependents_of(tid) {
            if let Some(&f) = state.footprints.get(&dep) {
                updates.push(PriorityUpdate { thread: dep, prio: f });
            }
        }
        updates
    }

    fn estimate(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        self.cpus[cpu.0].footprints.get(&tid).copied().unwrap_or(0.0)
    }

    fn priority(&self, cpu: CpuId, tid: ThreadId) -> f64 {
        self.estimate(cpu, tid)
    }

    fn retire(&mut self, tid: ThreadId) {
        for cpu in &mut self.cpus {
            cpu.footprints.remove(&tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelParams;

    const N: f64 = 8192.0;

    /// Footprint after `n` misses, discarding the occupancy component.
    fn fp(case: PerSetCase, s0: f64, total0: f64, n: u64, w: f64) -> f64 {
        predict_after(case, s0, total0, n, N, w).0
    }

    #[test]
    fn w1_blocking_matches_paper_closed_form() {
        let params = ModelParams::new(8192).unwrap();
        for &(s0, n) in &[(0.0, 1u64), (100.0, 500), (4096.0, 2000), (0.0, 100_000)] {
            let closed = params.n() - (params.n() - s0) * params.k_pow(n);
            let perset = fp(PerSetCase::Blocking, s0, s0, n, 1.0);
            let tol = 1e-6 * N + if n > MAX_STEPS_PER_INTERVAL { 2.0 } else { 0.0 };
            assert!(
                (closed - perset).abs() <= tol,
                "s0={s0} n={n}: closed {closed} vs per-set {perset}"
            );
        }
    }

    #[test]
    fn w1_independent_matches_paper_closed_form() {
        let params = ModelParams::new(8192).unwrap();
        for &(s0, n) in &[(8192.0, 100u64), (2048.0, 3000), (100.0, 50)] {
            let closed = s0 * params.k_pow(n);
            let perset = fp(PerSetCase::Independent, s0, s0, n, 1.0);
            assert!(
                (closed - perset).abs() <= 1e-6 * N,
                "s0={s0} n={n}: closed {closed} vs per-set {perset}"
            );
        }
    }

    #[test]
    fn w1_dependent_matches_paper_closed_form() {
        let params = ModelParams::new(8192).unwrap();
        let q = 0.25;
        for &(s0, n) in &[(0.0, 400u64), (1000.0, 2500)] {
            let closed = q * params.n() - (q * params.n() - s0) * params.k_pow(n);
            let perset = fp(PerSetCase::Dependent(q), s0, s0, n, 1.0);
            assert!(
                (closed - perset).abs() <= 1e-6 * N,
                "s0={s0} n={n}: closed {closed} vs per-set {perset}"
            );
        }
    }

    #[test]
    fn w1_drifts_are_total_invariant() {
        // At W = 1 every eviction term collapses to f/N, so the paper's
        // closed forms hold regardless of how full the rest of the cache
        // is — the defining property of the direct-mapped chain.
        for case in [PerSetCase::Blocking, PerSetCase::Independent, PerSetCase::Dependent(0.5)] {
            let empty = fp(case, 2048.0, 2048.0, 1000, 1.0);
            let full = fp(case, 2048.0, N, 1000, 1.0);
            assert!((empty - full).abs() < 1e-9, "{case:?}: {empty} vs {full}");
        }
    }

    #[test]
    fn drifts_respect_fixed_points_and_bounds() {
        for &w in &[1.0, 8.0, 8192.0] {
            // Blocking saturates at N and never exceeds it.
            let f = fp(PerSetCase::Blocking, 0.0, 0.0, 1_000_000, w);
            assert!(f <= N && f > N * 0.99, "W={w}: blocking fixed point {f}");
            // Independent decays to zero and never goes negative.
            let f = fp(PerSetCase::Independent, N, N, 1_000_000, w);
            assert!((0.0..1.0).contains(&f), "W={w}: independent tail {f}");
            // Dependent saturates at qN in a full cache.
            let f = fp(PerSetCase::Dependent(0.5), 0.0, N, 1_000_000, w);
            assert!(f <= 0.5 * N + 1e-9 && f > 0.49 * N, "W={w}: dependent fixed point {f}");
            // Total occupancy saturates at N.
            let (_, t) = predict_after(PerSetCase::Blocking, 0.0, 0.0, 1_000_000, N, w);
            assert!(t <= N && t > N * 0.99, "W={w}: occupancy fixed point {t}");
        }
    }

    #[test]
    fn higher_associativity_evicts_sleepers_faster_in_a_full_cache() {
        // Under LRU with more ways, a sleeping thread's (globally old)
        // lines are evicted sooner than under direct mapping — once the
        // cache is full, every miss in a sleeper-holding set kills one.
        let dm = fp(PerSetCase::Independent, 4096.0, N, 2000, 1.0);
        let w8 = fp(PerSetCase::Independent, 4096.0, N, 2000, 8.0);
        let fa = fp(PerSetCase::Independent, 4096.0, N, 2000, 8192.0);
        assert!(fa < w8 && w8 < dm, "decay must speed up with ways: {dm} {w8} {fa}");
    }

    #[test]
    fn vacant_ways_protect_sleepers() {
        // In a mostly-empty associative cache, misses land in vacant ways
        // and the sleeper decays far more slowly than the closed form's
        // always-displace assumption says.
        let half_full = fp(PerSetCase::Independent, 4096.0, 4096.0, 1000, 8.0);
        let full = fp(PerSetCase::Independent, 4096.0, N, 1000, 8.0);
        assert!(
            half_full > full + 500.0,
            "vacancy must slow decay: half-full {half_full} vs full {full}"
        );
    }

    #[test]
    fn chunked_integration_stays_close_to_exact() {
        // n just over the chunk limit: coarse Euler steps must not drift
        // far from the per-miss iteration.
        let n = MAX_STEPS_PER_INTERVAL * 3 + 17;
        let (mut exact, mut total) = (0.0, 0.0);
        for _ in 0..n {
            (exact, total) = drift_step(PerSetCase::Blocking, exact, total, N, 8.0);
        }
        let coarse = fp(PerSetCase::Blocking, 0.0, 0.0, n, 8.0);
        assert!((exact - coarse).abs() < 0.01 * N, "exact {exact} vs chunked {coarse}");
    }

    #[test]
    fn estimator_tracks_blocker_and_sleeper() {
        let mut est = PerSetEstimator::new(8192, 8, 2).unwrap();
        let g = SharingGraph::new();
        let (a, b) = (ThreadId(1), ThreadId(2));
        est.on_switch(CpuId(0), a);
        est.on_switch(CpuId(0), b);
        let ups = est.on_miss(CpuId(0), a, 2000, &g);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].thread, a);
        let fa = est.estimate(CpuId(0), a);
        assert!(fa > 1900.0 && fa <= 2000.0, "blocker fills vacant ways: {fa}");
        assert!((est.total_occupancy(CpuId(0)) - fa).abs() < 1e-9);
        assert_eq!(est.estimate(CpuId(0), b), 0.0, "empty sleeper stays empty");
        // b runs long enough to fill the cache; a must decay.
        est.on_miss(CpuId(0), b, 20_000, &g);
        assert!(est.estimate(CpuId(0), a) < fa);
        assert!(est.estimate(CpuId(0), b) > 6000.0);
        assert_eq!(est.misses(CpuId(0)), 22_000);
        // Per-cpu isolation and retire.
        assert_eq!(est.estimate(CpuId(1), a), 0.0);
        est.retire(a);
        assert_eq!(est.estimate(CpuId(0), a), 0.0);
        assert_eq!(est.tracked_on(CpuId(0)), 1);
    }

    #[test]
    fn dependent_updates_follow_graph_order() {
        let mut est = PerSetEstimator::new(8192, 2, 1).unwrap();
        let mut g = SharingGraph::new();
        let (a, b) = (ThreadId(1), ThreadId(2));
        g.set(a, b, 0.5).unwrap();
        est.on_switch(CpuId(0), a);
        est.on_switch(CpuId(0), b);
        let ups = est.on_miss(CpuId(0), a, 1000, &g);
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[0].thread, a);
        assert_eq!(ups[1].thread, b);
        assert!(ups[1].prio > 0.0, "dependent grows toward qN");
        assert!(ups[1].prio <= 0.5 * 8192.0 + 1e-9);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        assert!(PerSetEstimator::new(0, 1, 1).is_err());
        assert!(PerSetEstimator::new(64, 0, 1).is_err());
        assert!(PerSetEstimator::new(64, 128, 1).is_err());
        assert!(PerSetEstimator::new(64, 1, 0).is_err());
    }
}
