//! Log-space priority schemes for LFF and CRT scheduling (paper §4).
//!
//! Both policies need, at every context switch, the runnable thread with
//! (LFF) the largest expected footprint or (CRT) the smallest cache-reload
//! ratio on the switching processor. Recomputing every thread's footprint
//! at each switch would cost `O(T)`; instead the paper picks priority
//! functions that are **invariant under the decay of independent threads**:
//!
//! Let `m(t)` be the total number of secondary-cache misses taken by the
//! processor since program start, and `k = (N−1)/N`. Then
//!
//! * **LFF**: `p(t) = log(E[F](t)) − m(t)·log k`
//! * **CRT**: `p(t) = log(E[F](t)) − log(E[F_last]) − m(t)·log k`
//!
//! For a thread *B* independent of the running thread, `E[F_B]` decays by
//! exactly `k^Δm`, so `log E[F_B]` falls by `Δm·log k` — precisely the
//! amount the `−m(t)·log k` term rises by. Its priority is therefore
//! *constant* and never needs updating: only the blocking thread and its
//! `out-degree` dependents are touched, in a handful of floating-point
//! instructions each (Table 3).
//!
//! Since `(p_A < p_B) ⇔ (E[F_A] < E[F_B])` at any instant (for LFF; the
//! analogous relation with reload ratios holds for CRT), the schemes order
//! threads exactly as the raw model would.

use crate::flops::FlopCounter;
use crate::tables::PrecomputedTables;
use crate::{ModelParams, ThreadId};

/// Which of the paper's two locality policies a priority value encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Largest Footprint First (paper §4.1): dispatch the runnable thread
    /// with the largest expected footprint in this processor's cache.
    Lff,
    /// Smallest cache-reload ratio (paper §4.2, extending Squillante &
    /// Lazowska): dispatch the runnable thread with the smallest fraction
    /// of its last-run footprint left to reload.
    Crt,
}

impl PolicyKind {
    /// Short lowercase name used in reports ("lff" / "crt").
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lff => "lff",
            PolicyKind::Crt => "crt",
        }
    }
}

/// Per-(thread, processor) footprint bookkeeping.
///
/// `prio` is the policy priority, valid at *any* time until the thread is
/// next involved in an update (that is the whole trick). `e_f` is the
/// exact expected footprint at processor-miss-count `m_at_update`, kept
/// separately so footprints can be recovered without exponentiating the
/// (rounded, table-based) priority. `e_f_last_run` is the CRT denominator:
/// the expected footprint the thread had when it last finished running on
/// this processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintEntry {
    /// Policy priority (log-space, inflated; see module docs).
    pub prio: f64,
    /// Expected footprint in lines at `m_at_update`.
    pub e_f: f64,
    /// Processor miss count when `e_f` was computed.
    pub m_at_update: u64,
    /// Expected footprint when the thread last finished a run here
    /// (`E[F_last]`, the CRT reload-ratio denominator).
    pub e_f_last_run: f64,
}

impl FootprintEntry {
    /// A cold entry: no cached state on this processor.
    pub fn cold() -> Self {
        FootprintEntry { prio: 0.0, e_f: 0.0, m_at_update: 0, e_f_last_run: 0.0 }
    }
}

/// A priority-update result for one thread, produced at a context switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityUpdate {
    /// The thread whose priority changed.
    pub thread: ThreadId,
    /// Its new priority value.
    pub prio: f64,
}

/// The update engine for one policy: applies the paper's case-1/2/3
/// formulas to [`FootprintEntry`] values using precomputed tables, and
/// counts the floating-point work it does.
#[derive(Debug, Clone)]
pub struct PrioritySchemes {
    policy: PolicyKind,
    tables: PrecomputedTables,
    counter: FlopCounter,
}

impl PrioritySchemes {
    /// Creates an update engine for `policy` over a cache described by
    /// `params`.
    pub fn new(policy: PolicyKind, params: ModelParams) -> Self {
        PrioritySchemes {
            policy,
            tables: PrecomputedTables::new(params),
            counter: FlopCounter::new(),
        }
    }

    /// Creates an engine with custom tables (e.g. a short `kⁿ` table for
    /// tests).
    pub fn with_tables(policy: PolicyKind, tables: PrecomputedTables) -> Self {
        PrioritySchemes { policy, tables, counter: FlopCounter::new() }
    }

    /// The policy this engine updates priorities for.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// The model parameters in use.
    pub fn params(&self) -> ModelParams {
        self.tables.params()
    }

    /// The precomputed tables in use.
    pub fn tables(&self) -> &PrecomputedTables {
        &self.tables
    }

    /// The floating-point-operation counter (for Table 3).
    pub fn flop_counter(&self) -> &FlopCounter {
        &self.counter
    }

    /// Priority of a thread with **no cached state** on this processor, as
    /// of miss count `m_now`. Comparable with every stored priority thanks
    /// to the shared `−m·log k` inflation.
    pub fn cold_priority(&self, m_now: u64) -> f64 {
        // log(E[F]) clamps to log(1) = 0 for an empty footprint; for CRT the
        // numerator and denominator are both empty, so only the inflation
        // term remains in either policy.
        -(m_now as f64) * self.tables.log_k()
    }

    /// The thread's expected footprint (lines) at miss count `m_now`.
    ///
    /// Pure decay since the entry's last update: `e_f · k^(m_now − m_upd)`.
    pub fn expected_footprint(&self, entry: &FootprintEntry, m_now: u64) -> f64 {
        entry.e_f * self.tables.k_pow(m_now.saturating_sub(entry.m_at_update))
    }

    /// Called when the thread is dispatched on the processor at miss count
    /// `m_now`: decays the stored footprint to "now" so that the upcoming
    /// interval's case-1 update starts from the right `S_A`.
    pub fn on_dispatch(&self, entry: &mut FootprintEntry, m_now: u64) {
        let s = self.expected_footprint(entry, m_now);
        self.counter.add_flops(1);
        self.counter.add_lookups(1);
        entry.e_f = s;
        entry.m_at_update = m_now;
    }

    /// Case 1 — the thread itself blocks (or yields) after taking `n`
    /// misses; processor miss count becomes `m_new = m(t₀) + n`.
    ///
    /// Returns the new priority. Cost: a few flops + table lookups,
    /// recorded in the [`FlopCounter`].
    pub fn on_block_self(&self, entry: &mut FootprintEntry, n: u64, m_new: u64) -> f64 {
        let nn = self.params().n();
        let s = entry.e_f; // set at dispatch; nothing else ran on this cpu since
        let kn = self.tables.k_pow(n);
        self.counter.add_lookups(1);
        let e_new = nn - (nn - s) * kn;
        self.counter.add_flops(3); // sub, mul, sub
        entry.e_f = e_new;
        entry.m_at_update = m_new;
        entry.e_f_last_run = e_new; // it just ran: nothing left to reload (R = 0)
        let prio = match self.policy {
            PolicyKind::Lff => {
                let log_e = self.tables.log_footprint(e_new);
                self.counter.add_lookups(1);
                self.counter.add_flops(2); // mul, sub
                log_e - m_new as f64 * self.tables.log_k()
            }
            PolicyKind::Crt => {
                // log(E) − log(E_last) cancels exactly: p = −m·log k.
                self.counter.add_flops(1); // mul (−log k precomputed)
                -(m_new as f64) * self.tables.log_k()
            }
        };
        entry.prio = prio;
        prio
    }

    /// Case 3 — a thread dependent on the blocker through an edge of
    /// weight `q`. `m_t0` is the processor miss count at the *start* of
    /// the blocker's interval, `n` the misses of the interval.
    ///
    /// Returns the new priority.
    pub fn on_dependent(&self, entry: &mut FootprintEntry, q: f64, n: u64, m_t0: u64) -> f64 {
        // Decay the stored footprint to the interval start to get S_C.
        let s_c = entry.e_f * self.tables.k_pow(m_t0.saturating_sub(entry.m_at_update));
        self.counter.add_flops(1);
        self.counter.add_lookups(1);
        let target = q * self.params().n();
        let kn = self.tables.k_pow(n);
        self.counter.add_lookups(1);
        let e_new = target - (target - s_c) * kn;
        self.counter.add_flops(4); // mul(q·N), sub, mul, sub
        let m_new = m_t0 + n;
        entry.e_f = e_new;
        entry.m_at_update = m_new;
        let prio = match self.policy {
            PolicyKind::Lff => {
                let log_e = self.tables.log_footprint(e_new);
                self.counter.add_lookups(1);
                self.counter.add_flops(2);
                log_e - m_new as f64 * self.tables.log_k()
            }
            PolicyKind::Crt => {
                let log_e = self.tables.log_footprint(e_new);
                let log_last = self.tables.log_footprint(entry.e_f_last_run);
                self.counter.add_lookups(2);
                self.counter.add_flops(3); // sub, mul, sub
                log_e - log_last - m_new as f64 * self.tables.log_k()
            }
        };
        entry.prio = prio;
        prio
    }

    /// Case 2 — independent threads: **no update**. Provided so call sites
    /// document the case explicitly; compiles to nothing.
    #[inline]
    pub fn on_independent(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemes(policy: PolicyKind, lines: usize) -> PrioritySchemes {
        PrioritySchemes::with_tables(
            policy,
            PrecomputedTables::with_kpow_entries(ModelParams::new(lines).unwrap(), 1 << 16),
        )
    }

    /// Simulate: thread runs, blocks with n misses; then other independent
    /// threads push m forward; its stored priority must stay consistent
    /// with its decayed footprint.
    #[test]
    fn lff_priority_invariant_under_independent_decay() {
        let s = schemes(PolicyKind::Lff, 1024);
        let mut e = FootprintEntry::cold();
        s.on_dispatch(&mut e, 0);
        let p0 = s.on_block_self(&mut e, 500, 500);
        // 2000 further misses by independent threads.
        let m_now = 2500;
        let f_now = s.expected_footprint(&e, m_now);
        // Reconstruct priority from the decayed footprint at m_now; it must
        // equal the stored (never-updated) priority up to table rounding.
        let reconstructed = s.tables().log_footprint(f_now) - m_now as f64 * s.tables().log_k();
        // Tolerance: both sides round footprints to whole lines before the
        // log lookup, contributing up to ~1/(2·F) of relative error each.
        assert!((p0 - reconstructed).abs() < 2e-2, "{p0} vs {reconstructed}");
        assert_eq!(e.prio, p0);
    }

    #[test]
    fn lff_orders_by_footprint() {
        // Two threads block at different times with different footprints;
        // the one with the larger *current* footprint must have the larger
        // stored priority, with no updates in between.
        let s = schemes(PolicyKind::Lff, 4096);
        let mut a = FootprintEntry::cold();
        let mut b = FootprintEntry::cold();

        // A runs first, takes 3000 misses, blocks at m=3000.
        s.on_dispatch(&mut a, 0);
        s.on_block_self(&mut a, 3000, 3000);
        // B runs next, takes 500 misses, blocks at m=3500.
        s.on_dispatch(&mut b, 3000);
        s.on_block_self(&mut b, 500, 3500);

        let m_now = 3500;
        let fa = s.expected_footprint(&a, m_now);
        let fb = s.expected_footprint(&b, m_now);
        assert!(fa > fb, "A built far more state: {fa} vs {fb}");
        assert!(a.prio > b.prio, "priorities must order like footprints");
    }

    #[test]
    fn crt_blocking_thread_has_top_priority() {
        // The thread that just blocked has R=0 — the best possible ratio —
        // so its priority must exceed that of a thread that blocked earlier
        // (whose footprint has decayed, R > 0).
        let s = schemes(PolicyKind::Crt, 1024);
        let mut a = FootprintEntry::cold();
        let mut b = FootprintEntry::cold();
        s.on_dispatch(&mut a, 0);
        s.on_block_self(&mut a, 400, 400);
        s.on_dispatch(&mut b, 400);
        s.on_block_self(&mut b, 400, 800);
        // At m=800: B just blocked (R=0); A has decayed (R>0).
        assert!(b.prio > a.prio);
    }

    #[test]
    fn crt_priority_matches_ratio_ordering() {
        // p = log(E/E_last) − m·log k; smaller reload ratio ⇔ larger E/E_last
        // ⇔ larger priority at equal m.
        let s = schemes(PolicyKind::Crt, 2048);
        let mut a = FootprintEntry::cold();
        let mut b = FootprintEntry::cold();
        // A blocks with a big footprint at m=2000.
        s.on_dispatch(&mut a, 0);
        s.on_block_self(&mut a, 2000, 2000);
        // B blocks with a small footprint at m=2500.
        s.on_dispatch(&mut b, 2000);
        s.on_block_self(&mut b, 500, 2500);
        // Let another 3000 independent misses pass.
        let m_now = 5500;
        let fa = s.expected_footprint(&a, m_now);
        let fb = s.expected_footprint(&b, m_now);
        let ra = 1.0 - fa / a.e_f_last_run;
        let rb = 1.0 - fb / b.e_f_last_run;
        // Both decayed by the same factor since their blocks... A decayed
        // longer, so A's ratio is worse.
        assert!(ra > rb);
        assert!(a.prio < b.prio, "worse ratio must mean lower priority");
    }

    #[test]
    fn dependent_update_grows_toward_q_n() {
        for policy in [PolicyKind::Lff, PolicyKind::Crt] {
            let s = schemes(policy, 1000);
            let mut c = FootprintEntry::cold();
            // c acquired a little state earlier.
            c.e_f = 50.0;
            c.m_at_update = 0;
            c.e_f_last_run = 50.0;
            let p1 = s.on_dependent(&mut c, 0.5, 2000, 0);
            assert!(c.e_f > 50.0 && c.e_f < 500.0, "policy {policy:?}: e_f={}", c.e_f);
            let p2 = s.on_dependent(&mut c, 0.5, 2000, 2000);
            assert!(c.e_f > 300.0, "should be close to 500 now: {}", c.e_f);
            assert!(p2 > p1 - 1e-9, "growing footprint must not lose priority: {p1} {p2}");
        }
    }

    #[test]
    fn dependent_with_q0_equals_pure_decay() {
        let s = schemes(PolicyKind::Lff, 1024);
        let mut c = FootprintEntry::cold();
        c.e_f = 400.0;
        c.m_at_update = 0;
        s.on_dependent(&mut c, 0.0, 1000, 0);
        let direct = 400.0 * s.params().k_pow(1000);
        assert!((c.e_f - direct).abs() < 1e-9);
    }

    #[test]
    fn cold_priority_comparable_with_entries() {
        let s = schemes(PolicyKind::Lff, 1024);
        let mut a = FootprintEntry::cold();
        s.on_dispatch(&mut a, 0);
        s.on_block_self(&mut a, 200, 200);
        // Any thread with state beats a cold thread at the same m.
        assert!(a.prio > s.cold_priority(200));
        // But after enormous decay the entry converges to the cold level.
        let m_far = 2_000_000;
        let f = s.expected_footprint(&a, m_far);
        assert!(f < 1.0);
        assert!(a.prio <= s.cold_priority(m_far) + 1e-9);
    }

    #[test]
    fn independent_update_is_free() {
        let s = schemes(PolicyKind::Lff, 1024);
        s.flop_counter().take();
        s.on_independent();
        assert_eq!(s.flop_counter().take(), (0, 0));
    }

    #[test]
    fn flop_costs_are_constant_and_small() {
        for policy in [PolicyKind::Lff, PolicyKind::Crt] {
            let s = schemes(policy, 4096);
            let mut e = FootprintEntry::cold();
            s.on_dispatch(&mut e, 0);
            s.flop_counter().take();
            s.on_block_self(&mut e, 100, 100);
            let (f_block, l_block) = s.flop_counter().take();
            assert!(f_block <= 8, "{policy:?} blocking flops {f_block}");
            assert!(l_block <= 3);
            s.on_dependent(&mut e, 0.5, 100, 100);
            let (f_dep, l_dep) = s.flop_counter().take();
            assert!(f_dep <= 10, "{policy:?} dependent flops {f_dep}");
            assert!(l_dep <= 5);
        }
    }

    #[test]
    fn crt_cheaper_than_lff_for_blocking_thread() {
        // Paper: CRT blocking update needs "just two (or even one)" FP
        // instructions; LFF needs the log lookup too.
        let lff = schemes(PolicyKind::Lff, 1024);
        let crt = schemes(PolicyKind::Crt, 1024);
        let mut e1 = FootprintEntry::cold();
        let mut e2 = FootprintEntry::cold();
        lff.on_dispatch(&mut e1, 0);
        crt.on_dispatch(&mut e2, 0);
        lff.flop_counter().take();
        crt.flop_counter().take();
        lff.on_block_self(&mut e1, 10, 10);
        crt.on_block_self(&mut e2, 10, 10);
        let lff_cost = lff.flop_counter().take();
        let crt_cost = crt.flop_counter().take();
        assert!(crt_cost.0 < lff_cost.0, "crt {crt_cost:?} vs lff {lff_cost:?}");
    }

    #[test]
    fn policy_names() {
        assert_eq!(PolicyKind::Lff.name(), "lff");
        assert_eq!(PolicyKind::Crt.name(), "crt");
    }
}
