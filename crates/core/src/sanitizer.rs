//! Counter sanitation: the defensive layer between raw PIC interval
//! deltas and the footprint estimator.
//!
//! The paper feeds the miss count `n` from the hardware counters
//! straight into `kⁿ`. That is fine in a simulator with perfect
//! counters; on hardware (and under this repo's injected faults, see
//! `locality_sim::faults`) the read path produces wrap artifacts,
//! dropped intervals, frozen registers, and noise. A single absurd `n`
//! (say 2³¹) collapses every expected footprint to zero and wrecks the
//! schedule long after the bad sample.
//!
//! [`CounterSanitizer`] guarantees the estimator only ever sees
//! *plausible* intervals:
//!
//! * **wraparound correction** — a register delta at or above
//!   [`WRAP_THRESHOLD`] cannot be a real one-quantum count (the
//!   registers are 32-bit and a quantum is ~10⁵ references); it is a
//!   mod-2³² artifact of a wrapped or reset register and is replaced by
//!   the thread's running EWMA estimate;
//! * **consistency clamps** — `hits ≤ refs` and `misses = refs − hits`
//!   are enforced, so misses can never be negative or exceed refs;
//! * **outlier clamping** — once a thread has history, a miss count
//!   more than [`SanitizerConfig::outlier_factor`]× its EWMA is clamped
//!   to the EWMA;
//! * **per-thread confidence** — every interval updates an EWMA
//!   confidence score in `[0, 1]`: clean samples pull it toward 1,
//!   corrected samples and counter traps toward 0. Schedulers use the
//!   score to decide when counter-driven priorities should no longer be
//!   trusted (see the `active-threads` crate's degraded mode).
//!
//! The sanitizer is deliberately ignorant of the simulator: it consumes
//! plain integers, so it would sit unchanged in front of real
//! `rd %pic` reads.

use crate::slots::ThreadSlots;
use crate::ThreadId;

/// Register deltas at or above this are treated as wrap/reset artifacts
/// (2³¹: half the 32-bit register range, far above any real quantum).
pub const WRAP_THRESHOLD: u64 = 1 << 31;

/// Tuning knobs for [`CounterSanitizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanitizerConfig {
    /// Smoothing factor of the per-thread miss/ref EWMAs (weight of the
    /// newest sample).
    pub ewma_alpha: f64,
    /// Smoothing factor of the confidence score.
    pub confidence_alpha: f64,
    /// A miss count above `outlier_factor × EWMA` is clamped (only once
    /// the thread has [`Self::warmup`] samples of history).
    pub outlier_factor: f64,
    /// Samples of history required before outlier clamping engages.
    pub warmup: u32,
    /// Miss scale below which outliers are never flagged (tiny EWMAs
    /// would otherwise flag ordinary cold-start intervals).
    pub outlier_floor: f64,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            ewma_alpha: 0.25,
            confidence_alpha: 0.25,
            outlier_factor: 8.0,
            warmup: 3,
            outlier_floor: 64.0,
        }
    }
}

/// One sanitized scheduling interval, safe to feed to the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SanitizedInterval {
    /// E-cache references (corrected).
    pub refs: u64,
    /// E-cache hits (corrected, `hits ≤ refs`).
    pub hits: u64,
    /// E-cache misses (`refs − hits`, always).
    pub misses: u64,
    /// The thread's confidence score after this interval, in `[0, 1]`.
    pub confidence: f64,
    /// Whether any correction was applied to this interval.
    pub corrected: bool,
}

#[derive(Debug, Clone, Copy)]
struct ThreadState {
    ewma_misses: f64,
    ewma_refs: f64,
    confidence: f64,
    seen: u32,
}

impl Default for ThreadState {
    fn default() -> Self {
        // Innocent until proven faulty: confidence starts at 1.
        ThreadState { ewma_misses: 0.0, ewma_refs: 0.0, confidence: 1.0, seen: 0 }
    }
}

/// Stateful per-thread counter sanitizer; see the module docs.
///
/// Per-thread state lives in a dense `Vec` indexed by a
/// [`ThreadSlots`]-assigned slot; slots recycled after
/// [`forget`](Self::forget) are reset on rebinding, so a new thread
/// never inherits a dead thread's EWMAs or confidence.
#[derive(Debug, Clone, Default)]
pub struct CounterSanitizer {
    config: SanitizerConfig,
    slots: ThreadSlots,
    states: Vec<ThreadState>,
}

impl CounterSanitizer {
    /// Creates a sanitizer with the given tuning.
    pub fn new(config: SanitizerConfig) -> Self {
        CounterSanitizer { config, slots: ThreadSlots::new(), states: Vec::new() }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// The dense state index for `tid`, binding (and zeroing) a slot on
    /// first sight.
    fn state_index(&mut self, tid: ThreadId) -> usize {
        if let Some(slot) = self.slots.lookup_cached(tid) {
            return slot.index();
        }
        let index = self.slots.bind(tid).index();
        if index == self.states.len() {
            self.states.push(ThreadState::default());
        } else {
            // Recycled slot: erase the previous thread's history.
            self.states[index] = ThreadState::default();
        }
        index
    }

    /// The current confidence of `tid` (1.0 for unknown threads).
    pub fn confidence(&self, tid: ThreadId) -> f64 {
        self.slots.lookup(tid).map_or(1.0, |s| self.states[s.index()].confidence)
    }

    /// Drops all state for `tid` (thread exit); the slot is recycled
    /// for future threads.
    pub fn forget(&mut self, tid: ThreadId) {
        if let Some(slot) = self.slots.release(tid) {
            self.states[slot.index()] = ThreadState::default();
        }
    }

    /// Records that reading `tid`'s interval trapped (no data at all)
    /// and returns the updated confidence.
    pub fn note_trap(&mut self, tid: ThreadId) -> f64 {
        let alpha = self.config.confidence_alpha;
        let index = self.state_index(tid);
        let st = &mut self.states[index];
        st.confidence += alpha * (0.0 - st.confidence);
        let confidence = st.confidence;
        locality_trace::emit_with(|| locality_trace::TraceEvent::SanitizerVerdict {
            tid: tid.0,
            confidence,
            corrected: true,
        });
        confidence
    }

    /// Sanitizes one raw interval delta attributed to `tid`.
    ///
    /// The returned interval always satisfies `hits ≤ refs`,
    /// `misses == refs − hits`, `refs < 2³¹` and
    /// `confidence ∈ [0, 1]` — no wrap garbage, no negative or absurd
    /// miss counts, nothing that would make `kⁿ` underflow to zero.
    pub fn sanitize(
        &mut self,
        tid: ThreadId,
        refs: u64,
        hits: u64,
        misses: u64,
    ) -> SanitizedInterval {
        let cfg = self.config;
        let index = self.state_index(tid);
        let st = &mut self.states[index];
        let mut corrected = false;

        // Wrap/reset artifact: a register went backwards between
        // snapshots and the 32-bit wrapping subtraction produced a
        // near-2³² delta. The true interval count is unknowable, so
        // substitute the thread's running estimate.
        let (mut refs, mut hits) = (refs, hits);
        if refs >= WRAP_THRESHOLD || hits >= WRAP_THRESHOLD {
            corrected = true;
            refs = st.ewma_refs as u64;
            let est_misses = (st.ewma_misses as u64).min(refs);
            hits = refs - est_misses;
        }

        // Consistency: hits can never exceed refs, and misses are
        // always derived (`refs − hits`), never trusted independently.
        if hits > refs {
            corrected = true;
            hits = refs;
        }
        let mut out_misses = refs - hits;
        if misses != out_misses {
            // The reported miss figure disagreed with refs−hits; the
            // derived value wins and the disagreement costs confidence.
            corrected = true;
        }

        // Outlier clamp: with history, a miss count far above the EWMA
        // is a glitch, not a phase change (phase changes move the EWMA
        // within a few intervals anyway).
        if st.seen >= cfg.warmup {
            let ceiling = cfg.outlier_factor * st.ewma_misses.max(cfg.outlier_floor);
            if (out_misses as f64) > ceiling {
                corrected = true;
                out_misses = st.ewma_misses as u64;
                hits = refs.saturating_sub(out_misses);
                out_misses = refs - hits;
            }
        }

        // Update history with the corrected sample.
        if st.seen == 0 {
            st.ewma_misses = out_misses as f64;
            st.ewma_refs = refs as f64;
        } else {
            st.ewma_misses += cfg.ewma_alpha * (out_misses as f64 - st.ewma_misses);
            st.ewma_refs += cfg.ewma_alpha * (refs as f64 - st.ewma_refs);
        }
        st.seen = st.seen.saturating_add(1);

        // Confidence: clean samples pull toward 1, corrected toward 0.
        let score = if corrected { 0.0 } else { 1.0 };
        st.confidence += cfg.confidence_alpha * (score - st.confidence);

        let confidence = st.confidence;
        locality_trace::emit_with(|| locality_trace::TraceEvent::SanitizerVerdict {
            tid: tid.0,
            confidence,
            corrected,
        });
        SanitizedInterval { refs, hits, misses: out_misses, confidence, corrected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn clean_intervals_pass_through() {
        let mut s = CounterSanitizer::default();
        let out = s.sanitize(t(1), 1000, 900, 100);
        assert_eq!((out.refs, out.hits, out.misses), (1000, 900, 100));
        assert!(!out.corrected);
        assert_eq!(out.confidence, 1.0, "clean sample keeps full confidence");
    }

    #[test]
    fn wrap_artifact_replaced_by_ewma() {
        let mut s = CounterSanitizer::default();
        for _ in 0..5 {
            s.sanitize(t(1), 1000, 900, 100);
        }
        let garbage = (1u64 << 32) - 12345;
        let out = s.sanitize(t(1), garbage, 900, garbage - 900);
        assert!(out.corrected);
        assert!(out.misses <= 150, "estimate must be near the EWMA, got {}", out.misses);
        assert!(out.refs < WRAP_THRESHOLD);
        assert!(out.confidence < 1.0);
    }

    #[test]
    fn inconsistent_hits_clamped() {
        let mut s = CounterSanitizer::default();
        let out = s.sanitize(t(1), 100, 250, 0);
        assert!(out.corrected);
        assert_eq!(out.hits, 100);
        assert_eq!(out.misses, 0);
    }

    #[test]
    fn outlier_clamped_after_warmup() {
        let mut s = CounterSanitizer::default();
        for _ in 0..4 {
            s.sanitize(t(1), 10_000, 9_000, 1_000);
        }
        // 100× the EWMA: glitch, clamp to EWMA.
        let out = s.sanitize(t(1), 200_000, 100_000, 100_000);
        assert!(out.corrected);
        assert!(out.misses <= 1_100, "clamped near EWMA, got {}", out.misses);
        // A merely-2× interval is a phase change, not an outlier.
        let ok = s.sanitize(t(1), 20_000, 18_000, 2_000);
        assert!(!ok.corrected);
    }

    #[test]
    fn confidence_decays_under_faults_and_recovers() {
        let mut s = CounterSanitizer::default();
        for _ in 0..5 {
            s.sanitize(t(1), 1000, 900, 100);
        }
        let mut conf = s.confidence(t(1));
        assert_eq!(conf, 1.0);
        for _ in 0..10 {
            conf = s.note_trap(t(1));
        }
        assert!(conf < 0.1, "traps must crush confidence, got {conf}");
        for _ in 0..20 {
            conf = s.sanitize(t(1), 1000, 900, 100).confidence;
        }
        assert!(conf > 0.9, "clean stream must restore confidence, got {conf}");
    }

    #[test]
    fn forget_resets_history() {
        let mut s = CounterSanitizer::default();
        for _ in 0..10 {
            s.note_trap(t(1));
        }
        assert!(s.confidence(t(1)) < 0.2);
        s.forget(t(1));
        assert_eq!(s.confidence(t(1)), 1.0);
    }

    #[test]
    fn recycled_slot_starts_fresh() {
        let mut s = CounterSanitizer::default();
        // t1 builds a big-miss EWMA and low confidence, then exits.
        for _ in 0..6 {
            s.sanitize(t(1), 100_000, 10_000, 90_000);
        }
        for _ in 0..6 {
            s.note_trap(t(1));
        }
        s.forget(t(1));
        // t2 reuses t1's slot: no inherited EWMA (an interval that would
        // have been within t1's envelope must be judged cold-start) and
        // full starting confidence.
        let out = s.sanitize(t(2), 1000, 900, 100);
        assert!(!out.corrected);
        assert_eq!(out.confidence, 1.0, "recycled slot leaked confidence");
        // Outlier clamping needs warmup again: a huge second interval
        // passes, proving the warmup counter was reset too.
        let big = s.sanitize(t(2), 500_000, 100_000, 400_000);
        assert!(!big.corrected, "warmup counter leaked across recycling");
    }

    proptest! {
        /// Whatever garbage goes in, the output is always a plausible
        /// interval: consistent, wrap-free, confidence in range.
        #[test]
        fn outputs_always_plausible(
            samples in proptest::collection::vec(
                (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..4),
                1..100,
            )
        ) {
            let mut s = CounterSanitizer::default();
            for (refs, hits, misses, tid) in samples {
                let out = s.sanitize(ThreadId(tid), refs, hits, misses);
                prop_assert!(out.hits <= out.refs, "hits {} > refs {}", out.hits, out.refs);
                prop_assert_eq!(out.misses, out.refs - out.hits);
                prop_assert!(out.refs < super::WRAP_THRESHOLD, "wrap leak: {}", out.refs);
                prop_assert!(out.confidence.is_finite());
                prop_assert!((0.0..=1.0).contains(&out.confidence));
            }
        }

        /// A clean, steady stream (miss counts within the outlier
        /// envelope of each other) never gets corrected and keeps full
        /// confidence. Generated misses stay within 6× of each other,
        /// inside the 8× outlier ceiling.
        #[test]
        fn clean_streams_stay_clean(
            samples in proptest::collection::vec((5_000u64..10_000, 0.7f64..=0.9), 1..60)
        ) {
            let mut s = CounterSanitizer::default();
            for (refs, hit_frac) in samples {
                let hits = ((refs as f64) * hit_frac) as u64;
                let out = s.sanitize(ThreadId(1), refs, hits, refs - hits);
                prop_assert!(!out.corrected, "clean sample corrected: {:?}", out);
                prop_assert!(out.confidence >= 0.99, "conf dipped: {}", out.confidence);
                prop_assert_eq!(out.refs, refs);
                prop_assert_eq!(out.hits, hits);
            }
        }
    }
}
