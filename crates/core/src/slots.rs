//! Dense, generational thread-slot handles.
//!
//! Thread ids ([`ThreadId`]) are sparse, monotonically allocated, and
//! never reused within a run — perfect keys for exports and reports,
//! but poor indices for the per-access and per-switch hot paths: a
//! `HashMap<ThreadId, _>` lookup costs a hash and a probe where the
//! paper budgets "only several instructions". The [`ThreadSlots`]
//! registry maps each live thread to a small dense **slot index**, so
//! hot per-thread state lives in plain `Vec`s indexed by slot.
//!
//! Slots are recycled when threads exit, which is exactly why the
//! handle is *generational*: a [`SlotId`] pairs the index with the
//! generation of its binding, and resolving a stale handle (the slot
//! was rebound to a younger thread) fails instead of silently aliasing
//! the new thread's state. Consumers that keep `Vec`s indexed by slot
//! must reset the slot's entry when a binding is created (see
//! [`ThreadSlots::bind`]) — the recycling invariant the proptest suite
//! in `tests/` exercises.
//!
//! Exports and CSV artifacts stay [`ThreadId`]-keyed: slot indices
//! depend on recycling order, so they are process-internal only.

use crate::ThreadId;
use std::collections::HashMap;
use std::fmt;

/// A generational handle to a dense thread slot.
///
/// Obtained from [`ThreadSlots::bind`] or [`ThreadSlots::lookup`];
/// resolves back to a [`ThreadId`] only while the binding it was
/// created under is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId {
    index: u32,
    generation: u32,
}

impl SlotId {
    /// The dense index, for indexing slot-sized `Vec`s.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The binding generation this handle was issued under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}g{}", self.index, self.generation)
    }
}

/// The slot registry: a slab of dense indices over live threads.
///
/// * [`bind`](Self::bind) assigns the lowest-free slot (LIFO recycling)
///   and bumps the slot's generation;
/// * [`release`](Self::release) frees the slot for reuse;
/// * [`lookup`](Self::lookup) / [`tid_of`](Self::tid_of) translate in
///   both directions, with stale handles rejected by generation.
///
/// The registry itself keeps a `ThreadId -> slot` map for the control
/// path (spawn, exit, external queries); hot paths hold on to the
/// [`SlotId`] and never hash.
#[derive(Debug, Clone, Default)]
pub struct ThreadSlots {
    /// Slot -> bound thread (None = free).
    tids: Vec<Option<ThreadId>>,
    /// Slot -> generation of the current (or last) binding.
    generations: Vec<u32>,
    /// Control-path reverse map; not used on hot paths.
    by_tid: HashMap<ThreadId, u32>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    /// One-entry MRU cache for [`lookup_cached`](Self::lookup_cached):
    /// the per-batch engine path resolves the *same* running thread
    /// several times per step, and each plain `lookup` pays a hash.
    /// Invalidated on `release` (tids are never rebound, so a cached
    /// binding can only die by being released).
    hot: Option<(ThreadId, SlotId)>,
}

impl ThreadSlots {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ThreadSlots::default()
    }

    /// Binds `tid` to a slot and returns its handle. Rebinding an
    /// already-bound thread returns the existing handle.
    pub fn bind(&mut self, tid: ThreadId) -> SlotId {
        if let Some(&index) = self.by_tid.get(&tid) {
            return SlotId { index, generation: self.generations[index as usize] };
        }
        let index = match self.free.pop() {
            Some(i) => {
                self.tids[i as usize] = Some(tid);
                self.generations[i as usize] = self.generations[i as usize].wrapping_add(1);
                i
            }
            None => {
                let i = u32::try_from(self.tids.len()).expect("more than u32::MAX live threads");
                self.tids.push(Some(tid));
                self.generations.push(0);
                i
            }
        };
        self.by_tid.insert(tid, index);
        SlotId { index, generation: self.generations[index as usize] }
    }

    /// Releases `tid`'s slot for reuse; returns the freed handle, or
    /// `None` if the thread was not bound.
    pub fn release(&mut self, tid: ThreadId) -> Option<SlotId> {
        if matches!(self.hot, Some((t, _)) if t == tid) {
            self.hot = None;
        }
        let index = self.by_tid.remove(&tid)?;
        self.tids[index as usize] = None;
        self.free.push(index);
        Some(SlotId { index, generation: self.generations[index as usize] })
    }

    /// The live handle for `tid`, if bound.
    pub fn lookup(&self, tid: ThreadId) -> Option<SlotId> {
        if let Some((t, s)) = self.hot {
            if t == tid {
                return Some(s);
            }
        }
        let &index = self.by_tid.get(&tid)?;
        Some(SlotId { index, generation: self.generations[index as usize] })
    }

    /// [`lookup`](Self::lookup), but a hit is remembered so immediately
    /// repeated resolutions of the same thread (the per-batch engine
    /// sequence: step, control, switch-out) skip the hash probe.
    pub fn lookup_cached(&mut self, tid: ThreadId) -> Option<SlotId> {
        if let Some((t, s)) = self.hot {
            if t == tid {
                return Some(s);
            }
        }
        let &index = self.by_tid.get(&tid)?;
        let slot = SlotId { index, generation: self.generations[index as usize] };
        self.hot = Some((tid, slot));
        Some(slot)
    }

    /// Resolves a handle back to its thread; `None` if the slot was
    /// released or rebound since the handle was issued.
    pub fn tid_of(&self, slot: SlotId) -> Option<ThreadId> {
        if self.generations.get(slot.index())? != &slot.generation {
            return None;
        }
        self.tids[slot.index()]
    }

    /// Whether `slot` still refers to the binding it was issued under.
    pub fn is_live(&self, slot: SlotId) -> bool {
        self.tid_of(slot).is_some()
    }

    /// Number of live bindings.
    pub fn live(&self) -> usize {
        self.by_tid.len()
    }

    /// Total slots ever allocated — the size hot-path `Vec`s must grow
    /// to so every slot index is in bounds.
    pub fn capacity(&self) -> usize {
        self.tids.len()
    }

    /// Iterates live `(SlotId, ThreadId)` bindings in slot order.
    /// Control-path only: slot order is recycling-dependent, so
    /// anything exported must be re-keyed (and sorted) by `ThreadId`.
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotId, ThreadId)> + '_ {
        self.tids.iter().enumerate().filter_map(|(i, tid)| {
            let tid = (*tid)?;
            let index = i as u32;
            Some((SlotId { index, generation: self.generations[i] }, tid))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn bind_assigns_dense_indices() {
        let mut s = ThreadSlots::new();
        assert_eq!(s.bind(t(10)).index(), 0);
        assert_eq!(s.bind(t(20)).index(), 1);
        assert_eq!(s.bind(t(30)).index(), 2);
        assert_eq!(s.live(), 3);
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn rebinding_is_idempotent() {
        let mut s = ThreadSlots::new();
        let a = s.bind(t(1));
        assert_eq!(s.bind(t(1)), a);
        assert_eq!(s.live(), 1);
    }

    #[test]
    fn release_recycles_lifo_with_new_generation() {
        let mut s = ThreadSlots::new();
        let a = s.bind(t(1));
        s.bind(t(2));
        assert_eq!(s.release(t(1)), Some(a));
        let b = s.bind(t(3));
        assert_eq!(b.index(), a.index(), "freed slot is reused");
        assert_ne!(b.generation(), a.generation(), "rebinding bumps the generation");
        // The stale handle no longer resolves; the fresh one does.
        assert_eq!(s.tid_of(a), None);
        assert_eq!(s.tid_of(b), Some(t(3)));
        assert!(!s.is_live(a));
        assert!(s.is_live(b));
    }

    #[test]
    fn release_unknown_is_none() {
        let mut s = ThreadSlots::new();
        assert_eq!(s.release(t(7)), None);
    }

    #[test]
    fn lookup_tracks_bindings() {
        let mut s = ThreadSlots::new();
        assert_eq!(s.lookup(t(1)), None);
        let a = s.bind(t(1));
        assert_eq!(s.lookup(t(1)), Some(a));
        s.release(t(1));
        assert_eq!(s.lookup(t(1)), None);
    }

    #[test]
    fn iter_live_is_slot_ordered() {
        let mut s = ThreadSlots::new();
        s.bind(t(5));
        s.bind(t(3));
        s.bind(t(9));
        s.release(t(3));
        let live: Vec<ThreadId> = s.iter_live().map(|(_, tid)| tid).collect();
        assert_eq!(live, vec![t(5), t(9)]);
        assert_eq!(s.capacity(), 3, "capacity counts released slots too");
    }

    #[test]
    fn display_shows_index_and_generation() {
        let mut s = ThreadSlots::new();
        s.bind(t(1));
        s.release(t(1));
        let b = s.bind(t(2));
        assert_eq!(b.to_string(), "s0g1");
    }
}
