//! Precomputed lookup tables for constant-time priority updates
//! (paper §4.1).
//!
//! The paper's implementation pre-computes `log(F)` for every integer
//! footprint `0 < F ≤ N` and `kⁿ` for a sufficiently large range of `n`
//! (`kⁿ` asymptotically approaches 0), so that a priority update costs only
//! a handful of floating-point instructions at a context switch.

use crate::ModelParams;

/// Default range of the `kⁿ` table: enough that the tail is below 1e-12
/// for typical cache sizes (`n ≈ 28·N`), after which the table clamps to 0.
pub const DEFAULT_KPOW_ENTRIES: usize = 1 << 18;

/// Length of the eagerly-materialized `kⁿ` prefix. Context-switch
/// intervals overwhelmingly fall in this range; rarer larger exponents
/// (still below the clamp boundary) are computed on demand with the same
/// `exp(n·ln k)` formula the table itself is filled with, so the hybrid
/// is bit-identical to a fully eager table while construction stays off
/// the scheduler-building hot path.
const EAGER_KPOW: usize = 4096;

/// Precomputed `log(F)` and `kⁿ` tables.
///
/// [`log_footprint`](PrecomputedTables::log_footprint) rounds a fractional
/// expected footprint to the nearest line count and clamps it to `[1, N]`
/// before the table lookup — exactly the paper's "all values of `log(F)`,
/// `0 < F ≤ N`" scheme. The clamp to at least one line keeps priorities
/// finite for cold threads.
#[derive(Debug, Clone)]
pub struct PrecomputedTables {
    params: ModelParams,
    logs: Vec<f64>,
    /// Eager `kⁿ` prefix (`n < kpow.len()`); exponents between the prefix
    /// and `kpow_entries` evaluate on demand, beyond that clamp to 0.
    kpow: Vec<f64>,
    /// Logical table range: the clamp-to-zero boundary.
    kpow_entries: usize,
}

impl PrecomputedTables {
    /// Builds tables for the given model parameters with the default `kⁿ`
    /// range.
    pub fn new(params: ModelParams) -> Self {
        Self::with_kpow_entries(params, DEFAULT_KPOW_ENTRIES)
    }

    /// Builds tables with an explicit `kⁿ` range (mostly for tests; at
    /// least 2 entries are kept so `k⁰` and `k¹` are always exact).
    pub fn with_kpow_entries(params: ModelParams, kpow_entries: usize) -> Self {
        let n = params.lines();
        let mut logs = Vec::with_capacity(n + 1);
        logs.push(0.0); // log(0) is clamped to log(1) = 0; see log_footprint.
        for f in 1..=n {
            logs.push((f as f64).ln());
        }
        let entries = kpow_entries.max(2);
        let eager = entries.min(EAGER_KPOW);
        let mut kpow = Vec::with_capacity(eager);
        // Filling via exp(n·ln k) instead of a running product keeps the
        // table free of accumulated rounding error — and makes the
        // on-demand fallback in `k_pow` bit-identical to a table hit.
        for i in 0..eager {
            kpow.push(params.k_pow(i as u64));
        }
        PrecomputedTables { params, logs, kpow, kpow_entries: entries }
    }

    /// The model parameters the tables were built for.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// `log(F)` with `F = round(footprint)` clamped to `[1, N]`.
    pub fn log_footprint(&self, footprint: f64) -> f64 {
        let f = footprint.round();
        let idx = if f < 1.0 {
            1
        } else if f >= self.params.lines() as f64 {
            self.params.lines()
        } else {
            f as usize
        };
        self.logs[idx]
    }

    /// `kⁿ` from the table; values beyond the table range are clamped to 0
    /// (they are below any footprint resolution). Exponents past the eager
    /// prefix but inside the range are computed on demand with the exact
    /// formula the prefix was filled with.
    pub fn k_pow(&self, n: u64) -> f64 {
        let idx = usize::try_from(n).unwrap_or(usize::MAX);
        match self.kpow.get(idx) {
            Some(&v) => v,
            None if idx < self.kpow_entries => self.params.k_pow(n),
            None => 0.0,
        }
    }

    /// `ln k`, the constant used by every priority formula.
    pub fn log_k(&self) -> f64 {
        self.params.log_k()
    }

    /// Memory consumed by the tables, in bytes (for reporting).
    pub fn table_bytes(&self) -> usize {
        (self.logs.len() + self.kpow.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables(lines: usize) -> PrecomputedTables {
        PrecomputedTables::with_kpow_entries(ModelParams::new(lines).unwrap(), 4096)
    }

    #[test]
    fn log_matches_ln_for_integers() {
        let t = tables(256);
        for f in 1..=256usize {
            assert_eq!(t.log_footprint(f as f64), (f as f64).ln());
        }
    }

    #[test]
    fn log_rounds_fractional_footprints() {
        let t = tables(100);
        assert_eq!(t.log_footprint(41.4), (41.0f64).ln());
        assert_eq!(t.log_footprint(41.6), (42.0f64).ln());
    }

    #[test]
    fn log_clamps_to_one_and_n() {
        let t = tables(100);
        assert_eq!(t.log_footprint(0.0), 0.0);
        assert_eq!(t.log_footprint(0.4), 0.0);
        assert_eq!(t.log_footprint(-5.0), 0.0);
        assert_eq!(t.log_footprint(100.0), (100.0f64).ln());
        assert_eq!(t.log_footprint(250.0), (100.0f64).ln());
    }

    #[test]
    fn k_pow_matches_exact_within_table() {
        let t = tables(512);
        let p = ModelParams::new(512).unwrap();
        for n in [0u64, 1, 100, 4095] {
            assert!((t.k_pow(n) - p.k_pow(n)).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn k_pow_clamps_beyond_table() {
        let t = tables(512);
        assert_eq!(t.k_pow(4096), 0.0);
        assert_eq!(t.k_pow(u64::MAX), 0.0);
    }

    #[test]
    fn default_table_covers_typical_intervals() {
        let params = ModelParams::new(8192).unwrap();
        let t = PrecomputedTables::new(params);
        // A scheduling interval of 100k misses is still resolved exactly.
        assert!(t.k_pow(100_000) > 0.0);
        assert!((t.k_pow(100_000) - params.k_pow(100_000)).abs() < 1e-12);
        assert!(t.table_bytes() > 8192 * 8);
    }
}
