//! `cargo bench -p locality-repro`: the offline hot-path harness as a
//! real bench target, so `cargo bench --no-run` gates its compilation
//! in CI. Runs the same groups as the `bench` binary in quick mode.

fn main() {
    let mut h = locality_repro::bench::Harness::new(true, None);
    h.verbose = true;
    locality_repro::bench::run_all(&mut h);
    print!("{}", locality_repro::bench::to_json(h.results()));
}
