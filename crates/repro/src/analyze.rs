//! The `analyze` binary's driver: run the deterministic racy/clean
//! workload fixtures with engine observation enabled, feed the logs to
//! `locality-analyze`, and report the diagnostics.
//!
//! The verdict is schedule-independent by construction: the engine is a
//! deterministic discrete-event simulation, and the fixtures are built so
//! the racy pair has *no* inter-worker synchronization (racy under every
//! schedule) while the clean pair is fully ordered by its mutex (race-free
//! under every schedule). `--jobs` only parallelizes the independent
//! workload runs; each run's log — and therefore the analysis — is
//! identical at any job count.

use crate::args::{Args, Scale};
use crate::error::ReproError;
use crate::table::Table;
use active_threads::{Engine, EngineConfig, SchedPolicy};
use locality_analyze::fixtures::{clean_workload, racy_workload};
use locality_analyze::{analyze_log, AnalysisConfig, AnalysisReport, Severity};
use locality_sim::MachineConfig;

/// Which fixture workloads to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The mutex-protected, fully annotated fixture.
    Clean,
    /// The unsynchronized, under-annotated fixture.
    Racy,
    /// Both, clean first.
    All,
}

impl Workload {
    /// Parses the `--workload` keyword (default `all`).
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Usage`] for anything but
    /// `clean`/`racy`/`all`.
    pub fn from_args(args: &Args) -> Result<Self, ReproError> {
        match args.workload.as_deref() {
            None | Some("all") => Ok(Workload::All),
            Some("clean") => Ok(Workload::Clean),
            Some("racy") => Ok(Workload::Racy),
            Some(other) => Err(ReproError::Usage(format!(
                "unknown workload '{other}' (expected clean, racy, or all)"
            ))),
        }
    }

    fn names(self) -> &'static [&'static str] {
        match self {
            Workload::Clean => &["clean"],
            Workload::Racy => &["racy"],
            Workload::All => &["clean", "racy"],
        }
    }
}

/// The analysis of one fixture workload.
#[derive(Debug)]
pub struct WorkloadAnalysis {
    /// `"clean"` or `"racy"`.
    pub name: &'static str,
    /// Everything the analyzer concluded.
    pub report: AnalysisReport,
}

fn rounds_for(scale: Scale) -> u32 {
    match scale {
        Scale::Paper => 6,
        Scale::Small => 2,
    }
}

/// Runs one named fixture under observation and analyzes its log.
fn analyze_one(name: &'static str, rounds: u32) -> Result<WorkloadAnalysis, ReproError> {
    let program = match name {
        "clean" => clean_workload(rounds),
        _ => racy_workload(rounds),
    };
    let mut engine =
        Engine::new(MachineConfig::enterprise5000(2), SchedPolicy::Lff, EngineConfig::default())?;
    engine.enable_observation();
    engine.spawn(program);
    engine.run()?;
    let Some(log) = engine.take_observation() else {
        return Err(ReproError::MissingResult(format!("observation log for workload {name}")));
    };
    Ok(WorkloadAnalysis { name, report: analyze_log(&log, &AnalysisConfig::default()) })
}

/// Runs the selected workloads (in parallel when `--jobs > 1` and both
/// are requested) and returns their analyses in a fixed order: clean
/// before racy, independent of completion order.
pub fn run_workloads(args: &Args, which: Workload) -> Result<Vec<WorkloadAnalysis>, ReproError> {
    let rounds = rounds_for(args.scale);
    let names = which.names();
    if names.len() == 2 && args.jobs > 1 {
        // Engines (and the boxed programs inside) are not Send, so each
        // worker constructs its own engine; only the plain analysis data
        // crosses the thread boundary.
        let mut results = std::thread::scope(|s| {
            let handles: Vec<_> =
                names.iter().map(|&n| s.spawn(move || analyze_one(n, rounds))).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        Err(ReproError::RunPanicked {
                            what: crate::runner::panic_message(p.as_ref()),
                        })
                    })
                })
                .collect::<Vec<_>>()
        });
        match (results.pop(), results.pop()) {
            (Some(second), Some(first)) => Ok(vec![first?, second?]),
            _ => Err(ReproError::MissingResult("clean/racy workload pair".to_string())),
        }
    } else {
        names.iter().map(|&n| analyze_one(n, rounds)).collect()
    }
}

/// Renders the findings of every workload into one table.
///
/// # Errors
///
/// Returns a [`crate::table::TableError`] if a row is malformed.
pub fn findings_table(analyses: &[WorkloadAnalysis]) -> Result<Table, ReproError> {
    let mut table = Table::new(
        "Analysis findings (races, lock order, annotation lints)",
        &["workload", "severity", "code", "detail"],
    );
    let mut empty = true;
    for wa in analyses {
        for f in &wa.report.findings {
            empty = false;
            table.row(&[
                wa.name.to_string(),
                f.severity.to_string(),
                f.code.to_string(),
                f.message.clone(),
            ])?;
        }
    }
    if empty {
        table.row_strs(&["-", "info", "no-findings", "no diagnostics in any workload"])?;
    }
    Ok(table)
}

/// The full `analyze` driver: run, print, write CSV.
///
/// Returns `true` when any confirmed race was found (the process should
/// exit nonzero).
///
/// # Errors
///
/// Returns [`ReproError::Usage`] for a bad `--workload` value, or the
/// first run/output error.
pub fn run_analyze(args: &Args) -> Result<bool, ReproError> {
    let which = Workload::from_args(args)?;
    let analyses = run_workloads(args, which)?;

    let table = findings_table(&analyses)?;
    table.print();
    table.write_csv(&args.csv_path("analyze.csv")?)?;

    let mut any_races = false;
    for wa in &analyses {
        let races = wa.report.races.len();
        let warnings = wa.report.at_severity(Severity::Warning).count();
        println!(
            "{}: {} race(s), {} warning(s) -> {}",
            wa.name,
            races,
            warnings,
            if races > 0 { "FAIL" } else { "ok" }
        );
        any_races |= races > 0;
    }
    Ok(any_races)
}

/// The analyze binary's `main`: exit 0 when no races, 1 when races were
/// confirmed, 2 on usage errors.
pub fn main_analyze() {
    let args = Args::from_env();
    match run_analyze(&args) {
        Ok(false) => {}
        Ok(true) => std::process::exit(1),
        Err(ReproError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_for(workload: Option<&str>, jobs: usize) -> Args {
        Args {
            scale: Scale::Small,
            workload: workload.map(str::to_string),
            jobs,
            ..Args::default()
        }
    }

    #[test]
    fn workload_keyword_parses_and_rejects() {
        assert_eq!(Workload::from_args(&args_for(None, 1)).unwrap(), Workload::All);
        assert_eq!(Workload::from_args(&args_for(Some("clean"), 1)).unwrap(), Workload::Clean);
        assert_eq!(Workload::from_args(&args_for(Some("racy"), 1)).unwrap(), Workload::Racy);
        let err = Workload::from_args(&args_for(Some("bogus"), 1)).unwrap_err();
        assert!(matches!(err, ReproError::Usage(_)), "{err:?}");
    }

    #[test]
    fn racy_fails_and_clean_passes() {
        let racy = run_workloads(&args_for(Some("racy"), 1), Workload::Racy).unwrap();
        assert!(racy[0].report.has_errors());
        let clean = run_workloads(&args_for(Some("clean"), 1), Workload::Clean).unwrap();
        assert!(!clean[0].report.has_errors());
    }

    #[test]
    fn parallel_and_serial_analyses_agree() {
        let serial = run_workloads(&args_for(None, 1), Workload::All).unwrap();
        let parallel = run_workloads(&args_for(None, 4), Workload::All).unwrap();
        assert_eq!(serial.len(), 2);
        assert_eq!(parallel.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.report.findings, p.report.findings);
            assert_eq!(s.report.races, p.report.races);
        }
    }

    #[test]
    fn findings_table_is_deterministic() {
        let a = findings_table(&run_workloads(&args_for(None, 1), Workload::All).unwrap())
            .unwrap()
            .to_csv();
        let b = findings_table(&run_workloads(&args_for(None, 2), Workload::All).unwrap())
            .unwrap()
            .to_csv();
        assert_eq!(a, b);
        assert!(a.contains("data-race"));
    }
}
