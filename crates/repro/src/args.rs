//! Minimal command-line handling shared by the repro binaries.

use std::path::PathBuf;

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters (default).
    Paper,
    /// Scaled-down for smoke runs and CI.
    Small,
}

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload scale.
    pub scale: Scale,
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Counter-fault scenario keyword (`--fault <scenario>|all`), used
    /// by the ablation binary's robustness runs.
    pub fault: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args { scale: Scale::Paper, out: PathBuf::from("results"), fault: None }
    }
}

impl Args {
    /// Parses `--scale paper|small` and `--out DIR` from an iterator of
    /// arguments (the program name must already be consumed).
    ///
    /// # Errors
    ///
    /// Returns a message suitable for printing on unknown or malformed
    /// arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value (paper|small)")?;
                    out.scale = match v.as_str() {
                        "paper" => Scale::Paper,
                        "small" => Scale::Small,
                        other => return Err(format!("unknown scale '{other}'")),
                    };
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a directory")?;
                    out.out = PathBuf::from(v);
                }
                "--fault" => {
                    let v = it.next().ok_or("--fault needs a scenario name (or 'all')")?;
                    out.fault = Some(v);
                }
                "--help" | "-h" => {
                    return Err("usage: [--scale paper|small] [--out DIR] [--fault SCENARIO|all]"
                        .to_string())
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Creates the output directory and returns the path for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create output directory");
        self.out.join(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.out, PathBuf::from("results"));
    }

    #[test]
    fn scale_and_out() {
        let a = parse(&["--scale", "small", "--out", "/tmp/x"]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.fault, None);
    }

    #[test]
    fn fault_scenario() {
        let a = parse(&["--fault", "wraparound"]).unwrap();
        assert_eq!(a.fault.as_deref(), Some("wraparound"));
        assert!(parse(&["--fault"]).is_err());
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["-h"]).is_err());
    }
}
