//! Minimal command-line handling shared by the repro binaries.

use std::path::PathBuf;

/// Usage text printed for `--help` and on argument errors.
pub const USAGE: &str = "usage: [--scale paper|small] [--out DIR] [--jobs N] [--no-cache] \
     [--fault SCENARIO|all] [--chaos SCENARIO|all] [--workload NAME|all] [--policy fcfs|lff|crt] \
     [--depth-bound N] [--max-schedules N] [--preempt-bound K] [--replay FILE] \
     [--geometry SxW] [--page-size BYTES]

options:
  --scale paper|small  workload scale (default: paper)
  --out DIR            output directory for CSV files (default: results)
  --jobs N             worker threads for independent runs
                       (default: available parallelism)
  --no-cache           ignore and do not write the on-disk result cache
  --fault SCENARIO     ablation only: run the counter-fault robustness
                       table for one scenario, or 'all'
  --chaos SCENARIO     ablation only: run the thread-lifecycle chaos
                       table for one scenario (abort-running,
                       abort-locked, spawn-fail, abort-idle, churn), or
                       'all'
  --workload NAME      analyze: which fixture workload to analyze
                       (clean, racy, or all; default: all)
                       modelcheck: which fixture workload to explore
                       (clean, racy, deadlock, lostwake, or all;
                       default: all)
                       trace: which monitored app to trace
                       (barnes, fmm, ocean, merge, photo, tsp,
                       typechecker, raytrace, or all)
  --policy NAME        trace only: scheduling policy of the traced run
                       (fcfs, lff, or crt; default: lff)
  --depth-bound N      modelcheck: truncate schedules after N decisions
                       (default: 64)
  --max-schedules N    modelcheck: stop exploring after N schedules
                       (default: 20000)
  --preempt-bound K    modelcheck: only explore schedules with at most
                       K preemptions (default: unbounded)
  --replay FILE        modelcheck: re-execute a serialized counterexample
                       and verify the violation reproduces
  --geometry SxW       geometry: restrict the validation sweep to one
                       L2 geometry of S sets by W ways (both positive
                       powers of two, e.g. 1024x8)
  --page-size BYTES    geometry: TLB page size in bytes (a positive
                       power of two; default: 8192)
  --help, -h           print this help";

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters (default).
    Paper,
    /// Scaled-down for smoke runs and CI.
    Small,
}

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload scale.
    pub scale: Scale,
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Counter-fault scenario keyword (`--fault <scenario>|all`), used
    /// by the ablation binary's robustness runs.
    pub fault: Option<String>,
    /// Thread-lifecycle chaos scenario keyword (`--chaos
    /// <scenario>|all`), used by the ablation binary's chaos table;
    /// validated in [`ChaosScenario::parse`](crate::ChaosScenario).
    pub chaos: Option<String>,
    /// Workload keyword (`--workload NAME|all`), used by the analyze
    /// binary (clean/racy fixtures) and the trace binary (monitored
    /// app); validated there so bad values surface as usage errors
    /// through [`ReproError::Usage`](crate::ReproError).
    pub workload: Option<String>,
    /// Scheduling-policy keyword (`--policy fcfs|lff|crt`), used by the
    /// trace binary; validated there so bad values surface as usage
    /// errors through [`ReproError::Usage`](crate::ReproError).
    pub policy: Option<String>,
    /// Worker threads used by the experiment runner (`--jobs N`).
    pub jobs: usize,
    /// Disable the on-disk result cache (`--no-cache`).
    pub no_cache: bool,
    /// Schedule depth bound for the modelcheck binary
    /// (`--depth-bound N`); `None` uses the binary's default.
    pub depth_bound: Option<u64>,
    /// Exploration schedule cap for the modelcheck binary
    /// (`--max-schedules N`); `None` uses the binary's default.
    pub max_schedules: Option<u64>,
    /// Preemption bound for the modelcheck binary
    /// (`--preempt-bound K`); `None` explores without a bound.
    pub preempt_bound: Option<u64>,
    /// Counterexample file to re-execute (`--replay FILE`), used by the
    /// modelcheck binary.
    pub replay: Option<PathBuf>,
    /// L2 geometry override (`--geometry SxW`), used by the geometry
    /// binary to restrict the sweep to one `(sets, ways)` cell. Both
    /// components are validated as positive powers of two at parse
    /// time.
    pub geometry: Option<(u64, u64)>,
    /// TLB page size override in bytes (`--page-size BYTES`), used by
    /// the geometry binary; validated as a positive power of two at
    /// parse time.
    pub page_size: Option<u64>,
}

/// Outcome of parsing an argument list.
// Boxed: `Args` dwarfs the unit `Help` variant, and every caller
// immediately unwraps into the help/run split anyway.
#[derive(Debug, Clone)]
pub enum Parsed {
    /// Normal invocation.
    Run(Box<Args>),
    /// `--help`/`-h` was requested; the caller should print [`USAGE`]
    /// to stdout and exit successfully.
    Help,
}

/// Parses a strictly positive integer flag value.
fn parse_positive(flag: &str, v: &str) -> Result<u64, String> {
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer, got '{v}'")),
    }
}

/// Parses a strictly positive power-of-two flag value.
fn parse_pow2(flag: &str, v: &str) -> Result<u64, String> {
    match v.parse::<u64>() {
        Ok(n) if n > 0 && n.is_power_of_two() => Ok(n),
        _ => Err(format!("{flag} needs a positive power of two, got '{v}'")),
    }
}

/// Parses a `SxW` geometry value: both components positive powers of
/// two.
fn parse_geometry(v: &str) -> Result<(u64, u64), String> {
    let bad = || format!("--geometry needs SETSxWAYS, both positive powers of two, got '{v}'");
    let (s, w) = v.split_once('x').ok_or_else(bad)?;
    let sets = s.parse::<u64>().map_err(|_| bad())?;
    let ways = w.parse::<u64>().map_err(|_| bad())?;
    if sets == 0 || ways == 0 || !sets.is_power_of_two() || !ways.is_power_of_two() {
        return Err(bad());
    }
    Ok((sets, ways))
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Paper,
            out: PathBuf::from("results"),
            fault: None,
            chaos: None,
            workload: None,
            policy: None,
            jobs: default_jobs(),
            no_cache: false,
            depth_bound: None,
            max_schedules: None,
            preempt_bound: None,
            replay: None,
            geometry: None,
            page_size: None,
        }
    }
}

impl Args {
    /// Parses `--scale paper|small`, `--out DIR`, `--jobs N`,
    /// `--no-cache`, and `--fault` from an iterator of arguments (the
    /// program name must already be consumed). `--help`/`-h` yields
    /// [`Parsed::Help`] rather than an error.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for printing on unknown or malformed
    /// arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value (paper|small)")?;
                    out.scale = match v.as_str() {
                        "paper" => Scale::Paper,
                        "small" => Scale::Small,
                        other => return Err(format!("unknown scale '{other}'")),
                    };
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a directory")?;
                    out.out = PathBuf::from(v);
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a worker count")?;
                    out.jobs = match v.parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => return Err(format!("--jobs needs a positive integer, got '{v}'")),
                    };
                }
                "--no-cache" => out.no_cache = true,
                "--fault" => {
                    let v = it.next().ok_or("--fault needs a scenario name (or 'all')")?;
                    out.fault = Some(v);
                }
                "--chaos" => {
                    let v = it.next().ok_or("--chaos needs a scenario name (or 'all')")?;
                    out.chaos = Some(v);
                }
                "--workload" => {
                    let v = it.next().ok_or("--workload needs a name (or 'all')")?;
                    out.workload = Some(v);
                }
                "--policy" => {
                    let v = it.next().ok_or("--policy needs a name (fcfs|lff|crt)")?;
                    out.policy = Some(v);
                }
                "--depth-bound" => {
                    let v = it.next().ok_or("--depth-bound needs a decision count")?;
                    out.depth_bound = Some(parse_positive("--depth-bound", &v)?);
                }
                "--max-schedules" => {
                    let v = it.next().ok_or("--max-schedules needs a schedule count")?;
                    out.max_schedules = Some(parse_positive("--max-schedules", &v)?);
                }
                "--preempt-bound" => {
                    let v = it.next().ok_or("--preempt-bound needs a preemption count")?;
                    out.preempt_bound = Some(v.parse::<u64>().map_err(|_| {
                        format!("--preempt-bound needs a non-negative integer, got '{v}'")
                    })?);
                }
                "--replay" => {
                    let v = it.next().ok_or("--replay needs a counterexample file")?;
                    out.replay = Some(PathBuf::from(v));
                }
                "--geometry" => {
                    let v = it.next().ok_or("--geometry needs SETSxWAYS (e.g. 1024x8)")?;
                    out.geometry = Some(parse_geometry(&v)?);
                }
                "--page-size" => {
                    let v = it.next().ok_or("--page-size needs a byte count")?;
                    out.page_size = Some(parse_pow2("--page-size", &v)?);
                }
                "--help" | "-h" => return Ok(Parsed::Help),
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(Parsed::Run(Box::new(out)))
    }

    /// Parses the process arguments. `--help`/`-h` prints usage to
    /// stdout and exits 0; malformed arguments print to stderr and
    /// exit 2.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(Parsed::Run(args)) => *args,
            Ok(Parsed::Help) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Creates the output directory and returns the path for `name`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn csv_path(&self, name: &str) -> Result<PathBuf, std::io::Error> {
        std::fs::create_dir_all(&self.out)?;
        Ok(self.out.join(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        match Args::parse(args.iter().map(|s| s.to_string()))? {
            Parsed::Run(a) => Ok(*a),
            Parsed::Help => Err("help requested".to_string()),
        }
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.out, PathBuf::from("results"));
        assert!(a.jobs >= 1);
        assert!(!a.no_cache);
    }

    #[test]
    fn scale_and_out() {
        let a = parse(&["--scale", "small", "--out", "/tmp/x"]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.fault, None);
    }

    #[test]
    fn jobs_and_no_cache() {
        let a = parse(&["--jobs", "4", "--no-cache"]).unwrap();
        assert_eq!(a.jobs, 4);
        assert!(a.no_cache);
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn fault_scenario() {
        let a = parse(&["--fault", "wraparound"]).unwrap();
        assert_eq!(a.fault.as_deref(), Some("wraparound"));
        assert!(parse(&["--fault"]).is_err());
    }

    #[test]
    fn chaos_scenario() {
        assert_eq!(parse(&[]).unwrap().chaos, None);
        let a = parse(&["--chaos", "abort-locked"]).unwrap();
        assert_eq!(a.chaos.as_deref(), Some("abort-locked"));
        assert!(parse(&["--chaos"]).is_err());
    }

    #[test]
    fn workload_keyword() {
        assert_eq!(parse(&[]).unwrap().workload, None);
        let a = parse(&["--workload", "racy"]).unwrap();
        assert_eq!(a.workload.as_deref(), Some("racy"));
        assert!(parse(&["--workload"]).is_err());
    }

    #[test]
    fn policy_keyword() {
        assert_eq!(parse(&[]).unwrap().policy, None);
        let a = parse(&["--policy", "crt"]).unwrap();
        assert_eq!(a.policy.as_deref(), Some("crt"));
        assert!(parse(&["--policy"]).is_err());
    }

    #[test]
    fn modelcheck_bounds() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.depth_bound, None);
        assert_eq!(a.max_schedules, None);
        assert_eq!(a.preempt_bound, None);
        assert_eq!(a.replay, None);

        let a = parse(&[
            "--depth-bound",
            "32",
            "--max-schedules",
            "500",
            "--preempt-bound",
            "0",
            "--replay",
            "ce.txt",
        ])
        .unwrap();
        assert_eq!(a.depth_bound, Some(32));
        assert_eq!(a.max_schedules, Some(500));
        assert_eq!(a.preempt_bound, Some(0));
        assert_eq!(a.replay, Some(PathBuf::from("ce.txt")));

        assert!(parse(&["--depth-bound"]).is_err());
        assert!(parse(&["--depth-bound", "0"]).is_err());
        assert!(parse(&["--max-schedules", "lots"]).is_err());
        assert!(parse(&["--preempt-bound", "-1"]).is_err());
        assert!(parse(&["--replay"]).is_err());
    }

    #[test]
    fn geometry_axis() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.geometry, None);
        assert_eq!(a.page_size, None);

        let a = parse(&["--geometry", "1024x8", "--page-size", "4096"]).unwrap();
        assert_eq!(a.geometry, Some((1024, 8)));
        assert_eq!(a.page_size, Some(4096));
        assert_eq!(parse(&["--geometry", "1x8192"]).unwrap().geometry, Some((1, 8192)));

        assert!(parse(&["--geometry"]).is_err());
        assert!(parse(&["--geometry", "1024"]).is_err());
        assert!(parse(&["--geometry", "1024x0"]).is_err());
        assert!(parse(&["--geometry", "0x8"]).is_err());
        assert!(parse(&["--geometry", "1000x8"]).is_err());
        assert!(parse(&["--geometry", "1024x3"]).is_err());
        assert!(parse(&["--geometry", "8x8x8"]).is_err());
        assert!(parse(&["--page-size"]).is_err());
        assert!(parse(&["--page-size", "0"]).is_err());
        assert!(parse(&["--page-size", "1000"]).is_err());
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(matches!(Args::parse(["-h".to_string()]), Ok(Parsed::Help)));
        assert!(matches!(Args::parse(["--help".to_string()]), Ok(Parsed::Help)));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--scale"]).is_err());
    }
}
