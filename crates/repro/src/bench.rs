//! Offline hot-path microbenchmarks (`repro bench`, `cargo bench -p
//! locality-repro`).
//!
//! The criterion benches live in the `crates/bench` package, which is
//! excluded from the workspace because criterion is a registry
//! dependency (the build must work offline). This self-contained
//! harness mirrors those four bench groups — `machine_access`,
//! `priority_update`, `prio_heap`/`engine_run`, `model` — plus a
//! scheduler dispatch-cycle bench, with plain `std::time::Instant`
//! timing: calibrate a batch size, then report the **median ns/op**
//! over several timed batches. Medians go to `BENCH_hotpath.json` at
//! the repo root so hot-path PRs carry before/after numbers.
//!
//! Timing numbers are machine-dependent and deliberately *not* part of
//! CI pass/fail; CI only compiles this harness (`cargo bench --no-run`).

use active_threads::heap::PrioHeap;
use active_threads::sched::{FcfsScheduler, LocalityConfig, LocalityScheduler, Scheduler};
use active_threads::{Engine, EngineConfig};
use locality_core::markov::DependentChain;
use locality_core::{
    FootprintEntry, FootprintModel, ModelParams, PolicyKind, PrioritySchemes, SanitizedInterval,
    SharingGraph, ThreadId, ThreadSlots,
};
use locality_sim::{AccessKind, Machine, MachineConfig};
use locality_workloads::tasks::{spawn_parallel, TasksParams};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs benches and collects `name -> median ns/op`.
#[derive(Debug)]
pub struct Harness {
    /// Quick mode: shorter batches, fewer samples (the default; the
    /// `--full` flag turns it off).
    pub quick: bool,
    /// Only run benches whose name contains this substring.
    pub filter: Option<String>,
    /// Print each result as it lands.
    pub verbose: bool,
    results: BTreeMap<String, f64>,
}

impl Harness {
    /// Creates a harness.
    pub fn new(quick: bool, filter: Option<String>) -> Self {
        Harness { quick, filter, verbose: false, results: BTreeMap::new() }
    }

    /// The collected `name -> median ns/op` map (deterministic order).
    pub fn results(&self) -> &BTreeMap<String, f64> {
        &self.results
    }

    fn wants(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `op`: calibrates a batch that takes roughly `target`, then
    /// records the median per-op nanoseconds over several batches.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut op: F) {
        if !self.wants(name) {
            return;
        }
        let target = Duration::from_millis(if self.quick { 4 } else { 40 });
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                op();
            }
            let dt = t.elapsed();
            if dt >= target || n >= 1 << 28 {
                break;
            }
            let scale = if dt.is_zero() {
                16
            } else {
                (target.as_nanos() / dt.as_nanos().max(1)).clamp(2, 16) as u64
            };
            n = n.saturating_mul(scale);
        }
        let samples = if self.quick { 7 } else { 13 };
        let mut per_op: Vec<f64> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..n {
                    op();
                }
                t.elapsed().as_nanos() as f64 / n as f64
            })
            .collect();
        per_op.sort_by(f64::total_cmp);
        let median = per_op[per_op.len() / 2];
        if self.verbose {
            eprintln!("{name:<40} {median:>12.1} ns/op  (batch {n})");
        }
        self.results.insert(name.to_string(), median);
    }
}

/// Registers every bench group on the harness.
pub fn run_all(h: &mut Harness) {
    machine_access(h);
    priority_update(h);
    prio_heap(h);
    sched_dispatch(h);
    engine_run(h);
    model(h);
}

/// `machine_access`: substrate cost per access on the L1-hit, L2-hit,
/// and L2-miss paths, coherent writes, and the footprint queries.
fn machine_access(h: &mut Harness) {
    {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let a = m.alloc(64, 64);
        m.access(0, a, AccessKind::Read);
        h.bench("machine_access/l1_hit", || {
            black_box(m.access(0, a, AccessKind::Read));
        });
    }
    {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let a = m.alloc(64 * 1024, 64);
        // 16 KiB apart: same L1-D index (16 KiB direct), different L2 index.
        let (x, y) = (a, a.offset(16 * 1024));
        m.access(0, x, AccessKind::Read);
        m.access(0, y, AccessKind::Read);
        let mut flip = false;
        h.bench("machine_access/l2_hit", || {
            flip = !flip;
            black_box(m.access(0, if flip { x } else { y }, AccessKind::Read));
        });
    }
    {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let lines = 8192u64 * 4;
        let a = m.alloc(lines * 64, 64);
        let mut i = 0u64;
        h.bench("machine_access/l2_miss_stream", || {
            i = (i + 1) % lines;
            black_box(m.access(0, a.offset(i * 64), AccessKind::Read));
        });
    }
    {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(64, 64);
        h.bench("machine_access/coherent_write", || {
            m.access(0, a, AccessKind::Read);
            black_box(m.access(1, a, AccessKind::Write));
        });
    }
    {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let t = ThreadId(1);
        let a = m.alloc(8192 * 64, 64);
        m.register_region(t, a, 8192 * 64);
        for i in 0..8192u64 {
            m.access(0, a.offset(i * 64), AccessKind::Read);
        }
        h.bench("machine_access/l2_footprint_query", || {
            black_box(m.l2_footprint_lines(0, t));
        });
    }
}

/// `priority_update`: Table 3 companion — cost of one priority update
/// per thread class.
fn priority_update(h: &mut Harness) {
    for policy in [PolicyKind::Lff, PolicyKind::Crt] {
        let schemes = PrioritySchemes::new(policy, ModelParams::new(8192).unwrap());
        let mut entry = FootprintEntry::cold();
        schemes.on_dispatch(&mut entry, 0);
        schemes.on_block_self(&mut entry, 100, 100);

        let mut m = 200u64;
        h.bench(&format!("priority_update/{}/blocking", policy.name()), || {
            let p = schemes.on_block_self(black_box(&mut entry), 13, m);
            m += 13;
            black_box(p);
        });
        let mut m = 200u64;
        h.bench(&format!("priority_update/{}/dependent", policy.name()), || {
            let p = schemes.on_dependent(black_box(&mut entry), 0.5, 13, m);
            m += 13;
            black_box(p);
        });
        h.bench(&format!("priority_update/{}/independent", policy.name()), || {
            schemes.on_independent();
        });
    }
}

/// `prio_heap`: raw run-queue operation costs.
fn prio_heap(h: &mut Harness) {
    let mut slots = ThreadSlots::new();
    let handles: Vec<_> = (0..1024u64).map(|i| slots.bind(ThreadId(i))).collect();
    h.bench("prio_heap/push_pop_1024", || {
        let mut heap = PrioHeap::new();
        for i in 0..1024u64 {
            heap.push(ThreadId(i), handles[i as usize], ((i * 2654435761) % 10_000) as f64);
        }
        while let Some(x) = heap.pop_max() {
            black_box(x);
        }
    });
    {
        let mut heap = PrioHeap::new();
        for i in 0..1024u64 {
            heap.push(ThreadId(i), handles[i as usize], ((i * 2654435761) % 10_000) as f64);
        }
        let mut i = 0u64;
        h.bench("prio_heap/update_key", || {
            i = (i * 16807 + 7) % 1024;
            heap.update(handles[i as usize], ((i * 31) % 5000) as f64);
            black_box(heap.peek_max());
        });
    }
}

/// `sched_dispatch`: one full scheduler dispatch cycle (pick →
/// dispatch → interval end with annotation dependents → re-ready) with
/// a large cold population in the global queue — the per-switch path
/// the paper prices at "only several instructions".
fn sched_dispatch(h: &mut Harness) {
    let mut s = LocalityScheduler::new(LocalityConfig::new(PolicyKind::Lff), 8192, 1).unwrap();
    let mut graph = SharingGraph::new();
    // t1 shares state with eight dependents.
    for d in 2..10u64 {
        graph.set(ThreadId(1), ThreadId(d), 0.5).unwrap();
    }
    // 256 ready threads; most stay cold in the global queue.
    for i in 1..=256u64 {
        s.on_spawn(ThreadId(i));
    }
    let interval =
        SanitizedInterval { refs: 400, hits: 100, misses: 300, confidence: 1.0, corrected: false };
    h.bench("sched_dispatch/cycle_256_ready", || {
        let tid = s.pick(0).expect("a ready thread");
        s.on_dispatch(0, tid);
        s.on_interval_end(0, tid, interval, &graph);
        s.on_ready(tid);
        black_box(tid);
    });
}

/// `engine_run`: end-to-end scheduler overhead on a yield-heavy
/// workload under FCFS and the locality policies, on engines
/// monomorphized over the concrete scheduler type (the fast path; the
/// boxed `Engine::new` form is the CLI's `--policy` boundary).
fn engine_run(h: &mut Harness) {
    let params = TasksParams { tasks: 64, footprint_lines: 40, periods: 6, overlap: 0.0 };
    h.bench("engine_run/tasks_small/fcfs", || {
        let mut e = Engine::with_scheduler(
            MachineConfig::ultra1(),
            FcfsScheduler::new(),
            EngineConfig::default(),
        )
        .unwrap();
        spawn_parallel(&mut e, &params);
        black_box(e.run().unwrap());
    });
    for policy in [PolicyKind::Lff, PolicyKind::Crt] {
        h.bench(&format!("engine_run/tasks_small/{}", policy.name()), || {
            let machine = MachineConfig::ultra1();
            let sched = LocalityScheduler::new(
                LocalityConfig::new(policy),
                machine.l2_lines(),
                machine.cpus,
            )
            .unwrap();
            let mut e = Engine::with_scheduler(machine, sched, EngineConfig::default()).unwrap();
            spawn_parallel(&mut e, &params);
            black_box(e.run().unwrap());
        });
    }
}

/// `model`: closed forms vs the (memoized) exact Markov chain.
fn model(h: &mut Harness) {
    let params = ModelParams::new(1024).unwrap();
    let model = FootprintModel::new(params);
    let chain = DependentChain::new(params, 0.5).unwrap();
    let mut n = 1u64;
    h.bench("model/closed_form_dependent", || {
        n = n % 10_000 + 1;
        black_box(model.expected_dependent(0.5, 100.0, n));
    });
    // The transient table is built once outside the timed region — the
    // memoized query path is what schedulers would actually hit.
    let table = chain.tabulate(16_384);
    let mut m = 1u64;
    h.bench("model/markov_chain_n100", || {
        m = m % 200 + 1;
        black_box(table.expected_after(100.0, black_box(m)));
    });
}

/// Serializes results as a flat, sorted JSON object.
pub fn to_json(results: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (name, ns) in results {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{name}\": {ns:.2}"));
    }
    out.push_str("\n}\n");
    out
}

/// Parses the flat `{"name": number}` JSON objects this harness emits.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| "expected a JSON object".to_string())?;
    let mut out = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) =
            entry.split_once(':').ok_or_else(|| format!("malformed entry: {entry}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value.trim().parse().map_err(|e| format!("bad number for {key}: {e}"))?;
        out.insert(key, value);
    }
    Ok(out)
}

/// Medians below this are indistinguishable from zero at the merged
/// document's two-decimal ns resolution: the bench's operation is
/// cheaper than the timer can resolve (e.g. the free independent-thread
/// priority updates), so a before/after ratio is meaningless.
pub const DEGENERATE_NS: f64 = 0.005;

/// A bench whose baseline or after median is below [`DEGENERATE_NS`].
/// Its "speedup" carries no information, so the merge omits the field
/// and the gate reports the bench instead of failing on it.
#[derive(Debug, Clone, PartialEq)]
pub struct DegenerateBaseline {
    /// Bench name (`group/name`).
    pub name: String,
    /// Median before, ns/op.
    pub before_ns: f64,
    /// Median after, ns/op.
    pub after_ns: f64,
}

impl std::fmt::Display for DegenerateBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} has a ~0 ns median (before {:.2}, after {:.2}); \
             speedup is meaningless and excluded from gating",
            self.name, self.before_ns, self.after_ns
        )
    }
}

/// Speedups that participate in `--fail-under` gating, plus the benches
/// excluded because their medians are below the timer's resolution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpeedupSet {
    /// `(name, before ÷ after)` pairs, in name order.
    pub gated: Vec<(String, f64)>,
    /// Benches with a [`DegenerateBaseline`], in name order.
    pub degenerate: Vec<DegenerateBaseline>,
}

fn classify(name: &str, before_ns: f64, after_ns: f64, set: &mut SpeedupSet) {
    if before_ns < DEGENERATE_NS || after_ns < DEGENERATE_NS {
        set.degenerate.push(DegenerateBaseline { name: name.to_string(), before_ns, after_ns });
    } else {
        set.gated.push((name.to_string(), before_ns / after_ns));
    }
}

/// Merges before/after runs into the `BENCH_hotpath.json` document:
/// per-bench `before_ns`, `after_ns`, and `speedup` (before ÷ after).
/// Benches with a [`DegenerateBaseline`] get no `speedup` field, so
/// downstream `--check` gating never sees a spurious `0.00` ratio.
pub fn merge_report(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n  \"unit\": \"median ns/op\",\n  \"benches\": {\n");
    let names: Vec<&String> = before.keys().chain(after.keys()).collect();
    let mut names: Vec<&String> = {
        let mut v = names;
        v.sort();
        v.dedup();
        v
    };
    let last = names.pop();
    for name in names.iter().chain(last.iter()) {
        let b = before.get(*name);
        let a = after.get(*name);
        out.push_str(&format!("    \"{name}\": {{"));
        if let Some(b) = b {
            out.push_str(&format!("\"before_ns\": {b:.2}"));
        }
        if let Some(a) = a {
            if b.is_some() {
                out.push_str(", ");
            }
            out.push_str(&format!("\"after_ns\": {a:.2}"));
        }
        if let (Some(b), Some(a)) = (b, a) {
            if *b >= DEGENERATE_NS && *a >= DEGENERATE_NS {
                out.push_str(&format!(", \"speedup\": {:.2}", b / a));
            }
        }
        out.push('}');
        if Some(*name) != last {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

/// Speedups (`before ÷ after`) for every bench present in both maps,
/// in name order, split into gated ratios and degenerate exclusions.
/// The merge path uses this to warn about regressions instead of
/// silently recording them.
pub fn speedups(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>) -> SpeedupSet {
    let mut set = SpeedupSet::default();
    for (name, &b) in before {
        if let Some(&a) = after.get(name) {
            classify(name, b, a, &mut set);
        }
    }
    set
}

/// Extracts one numeric field (e.g. `"speedup":`) from a merged-report
/// bench line, `Ok(None)` if the field is absent.
fn merged_field(line: &str, name: &str, key: &str) -> Result<Option<f64>, String> {
    let Some((_, tail)) = line.split_once(&format!("\"{key}\":")) else { return Ok(None) };
    let num = tail.trim_start().split([',', '}']).next().unwrap_or("").trim();
    num.parse().map(Some).map_err(|e| format!("bad {key} for {name}: {e}"))
}

/// Extracts gating inputs from a merged report document (the
/// `BENCH_hotpath.json` format [`merge_report`] emits), so CI can gate
/// on the committed numbers without re-timing anything. Bench entries
/// without a `speedup` field but with a [`DegenerateBaseline`] pair of
/// medians come back in `degenerate`, so the gate can surface them as
/// typed warnings.
///
/// # Errors
///
/// Returns a description of the first malformed numeric field.
pub fn parse_merged_speedups(text: &str) -> Result<SpeedupSet, String> {
    let mut set = SpeedupSet::default();
    for line in text.lines() {
        if !line.contains("\"before_ns\":") && !line.contains("\"speedup\":") {
            continue;
        }
        let name = line
            .trim_start()
            .strip_prefix('"')
            .and_then(|h| h.split_once('"'))
            .map(|(n, _)| n.to_string())
            .ok_or_else(|| format!("bench entry without a name: {line}"))?;
        if let Some(speedup) = merged_field(line, &name, "speedup")? {
            set.gated.push((name, speedup));
        } else if let (Some(before_ns), Some(after_ns)) =
            (merged_field(line, &name, "before_ns")?, merged_field(line, &name, "after_ns")?)
        {
            if before_ns < DEGENERATE_NS || after_ns < DEGENERATE_NS {
                set.degenerate.push(DegenerateBaseline { name, before_ns, after_ns });
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a/b".to_string(), 12.5);
        m.insert("c".to_string(), 3.0);
        let parsed = parse_flat_json(&to_json(&m)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed["a/b"] - 12.5).abs() < 1e-9);
    }

    #[test]
    fn merge_contains_speedup() {
        let mut b = BTreeMap::new();
        b.insert("x".to_string(), 100.0);
        let mut a = BTreeMap::new();
        a.insert("x".to_string(), 50.0);
        let doc = merge_report(&b, &a);
        assert!(doc.contains("\"speedup\": 2.00"), "{doc}");
    }

    #[test]
    fn speedups_cover_shared_benches_only() {
        let mut b = BTreeMap::new();
        b.insert("x".to_string(), 100.0);
        b.insert("gone".to_string(), 10.0);
        let mut a = BTreeMap::new();
        a.insert("x".to_string(), 200.0);
        a.insert("new".to_string(), 5.0);
        let s = speedups(&b, &a);
        assert_eq!(s.gated, vec![("x".to_string(), 0.5)]);
        assert!(s.degenerate.is_empty());
    }

    #[test]
    fn degenerate_baselines_are_excluded_not_zero() {
        let mut b = BTreeMap::new();
        b.insert("free".to_string(), 0.0);
        b.insert("real".to_string(), 100.0);
        let mut a = BTreeMap::new();
        a.insert("free".to_string(), 0.004);
        a.insert("real".to_string(), 50.0);
        let s = speedups(&b, &a);
        assert_eq!(s.gated, vec![("real".to_string(), 2.0)]);
        assert_eq!(s.degenerate.len(), 1);
        assert_eq!(s.degenerate[0].name, "free");
        assert!(s.degenerate[0].to_string().contains("excluded from gating"));

        // The merged document carries the medians but no speedup field,
        // so a later `--check` never sees a spurious 0.00 ratio.
        let doc = merge_report(&b, &a);
        assert!(doc.contains("\"free\": {\"before_ns\": 0.00, \"after_ns\": 0.00}"), "{doc}");
        let parsed = parse_merged_speedups(&doc).unwrap();
        assert_eq!(parsed.gated, vec![("real".to_string(), 2.0)]);
        assert_eq!(parsed.degenerate.len(), 1);
        assert_eq!(parsed.degenerate[0].name, "free");
    }

    #[test]
    fn merged_speedups_parse_back() {
        let mut b = BTreeMap::new();
        b.insert("fast".to_string(), 100.0);
        b.insert("slow".to_string(), 10.0);
        let mut a = BTreeMap::new();
        a.insert("fast".to_string(), 25.0);
        a.insert("slow".to_string(), 20.0);
        let doc = merge_report(&b, &a);
        let parsed = parse_merged_speedups(&doc).unwrap();
        assert_eq!(parsed.gated.len(), 2);
        assert!(parsed.gated.contains(&("fast".to_string(), 4.0)));
        assert!(parsed.gated.contains(&("slow".to_string(), 0.5)));
        assert!(parsed.degenerate.is_empty());
        assert!(parse_merged_speedups("{}\n").unwrap().gated.is_empty());
    }

    #[test]
    fn committed_report_round_trips_with_degenerates() {
        // The real BENCH_hotpath.json has two free-update benches whose
        // medians round to 0.00; they must come back as typed warnings,
        // not gate failures.
        let doc = "{\n  \"benches\": {\n    \
                   \"priority_update/lff/independent\": {\"before_ns\": 0.00, \"after_ns\": 0.00},\n    \
                   \"machine_access/l1_hit\": {\"before_ns\": 24.08, \"after_ns\": 12.95, \"speedup\": 1.86}\n  }\n}\n";
        let parsed = parse_merged_speedups(doc).unwrap();
        assert_eq!(parsed.gated, vec![("machine_access/l1_hit".to_string(), 1.86)]);
        assert_eq!(parsed.degenerate.len(), 1);
        assert_eq!(parsed.degenerate[0].name, "priority_update/lff/independent");
    }

    #[test]
    fn harness_runs_a_filtered_bench() {
        let mut h = Harness::new(true, Some("model/closed_form".to_string()));
        run_all(&mut h);
        assert_eq!(h.results().len(), 1);
        assert!(h.results()["model/closed_form_dependent"] > 0.0);
    }
}
