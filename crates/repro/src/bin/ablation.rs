//! Ablations called out in the paper's §5 and §3, plus the design-choice
//! sweeps from DESIGN.md:
//!
//! 1. **Annotation ablation** (photo, 8 cpus): the paper reports that LFF
//!    without annotations still eliminates 41% of the misses that full
//!    LFF eliminates and reaches 53% of its speedup.
//! 2. **Threshold sweep**: the heap-eviction threshold bounds heap sizes;
//!    too aggressive a threshold costs locality.
//! 3. **Page placement** (§3.1): bin hopping vs page coloring vs
//!    arbitrary placement, on the ocean sweep.
//! 4. **Invalidation effects** (§3.4): the model ignores cross-processor
//!    invalidations; measure the prediction error they cause.
//! 5. **Runtime sharing inference** (§7 future work): a CML-driven
//!    inference engine discovers sharing without any annotations; how
//!    close does it get to the hand-annotated program?

use active_threads::sched::LocalityConfig;
use active_threads::{Engine, EngineConfig, SchedPolicy};
use locality_core::{PolicyKind, ThreadId};
use locality_repro::perf::{run_cell, PerfApp};
use locality_repro::{Args, Scale, Table};
use locality_sim::{AccessKind, Machine, MachineConfig, PagePlacement};
use locality_workloads::tasks;

fn annotation_ablation(args: &Args) {
    let mut t = Table::new(
        "Ablation 1 — photo on 8 cpus: the value of at_share annotations",
        &["policy", "l2 misses", "cycles", "misses eliminated", "speedup"],
    );
    let fcfs = run_cell(PerfApp::Photo, SchedPolicy::Fcfs, 8, args.scale);
    let lff = run_cell(PerfApp::Photo, SchedPolicy::Lff, 8, args.scale);
    let noann = run_cell(PerfApp::Photo, SchedPolicy::LffNoAnnotations, 8, args.scale);
    for r in [&fcfs, &lff, &noann] {
        t.row(&[
            r.policy.clone(),
            r.total_l2_misses.to_string(),
            r.total_cycles.to_string(),
            format!("{:.0}%", r.misses_eliminated_vs(&fcfs) * 100.0),
            format!("{:.2}", r.speedup_over(&fcfs)),
        ]);
    }
    t.print();
    let full_elim = lff.misses_eliminated_vs(&fcfs);
    let part_elim = noann.misses_eliminated_vs(&fcfs);
    let full_speed = lff.speedup_over(&fcfs) - 1.0;
    let part_speed = noann.speedup_over(&fcfs) - 1.0;
    if full_elim > 0.0 && full_speed > 0.0 {
        println!(
            "without annotations, LFF achieves {:.0}% of the full miss elimination and {:.0}% of the speedup\n\
             (paper: 41% and 53%).\n",
            100.0 * part_elim / full_elim,
            100.0 * part_speed / full_speed
        );
    }
    t.write_csv(&args.csv_path("ablation_annotations.csv"));
}

fn threshold_sweep(args: &Args) {
    let mut t = Table::new(
        "Ablation 2 — heap-eviction threshold sweep (tasks, 1 cpu, LFF)",
        &["threshold (lines)", "l2 misses", "cycles"],
    );
    let params = match args.scale {
        Scale::Paper => tasks::TasksParams { tasks: 512, footprint_lines: 100, periods: 30, overlap: 0.0 },
        Scale::Small => tasks::TasksParams { tasks: 96, footprint_lines: 100, periods: 10, overlap: 0.0 },
    };
    for threshold in [1.0f64, 8.0, 64.0, 256.0, 1024.0] {
        let config = LocalityConfig {
            threshold_lines: threshold,
            ..LocalityConfig::new(PolicyKind::Lff)
        };
        let mut engine = Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Custom(config),
            EngineConfig::default(),
        );
        tasks::spawn_parallel(&mut engine, &params);
        let r = engine.run().expect("tasks completes");
        t.row(&[
            format!("{threshold:.0}"),
            r.total_l2_misses.to_string(),
            r.total_cycles.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&args.csv_path("ablation_threshold.csv"));
}

fn page_placement(args: &Args) {
    let mut t = Table::new(
        "Ablation 3 — page placement policies (conflict-sensitive apps, 1 cpu)",
        &["app", "placement", "l2 misses"],
    );
    for app in [locality_workloads::App::Typechecker, locality_workloads::App::Raytrace] {
        for placement in [
            PagePlacement::bin_hopping(),
            PagePlacement::PageColoring,
            PagePlacement::arbitrary(),
        ] {
            let machine = MachineConfig::ultra1().with_placement(placement.clone());
            let mut engine = Engine::new(machine, SchedPolicy::Fcfs, EngineConfig::default());
            app.spawn_single(&mut engine);
            let r = engine.run().expect("app completes");
            t.row(&[
                app.name().to_string(),
                placement.name().to_string(),
                r.total_l2_misses.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "careful placement (bin hopping / coloring, per Kessler & Hill) avoids a share of\n\
         the conflict misses that arbitrary placement incurs; capacity-bound streaming\n\
         apps (e.g. ocean) are insensitive to placement.\n"
    );
    t.write_csv(&args.csv_path("ablation_placement.csv"));
}

/// Invalidation effects: thread A builds a footprint on cpu0; a writer on
/// cpu1 invalidates a varying share of it. The model (which ignores
/// invalidations, §3.4) keeps predicting the pre-invalidation footprint.
fn invalidation_effects(args: &Args) {
    let mut t = Table::new(
        "Ablation 4 — invalidation effects the model ignores (2 cpus)",
        &["lines written remotely", "observed footprint", "model prediction", "error"],
    );
    for written in [0u64, 1024, 2048, 4096] {
        let mut machine = Machine::new(MachineConfig::enterprise5000(2));
        let a = ThreadId(1);
        let lines = 4096u64;
        let region = machine.alloc(lines * 64, 64);
        machine.register_region(a, region, lines * 64);
        machine.set_running(0, Some(a));
        for l in 0..lines {
            machine.access(0, region.offset(l * 64), AccessKind::Read);
        }
        let predicted = machine.l2_footprint_lines(0, a); // model sees no further misses on cpu0
        machine.set_running(1, Some(ThreadId(2)));
        for l in 0..written {
            machine.access(1, region.offset(l * 64), AccessKind::Write);
        }
        let observed = machine.l2_footprint_lines(0, a);
        t.row(&[
            written.to_string(),
            observed.to_string(),
            predicted.to_string(),
            format!("{:+.0}%", 100.0 * (predicted as f64 - observed as f64) / predicted as f64),
        ]);
    }
    t.print();
    println!("cross-processor writes shrink real footprints while the counter-driven model sees nothing (paper §3.4).\n");
    t.write_csv(&args.csv_path("ablation_invalidation.csv"));
}

/// A producer/consumer pipeline pair: the producer rewrites a shared
/// buffer each period and posts; the consumer waits, reads it, and
/// hands the turn back. Colocating the pair is the *only* available
/// locality win — a thread's affinity to its own past state is useless
/// because the producer rewrites (and thereby invalidates) the buffer
/// every period. This isolates the annotation/inference channel.
mod pipeline {
    use active_threads::{BatchCtx, Control, Engine, Program, SemId, ThreadId};
    use locality_core::ModelError;
    use locality_sim::VAddr;

    const LINE: u64 = 64;

    pub struct Params {
        pub pairs: usize,
        pub buffer_lines: u64,
        pub periods: u32,
    }

    struct Producer {
        buf: VAddr,
        bytes: u64,
        full: SemId,
        empty: SemId,
        periods: u32,
        phase: u8,
    }
    impl Program for Producer {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.write_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 4);
                    self.phase = 1;
                    Control::SemPost(self.full)
                }
                _ => {
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::SemWait(self.empty)
                }
            }
        }
        fn name(&self) -> &str {
            "producer"
        }
    }

    struct Consumer {
        buf: VAddr,
        bytes: u64,
        full: SemId,
        empty: SemId,
        periods: u32,
        phase: u8,
    }
    impl Program for Consumer {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Control::SemWait(self.full)
                }
                _ => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.read_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 4);
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::SemPost(self.empty)
                }
            }
        }
        fn name(&self) -> &str {
            "consumer"
        }
    }

    /// Spawns the pairs; returns `(producer, consumer)` ids per pair.
    pub fn spawn(
        engine: &mut Engine,
        params: &Params,
        annotate: bool,
    ) -> Result<Vec<(ThreadId, ThreadId)>, ModelError> {
        let bytes = params.buffer_lines * LINE;
        let mut out = Vec::with_capacity(params.pairs);
        for _ in 0..params.pairs {
            let buf = engine.machine_mut().alloc(bytes, 8192);
            let full = engine.sync_tables_mut().create_semaphore(0);
            let empty = engine.sync_tables_mut().create_semaphore(0);
            let p = engine.spawn(Box::new(Producer {
                buf,
                bytes,
                full,
                empty,
                periods: params.periods,
                phase: 0,
            }));
            let c = engine.spawn(Box::new(Consumer {
                buf,
                bytes,
                full,
                empty,
                periods: params.periods,
                phase: 0,
            }));
            if annotate {
                engine.annotate(p, c, 1.0)?;
                engine.annotate(c, p, 1.0)?;
            }
            out.push((p, c));
        }
        Ok(out)
    }
}

/// §7 future work: the producer/consumer pipeline under LFF with hand
/// annotations, with CML-driven runtime inference, and with neither.
fn sharing_inference(args: &Args) {
    use active_threads::InferenceConfig;
    let params = match args.scale {
        Scale::Paper => pipeline::Params { pairs: 128, buffer_lines: 100, periods: 40 },
        Scale::Small => pipeline::Params { pairs: 32, buffer_lines: 100, periods: 10 },
    };
    let run = |policy: SchedPolicy, annotate: bool, infer: bool| {
        let config = EngineConfig {
            infer_sharing: infer.then(InferenceConfig::default),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(MachineConfig::enterprise5000(8), policy, config);
        pipeline::spawn(&mut engine, &params, annotate).expect("valid annotations");
        engine.run().expect("pipeline completes")
    };
    let fcfs = run(SchedPolicy::Fcfs, false, false);
    let annotated = run(SchedPolicy::Lff, true, false);
    let inferred = run(SchedPolicy::Lff, false, true);
    let bare = run(SchedPolicy::Lff, false, false);
    let mut t = Table::new(
        "Ablation 5 — runtime sharing inference (producer/consumer pipeline, 8 cpus; §7 future work)",
        &["configuration", "l2 misses", "misses eliminated", "speedup"],
    );
    for (name, r) in [
        ("fcfs", &fcfs),
        ("lff + hand annotations", &annotated),
        ("lff + CML inference, no annotations", &inferred),
        ("lff, no annotations", &bare),
    ] {
        t.row(&[
            name.to_string(),
            r.total_l2_misses.to_string(),
            format!("{:.0}%", r.misses_eliminated_vs(&fcfs) * 100.0),
            format!("{:.2}", r.speedup_over(&fcfs)),
        ]);
    }
    t.print();
    let hand = annotated.misses_eliminated_vs(&fcfs);
    let auto = inferred.misses_eliminated_vs(&fcfs);
    if hand > 0.0 {
        println!(
            "CML-driven inference recovers {:.0}% of the hand-annotated miss elimination\n\
             with zero programmer effort (the paper's §7 conjecture, demonstrated).\n",
            100.0 * auto / hand
        );
    }
    t.write_csv(&args.csv_path("ablation_inference.csv"));
}

fn main() {
    let args = Args::from_env();
    annotation_ablation(&args);
    threshold_sweep(&args);
    page_placement(&args);
    invalidation_effects(&args);
    sharing_inference(&args);
}
