//! Ablations called out in the paper's §5 and §3, plus the design-choice
//! sweeps from DESIGN.md:
//!
//! 1. **Annotation ablation** (photo, 8 cpus): the paper reports that LFF
//!    without annotations still eliminates 41% of the misses that full
//!    LFF eliminates and reaches 53% of its speedup.
//! 2. **Threshold sweep**: the heap-eviction threshold bounds heap sizes;
//!    too aggressive a threshold costs locality.
//! 3. **Page placement** (§3.1): bin hopping vs page coloring vs
//!    arbitrary placement, on the ocean sweep.
//! 4. **Invalidation effects** (§3.4): the model ignores cross-processor
//!    invalidations; measure the prediction error they cause.
//! 5. **Runtime sharing inference** (§7 future work): a CML-driven
//!    inference engine discovers sharing without any annotations; how
//!    close does it get to the hand-annotated program?
//! 6. **Counter-fault robustness** (`--fault <scenario>|all`): inject
//!    deterministic PIC failure modes (wraparound, stuck-at, dropouts,
//!    saturation, noise, read traps) and measure the sanitizer's and the
//!    degraded scheduling mode's damage control: miss rate and
//!    footprint-prediction error under each fault vs the clean baseline
//!    and FCFS. Passing `--fault` runs *only* this table.

use active_threads::events::EngineView;
use active_threads::sched::LocalityConfig;
use active_threads::{Engine, EngineConfig, EngineHook, SchedPolicy, SwitchEvent};
use locality_core::{PolicyKind, ThreadId};
use locality_repro::perf::{run_cell, PerfApp};
use locality_repro::{Args, FaultScenario, Scale, Table};
use locality_sim::{AccessKind, Machine, MachineConfig, PagePlacement};
use locality_workloads::tasks;
use std::cell::RefCell;
use std::rc::Rc;

fn annotation_ablation(args: &Args) {
    let mut t = Table::new(
        "Ablation 1 — photo on 8 cpus: the value of at_share annotations",
        &["policy", "l2 misses", "cycles", "misses eliminated", "speedup"],
    );
    let fcfs = run_cell(PerfApp::Photo, SchedPolicy::Fcfs, 8, args.scale);
    let lff = run_cell(PerfApp::Photo, SchedPolicy::Lff, 8, args.scale);
    let noann = run_cell(PerfApp::Photo, SchedPolicy::LffNoAnnotations, 8, args.scale);
    for r in [&fcfs, &lff, &noann] {
        t.row(&[
            r.policy.clone(),
            r.total_l2_misses.to_string(),
            r.total_cycles.to_string(),
            format!("{:.0}%", r.misses_eliminated_vs(&fcfs) * 100.0),
            format!("{:.2}", r.speedup_over(&fcfs)),
        ]);
    }
    t.print();
    let full_elim = lff.misses_eliminated_vs(&fcfs);
    let part_elim = noann.misses_eliminated_vs(&fcfs);
    let full_speed = lff.speedup_over(&fcfs) - 1.0;
    let part_speed = noann.speedup_over(&fcfs) - 1.0;
    if full_elim > 0.0 && full_speed > 0.0 {
        println!(
            "without annotations, LFF achieves {:.0}% of the full miss elimination and {:.0}% of the speedup\n\
             (paper: 41% and 53%).\n",
            100.0 * part_elim / full_elim,
            100.0 * part_speed / full_speed
        );
    }
    t.write_csv(&args.csv_path("ablation_annotations.csv"));
}

fn threshold_sweep(args: &Args) {
    let mut t = Table::new(
        "Ablation 2 — heap-eviction threshold sweep (tasks, 1 cpu, LFF)",
        &["threshold (lines)", "l2 misses", "cycles"],
    );
    let params = match args.scale {
        Scale::Paper => {
            tasks::TasksParams { tasks: 512, footprint_lines: 100, periods: 30, overlap: 0.0 }
        }
        Scale::Small => {
            tasks::TasksParams { tasks: 96, footprint_lines: 100, periods: 10, overlap: 0.0 }
        }
    };
    for threshold in [1.0f64, 8.0, 64.0, 256.0, 1024.0] {
        let config =
            LocalityConfig { threshold_lines: threshold, ..LocalityConfig::new(PolicyKind::Lff) };
        let mut engine = Engine::new(
            MachineConfig::ultra1(),
            SchedPolicy::Custom(config),
            EngineConfig::default(),
        );
        tasks::spawn_parallel(&mut engine, &params);
        let r = engine.run().expect("tasks completes");
        t.row(&[
            format!("{threshold:.0}"),
            r.total_l2_misses.to_string(),
            r.total_cycles.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&args.csv_path("ablation_threshold.csv"));
}

fn page_placement(args: &Args) {
    let mut t = Table::new(
        "Ablation 3 — page placement policies (conflict-sensitive apps, 1 cpu)",
        &["app", "placement", "l2 misses"],
    );
    for app in [locality_workloads::App::Typechecker, locality_workloads::App::Raytrace] {
        for placement in
            [PagePlacement::bin_hopping(), PagePlacement::PageColoring, PagePlacement::arbitrary()]
        {
            let machine = MachineConfig::ultra1().with_placement(placement.clone());
            let mut engine = Engine::new(machine, SchedPolicy::Fcfs, EngineConfig::default());
            app.spawn_single(&mut engine);
            let r = engine.run().expect("app completes");
            t.row(&[
                app.name().to_string(),
                placement.name().to_string(),
                r.total_l2_misses.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "careful placement (bin hopping / coloring, per Kessler & Hill) avoids a share of\n\
         the conflict misses that arbitrary placement incurs; capacity-bound streaming\n\
         apps (e.g. ocean) are insensitive to placement.\n"
    );
    t.write_csv(&args.csv_path("ablation_placement.csv"));
}

/// Invalidation effects: thread A builds a footprint on cpu0; a writer on
/// cpu1 invalidates a varying share of it. The model (which ignores
/// invalidations, §3.4) keeps predicting the pre-invalidation footprint.
fn invalidation_effects(args: &Args) {
    let mut t = Table::new(
        "Ablation 4 — invalidation effects the model ignores (2 cpus)",
        &["lines written remotely", "observed footprint", "model prediction", "error"],
    );
    for written in [0u64, 1024, 2048, 4096] {
        let mut machine = Machine::new(MachineConfig::enterprise5000(2));
        let a = ThreadId(1);
        let lines = 4096u64;
        let region = machine.alloc(lines * 64, 64);
        machine.register_region(a, region, lines * 64);
        machine.set_running(0, Some(a));
        for l in 0..lines {
            machine.access(0, region.offset(l * 64), AccessKind::Read);
        }
        let predicted = machine.l2_footprint_lines(0, a); // model sees no further misses on cpu0
        machine.set_running(1, Some(ThreadId(2)));
        for l in 0..written {
            machine.access(1, region.offset(l * 64), AccessKind::Write);
        }
        let observed = machine.l2_footprint_lines(0, a);
        t.row(&[
            written.to_string(),
            observed.to_string(),
            predicted.to_string(),
            format!("{:+.0}%", 100.0 * (predicted as f64 - observed as f64) / predicted as f64),
        ]);
    }
    t.print();
    println!("cross-processor writes shrink real footprints while the counter-driven model sees nothing (paper §3.4).\n");
    t.write_csv(&args.csv_path("ablation_invalidation.csv"));
}

/// A producer/consumer pipeline pair: the producer rewrites a shared
/// buffer each period and posts; the consumer waits, reads it, and
/// hands the turn back. Colocating the pair is the *only* available
/// locality win — a thread's affinity to its own past state is useless
/// because the producer rewrites (and thereby invalidates) the buffer
/// every period. This isolates the annotation/inference channel.
mod pipeline {
    use active_threads::{BatchCtx, Control, Engine, Program, SemId, ThreadId};
    use locality_core::ModelError;
    use locality_sim::VAddr;

    const LINE: u64 = 64;

    pub struct Params {
        pub pairs: usize,
        pub buffer_lines: u64,
        pub periods: u32,
    }

    struct Producer {
        buf: VAddr,
        bytes: u64,
        full: SemId,
        empty: SemId,
        periods: u32,
        phase: u8,
    }
    impl Program for Producer {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.write_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 4);
                    self.phase = 1;
                    Control::SemPost(self.full)
                }
                _ => {
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::SemWait(self.empty)
                }
            }
        }
        fn name(&self) -> &str {
            "producer"
        }
    }

    struct Consumer {
        buf: VAddr,
        bytes: u64,
        full: SemId,
        empty: SemId,
        periods: u32,
        phase: u8,
    }
    impl Program for Consumer {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Control::SemWait(self.full)
                }
                _ => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.read_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 4);
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::SemPost(self.empty)
                }
            }
        }
        fn name(&self) -> &str {
            "consumer"
        }
    }

    /// Spawns the pairs; returns `(producer, consumer)` ids per pair.
    pub fn spawn(
        engine: &mut Engine,
        params: &Params,
        annotate: bool,
    ) -> Result<Vec<(ThreadId, ThreadId)>, ModelError> {
        let bytes = params.buffer_lines * LINE;
        let mut out = Vec::with_capacity(params.pairs);
        for _ in 0..params.pairs {
            let buf = engine.machine_mut().alloc(bytes, 8192);
            let full = engine.sync_tables_mut().create_semaphore(0);
            let empty = engine.sync_tables_mut().create_semaphore(0);
            let p = engine.spawn(Box::new(Producer {
                buf,
                bytes,
                full,
                empty,
                periods: params.periods,
                phase: 0,
            }));
            let c = engine.spawn(Box::new(Consumer {
                buf,
                bytes,
                full,
                empty,
                periods: params.periods,
                phase: 0,
            }));
            if annotate {
                engine.annotate(p, c, 1.0)?;
                engine.annotate(c, p, 1.0)?;
            }
            out.push((p, c));
        }
        Ok(out)
    }
}

/// §7 future work: the producer/consumer pipeline under LFF with hand
/// annotations, with CML-driven runtime inference, and with neither.
fn sharing_inference(args: &Args) {
    use active_threads::InferenceConfig;
    let params = match args.scale {
        Scale::Paper => pipeline::Params { pairs: 128, buffer_lines: 100, periods: 40 },
        Scale::Small => pipeline::Params { pairs: 32, buffer_lines: 100, periods: 10 },
    };
    let run = |policy: SchedPolicy, annotate: bool, infer: bool| {
        let config = EngineConfig {
            infer_sharing: infer.then(InferenceConfig::default),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(MachineConfig::enterprise5000(8), policy, config);
        pipeline::spawn(&mut engine, &params, annotate).expect("valid annotations");
        engine.run().expect("pipeline completes")
    };
    let fcfs = run(SchedPolicy::Fcfs, false, false);
    let annotated = run(SchedPolicy::Lff, true, false);
    let inferred = run(SchedPolicy::Lff, false, true);
    let bare = run(SchedPolicy::Lff, false, false);
    let mut t = Table::new(
        "Ablation 5 — runtime sharing inference (producer/consumer pipeline, 8 cpus; §7 future work)",
        &["configuration", "l2 misses", "misses eliminated", "speedup"],
    );
    for (name, r) in [
        ("fcfs", &fcfs),
        ("lff + hand annotations", &annotated),
        ("lff + CML inference, no annotations", &inferred),
        ("lff, no annotations", &bare),
    ] {
        t.row(&[
            name.to_string(),
            r.total_l2_misses.to_string(),
            format!("{:.0}%", r.misses_eliminated_vs(&fcfs) * 100.0),
            format!("{:.2}", r.speedup_over(&fcfs)),
        ]);
    }
    t.print();
    let hand = annotated.misses_eliminated_vs(&fcfs);
    let auto = inferred.misses_eliminated_vs(&fcfs);
    if hand > 0.0 {
        println!(
            "CML-driven inference recovers {:.0}% of the hand-annotated miss elimination\n\
             with zero programmer effort (the paper's §7 conjecture, demonstrated).\n",
            100.0 * auto / hand
        );
    }
    t.write_csv(&args.csv_path("ablation_inference.csv"));
}

/// Accumulates |model prediction − ground truth| footprint error over
/// every context switch (the machine knows the true resident lines; the
/// scheduler knows the model's expectation).
#[derive(Debug, Default)]
struct PredictionProbe {
    sum_abs_err: f64,
    sum_observed: f64,
    samples: u64,
}

impl PredictionProbe {
    /// Mean absolute prediction error in lines.
    fn mean_abs_err(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_abs_err / self.samples as f64
        }
    }

    /// Prediction error relative to the mean observed footprint.
    fn relative_err(&self) -> f64 {
        if self.sum_observed == 0.0 {
            0.0
        } else {
            self.sum_abs_err / self.sum_observed
        }
    }
}

struct PredictionHook {
    probe: Rc<RefCell<PredictionProbe>>,
}

impl EngineHook for PredictionHook {
    fn on_context_switch(&mut self, event: &SwitchEvent, view: &EngineView<'_>) {
        let Some(predicted) = view.sched.expected_footprint(event.cpu, event.tid) else {
            return;
        };
        let observed = view.machine.l2_footprint_lines(event.cpu, event.tid) as f64;
        let mut p = self.probe.borrow_mut();
        p.sum_abs_err += (predicted - observed).abs();
        p.sum_observed += observed;
        p.samples += 1;
    }
}

/// One fault-scenario run: the overlapped-tasks workload on 4 cpus.
struct FaultCell {
    report: active_threads::RunReport,
    probe: PredictionProbe,
    recovered: bool,
}

fn run_fault_cell(policy: SchedPolicy, scenario: FaultScenario, scale: Scale) -> FaultCell {
    let params = match scale {
        Scale::Paper => {
            tasks::TasksParams { tasks: 256, footprint_lines: 100, periods: 30, overlap: 0.5 }
        }
        Scale::Small => {
            tasks::TasksParams { tasks: 64, footprint_lines: 100, periods: 10, overlap: 0.5 }
        }
    };
    let mut engine = Engine::new(MachineConfig::enterprise5000(4), policy, EngineConfig::default());
    if let Some(config) = scenario.config(0xFA11) {
        engine.machine_mut().install_fault(config);
    }
    let probe = Rc::new(RefCell::new(PredictionProbe::default()));
    engine.add_hook(Box::new(PredictionHook { probe: probe.clone() }));
    tasks::spawn_parallel(&mut engine, &params);
    let report = engine.run().unwrap_or_else(|e| {
        panic!("{} run must survive fault '{}': {e}", policy.name(), scenario.name())
    });
    let recovered = report.degraded_intervals > 0 && !engine.scheduler().is_degraded();
    drop(engine);
    let probe = Rc::try_unwrap(probe).expect("engine dropped its hook").into_inner();
    FaultCell { report, probe, recovered }
}

/// Ablation 6: every requested fault scenario against the clean LFF and
/// FCFS baselines.
fn fault_ablation(args: &Args, scenarios: &[FaultScenario]) {
    let mut t = Table::new(
        "Ablation 6 — counter faults vs sanitizer + graceful degradation (tasks, 4 cpus, LFF)",
        &[
            "scenario",
            "l2 misses",
            "miss ratio",
            "vs clean lff",
            "vs fcfs",
            "pred err (lines)",
            "pred err (rel)",
            "corrected",
            "degraded ivals",
            "recovered",
        ],
    );
    let fcfs = run_fault_cell(SchedPolicy::Fcfs, FaultScenario::Clean, args.scale);
    let clean = run_fault_cell(SchedPolicy::Lff, FaultScenario::Clean, args.scale);
    let ratio = |misses: u64, base: u64| {
        if base == 0 {
            0.0
        } else {
            misses as f64 / base as f64
        }
    };
    for &scenario in scenarios {
        let cell = if scenario == FaultScenario::Clean {
            run_fault_cell(SchedPolicy::Lff, FaultScenario::Clean, args.scale)
        } else {
            run_fault_cell(SchedPolicy::Lff, scenario, args.scale)
        };
        let r = &cell.report;
        t.row(&[
            scenario.name().to_string(),
            r.total_l2_misses.to_string(),
            format!("{:.4}", r.miss_ratio()),
            format!("{:.2}x", ratio(r.total_l2_misses, clean.report.total_l2_misses)),
            format!("{:.2}x", ratio(r.total_l2_misses, fcfs.report.total_l2_misses)),
            format!("{:.1}", cell.probe.mean_abs_err()),
            format!("{:.0}%", 100.0 * cell.probe.relative_err()),
            r.corrected_intervals.to_string(),
            r.degraded_intervals.to_string(),
            if r.degraded_intervals == 0 {
                "-".to_string()
            } else if cell.recovered {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    t.row(&[
        "fcfs (ref)".to_string(),
        fcfs.report.total_l2_misses.to_string(),
        format!("{:.4}", fcfs.report.miss_ratio()),
        format!("{:.2}x", ratio(fcfs.report.total_l2_misses, clean.report.total_l2_misses)),
        "1.00x".to_string(),
        "-".to_string(),
        "-".to_string(),
        "0".to_string(),
        "0".to_string(),
        "-".to_string(),
    ]);
    t.print();
    println!(
        "the sanitizer bounds what the model sees, so faulted LFF degrades toward — never\n\
         far past — the FCFS miss rate; the 'window' scenario shows the scheduler entering\n\
         degraded mode under sustained traps and recovering once reads come back clean.\n"
    );
    t.write_csv(&args.csv_path("ablation_faults.csv"));
}

fn main() {
    let args = Args::from_env();
    if let Some(value) = &args.fault {
        match FaultScenario::parse(value) {
            Ok(scenarios) => fault_ablation(&args, &scenarios),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
        return;
    }
    annotation_ablation(&args);
    threshold_sweep(&args);
    page_placement(&args);
    invalidation_effects(&args);
    sharing_inference(&args);
}
