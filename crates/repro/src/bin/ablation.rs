//! Ablations called out in the paper's §5 and §3, plus the design-choice
//! sweeps from DESIGN.md:
//!
//! 1. **Annotation ablation** (photo, 8 cpus): the paper reports that LFF
//!    without annotations still eliminates 41% of the misses that full
//!    LFF eliminates and reaches 53% of its speedup.
//! 2. **Threshold sweep**: the heap-eviction threshold bounds heap sizes;
//!    too aggressive a threshold costs locality.
//! 3. **Page placement** (§3.1): bin hopping vs page coloring vs
//!    arbitrary placement.
//! 4. **Invalidation effects** (§3.4): the model ignores cross-processor
//!    invalidations; measure the prediction error they cause.
//! 5. **Runtime sharing inference** (§7 future work): a CML-driven
//!    inference engine discovers sharing without any annotations.
//! 6. **Counter-fault robustness** (`--fault <scenario>|all`): inject
//!    deterministic PIC failure modes and measure the sanitizer's and the
//!    degraded scheduling mode's damage control. Passing `--fault` runs
//!    *only* this table.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Ablation);
}
