//! Static & dynamic analysis over the deterministic fixture workloads:
//! vector-clock race detection, lock-order cycle detection, and
//! annotation-consistency lints (see `locality-analyze`).
//!
//! Exit status: 0 when no data race was confirmed, 1 when the analyzed
//! workload races, 2 on usage errors. Warnings (lints, lock-order
//! cycles) never affect the exit status.

fn main() {
    locality_repro::analyze::main_analyze();
}
