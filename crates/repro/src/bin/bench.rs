//! `bench`: offline hot-path microbenchmarks (see
//! [`locality_repro::bench`]).
//!
//! ```text
//! bench [--full] [--filter SUBSTR] [--save FILE]
//! bench --merge BEFORE AFTER --out FILE [--fail-under RATIO]
//! bench --check FILE --fail-under RATIO
//! ```
//!
//! The first form runs the groups (quick mode unless `--full`) and
//! prints — or `--save`s — the flat `{"group/name": median_ns}` JSON.
//! The second form merges two such files into the before/after/speedup
//! document committed as `BENCH_hotpath.json`; any bench slower than
//! before is warned about, and `--fail-under` turns speedups below the
//! given ratio into a non-zero exit. The third form re-checks an
//! already-merged document against the ratio without re-timing anything
//! (the deterministic CI gate).

use locality_repro::bench;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench [--full] [--filter SUBSTR] [--save FILE]\n       \
         bench --merge BEFORE AFTER --out FILE [--fail-under RATIO]\n       \
         bench --check FILE --fail-under RATIO"
    );
    ExitCode::from(2)
}

/// Warns about every speedup below 1.0 and returns whether all gated
/// speedups clear `fail_under` (always true when no ratio was given).
/// Degenerate ~0 ns baselines are surfaced as warnings, never failures:
/// their ratios carry no information.
fn gate(speedups: &bench::SpeedupSet, fail_under: Option<f64>) -> bool {
    for d in &speedups.degenerate {
        eprintln!("bench: warning: {d}");
    }
    let mut ok = true;
    for (name, s) in &speedups.gated {
        if *s < 1.0 {
            eprintln!("bench: warning: {name} regressed ({s:.2}x)");
        }
        if let Some(floor) = fail_under {
            if *s < floor {
                eprintln!("bench: {name} speedup {s:.2}x is below --fail-under {floor}");
                ok = false;
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = true;
    let mut filter = None;
    let mut save = None;
    let mut merge: Option<(String, String)> = None;
    let mut check: Option<String> = None;
    let mut out = None;
    let mut fail_under: Option<f64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => quick = false,
            "--filter" => match it.next() {
                Some(f) => filter = Some(f),
                None => return usage(),
            },
            "--save" => match it.next() {
                Some(f) => save = Some(f),
                None => return usage(),
            },
            "--merge" => match (it.next(), it.next()) {
                (Some(b), Some(a)) => merge = Some((b, a)),
                _ => return usage(),
            },
            "--check" => match it.next() {
                Some(f) => check = Some(f),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f),
                None => return usage(),
            },
            "--fail-under" => match it.next().and_then(|r| r.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => fail_under = Some(r),
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if let Some(path) = check {
        let speedups = std::fs::read_to_string(&path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|t| bench::parse_merged_speedups(&t).map_err(|e| format!("{path}: {e}")));
        return match speedups {
            Ok(speedups) => {
                if gate(&speedups, fail_under) {
                    println!(
                        "{path}: {} bench(es) checked, {} degenerate",
                        speedups.gated.len(),
                        speedups.degenerate.len()
                    );
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("bench: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some((before_path, after_path)) = merge {
        let Some(out) = out else { return usage() };
        let load = |path: &str| {
            std::fs::read_to_string(path)
                .map_err(|e| format!("{path}: {e}"))
                .and_then(|t| bench::parse_flat_json(&t).map_err(|e| format!("{path}: {e}")))
        };
        match (load(&before_path), load(&after_path)) {
            (Ok(before), Ok(after)) => {
                let doc = bench::merge_report(&before, &after);
                if let Err(e) = std::fs::write(&out, doc) {
                    eprintln!("bench: write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {out}");
                if gate(&bench::speedups(&before, &after), fail_under) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut h = bench::Harness::new(quick, filter);
        h.verbose = true;
        bench::run_all(&mut h);
        let doc = bench::to_json(h.results());
        match save {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("bench: write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
                ExitCode::SUCCESS
            }
            None => {
                print!("{doc}");
                ExitCode::SUCCESS
            }
        }
    }
}
