//! Figure 4: the random-memory-walk microbenchmark — observed vs
//! predicted footprints for all four panels.

use locality_repro::microbench::{max_rel_error, run, Monitored, WalkExperiment, WalkPoint};
use locality_repro::{Args, Scale, Table};

fn emit_panel(args: &Args, panel: &str, title: &str, curves: Vec<(String, Vec<WalkPoint>)>) {
    let mut t = Table::new(title, &["curve", "misses", "observed", "predicted"]);
    for (name, pts) in &curves {
        for p in pts {
            t.row(&[
                name.clone(),
                p.misses.to_string(),
                format!("{:.0}", p.observed),
                format!("{:.0}", p.predicted),
            ]);
        }
    }
    t.write_csv(&args.csv_path(&format!("fig4{panel}.csv")));

    // Print a compact summary per curve instead of every point.
    let mut s =
        Table::new(title, &["curve", "start", "end observed", "end predicted", "max rel err"]);
    for (name, pts) in &curves {
        let first = pts.first().expect("curve has points");
        let last = pts.last().expect("curve has points");
        s.row(&[
            name.clone(),
            format!("{:.0}", first.observed),
            format!("{:.0}", last.observed),
            format!("{:.0}", last.predicted),
            format!("{:.3}", max_rel_error(pts, 256.0)),
        ]);
    }
    s.print();
}

fn main() {
    let args = Args::from_env();
    let (total, every) = match args.scale {
        Scale::Paper => (25_000u64, 1_000u64),
        Scale::Small => (8_000, 1_000),
    };

    // Panel a: the executing thread, several initial footprints.
    let curves = [0.0f64, 2048.0, 4096.0, 6144.0]
        .into_iter()
        .map(|s0| {
            let pts = run(&WalkExperiment::direct(Monitored::Walker { s0 }, total, every, 11));
            (format!("S_A={s0:.0}"), pts)
        })
        .collect();
    emit_panel(&args, "a", "Figure 4a — executing thread footprint", curves);

    // Panel b: sleeping independent threads decay.
    let curves = [2048.0f64, 4096.0, 8192.0]
        .into_iter()
        .map(|s0| {
            let pts = run(&WalkExperiment::direct(Monitored::Independent { s0 }, total, every, 12));
            (format!("S_B={s0:.0}"), pts)
        })
        .collect();
    emit_panel(&args, "b", "Figure 4b — sleeping independent threads", curves);

    // Panel c: sleeping dependent thread, q = 0.5, several initial
    // footprints (grows or decays toward qN = 4096).
    let curves = [512.0f64, 2048.0, 6144.0, 8000.0]
        .into_iter()
        .map(|s0| {
            let pts =
                run(&WalkExperiment::direct(Monitored::Dependent { q: 0.5, s0 }, total, every, 13));
            (format!("S_C={s0:.0}"), pts)
        })
        .collect();
    emit_panel(&args, "c", "Figure 4c — sleeping dependent threads (q=0.5)", curves);

    // Panel d: varying sharing coefficient, fixed initial footprint.
    let curves = [0.1f64, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|q| {
            let pts = run(&WalkExperiment::direct(
                Monitored::Dependent { q, s0: 4096.0 },
                total,
                every,
                14,
            ));
            (format!("q={q:.2}"), pts)
        })
        .collect();
    emit_panel(&args, "d", "Figure 4d — sleeping dependent threads vs q (S_C=4096)", curves);

    // Extension (paper §2.1): the same closed forms on LRU associative
    // E-caches of equal capacity.
    let curves = [1u64, 2, 4]
        .into_iter()
        .map(|assoc| {
            let pts = run(&WalkExperiment {
                monitored: Monitored::Walker { s0: 0.0 },
                total_misses: total,
                sample_every: every,
                associativity: assoc,
                seed: 15,
            });
            (format!("{assoc}-way"), pts)
        })
        .collect();
    emit_panel(
        &args,
        "e",
        "Figure 4e (extension) — executing thread footprint vs E-cache associativity",
        curves,
    );
}
