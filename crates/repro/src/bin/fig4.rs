//! Figure 4: the random-memory-walk microbenchmark — observed vs
//! predicted footprints for all five panels.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Fig4);
}
