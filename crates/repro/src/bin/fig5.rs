//! Figure 5: observed vs model-predicted thread cache footprints for the
//! six well-behaved applications (barnes, fmm, ocean, merge, photo, tsp).

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Fig5);
}
