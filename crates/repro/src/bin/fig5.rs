//! Figure 5: observed vs model-predicted thread cache footprints for the
//! six well-behaved applications (barnes, fmm, ocean, merge, photo, tsp).

use locality_repro::monitor::{monitor_app, monitor_app_with_placement};
use locality_repro::{Args, Table};
use locality_sim::PagePlacement;
use locality_workloads::App;

fn main() {
    let args = Args::from_env();
    let mut summary = Table::new(
        "Figure 5 — observed footprints versus predictions (work thread, Ultra-1)",
        &[
            "app",
            "samples",
            "final misses",
            "final observed",
            "final predicted",
            "mean rel err (bin-hop VM)",
            "mean rel err (naive VM)",
        ],
    );
    for app in App::FIG5 {
        let trace = monitor_app(app);
        let naive = monitor_app_with_placement(app, PagePlacement::arbitrary());
        let mut t = Table::new("", &["misses", "instructions", "observed", "predicted"]);
        for s in &trace.samples {
            t.row(&[
                s.misses.to_string(),
                s.instructions.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ]);
        }
        t.write_csv(&args.csv_path(&format!("fig5_{}.csv", app.name())));

        let last = trace.last().expect("trace has samples");
        summary.row(&[
            app.name().to_string(),
            trace.samples.len().to_string(),
            last.misses.to_string(),
            format!("{:.0}", last.observed),
            format!("{:.0}", last.predicted),
            format!("{:+.1}%", trace.mean_rel_error() * 100.0),
            format!("{:+.1}%", naive.mean_rel_error() * 100.0),
        ]);

        // Print a thinned view of the curve.
        let mut view =
            Table::new(&format!("fig5: {}", app.name()), &["misses", "observed", "predicted"]);
        for s in trace.thin(10) {
            view.row(&[
                s.misses.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ]);
        }
        view.print();
    }
    summary.print();
    println!(
        "the model's only inputs are miss counts; on the idealized bin-hopping VM, a\n\
         clustered (streaming) app claims a fresh set with every miss, so predictions\n\
         run slightly LOW; on a naive VM, placements collide and repeated misses stop\n\
         growing footprints, so predictions run HIGH (the paper's regime)."
    );
    summary.write_csv(&args.csv_path("fig5_summary.csv"));
}
