//! Figure 6: average E-cache misses per 1000 instructions (MPI) over the
//! execution of each monitored work thread — the reload-transient burst
//! followed by a steadier phase.

use locality_repro::monitor::{monitor_app, mpi_series};
use locality_repro::{Args, Table};
use locality_workloads::App;

fn main() {
    let args = Args::from_env();
    let mut summary = Table::new(
        "Figure 6 — E-cache misses per 1000 instructions (work thread, Ultra-1)",
        &["app", "peak mpi", "final-quarter mpi", "burst ratio"],
    );
    for app in App::FIG5.iter().chain(App::FIG7.iter()) {
        let trace = monitor_app(*app);
        let series = mpi_series(&trace);
        let mut t = Table::new("", &["instructions", "mpi"]);
        for (instr, mpi) in &series {
            t.row(&[instr.to_string(), format!("{mpi:.3}")]);
        }
        t.write_csv(&args.csv_path(&format!("fig6_{}.csv", app.name())));

        let peak = series.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let tail_start = series.len() * 3 / 4;
        let tail = &series[tail_start..];
        let tail_mpi = if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64
        };
        summary.row(&[
            app.name().to_string(),
            format!("{peak:.2}"),
            format!("{tail_mpi:.2}"),
            format!("{:.1}x", if tail_mpi > 0.0 { peak / tail_mpi } else { f64::INFINITY }),
        ]);
    }
    summary.print();
    println!(
        "unblocking threads show a burst of reload-transient misses followed by a\n\
         steadier phase (burst ratio = peak / final-quarter MPI)."
    );
    summary.write_csv(&args.csv_path("fig6_summary.csv"));
}
