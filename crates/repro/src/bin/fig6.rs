//! Figure 6: average E-cache misses per 1000 instructions (MPI) over the
//! execution of each monitored work thread — the reload-transient burst
//! followed by a steadier phase.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Fig6);
}
