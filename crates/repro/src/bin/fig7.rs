//! Figure 7: the two anomalous applications whose footprints the model
//! substantially over-predicts — the Sather typechecker (nonstationary
//! streaming over a large data set) and raytrace (conflict misses that do
//! not grow the footprint).

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Fig7);
}
