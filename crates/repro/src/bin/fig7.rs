//! Figure 7: the two anomalous applications whose footprints the model
//! substantially over-predicts — the Sather typechecker (nonstationary
//! streaming over a large data set) and raytrace (conflict misses that do
//! not grow the footprint).

use locality_repro::monitor::{monitor_app, monitor_app_with_placement};
use locality_repro::{Args, Table};
use locality_sim::PagePlacement;
use locality_workloads::App;

fn main() {
    let args = Args::from_env();
    let mut summary = Table::new(
        "Figure 7 — overestimated footprints (Ultra-1)",
        &[
            "app",
            "final misses",
            "final observed",
            "final predicted",
            "overestimate",
            "overestimate (naive VM)",
        ],
    );
    for app in App::FIG7 {
        let trace = monitor_app(app);
        let naive = monitor_app_with_placement(app, PagePlacement::arbitrary());
        let mut t = Table::new("", &["misses", "observed", "predicted"]);
        for s in &trace.samples {
            t.row(&[
                s.misses.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ]);
        }
        t.write_csv(&args.csv_path(&format!("fig7_{}.csv", app.name())));

        let mut view =
            Table::new(&format!("fig7: {}", app.name()), &["misses", "observed", "predicted"]);
        for s in trace.thin(10) {
            view.row(&[
                s.misses.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ]);
        }
        view.print();

        let last = trace.last().expect("trace has samples");
        let nlast = naive.last().expect("trace has samples");
        summary.row(&[
            app.name().to_string(),
            last.misses.to_string(),
            format!("{:.0}", last.observed),
            format!("{:.0}", last.predicted),
            format!("{:.1}x", last.predicted / last.observed.max(1.0)),
            format!("{:.1}x", nlast.predicted / nlast.observed.max(1.0)),
        ]);
    }
    summary.print();
    summary.write_csv(&args.csv_path("fig7_summary.csv"));
}
