//! Figure 8: performance impact of locality scheduling on the
//! single-processor Ultra-1 — total E-cache misses (normalized to FCFS)
//! and relative performance for tasks, merge, photo, tsp under
//! FCFS / LFF / CRT.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Fig8);
}
