//! Figure 8: performance impact of locality scheduling on the
//! single-processor Ultra-1 — total E-cache misses (normalized to FCFS)
//! and relative performance for tasks, merge, photo, tsp under
//! FCFS / LFF / CRT.

use locality_repro::perf::{PerfApp, PolicyComparison};
use locality_repro::{Args, Table};

fn main() {
    let args = Args::from_env();
    let mut misses = Table::new(
        "Figure 8 (left) — total E-cache misses, 1-cpu Ultra-1 (normalized to FCFS)",
        &["app", "fcfs", "lff", "crt"],
    );
    let mut perf = Table::new(
        "Figure 8 (right) — performance relative to FCFS, 1-cpu Ultra-1",
        &["app", "fcfs", "lff", "crt"],
    );
    let mut raw =
        Table::new("raw data", &["app", "policy", "l2 misses", "cycles", "switches", "threads"]);
    for app in PerfApp::ALL {
        let cmp = PolicyComparison::run(app, 1, args.scale);
        let (m_lff, s_lff) = cmp.vs_fcfs(&cmp.lff);
        let (m_crt, s_crt) = cmp.vs_fcfs(&cmp.crt);
        misses.row(&[
            app.name().to_string(),
            "1.00".to_string(),
            format!("{m_lff:.2}"),
            format!("{m_crt:.2}"),
        ]);
        perf.row(&[
            app.name().to_string(),
            "1.00".to_string(),
            format!("{s_lff:.2}"),
            format!("{s_crt:.2}"),
        ]);
        for r in [&cmp.fcfs, &cmp.lff, &cmp.crt] {
            raw.row(&[
                app.name().to_string(),
                r.policy.clone(),
                r.total_l2_misses.to_string(),
                r.total_cycles.to_string(),
                r.context_switches.to_string(),
                r.threads_completed.to_string(),
            ]);
        }
    }
    misses.print();
    perf.print();
    raw.print();
    misses.write_csv(&args.csv_path("fig8_misses.csv"));
    perf.write_csv(&args.csv_path("fig8_perf.csv"));
    raw.write_csv(&args.csv_path("fig8_raw.csv"));
}
