//! Figure 9: performance impact of locality scheduling on the
//! 8-processor Sun Enterprise 5000 — total E-cache misses (normalized to
//! FCFS) and relative performance for tasks, merge, photo, tsp under
//! FCFS / LFF / CRT.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Fig9);
}
