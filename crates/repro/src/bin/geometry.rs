//! Geometry validation: the random-memory-walk workloads replayed
//! across L2 geometries of equal capacity, comparing the paper's
//! direct-mapped closed forms against the per-set occupancy estimator
//! (`--geometry SxW` restricts the sweep, `--page-size BYTES` sets the
//! TLB page size).

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Geometry);
}
