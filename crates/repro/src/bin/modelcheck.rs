//! Stateless model checking over the deterministic fixture workloads:
//! exhaustive DPOR schedule exploration with per-schedule race,
//! deadlock, and lost-wakeup checks (see `locality-analyze`).
//!
//! Exit status: 0 when every explored schedule of the selected
//! workloads is clean, 1 when any violation was found (a replayable
//! counterexample is written next to the CSVs) or when `--replay`
//! reproduced its violation, 2 on usage errors.

fn main() {
    locality_repro::modelcheck::main_modelcheck();
}
