//! `repro-all`: the umbrella binary — regenerates every table and figure
//! through one shared experiment runner, so descriptors shared between
//! figures (monitored traces, FCFS/CRT policy cells) execute exactly
//! once, in parallel across `--jobs` workers, with completed runs served
//! from the on-disk cache under `<out>/.cache`.

fn main() {
    locality_repro::suite::main_all();
}
