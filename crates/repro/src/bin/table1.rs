//! Table 1: the simulated UltraSPARC-1 memory hierarchy.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Table1);
}
