//! Table 1: the simulated UltraSPARC-1 memory hierarchy.

use locality_repro::{Args, Table};
use locality_sim::MachineConfig;

fn main() {
    let args = Args::from_env();
    let mut t = Table::new(
        "Table 1 — simulated UltraSPARC-1 memory hierarchy",
        &["level", "size", "assoc", "line", "policy", "latency (cycles)"],
    );
    let ultra = MachineConfig::ultra1();
    let e5000 = MachineConfig::enterprise5000(8);
    let h = ultra.hierarchy;
    t.row(&[
        "L1 I-cache".into(),
        format!("{} KiB", h.l1i.size_bytes / 1024),
        format!("{}-way", h.l1i.associativity),
        format!("{} B", h.l1i.line_bytes),
        "physically indexed/tagged".into(),
        format!("hit {}", ultra.latencies.l1_hit),
    ]);
    t.row(&[
        "L1 D-cache".into(),
        format!("{} KiB", h.l1d.size_bytes / 1024),
        "direct".into(),
        format!("{} B", h.l1d.line_bytes),
        "write-through, no-write-allocate".into(),
        format!("hit {}", ultra.latencies.l1_hit),
    ]);
    t.row(&[
        "unified E-cache (L2)".into(),
        format!("{} KiB", h.l2.size_bytes / 1024),
        "direct".into(),
        format!("{} B", h.l2.line_bytes),
        "write-back, inclusive of both L1s".into(),
        format!(
            "hit {}, miss {} (E5000: {} clean / {} cached elsewhere)",
            ultra.latencies.l2_hit,
            ultra.latencies.l2_miss,
            e5000.latencies.l2_miss,
            e5000.latencies.l2_miss_remote
        ),
    ]);
    t.row(&[
        "VM".into(),
        format!("{} KiB pages", ultra.page_bytes / 1024),
        "-".into(),
        "-".into(),
        format!("{} page placement (Kessler & Hill)", ultra.placement.name()),
        "-".into(),
    ]);
    t.print();
    println!("E-cache lines N = {}", ultra.l2_lines());
    t.write_csv(&args.csv_path("table1.csv"));
}
