//! Table 2: the simulated workloads of the §3.3 model-accuracy study.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Table2);
}
