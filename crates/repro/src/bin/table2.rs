//! Table 2: the simulated workloads of the §3.3 model-accuracy study.

use locality_repro::{Args, Table};

fn main() {
    let args = Args::from_env();
    let mut t = Table::new("Table 2 — simulated workloads", &["app", "suite", "description"]);
    t.row_strs(&[
        "barnes",
        "SPLASH-2",
        "Barnes-Hut hierarchical N-body; octree built over random bodies; θ-controlled traversal",
    ]);
    t.row_strs(&[
        "fmm",
        "SPLASH-2",
        "adaptive fast multipole (2-D; p=4 expansions; P2M/M2M/M2L/L2L/P2P passes)",
    ]);
    t.row_strs(&[
        "ocean",
        "SPLASH-2-style",
        "regular-grid red-black SOR solver; 5-point stencil sweeps over a large f64 grid",
    ]);
    t.row_strs(&[
        "raytrace",
        "SPLASH-2",
        "uniform-grid ray tracer; rays march voxels with per-step scratch (conflict-heavy)",
    ]);
    t.row_strs(&[
        "merge",
        "Sather",
        "parallel mergesort; split to cutoff-100 insertion-sort leaves, merge on join",
    ]);
    t.row_strs(&[
        "photo",
        "Sather",
        "softening filter: each thread retouches one pixel row using its neighbour rows",
    ]);
    t.row_strs(&[
        "tsp",
        "Sather",
        "branch-and-bound TSP over adjacency matrices; subspaces split per edge",
    ]);
    t.row_strs(&[
        "typechecker",
        "Sather",
        "compiler typechecker: type-graph burst, then AST walked in creation order",
    ]);
    t.print();
    t.write_csv(&args.csv_path("table2.csv"));
}
