//! Table 3: the costs of priority updates, in floating-point operations
//! (and table lookups) per thread, for LFF and CRT across the three
//! thread classes — plus measured wall-clock nanoseconds per update.

use locality_core::{FootprintEntry, ModelParams, PolicyKind, PrioritySchemes};
use locality_repro::{Args, Table};
use std::time::Instant;

/// Measures `(flops, lookups, ns/op)` for one update case.
fn measure(policy: PolicyKind, case: &str) -> (u64, u64, f64) {
    let params = ModelParams::new(8192).unwrap();
    let schemes = PrioritySchemes::new(policy, params);
    let mut entry = FootprintEntry::cold();
    schemes.on_dispatch(&mut entry, 0);
    schemes.on_block_self(&mut entry, 100, 100);
    schemes.flop_counter().take();

    // Count one representative update.
    let (flops, lookups) = match case {
        "blocking" => {
            schemes.on_block_self(&mut entry, 50, 150);
            schemes.flop_counter().take()
        }
        "dependent" => {
            schemes.on_dependent(&mut entry, 0.5, 50, 150);
            schemes.flop_counter().take()
        }
        "independent" => {
            schemes.on_independent();
            schemes.flop_counter().take()
        }
        _ => unreachable!(),
    };

    // Time a batch of them.
    let iters = 2_000_000u64;
    let start = Instant::now();
    let mut m = 200u64;
    for _ in 0..iters {
        match case {
            "blocking" => {
                schemes.on_block_self(&mut entry, 13, m);
            }
            "dependent" => {
                schemes.on_dependent(&mut entry, 0.5, 13, m);
            }
            "independent" => schemes.on_independent(),
            _ => unreachable!(),
        }
        m += 13;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (flops, lookups, ns)
}

fn main() {
    let args = Args::from_env();
    let mut t = Table::new(
        "Table 3 — costs of priority updates (per thread, at a context switch)",
        &["policy", "thread class", "fp ops", "table lookups", "measured ns/update"],
    );
    for policy in [PolicyKind::Lff, PolicyKind::Crt] {
        for case in ["blocking", "dependent", "independent"] {
            let (flops, lookups, ns) = measure(policy, case);
            t.row(&[
                policy.name().to_uppercase(),
                case.to_string(),
                flops.to_string(),
                lookups.to_string(),
                format!("{ns:.1}"),
            ]);
        }
    }
    t.print();
    println!(
        "independent threads cost zero operations by construction (the paper's key property);\n\
         blocking-thread CRT updates need fewer fp ops than LFF (no log lookup), as in the paper."
    );
    t.write_csv(&args.csv_path("table3.csv"));
}
