//! Table 3: the costs of priority updates, in floating-point operations
//! (and table lookups) per thread, for LFF and CRT across the three
//! thread classes. Measured wall-clock ns/update is printed only; the
//! CSV keeps the deterministic operation counts.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Table3);
}
