//! Table 4: input parameters for the §5 application runs.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Table4);
}
