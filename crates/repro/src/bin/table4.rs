//! Table 4: input parameters for the §5 application runs.

use locality_repro::{Args, Scale, Table};
use locality_workloads::{merge, photo, tasks, tsp};

fn main() {
    let args = Args::from_env();
    let mut t =
        Table::new("Table 4 — input parameters for application runs", &["app", "parameters"]);
    match args.scale {
        Scale::Paper => {
            let tk = tasks::TasksParams::default();
            t.row(&[
                "tasks".into(),
                format!(
                    "{} tasks, footprints {} lines each, {} scheduling periods per task",
                    tk.tasks, tk.footprint_lines, tk.periods
                ),
            ]);
            let mg = merge::MergeParams::default();
            t.row(&[
                "merge".into(),
                format!(
                    "{} uniformly distributed elements; insertion sort at tasks of {} or smaller",
                    mg.elements, mg.cutoff
                ),
            ]);
            let ph = photo::PhotoParams::default();
            t.row(&[
                "photo".into(),
                format!(
                    "softening filter over an rgb pixmap of {}x{}; one thread per row ({} threads)",
                    ph.width, ph.height, ph.height
                ),
            ]);
            let ts = tsp::TspParams::default();
            t.row(&[
                "tsp".into(),
                format!(
                    "suboptimal tour for {} cities; execution of {} threads measured",
                    ts.cities, ts.thread_budget
                ),
            ]);
        }
        Scale::Small => {
            t.row_strs(&["tasks", "96 tasks x 100 lines x 12 periods (smoke scale)"]);
            t.row_strs(&["merge", "20,000 elements, cutoff 100 (smoke scale)"]);
            t.row_strs(&["photo", "512x96 pixmap, 96 row threads (smoke scale)"]);
            t.row_strs(&["tsp", "48 cities, 120 threads (smoke scale)"]);
        }
    }
    t.print();
    t.write_csv(&args.csv_path("table4.csv"));
}
