//! Table 5: CRT relative to FCFS — percentage of E-cache misses
//! eliminated and relative performance, on both platforms.

use locality_repro::perf::{PerfApp, PolicyComparison};
use locality_repro::{Args, Table};

fn main() {
    let args = Args::from_env();
    let mut t = Table::new(
        "Table 5 — CRT relative to FCFS",
        &[
            "app",
            "E-misses eliminated, 1cpu",
            "E-misses eliminated, 8cpu",
            "relative perf, 1cpu",
            "relative perf, 8cpu",
        ],
    );
    for app in PerfApp::ALL {
        let uni = PolicyComparison::run(app, 1, args.scale);
        let smp = PolicyComparison::run(app, 8, args.scale);
        let elim_uni = uni.crt.misses_eliminated_vs(&uni.fcfs);
        let elim_smp = smp.crt.misses_eliminated_vs(&smp.fcfs);
        let perf_uni = uni.crt.speedup_over(&uni.fcfs);
        let perf_smp = smp.crt.speedup_over(&smp.fcfs);
        t.row(&[
            app.name().to_string(),
            format!("{:.0}%", elim_uni * 100.0),
            format!("{:.0}%", elim_smp * 100.0),
            format!("{perf_uni:.2}"),
            format!("{perf_smp:.2}"),
        ]);
    }
    t.print();
    t.write_csv(&args.csv_path("table5.csv"));
}
