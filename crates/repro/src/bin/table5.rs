//! Table 5: CRT relative to FCFS — percentage of E-cache misses
//! eliminated and relative performance, on both platforms.

use locality_repro::suite::{main_for, Figure};

fn main() {
    main_for(Figure::Table5);
}
