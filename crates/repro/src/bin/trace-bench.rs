//! Tracing-overhead bench: in instrumented builds, measures the sink's
//! overhead against the same build without a sink and fails above the
//! budget; in default builds, proves the emission points are compiled
//! out (an installed sink records zero events).

fn main() {
    locality_repro::trace::main_bench();
}
