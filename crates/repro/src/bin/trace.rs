//! Locality-trace observability: exports a monitored application's
//! event stream (JSONL + Chrome `trace_event`) and its aggregated trace
//! metrics. Requires a build with the `trace` cargo feature.

fn main() {
    locality_repro::trace::main_trace();
}
