//! Named thread-lifecycle chaos scenarios for the robustness ablation.
//!
//! Each scenario maps to a [`ChaosConfig`] installed on the engine's
//! deterministic fault injector (see [`active_threads::chaos`]): seeded
//! thread aborts mid-interval, deaths while holding locks (poisoning +
//! orphaned-lock reclamation), spawn failures, and idle-thread kills.
//! Every layer of the runtime must recover — the run completes and the
//! report accounts for every spawned thread as completed or aborted.

use active_threads::ChaosConfig;

/// The seed all chaos cells share; the scenario's fixed-point rates do
/// the differentiating, so cells stay reproducible across policies.
pub const CHAOS_SEED: u64 = 0xC4A05;

/// A named lifecycle-fault scenario selectable with `--chaos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// No fault injection: the clean baseline.
    Clean,
    /// Running threads abort mid-interval (batch boundary).
    AbortRunning,
    /// Only mutex holders abort — every death poisons and orphans a
    /// lock that must be reclaimed for its waiters.
    AbortLocked,
    /// Thread creation fails: spawns become stillborn aborted threads.
    SpawnFail,
    /// Ready/blocked/sleeping threads are killed off-cpu.
    AbortIdle,
    /// Everything at once: running aborts, spawn failures, idle kills.
    Churn,
}

impl ChaosScenario {
    /// All scenarios, clean baseline first.
    pub const ALL: [ChaosScenario; 6] = [
        ChaosScenario::Clean,
        ChaosScenario::AbortRunning,
        ChaosScenario::AbortLocked,
        ChaosScenario::SpawnFail,
        ChaosScenario::AbortIdle,
        ChaosScenario::Churn,
    ];

    /// The scenario's `--chaos` keyword and report label.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosScenario::Clean => "clean",
            ChaosScenario::AbortRunning => "abort-running",
            ChaosScenario::AbortLocked => "abort-locked",
            ChaosScenario::SpawnFail => "spawn-fail",
            ChaosScenario::AbortIdle => "abort-idle",
            ChaosScenario::Churn => "churn",
        }
    }

    /// Parses a `--chaos` value: a scenario keyword or `all`.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keywords.
    pub fn parse(value: &str) -> Result<Vec<ChaosScenario>, String> {
        if value == "all" {
            return Ok(ChaosScenario::ALL.to_vec());
        }
        ChaosScenario::ALL.into_iter().find(|s| s.name() == value).map(|s| vec![s]).ok_or_else(
            || {
                let names: Vec<&str> = ChaosScenario::ALL.iter().map(|s| s.name()).collect();
                format!("unknown chaos scenario '{value}' (expected all|{})", names.join("|"))
            },
        )
    }

    /// The fault injector to install on the engine, if any.
    pub fn config(&self, seed: u64) -> Option<ChaosConfig> {
        match self {
            ChaosScenario::Clean => None,
            ChaosScenario::AbortRunning => Some(ChaosConfig::abort_running(seed)),
            ChaosScenario::AbortLocked => Some(ChaosConfig::abort_locked(seed)),
            ChaosScenario::SpawnFail => Some(ChaosConfig::spawn_fail(seed)),
            ChaosScenario::AbortIdle => Some(ChaosConfig::abort_idle(seed)),
            ChaosScenario::Churn => Some(ChaosConfig::churn(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_keywords() {
        assert_eq!(ChaosScenario::parse("abort-locked").unwrap(), vec![ChaosScenario::AbortLocked]);
        assert_eq!(ChaosScenario::parse("all").unwrap().len(), ChaosScenario::ALL.len());
        assert!(ChaosScenario::parse("bogus").unwrap_err().contains("abort-running"));
    }

    #[test]
    fn names_round_trip() {
        for s in ChaosScenario::ALL {
            assert_eq!(ChaosScenario::parse(s.name()).unwrap(), vec![s]);
        }
    }

    #[test]
    fn configs() {
        assert!(ChaosScenario::Clean.config(1).is_none());
        for s in ChaosScenario::ALL.into_iter().skip(1) {
            let cfg = s.config(1).unwrap_or_else(|| panic!("{} must inject", s.name()));
            assert!(cfg.is_active(), "{} must be active", s.name());
        }
    }
}
