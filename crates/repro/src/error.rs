//! The repro harness's error type, following the engine's typed-error
//! conversion: binaries propagate failures instead of panicking.

use crate::table::TableError;
use active_threads::RuntimeError;
use locality_core::ModelError;

/// Anything that can go wrong while regenerating a figure or table.
#[derive(Debug)]
pub enum ReproError {
    /// Building or writing an output table failed.
    Table(TableError),
    /// A simulated run failed inside the engine.
    Runtime(RuntimeError),
    /// An annotation or model parameter was invalid.
    Model(ModelError),
    /// Filesystem work outside table writing (output or cache
    /// directories) failed.
    Io(std::io::Error),
    /// The runner finished but a figure's requested result is missing —
    /// a descriptor bookkeeping bug.
    MissingResult(String),
    /// A command-line value was invalid (exit status 2, like the arg
    /// parser's own errors).
    Usage(String),
    /// A disk-cache entry failed its checksum or decode. The entry has
    /// been quarantined (renamed aside) and the run is recomputed; the
    /// error is surfaced for logging, never fatal to a suite.
    CorruptCache {
        /// Where the quarantined entry now lives.
        quarantined: std::path::PathBuf,
        /// What was wrong with it.
        what: String,
    },
    /// A run descriptor panicked inside its isolation boundary
    /// (`catch_unwind`); the payload's message is preserved.
    RunPanicked {
        /// The panic message.
        what: String,
    },
    /// A run exceeded the watchdog timeout and was abandoned.
    RunTimedOut {
        /// The timeout that expired.
        after: std::time::Duration,
    },
}

impl std::fmt::Display for ReproError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReproError::Table(e) => write!(f, "table output: {e}"),
            ReproError::Runtime(e) => write!(f, "simulation run: {e}"),
            ReproError::Model(e) => write!(f, "model setup: {e}"),
            ReproError::Io(e) => write!(f, "i/o: {e}"),
            ReproError::MissingResult(key) => {
                write!(f, "runner produced no result for descriptor {key}")
            }
            ReproError::Usage(msg) => write!(f, "{msg}"),
            ReproError::CorruptCache { quarantined, what } => {
                write!(f, "corrupt cache entry ({what}); quarantined at {}", quarantined.display())
            }
            ReproError::RunPanicked { what } => write!(f, "run panicked: {what}"),
            ReproError::RunTimedOut { after } => {
                write!(f, "run exceeded the {:.1}s watchdog timeout", after.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for ReproError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReproError::Table(e) => Some(e),
            ReproError::Runtime(e) => Some(e),
            ReproError::Model(e) => Some(e),
            ReproError::Io(e) => Some(e),
            ReproError::MissingResult(_)
            | ReproError::Usage(_)
            | ReproError::CorruptCache { .. }
            | ReproError::RunPanicked { .. }
            | ReproError::RunTimedOut { .. } => None,
        }
    }
}

impl From<TableError> for ReproError {
    fn from(e: TableError) -> Self {
        ReproError::Table(e)
    }
}

impl From<RuntimeError> for ReproError {
    fn from(e: RuntimeError) -> Self {
        ReproError::Runtime(e)
    }
}

impl From<ModelError> for ReproError {
    fn from(e: ModelError) -> Self {
        ReproError::Model(e)
    }
}

impl From<std::io::Error> for ReproError {
    fn from(e: std::io::Error) -> Self {
        ReproError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_with_context() {
        let e = ReproError::from(TableError::WidthMismatch { expected: 2, got: 1 });
        assert!(e.to_string().contains("table output"));
        let e = ReproError::MissingResult("Walk(..)".to_string());
        assert!(e.to_string().contains("Walk"));
    }
}
