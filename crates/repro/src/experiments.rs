//! The individual experiment cells behind the figures and ablations:
//! each function performs exactly one isolated simulated run (its own
//! [`Engine`]/[`Machine`], its own RNGs) and returns plain data. The
//! [runner](crate::runner) dispatches these from worker threads, so
//! nothing here may touch shared mutable state.

use crate::args::Scale;
use crate::chaos::{ChaosScenario, CHAOS_SEED};
use crate::error::ReproError;
use crate::faults::FaultScenario;
use active_threads::events::EngineView;
use active_threads::sched::LocalityConfig;
use active_threads::{
    Engine, EngineConfig, EngineHook, InferenceConfig, RunReport, SchedPolicy, SwitchEvent,
};
use locality_core::{FootprintEntry, ModelParams, PolicyKind, PrioritySchemes, ThreadId};
use locality_sim::{AccessKind, Machine, MachineConfig, PagePlacement};
use locality_workloads::{tasks, App};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// One heap-eviction-threshold sweep cell (tasks, 1 cpu, LFF).
///
/// # Errors
///
/// Returns [`ReproError::Runtime`] if the run cannot complete.
pub fn threshold_cell(threshold_lines: u64, scale: Scale) -> Result<RunReport, ReproError> {
    let params = match scale {
        Scale::Paper => {
            tasks::TasksParams { tasks: 512, footprint_lines: 100, periods: 30, overlap: 0.0 }
        }
        Scale::Small => {
            tasks::TasksParams { tasks: 96, footprint_lines: 100, periods: 10, overlap: 0.0 }
        }
    };
    let config = LocalityConfig {
        threshold_lines: threshold_lines as f64,
        ..LocalityConfig::new(PolicyKind::Lff)
    };
    let mut engine =
        Engine::new(MachineConfig::ultra1(), SchedPolicy::Custom(config), EngineConfig::default())?;
    tasks::spawn_parallel(&mut engine, &params);
    Ok(engine.run()?)
}

/// One page-placement cell: a single-threaded app under FCFS on the
/// Ultra-1 with the given placement policy.
///
/// # Errors
///
/// Returns [`ReproError::Runtime`] if the run cannot complete.
pub fn placement_cell(app: App, placement: PagePlacement) -> Result<RunReport, ReproError> {
    let machine = MachineConfig::ultra1().with_placement(placement);
    let mut engine = Engine::new(machine, SchedPolicy::Fcfs, EngineConfig::default())?;
    app.spawn_single(&mut engine);
    Ok(engine.run()?)
}

/// One invalidation-effects cell (§3.4): thread A builds a 4096-line
/// footprint on cpu 0, a remote writer invalidates `written` of those
/// lines from cpu 1. Returns `(observed, predicted)` footprints — the
/// counter-driven model keeps predicting the pre-invalidation value.
pub fn invalidation_cell(written: u64) -> (u64, u64) {
    // Infallible: `enterprise5000(2)` is a validated built-in description.
    #[allow(clippy::unwrap_used)]
    let mut machine = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
    let a = ThreadId(1);
    let lines = 4096u64;
    let region = machine.alloc(lines * 64, 64);
    machine.register_region(a, region, lines * 64);
    machine.set_running(0, Some(a));
    for l in 0..lines {
        machine.access(0, region.offset(l * 64), AccessKind::Read);
    }
    let predicted = machine.l2_footprint_lines(0, a); // model sees no further misses on cpu0
    machine.set_running(1, Some(ThreadId(2)));
    for l in 0..written {
        machine.access(1, region.offset(l * 64), AccessKind::Write);
    }
    let observed = machine.l2_footprint_lines(0, a);
    (observed, predicted)
}

/// A producer/consumer pipeline pair: the producer rewrites a shared
/// buffer each period and posts; the consumer waits, reads it, and
/// hands the turn back. Colocating the pair is the *only* available
/// locality win — a thread's affinity to its own past state is useless
/// because the producer rewrites (and thereby invalidates) the buffer
/// every period. This isolates the annotation/inference channel.
mod pipeline {
    use active_threads::{BatchCtx, Control, Engine, Program, SemId, ThreadId};
    use locality_core::ModelError;
    use locality_sim::VAddr;

    const LINE: u64 = 64;

    pub struct Params {
        pub pairs: usize,
        pub buffer_lines: u64,
        pub periods: u32,
    }

    struct Producer {
        buf: VAddr,
        bytes: u64,
        full: SemId,
        empty: SemId,
        periods: u32,
        phase: u8,
    }
    impl Program for Producer {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.write_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 4);
                    self.phase = 1;
                    Control::SemPost(self.full)
                }
                _ => {
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::SemWait(self.empty)
                }
            }
        }
        fn name(&self) -> &str {
            "producer"
        }
    }

    struct Consumer {
        buf: VAddr,
        bytes: u64,
        full: SemId,
        empty: SemId,
        periods: u32,
        phase: u8,
    }
    impl Program for Consumer {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Control::SemWait(self.full)
                }
                _ => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.read_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 4);
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::SemPost(self.empty)
                }
            }
        }
        fn name(&self) -> &str {
            "consumer"
        }
    }

    /// Spawns the pairs; returns `(producer, consumer)` ids per pair.
    pub fn spawn(
        engine: &mut Engine,
        params: &Params,
        annotate: bool,
    ) -> Result<Vec<(ThreadId, ThreadId)>, ModelError> {
        let bytes = params.buffer_lines * LINE;
        let mut out = Vec::with_capacity(params.pairs);
        for _ in 0..params.pairs {
            let buf = engine.machine_mut().alloc(bytes, 8192);
            let full = engine.sync_tables_mut().create_semaphore(0);
            let empty = engine.sync_tables_mut().create_semaphore(0);
            let p = engine.spawn(Box::new(Producer {
                buf,
                bytes,
                full,
                empty,
                periods: params.periods,
                phase: 0,
            }));
            let c = engine.spawn(Box::new(Consumer {
                buf,
                bytes,
                full,
                empty,
                periods: params.periods,
                phase: 0,
            }));
            if annotate {
                engine.annotate(p, c, 1.0)?;
                engine.annotate(c, p, 1.0)?;
            }
            out.push((p, c));
        }
        Ok(out)
    }
}

/// One sharing-inference cell (§7 future work): the producer/consumer
/// pipeline on 8 cpus under `policy`, optionally with hand annotations
/// or CML-driven runtime inference.
///
/// # Errors
///
/// Returns [`ReproError::Model`] for invalid annotations and
/// [`ReproError::Runtime`] if the run cannot complete.
pub fn pipeline_cell(
    policy: SchedPolicy,
    annotate: bool,
    infer: bool,
    scale: Scale,
) -> Result<RunReport, ReproError> {
    let params = match scale {
        Scale::Paper => pipeline::Params { pairs: 128, buffer_lines: 100, periods: 40 },
        Scale::Small => pipeline::Params { pairs: 32, buffer_lines: 100, periods: 10 },
    };
    let config = EngineConfig {
        infer_sharing: infer.then(InferenceConfig::default),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(MachineConfig::enterprise5000(8), policy, config)?;
    pipeline::spawn(&mut engine, &params, annotate)?;
    Ok(engine.run()?)
}

/// Accumulates |model prediction − ground truth| footprint error over
/// every context switch (the machine knows the true resident lines; the
/// scheduler knows the model's expectation).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PredictionProbe {
    /// Sum of absolute prediction errors, in lines.
    pub sum_abs_err: f64,
    /// Sum of observed footprints, in lines.
    pub sum_observed: f64,
    /// Context switches sampled.
    pub samples: u64,
}

impl PredictionProbe {
    /// Mean absolute prediction error in lines.
    pub fn mean_abs_err(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_abs_err / self.samples as f64
        }
    }

    /// Prediction error relative to the mean observed footprint.
    pub fn relative_err(&self) -> f64 {
        if self.sum_observed == 0.0 {
            0.0
        } else {
            self.sum_abs_err / self.sum_observed
        }
    }
}

struct PredictionHook {
    probe: Rc<RefCell<PredictionProbe>>,
    /// Reused across samples so the per-switch E-cache scan stays
    /// allocation-free once warmed up.
    scratch: locality_sim::FootprintScratch,
}

impl EngineHook for PredictionHook {
    fn on_context_switch(&mut self, event: &SwitchEvent, view: &EngineView<'_>) {
        let Some(predicted) = view.sched.expected_footprint(event.cpu, event.tid) else {
            return;
        };
        view.machine.l2_footprints_into(event.cpu, &mut self.scratch);
        let observed = self.scratch.lines(event.tid) as f64;
        let mut p = self.probe.borrow_mut();
        p.sum_abs_err += (predicted - observed).abs();
        p.sum_observed += observed;
        p.samples += 1;
    }
}

/// The result of one fault-scenario run.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// The engine's run report.
    pub report: RunReport,
    /// Footprint-prediction error accumulated over the run.
    pub probe: PredictionProbe,
    /// Whether the scheduler entered degraded mode *and* left it again
    /// before the run finished.
    pub recovered: bool,
}

/// One fault-scenario run: the overlapped-tasks workload on 4 cpus
/// under `policy` with `scenario`'s counter fault installed.
///
/// # Errors
///
/// Returns [`ReproError::Runtime`] if the run cannot survive the fault.
pub fn fault_cell(
    policy: SchedPolicy,
    scenario: FaultScenario,
    scale: Scale,
) -> Result<FaultCell, ReproError> {
    let params = match scale {
        Scale::Paper => {
            tasks::TasksParams { tasks: 256, footprint_lines: 100, periods: 30, overlap: 0.5 }
        }
        Scale::Small => {
            tasks::TasksParams { tasks: 64, footprint_lines: 100, periods: 10, overlap: 0.5 }
        }
    };
    let mut engine =
        Engine::new(MachineConfig::enterprise5000(4), policy, EngineConfig::default())?;
    if let Some(config) = scenario.config(0xFA11) {
        engine.machine_mut().install_fault(config);
    }
    let probe = Rc::new(RefCell::new(PredictionProbe::default()));
    engine.add_hook(Box::new(PredictionHook { probe: probe.clone(), scratch: Default::default() }));
    tasks::spawn_parallel(&mut engine, &params);
    let report = engine.run()?;
    let recovered = report.degraded_intervals > 0 && !engine.scheduler().is_degraded();
    drop(engine);
    // The engine is gone, so the hook's Rc clone is too; an empty probe
    // only happens if that invariant breaks, and defaulting keeps the
    // pipeline panic-free either way.
    let probe = Rc::try_unwrap(probe).map(RefCell::into_inner).unwrap_or_default();
    Ok(FaultCell { report, probe, recovered })
}

/// A mutex-disciplined workload for the chaos ablation: each worker
/// repeatedly locks its stripe's mutex, rewrites its region while
/// holding it, and unlocks. Lock-holder aborts therefore always orphan
/// a held mutex, exercising poisoning and reclamation; waiters must be
/// handed the corpse's lock or the scenario deadlocks.
mod lockstep {
    use active_threads::{BatchCtx, Control, Engine, MutexId, Program, ThreadId};
    use locality_sim::VAddr;

    const LINE: u64 = 64;

    pub struct Params {
        pub threads: usize,
        pub mutexes: usize,
        pub region_lines: u64,
        pub periods: u32,
    }

    struct Worker {
        buf: VAddr,
        bytes: u64,
        lock: MutexId,
        periods: u32,
        phase: u8,
    }

    impl Program for Worker {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Control::Lock(self.lock)
                }
                1 => {
                    ctx.register_region(self.buf, self.bytes);
                    ctx.write_range(self.buf, self.bytes, LINE);
                    ctx.compute(self.bytes / LINE * 2);
                    self.phase = 2;
                    Control::Unlock(self.lock)
                }
                _ => {
                    self.periods -= 1;
                    if self.periods == 0 {
                        return Control::Exit;
                    }
                    self.phase = 0;
                    Control::Yield
                }
            }
        }
        fn name(&self) -> &str {
            "lockstep"
        }
    }

    pub fn spawn(engine: &mut Engine, params: &Params) -> Vec<ThreadId> {
        let stripes: Vec<MutexId> =
            (0..params.mutexes.max(1)).map(|_| engine.sync_tables_mut().create_mutex()).collect();
        let bytes = params.region_lines * LINE;
        (0..params.threads)
            .map(|i| {
                let buf = engine.machine_mut().alloc(bytes, LINE);
                engine.spawn(Box::new(Worker {
                    buf,
                    bytes,
                    lock: stripes[i % stripes.len()],
                    periods: params.periods,
                    phase: 0,
                }))
            })
            .collect()
    }
}

/// The result of one thread-lifecycle chaos run.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// The engine's run report (`threads_aborted` counts the kills).
    pub report: RunReport,
    /// Footprint-prediction error accumulated over the run.
    pub probe: PredictionProbe,
    /// Mutexes a thread died holding — each was poisoned and reclaimed
    /// (handed to a waiter or freed) instead of deadlocking the run.
    pub poisoned: u64,
}

/// One chaos-scenario run: the overlapped-tasks workload plus the
/// mutex-disciplined [`lockstep`] workload on 4 cpus under `policy`,
/// with `scenario`'s lifecycle fault injector installed.
///
/// # Errors
///
/// Returns [`ReproError::Runtime`] if the run cannot survive the chaos.
pub fn chaos_cell(
    policy: SchedPolicy,
    scenario: ChaosScenario,
    scale: Scale,
) -> Result<ChaosCell, ReproError> {
    let tasks_params = match scale {
        Scale::Paper => {
            tasks::TasksParams { tasks: 192, footprint_lines: 100, periods: 20, overlap: 0.5 }
        }
        Scale::Small => {
            tasks::TasksParams { tasks: 48, footprint_lines: 100, periods: 8, overlap: 0.5 }
        }
    };
    let lock_params = match scale {
        Scale::Paper => lockstep::Params { threads: 64, mutexes: 8, region_lines: 64, periods: 20 },
        Scale::Small => lockstep::Params { threads: 16, mutexes: 4, region_lines: 64, periods: 8 },
    };
    let config = EngineConfig { chaos: scenario.config(CHAOS_SEED), ..EngineConfig::default() };
    let mut engine = Engine::new(MachineConfig::enterprise5000(4), policy, config)?;
    let probe = Rc::new(RefCell::new(PredictionProbe::default()));
    engine.add_hook(Box::new(PredictionHook { probe: probe.clone(), scratch: Default::default() }));
    tasks::spawn_parallel(&mut engine, &tasks_params);
    lockstep::spawn(&mut engine, &lock_params);
    let report = engine.run()?;
    let poisoned = engine.sync_tables().poisoned_mutexes() as u64;
    drop(engine);
    let probe = Rc::try_unwrap(probe).map(RefCell::into_inner).unwrap_or_default();
    Ok(ChaosCell { report, probe, poisoned })
}

/// The three thread classes of Table 3's priority-update cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostCase {
    /// The thread that just blocked (its own counters were read).
    Blocking,
    /// A sleeping thread sharing state with the blocking one.
    Dependent,
    /// A sleeping independent thread.
    Independent,
}

impl CostCase {
    /// All three classes, in the paper's order.
    pub const ALL: [CostCase; 3] = [CostCase::Blocking, CostCase::Dependent, CostCase::Independent];

    /// Lowercase label.
    pub fn name(&self) -> &'static str {
        match self {
            CostCase::Blocking => "blocking",
            CostCase::Dependent => "dependent",
            CostCase::Independent => "independent",
        }
    }
}

/// One Table 3 cell: `(fp ops, table lookups, measured ns/update)` for
/// one priority-update class under one policy. The operation counts are
/// deterministic; the nanoseconds are a wall-clock measurement and are
/// therefore reported on stdout only, never in CSV output.
pub fn update_cost_cell(policy: PolicyKind, case: CostCase) -> (u64, u64, f64) {
    // 8192 lines is the paper's E-cache, a provably valid model size.
    #[allow(clippy::expect_used)]
    let params = ModelParams::new(8192).expect("paper-size cache is a valid model");
    let schemes = PrioritySchemes::new(policy, params);
    let mut entry = FootprintEntry::cold();
    schemes.on_dispatch(&mut entry, 0);
    schemes.on_block_self(&mut entry, 100, 100);
    schemes.flop_counter().take();

    // Count one representative update.
    let (flops, lookups) = match case {
        CostCase::Blocking => {
            schemes.on_block_self(&mut entry, 50, 150);
            schemes.flop_counter().take()
        }
        CostCase::Dependent => {
            schemes.on_dependent(&mut entry, 0.5, 50, 150);
            schemes.flop_counter().take()
        }
        CostCase::Independent => {
            schemes.on_independent();
            schemes.flop_counter().take()
        }
    };

    // Time a batch of them.
    let iters = 2_000_000u64;
    let start = Instant::now();
    let mut m = 200u64;
    for _ in 0..iters {
        match case {
            CostCase::Blocking => {
                schemes.on_block_self(&mut entry, 13, m);
            }
            CostCase::Dependent => {
                schemes.on_dependent(&mut entry, 0.5, 13, m);
            }
            CostCase::Independent => schemes.on_independent(),
        }
        m += 13;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (flops, lookups, ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_shrinks_observed_only() {
        let (observed_0, predicted_0) = invalidation_cell(0);
        assert_eq!(observed_0, predicted_0);
        let (observed, predicted) = invalidation_cell(2048);
        assert_eq!(predicted, predicted_0);
        assert!(observed < predicted, "remote writes must shrink the true footprint");
    }

    #[test]
    fn independent_updates_are_free() {
        for policy in [PolicyKind::Lff, PolicyKind::Crt] {
            let (flops, lookups, _) = update_cost_cell(policy, CostCase::Independent);
            assert_eq!((flops, lookups), (0, 0), "{policy:?}");
        }
    }

    #[test]
    fn chaos_cell_recovers_lock_holders() {
        let cell = chaos_cell(SchedPolicy::Fcfs, ChaosScenario::AbortLocked, Scale::Small).unwrap();
        assert!(cell.report.threads_aborted > 0, "the scenario must kill lock holders");
        assert!(cell.poisoned > 0, "lock-holder deaths must poison mutexes");
        assert!(cell.report.threads_completed > 0, "survivors must still finish");
    }

    #[test]
    fn chaos_cells_are_deterministic() {
        let a = chaos_cell(SchedPolicy::Lff, ChaosScenario::Churn, Scale::Small).unwrap();
        let b = chaos_cell(SchedPolicy::Lff, ChaosScenario::Churn, Scale::Small).unwrap();
        assert_eq!(a.report.threads_aborted, b.report.threads_aborted);
        assert_eq!(a.report.total_l2_misses, b.report.total_l2_misses);
        assert_eq!(a.poisoned, b.poisoned);
        assert!(a.report.threads_aborted > 0, "churn must kill someone");
    }

    #[test]
    fn probe_statistics() {
        let p = PredictionProbe { sum_abs_err: 10.0, sum_observed: 100.0, samples: 5 };
        assert!((p.mean_abs_err() - 2.0).abs() < 1e-12);
        assert!((p.relative_err() - 0.1).abs() < 1e-12);
        assert_eq!(PredictionProbe::default().mean_abs_err(), 0.0);
    }
}
