//! Named counter-fault scenarios for the robustness ablation.
//!
//! Each scenario maps to a [`FaultConfig`] installed on the simulated
//! machine's PIC read path (see [`locality_sim::faults`]). The `window`
//! scenario injects read traps only for an initial window of reads and
//! then clears, demonstrating the scheduler's automatic recovery from
//! [degraded mode](active_threads::sched::SchedMode).

use locality_sim::{FaultConfig, FaultKind};

/// Reads covered by the `window` scenario before the fault clears.
pub const WINDOW_READS: u64 = 400;

/// A named counter-fault scenario selectable with `--fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// No fault: the clean baseline.
    Clean,
    /// 32-bit register wraparound between interval snapshots.
    Wraparound,
    /// A counter stuck repeating its first observed interval.
    Stuck,
    /// Multiplexing dropouts: ~30% of intervals read as all zero.
    Dropout,
    /// Counters saturate at a low cap instead of counting.
    Saturate,
    /// ±50% multiplicative noise on both registers.
    Noise,
    /// Every counter read traps (user access revoked).
    Trap,
    /// Read traps for the first [`WINDOW_READS`] reads, then the fault
    /// clears — exercises degradation *and* recovery in one run.
    Window,
}

impl FaultScenario {
    /// All scenarios, clean baseline first.
    pub const ALL: [FaultScenario; 8] = [
        FaultScenario::Clean,
        FaultScenario::Wraparound,
        FaultScenario::Stuck,
        FaultScenario::Dropout,
        FaultScenario::Saturate,
        FaultScenario::Noise,
        FaultScenario::Trap,
        FaultScenario::Window,
    ];

    /// The scenario's `--fault` keyword and report label.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::Clean => "clean",
            FaultScenario::Wraparound => "wraparound",
            FaultScenario::Stuck => "stuck",
            FaultScenario::Dropout => "dropout",
            FaultScenario::Saturate => "saturate",
            FaultScenario::Noise => "noise",
            FaultScenario::Trap => "trap",
            FaultScenario::Window => "window",
        }
    }

    /// Parses a `--fault` value: a scenario keyword or `all`.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keywords.
    pub fn parse(value: &str) -> Result<Vec<FaultScenario>, String> {
        if value == "all" {
            return Ok(FaultScenario::ALL.to_vec());
        }
        FaultScenario::ALL.into_iter().find(|s| s.name() == value).map(|s| vec![s]).ok_or_else(
            || {
                let names: Vec<&str> = FaultScenario::ALL.iter().map(|s| s.name()).collect();
                format!("unknown fault scenario '{value}' (expected all|{})", names.join("|"))
            },
        )
    }

    /// The fault to install on the machine, if any.
    pub fn config(&self, seed: u64) -> Option<FaultConfig> {
        match self {
            FaultScenario::Clean => None,
            FaultScenario::Wraparound => Some(FaultConfig::always(FaultKind::Wraparound, seed)),
            FaultScenario::Stuck => Some(FaultConfig::always(FaultKind::StuckAt, seed)),
            FaultScenario::Dropout => {
                Some(FaultConfig::always(FaultKind::Dropout { p_millis: 300 }, seed))
            }
            FaultScenario::Saturate => {
                Some(FaultConfig::always(FaultKind::Saturate { cap: 48 }, seed))
            }
            FaultScenario::Noise => {
                Some(FaultConfig::always(FaultKind::Noise { percent: 50 }, seed))
            }
            FaultScenario::Trap => Some(FaultConfig::always(FaultKind::TrapOnRead, seed)),
            FaultScenario::Window => {
                Some(FaultConfig::windowed(FaultKind::TrapOnRead, seed, 0, WINDOW_READS))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_keywords() {
        assert_eq!(FaultScenario::parse("wraparound").unwrap(), vec![FaultScenario::Wraparound]);
        assert_eq!(FaultScenario::parse("all").unwrap().len(), FaultScenario::ALL.len());
        assert!(FaultScenario::parse("bogus").unwrap_err().contains("wraparound"));
    }

    #[test]
    fn names_round_trip() {
        for s in FaultScenario::ALL {
            assert_eq!(FaultScenario::parse(s.name()).unwrap(), vec![s]);
        }
    }

    #[test]
    fn configs() {
        assert!(FaultScenario::Clean.config(1).is_none());
        for s in FaultScenario::ALL.into_iter().skip(1) {
            assert!(s.config(1).is_some(), "{} must install a fault", s.name());
        }
        let w = FaultScenario::Window.config(1).unwrap();
        assert!(w.window.is_some(), "window scenario must clear eventually");
    }
}
