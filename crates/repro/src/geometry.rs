//! The geometry-validation experiment (`repro geometry`): the random
//! memory walk of Figure 4 replayed across cache geometries, comparing
//! the simulator's observed footprints against **two** predictors —
//! the paper's direct-mapped closed forms and the per-set occupancy
//! generalization ([`locality_core::perset`]).
//!
//! Each cell runs one workload (blocking walker, independent sleeper,
//! or dependent sleeper) on one L2 geometry of equal capacity (512 KiB,
//! 64 B lines): the paper's direct-mapped 8192×1, a modern 8-way
//! 1024×8, and the fully associative 1×8192 limit. On the direct-mapped
//! geometry the two predictors agree (the per-set drifts reduce to the
//! closed forms at `W = 1`); on associative geometries the closed forms
//! drift and the per-set estimator must track LRU behaviour.

use crate::microbench::Monitored;
use locality_core::perset::{predict_after, PerSetCase};
use locality_core::{FootprintModel, ModelParams, ThreadId};
use locality_sim::{AccessKind, CacheGeometry, Machine, MachineConfig, VAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LINE: u64 = 64;

#[inline]
fn n_of(lines: usize) -> f64 {
    lines as f64
}
/// The walker's region: 64× the cache (see [`crate::microbench`]).
const WALKER_LINES: u64 = 8192 * 64;

/// One point of a geometry-validation curve: the observation and both
/// predictions at a miss count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryPoint {
    /// Walker E-cache misses so far.
    pub misses: u64,
    /// Observed footprint of the monitored thread (lines).
    pub observed: f64,
    /// The paper's direct-mapped closed-form prediction (lines).
    pub closed_form: f64,
    /// The per-set occupancy prediction (lines).
    pub per_set: f64,
}

/// One geometry-validation cell, fully describing its run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryExperiment {
    /// The monitored workload case.
    pub monitored: Monitored,
    /// L2 sets.
    pub sets: u64,
    /// L2 ways per set.
    pub ways: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Total walker misses to accumulate.
    pub total_misses: u64,
    /// Sampling interval in misses.
    pub sample_every: u64,
    /// RNG seed.
    pub seed: u64,
}

impl GeometryExperiment {
    /// The geometry as a `CacheGeometry` (64-byte lines, like the
    /// UltraSPARC-1 E-cache).
    pub fn geometry(&self) -> CacheGeometry {
        CacheGeometry { sets: self.sets, ways: self.ways, line: LINE }
    }

    /// `SxW` display label (e.g. `8192x1`).
    pub fn geometry_label(&self) -> String {
        format!("{}x{}", self.sets, self.ways)
    }
}

/// Runs one cell: the machine is a single-processor UltraSPARC-1 with
/// the cell's L2 geometry and page size substituted in.
pub fn run(exp: &GeometryExperiment) -> Vec<GeometryPoint> {
    let config =
        MachineConfig::ultra1().with_l2_geometry(exp.geometry()).with_page_size(exp.page_bytes);
    // Infallible for every shipped cell: the geometries are fixed powers
    // of two of the ultra1 capacity and `--geometry`/`--page-size` are
    // validated at the CLI boundary.
    #[allow(clippy::unwrap_used)]
    let mut machine = Machine::try_new(config).unwrap();
    let lines = machine.l2_lines();
    // Infallible: `l2_lines()` is a positive power of two ≥ 2.
    #[allow(clippy::unwrap_used)]
    let model = FootprintModel::new(ModelParams::new(lines).unwrap());
    let n = model.params().n();
    let ways = exp.ways as f64;
    let walker = ThreadId(1);
    let sleeper = ThreadId(2);
    // Lines resident when the measured walk starts: exactly the prefill
    // (the machine is fresh and a ≤ 512 KiB sequential prefix has no
    // self-conflicts), feeding the per-set model's occupancy state.
    let total0 = match exp.monitored {
        Monitored::Walker { s0 }
        | Monitored::Independent { s0 }
        | Monitored::Dependent { s0, .. } => s0.min(n_of(lines)),
    };

    let walker_region = machine.alloc(WALKER_LINES * LINE, LINE);
    machine.register_region(walker, walker_region, WALKER_LINES * LINE);

    type Predictor = Box<dyn Fn(f64, u64) -> f64>;
    let (monitored_tid, closed, case): (ThreadId, Predictor, PerSetCase) = match exp.monitored {
        Monitored::Walker { s0 } => {
            prefill(&mut machine, walker_region, s0 as u64);
            (walker, Box::new(move |s, m| model.expected_blocking(s, m)), PerSetCase::Blocking)
        }
        Monitored::Independent { s0 } => {
            let bytes = (s0 as u64).max(1) * LINE;
            let region = machine.alloc(bytes, LINE);
            machine.register_region(sleeper, region, bytes);
            prefill(&mut machine, region, s0 as u64);
            (
                sleeper,
                Box::new(move |s, m| model.expected_independent(s, m)),
                PerSetCase::Independent,
            )
        }
        Monitored::Dependent { q, s0 } => {
            let bytes = ((WALKER_LINES as f64 * q) as u64) * LINE;
            machine.register_region(sleeper, walker_region, bytes);
            prefill(&mut machine, walker_region, s0 as u64);
            (
                sleeper,
                Box::new(move |s, m| model.expected_dependent(q, s, m)),
                PerSetCase::Dependent(q),
            )
        }
    };

    machine.set_running(0, Some(walker));
    // Infallible: cpu 0 exists and the PIC was never poisoned.
    #[allow(clippy::expect_used)]
    machine.pic_take_interval(0).expect("clean machine read");
    let pic_base = machine.pic(0).misses();
    let s0_observed = machine.l2_footprint_lines(0, monitored_tid) as f64;

    let mut rng = StdRng::seed_from_u64(exp.seed);
    let mut points = vec![GeometryPoint {
        misses: 0,
        observed: s0_observed,
        closed_form: s0_observed,
        per_set: s0_observed,
    }];
    let mut misses: u64 = 0;
    let mut next_sample = exp.sample_every;
    while misses < exp.total_misses {
        let line = rng.gen_range(0..WALKER_LINES);
        machine.access(0, walker_region.offset(line * LINE), AccessKind::Read);
        misses = machine.pic(0).misses().wrapping_sub(pic_base);
        if misses >= next_sample {
            points.push(GeometryPoint {
                misses,
                observed: machine.l2_footprint_lines(0, monitored_tid) as f64,
                closed_form: closed(s0_observed, misses).clamp(0.0, n),
                per_set: predict_after(case, s0_observed, total0, misses, n, ways).0,
            });
            next_sample += exp.sample_every;
        }
    }
    points
}

fn prefill(machine: &mut Machine, region: VAddr, lines: u64) {
    machine.set_running(0, Some(ThreadId(0)));
    for l in 0..lines {
        machine.access(0, region.offset(l * LINE), AccessKind::Read);
    }
}

/// Mean absolute prediction error in lines over the curve's sampled
/// points (the miss-0 anchor point is excluded — both predictors start
/// at the observation by construction).
pub fn mean_abs_error(points: &[GeometryPoint], predictor: fn(&GeometryPoint) -> f64) -> f64 {
    let sampled: Vec<&GeometryPoint> = points.iter().filter(|p| p.misses > 0).collect();
    if sampled.is_empty() {
        return 0.0;
    }
    sampled.iter().map(|p| (predictor(p) - p.observed).abs()).sum::<f64>() / sampled.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(monitored: Monitored, sets: u64, ways: u64, seed: u64) -> GeometryExperiment {
        GeometryExperiment {
            monitored,
            sets,
            ways,
            page_bytes: 8 * 1024,
            total_misses: 12_000,
            sample_every: 2_000,
            seed,
        }
    }

    #[test]
    fn predictors_agree_on_direct_mapped() {
        let pts = run(&cell(Monitored::Walker { s0: 0.0 }, 8192, 1, 21));
        for p in &pts {
            assert!(
                (p.closed_form - p.per_set).abs() < 1.0,
                "at W=1 the per-set drift is the closed form: {p:?}"
            );
        }
    }

    #[test]
    fn per_set_beats_closed_form_on_associative_walker() {
        for &(sets, ways) in &[(1024u64, 8u64), (1, 8192)] {
            let pts = run(&cell(Monitored::Walker { s0: 0.0 }, sets, ways, 22));
            let closed = mean_abs_error(&pts, |p| p.closed_form);
            let per_set = mean_abs_error(&pts, |p| p.per_set);
            assert!(
                per_set < closed,
                "{sets}x{ways} walker: per-set {per_set:.1} must beat closed {closed:.1}"
            );
        }
    }

    #[test]
    fn per_set_beats_closed_form_on_associative_sleeper() {
        for &(sets, ways) in &[(1024u64, 8u64), (1, 8192)] {
            let pts = run(&cell(Monitored::Independent { s0: 4096.0 }, sets, ways, 23));
            let closed = mean_abs_error(&pts, |p| p.closed_form);
            let per_set = mean_abs_error(&pts, |p| p.per_set);
            assert!(
                per_set < closed,
                "{sets}x{ways} sleeper: per-set {per_set:.1} must beat closed {closed:.1}"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let exp = cell(Monitored::Dependent { q: 0.5, s0: 0.0 }, 1024, 8, 24);
        assert_eq!(run(&exp), run(&exp));
    }
}
