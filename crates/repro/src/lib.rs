//! # locality-repro
//!
//! The experiment harness: one binary per table and figure of the paper.
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — simulated UltraSPARC-1 memory hierarchy |
//! | `table2` | Table 2 — simulated workloads |
//! | `table3` | Table 3 — costs of priority updates |
//! | `table4` | Table 4 — input parameters for application runs |
//! | `table5` | Table 5 — CRT relative to FCFS |
//! | `fig4` | Figure 4 — random-memory-walk model validation (4 panels) |
//! | `fig5` | Figure 5 — observed vs predicted footprints, 6 applications |
//! | `fig6` | Figure 6 — E-cache misses per 1000 instructions |
//! | `fig7` | Figure 7 — overestimated footprints (typechecker, raytrace) |
//! | `fig8` | Figure 8 — locality scheduling on the 1-cpu Ultra-1 |
//! | `fig9` | Figure 9 — locality scheduling on the 8-cpu Enterprise 5000 |
//! | `ablation` | §5 extras: annotation ablation, threshold sweep, page placement, invalidation effects; `--fault <scenario>` runs the counter-fault robustness table, `--chaos <scenario>\|all` the thread-lifecycle chaos table |
//! | `repro-all` | everything above through one shared runner (cross-figure runs execute once) |
//! | `analyze` | race detection, lock-order cycles, and annotation lints over the deterministic racy/clean fixture pair (exit 1 on confirmed races; `--workload clean\|racy\|all`) |
//! | `modelcheck` | stateless model checking: exhaustive DPOR schedule exploration of the fixture workloads, with replayable counterexamples (exit 1 on violations; `--workload clean\|racy\|deadlock\|lostwake\|all`, `--replay FILE`) |
//! | `trace` | locality-trace observability: JSONL + Chrome `trace_event` exports and aggregated trace-metrics CSVs for a monitored app (`--workload APP\|all`, `--policy fcfs\|lff\|crt`; needs the `trace` feature) |
//! | `trace-bench` | tracing-overhead bench: asserts the sink stays under its overhead budget (instrumented builds) or that instrumentation is fully compiled out (default builds) |
//! | `bench` | offline hot-path microbenchmarks mirroring the criterion groups (`--save FILE` for flat medians, `--merge BEFORE AFTER` to assemble `BENCH_hotpath.json`) |
//!
//! Every binary prints aligned text tables and writes CSV files under
//! `results/` (change with `--out DIR`). `--scale small` runs scaled-down
//! workloads for a quick smoke pass; the default `--scale paper` uses the
//! paper's parameters.
//!
//! All binaries drive the shared [runner]: figures are lists of
//! independent seeded run descriptors executed across `--jobs` worker
//! threads and cached under `<out>/.cache` (disable with `--no-cache`).
//! CSV artifacts are byte-identical for every `--jobs` value and across
//! cache hits; only the printed wall-time stats vary.
//!
//! The pipeline is crash-safe: cache entries are checksummed and written
//! atomically (corrupt entries are quarantined and recomputed), CSVs are
//! written via temp-file + rename, and every run executes behind a panic
//! isolation boundary with a seeded watchdog — a killed `repro-all`
//! resumes from its per-run cache to byte-identical artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The harness must degrade gracefully, not panic: outside tests, every
// fallible site either propagates a typed `ReproError` or carries a
// targeted `#[allow]` with an infallibility argument.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analyze;
pub mod args;
// The bench harness measures, it doesn't reproduce figures: setup
// failures there should abort loudly rather than thread Results through
// timing loops.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub mod bench;
pub mod chaos;
pub mod digest;
pub mod error;
pub mod experiments;
pub mod faults;
pub mod geometry;
pub mod microbench;
pub mod modelcheck;
pub mod monitor;
pub mod perf;
pub mod runner;
pub mod suite;
pub mod table;
pub mod trace;

pub use args::{Args, Scale};
pub use chaos::ChaosScenario;
pub use error::ReproError;
pub use faults::FaultScenario;
pub use runner::{RunKind, RunOutput, RunRequest, Runner};
pub use table::Table;
