//! The Figure 4 microbenchmark: a random memory walk driven directly
//! against the simulated machine, with footprints sampled every few
//! hundred misses and compared to the closed forms.
//!
//! Panels (paper §3.2):
//! * **a** — the executing thread's own footprint for several initial
//!   footprints `S_A`;
//! * **b** — decay of sleeping *independent* threads' footprints;
//! * **c** — a sleeping *dependent* thread with `q = 0.5` and several
//!   initial footprints (decays or grows toward `qN`);
//! * **d** — sleeping dependent threads with several sharing
//!   coefficients `q`.

use locality_core::{FootprintModel, ModelParams, ThreadId};
use locality_sim::{AccessKind, Machine, MachineConfig, VAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One point of a Figure 4 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkPoint {
    /// E-cache misses taken by the walker so far.
    pub misses: u64,
    /// Observed footprint of the monitored thread (lines).
    pub observed: f64,
    /// Model prediction (lines).
    pub predicted: f64,
}

/// Which thread the experiment monitors, and how to predict it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Monitored {
    /// The walker itself (case 1), with its initial footprint.
    Walker {
        /// Initial footprint `S_A` in lines.
        s0: f64,
    },
    /// An independent sleeper (case 2) with initial footprint `S_B`.
    Independent {
        /// Initial footprint in lines.
        s0: f64,
    },
    /// A dependent sleeper (case 3) with coefficient `q` and initial
    /// footprint `S_C`.
    Dependent {
        /// Sharing coefficient `q_{A,C}`.
        q: f64,
        /// Initial footprint in lines.
        s0: f64,
    },
}

/// Parameters of one microbenchmark run (one curve). A run is fully
/// described by this value — the walk owns its RNG (seeded from
/// [`WalkExperiment::seed`]) and its machine, so independent runs share
/// no mutable state and the experiment runner can execute and cache
/// them freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkExperiment {
    /// Who is monitored and how the model predicts it.
    pub monitored: Monitored,
    /// Total walker misses to accumulate.
    pub total_misses: u64,
    /// Sampling interval in misses.
    pub sample_every: u64,
    /// E-cache associativity (1 = the paper's direct-mapped case; higher
    /// values probe the paper's §2.1 claim that the model extends to
    /// associative caches).
    pub associativity: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WalkExperiment {
    /// A direct-mapped experiment (the paper's configuration).
    pub fn direct(monitored: Monitored, total_misses: u64, sample_every: u64, seed: u64) -> Self {
        WalkExperiment { monitored, total_misses, sample_every, associativity: 1, seed }
    }
}

const LINE: u64 = 64;
/// The walker's region: 64× the cache, so a walker miss lands on any
/// given set almost uniformly (sets still holding a sleeper line offer
/// one extra missing candidate and would otherwise attract misses
/// disproportionately, decaying sleepers faster than the model says).
const WALKER_LINES: u64 = 8192 * 64;

/// Runs one curve and returns its points.
///
/// The machine is a single-processor UltraSPARC-1. The monitored
/// sleeper's region overlaps the walker's by exactly the requested
/// coefficient; initial footprints are established by touching the
/// appropriate prefix before counters are reset.
pub fn run(exp: &WalkExperiment) -> Vec<WalkPoint> {
    let mut config = MachineConfig::ultra1();
    let ways = exp.associativity.max(1);
    let l2_lines = config.hierarchy.l2.lines();
    config.hierarchy.l2 =
        locality_sim::CacheGeometry { sets: l2_lines / ways, ways, line: config.hierarchy.l2.line };
    // Infallible for every shipped experiment: `ultra1()` is valid and the
    // associativity overrides are powers of two (1 for the paper's
    // direct-mapped runs, 2 for the set-associative ablation).
    #[allow(clippy::unwrap_used)]
    let mut machine = Machine::try_new(config).unwrap();
    // Infallible: `l2_lines()` on a constructed machine is a positive
    // power of two, the only thing `ModelParams::new` rejects.
    #[allow(clippy::unwrap_used)]
    let model = FootprintModel::new(ModelParams::new(machine.l2_lines()).unwrap());
    let n = model.params().n();
    let walker = ThreadId(1);
    let sleeper = ThreadId(2);

    let walker_region = machine.alloc(WALKER_LINES * LINE, LINE);
    machine.register_region(walker, walker_region, WALKER_LINES * LINE);

    // Sleeper region: a slice of the walker's region covering fraction q
    // of it (dependent), or a disjoint region (independent).
    let (monitored_tid, predict): (ThreadId, Box<dyn Fn(f64, u64) -> f64>) = match exp.monitored {
        Monitored::Walker { s0 } => {
            // Establish the initial footprint: touch the first s0 lines.
            prefill(&mut machine, walker_region, s0 as u64);
            (walker, Box::new(move |s, m| model.expected_blocking(s, m)))
        }
        Monitored::Independent { s0 } => {
            let bytes = (s0 as u64).max(1) * LINE;
            let region = machine.alloc(bytes, LINE);
            machine.register_region(sleeper, region, bytes);
            prefill(&mut machine, region, s0 as u64);
            (sleeper, Box::new(move |s, m| model.expected_independent(s, m)))
        }
        Monitored::Dependent { q, s0 } => {
            // Cover fraction q of the walker's region (from its start):
            // q = |A ∩ C| / |A| exactly.
            let bytes = ((WALKER_LINES as f64 * q) as u64) * LINE;
            machine.register_region(sleeper, walker_region, bytes);
            prefill(&mut machine, walker_region, s0 as u64);
            (sleeper, Box::new(move |s, m| model.expected_dependent(q, s, m)))
        }
    };

    // Reset the interval: everything from here on is the measured walk.
    machine.set_running(0, Some(walker));
    // Infallible: cpu 0 exists on every config and the PIC was never
    // poisoned on this freshly built machine.
    #[allow(clippy::expect_used)]
    machine.pic_take_interval(0).expect("clean machine read");
    // The raw PIC registers are cumulative; measure against a baseline
    // like the runtime's interval reads do.
    let pic_base = machine.pic(0).misses();
    let s0_observed = machine.l2_footprint_lines(0, monitored_tid) as f64;

    let mut rng = StdRng::seed_from_u64(exp.seed);
    let mut points = vec![WalkPoint { misses: 0, observed: s0_observed, predicted: s0_observed }];
    let mut misses: u64 = 0;
    let mut next_sample = exp.sample_every;
    while misses < exp.total_misses {
        let line = rng.gen_range(0..WALKER_LINES);
        machine.access(0, walker_region.offset(line * LINE), AccessKind::Read);
        misses = machine.pic(0).misses().wrapping_sub(pic_base);
        if misses >= next_sample {
            points.push(WalkPoint {
                misses,
                observed: machine.l2_footprint_lines(0, monitored_tid) as f64,
                predicted: predict(s0_observed, misses).clamp(0.0, n),
            });
            next_sample += exp.sample_every;
        }
    }
    points
}

/// Touches the first `lines` lines of `region` (sequential prefill: with
/// bin-hopping placement, a ≤ 512 KiB prefix maps onto distinct sets).
fn prefill(machine: &mut Machine, region: VAddr, lines: u64) {
    machine.set_running(0, Some(ThreadId(0)));
    for l in 0..lines {
        machine.access(0, region.offset(l * LINE), AccessKind::Read);
    }
}

/// Maximum relative error of a curve against the model over points whose
/// observed footprint exceeds `min_lines`.
pub fn max_rel_error(points: &[WalkPoint], min_lines: f64) -> f64 {
    points
        .iter()
        .filter(|p| p.observed >= min_lines)
        .map(|p| ((p.predicted - p.observed) / p.observed).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_curve_matches_model() {
        let pts = run(&WalkExperiment::direct(Monitored::Walker { s0: 0.0 }, 20_000, 2_000, 1));
        assert!(pts.len() >= 10);
        let err = max_rel_error(&pts, 256.0);
        assert!(err < 0.05, "walker curve error {err:.3}");
        // Monotone growth.
        for w in pts.windows(2) {
            assert!(w[1].observed >= w[0].observed - 32.0);
        }
    }

    #[test]
    fn walker_with_initial_footprint_starts_there() {
        let pts = run(&WalkExperiment::direct(Monitored::Walker { s0: 4096.0 }, 5_000, 1_000, 2));
        assert!((pts[0].observed - 4096.0).abs() < 64.0, "start at {}", pts[0].observed);
        assert!(max_rel_error(&pts, 256.0) < 0.05);
    }

    #[test]
    fn independent_sleeper_decays() {
        let pts =
            run(&WalkExperiment::direct(Monitored::Independent { s0: 4096.0 }, 20_000, 2_000, 3));
        assert!(pts[0].observed > 3900.0);
        let last = pts.last().unwrap();
        assert!(last.observed < pts[0].observed / 2.0, "must decay: {last:?}");
        assert!(max_rel_error(&pts, 256.0) < 0.10);
    }

    #[test]
    fn dependent_grows_toward_qn() {
        let pts = run(&WalkExperiment::direct(
            Monitored::Dependent { q: 0.5, s0: 0.0 },
            30_000,
            3_000,
            4,
        ));
        let last = pts.last().unwrap();
        assert!(last.observed > 2500.0, "should approach qN = 4096: {last:?}");
        assert!(last.observed < 4500.0);
        assert!(max_rel_error(&pts, 256.0) < 0.10);
    }

    #[test]
    fn dependent_decays_from_above_qn() {
        let pts = run(&WalkExperiment::direct(
            Monitored::Dependent { q: 0.25, s0: 6000.0 },
            30_000,
            3_000,
            5,
        ));
        let first = pts[0];
        let last = pts.last().unwrap();
        assert!(first.observed > 4000.0);
        assert!(last.observed < first.observed, "must decay toward qN=2048");
        assert!(last.observed > 1500.0);
    }
}

#[cfg(test)]
mod assoc_tests {
    use super::*;

    #[test]
    fn associative_caches_deviate_as_the_paper_warns() {
        // Paper §2.1: the model "can be extended to the associative cache
        // case (although the analytical results are likely to be more
        // complex)". Measured: LRU replacement protects recently-used
        // lines, so a thread's footprint grows *faster* than the
        // direct-mapped closed form — a bounded, systematic
        // under-prediction that justifies the paper's caveat.
        let mut errs = Vec::new();
        for assoc in [1u64, 2, 4] {
            let pts = run(&WalkExperiment {
                monitored: Monitored::Walker { s0: 0.0 },
                total_misses: 15_000,
                sample_every: 3_000,
                associativity: assoc,
                seed: 9,
            });
            errs.push(max_rel_error(&pts, 512.0));
        }
        assert!(errs[0] < 0.03, "direct-mapped stays exact: {:.3}", errs[0]);
        assert!(errs[1] > errs[0] && errs[2] > errs[0], "LRU must deviate: {errs:?}");
        assert!(errs[2] < 0.25, "…but boundedly: {errs:?}");
    }
}
