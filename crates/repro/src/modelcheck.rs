//! The `modelcheck` binary's driver: exhaustively explore the schedule
//! space of the small fixture workloads with the `locality-analyze`
//! stateless model checker (DPOR + sleep sets), report violations as
//! replayable counterexamples, and measure the DPOR reduction factor
//! against naive full enumeration.
//!
//! Each (workload, mode) pair is one [`RunKind::ModelCheck`] cell
//! through the shared runner — parallel across cells, cached on disk,
//! assembled strictly in request order — so `modelcheck.csv` is
//! byte-identical across reruns and `--jobs` values. `--replay FILE`
//! re-executes a previously written counterexample and confirms the
//! same violation recurs.

use crate::args::Args;
use crate::error::ReproError;
use crate::runner::{RunKind, RunOutput, RunRequest, Runner};
use crate::table::{f, Table};
use locality_analyze::explore::{
    explore, parse_counterexample, replay_counterexample, serialize_counterexample, ExploreConfig,
    McWorkload, ViolationKind,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default per-execution decision bound (`--depth-bound`).
pub const DEFAULT_DEPTH_BOUND: u64 = 64;
/// Default exploration budget in executions (`--max-schedules`). Large
/// enough that every fixture explores to quiescence even under naive
/// enumeration.
pub const DEFAULT_MAX_SCHEDULES: u64 = 20_000;

/// Worker threads the exploration itself may use, set from `--jobs`
/// before the runner dispatches cells. A process-global rather than a
/// [`RunKind`] field so the cache key — and therefore the artifacts —
/// cannot depend on the job count.
static EXPLORE_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the subtree-exploration worker count for subsequent cells.
pub fn set_explore_jobs(jobs: usize) {
    EXPLORE_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The aggregated result of exploring one (workload, mode) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McCell {
    /// Terminal schedules explored.
    pub schedules: u64,
    /// Sleep-set-pruned executions.
    pub pruned: u64,
    /// Depth-bound truncations.
    pub truncated: u64,
    /// Whether `--max-schedules` cut exploration short.
    pub capped: bool,
    /// Longest schedule (decisions).
    pub max_depth: u64,
    /// Distinct race violations (0 or 1).
    pub races: u64,
    /// Distinct deadlock violations (0 or 1).
    pub deadlocks: u64,
    /// Distinct condvar-stall violations (0 or 1).
    pub stalls: u64,
    /// Distinct scheduler-invariant violations (0 or 1; only nonzero
    /// under the `invariant-checks` feature).
    pub invariants: u64,
    /// The serialized counterexample of the first (most severe)
    /// violation, if any.
    pub counterexample: Option<String>,
}

impl McCell {
    /// Total distinct violations.
    pub fn violations(&self) -> u64 {
        self.races + self.deadlocks + self.stalls + self.invariants
    }
}

/// Executes one model-checking cell (called by the shared runner).
pub fn modelcheck_cell(
    workload: McWorkload,
    naive: bool,
    depth_bound: u64,
    max_schedules: u64,
    preempt_bound: Option<u64>,
) -> McCell {
    let cfg = ExploreConfig {
        depth_bound: usize::try_from(depth_bound).unwrap_or(usize::MAX),
        max_schedules: usize::try_from(max_schedules).unwrap_or(usize::MAX),
        preempt_bound: preempt_bound.map(|b| usize::try_from(b).unwrap_or(usize::MAX)),
        naive,
        jobs: EXPLORE_JOBS.load(Ordering::Relaxed),
    };
    let summary = explore(workload, &cfg);
    McCell {
        schedules: summary.schedules,
        pruned: summary.pruned,
        truncated: summary.truncated,
        capped: summary.capped,
        max_depth: summary.max_depth,
        races: summary.count_of(ViolationKind::Race),
        deadlocks: summary.count_of(ViolationKind::Deadlock),
        stalls: summary.count_of(ViolationKind::CondvarStall),
        invariants: summary.count_of(ViolationKind::Invariant),
        counterexample: summary.violations.first().map(|v| serialize_counterexample(workload, v)),
    }
}

/// Which fixture workloads to model-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McSelection {
    /// One named workload.
    One(McWorkload),
    /// Every workload: clean, racy, deadlock, lostwake.
    All,
}

impl McSelection {
    /// Parses the `--workload` keyword (default `all`).
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Usage`] for an unknown name.
    pub fn from_args(args: &Args) -> Result<Self, ReproError> {
        match args.workload.as_deref() {
            None | Some("all") => Ok(McSelection::All),
            Some(name) => McWorkload::from_name(name, 1).map(McSelection::One).ok_or_else(|| {
                ReproError::Usage(format!(
                    "unknown workload '{name}' (expected clean, racy, deadlock, lostwake, or all)"
                ))
            }),
        }
    }

    /// The selected workloads, in fixed report order.
    pub fn workloads(self) -> Vec<McWorkload> {
        match self {
            McSelection::One(w) => vec![w],
            McSelection::All => vec![
                McWorkload::Clean { rounds: 1 },
                McWorkload::Racy { rounds: 1 },
                McWorkload::Deadlock,
                McWorkload::LostWakeup,
            ],
        }
    }
}

/// One workload's paired DPOR/naive results.
#[derive(Debug)]
pub struct McRow {
    /// The explored workload.
    pub workload: McWorkload,
    /// The DPOR exploration.
    pub dpor: McCell,
    /// The naive full enumeration (the reduction baseline).
    pub naive: McCell,
}

fn bounds_of(args: &Args) -> (u64, u64, Option<u64>) {
    (
        args.depth_bound.unwrap_or(DEFAULT_DEPTH_BOUND),
        args.max_schedules.unwrap_or(DEFAULT_MAX_SCHEDULES),
        args.preempt_bound,
    )
}

/// Runs the selected workloads (DPOR and naive modes) through the
/// shared runner and returns the rows in selection order.
pub fn run_cells(args: &Args, sel: McSelection) -> Result<Vec<McRow>, ReproError> {
    let (depth_bound, max_schedules, preempt_bound) = bounds_of(args);
    set_explore_jobs(args.jobs);
    let workloads = sel.workloads();
    let mut reqs = Vec::new();
    for &workload in &workloads {
        for naive in [false, true] {
            let mode = if naive { "naive" } else { "dpor" };
            reqs.push(RunRequest::new(
                format!("modelcheck {} {mode}", workload.name()),
                RunKind::ModelCheck { workload, naive, depth_bound, max_schedules, preempt_bound },
            ));
        }
    }
    // Cells stay sequential here (jobs=1): `--jobs` feeds the
    // exploration's own wave parallelism instead, per the flag's
    // contract; results are identical either way.
    let runner = Runner::new(crate::runner::RunnerConfig {
        jobs: 1,
        cache_dir: (!args.no_cache).then(|| args.out.join(".cache")),
        guard: crate::runner::GuardPolicy::default(),
    });
    let outputs = runner.run_all(&reqs)?;
    let mut rows = Vec::new();
    let mut it = outputs.into_iter();
    for workload in workloads {
        let (Some(RunOutput::ModelCheck(dpor)), Some(RunOutput::ModelCheck(naive))) =
            (it.next(), it.next())
        else {
            return Err(ReproError::MissingResult(format!(
                "modelcheck cell pair for {}",
                workload.name()
            )));
        };
        rows.push(McRow { workload, dpor, naive });
    }
    runner.summary()?.print();
    Ok(rows)
}

/// Renders the per-workload exploration table.
///
/// # Errors
///
/// Returns a [`crate::table::TableError`] if a row is malformed.
pub fn modelcheck_table(rows: &[McRow]) -> Result<Table, ReproError> {
    let mut table = Table::new(
        "Model checking (DPOR schedule exploration, naive-enumeration baseline)",
        &[
            "workload",
            "schedules_dpor",
            "schedules_naive",
            "reduction",
            "pruned",
            "truncated",
            "capped",
            "max_depth",
            "races",
            "deadlocks",
            "condvar_stalls",
            "invariants",
            "counterexample",
        ],
    );
    for row in rows {
        let reduction = if row.dpor.schedules > 0 {
            f(row.naive.schedules as f64 / row.dpor.schedules as f64, 2)
        } else {
            "-".to_string()
        };
        let ce = if row.dpor.counterexample.is_some() {
            format!("counterexample_{}.txt", row.workload.name())
        } else {
            "-".to_string()
        };
        table.row(&[
            row.workload.name().to_string(),
            row.dpor.schedules.to_string(),
            row.naive.schedules.to_string(),
            reduction,
            row.dpor.pruned.to_string(),
            row.dpor.truncated.to_string(),
            if row.dpor.capped { "yes" } else { "no" }.to_string(),
            row.dpor.max_depth.to_string(),
            row.dpor.races.to_string(),
            row.dpor.deadlocks.to_string(),
            row.dpor.stalls.to_string(),
            row.dpor.invariants.to_string(),
            ce,
        ])?;
    }
    Ok(table)
}

/// Writes each violating workload's counterexample next to the CSV.
fn write_counterexamples(args: &Args, rows: &[McRow]) -> Result<(), ReproError> {
    for row in rows {
        if let Some(text) = &row.dpor.counterexample {
            let path = args.csv_path(&format!("counterexample_{}.txt", row.workload.name()))?;
            std::fs::write(&path, text)?;
            println!("counterexample written to {}", path.display());
        }
    }
    Ok(())
}

/// Replays a counterexample file: parses it, re-executes the engine
/// down the recorded schedule, and confirms the same violation kind.
///
/// # Errors
///
/// [`ReproError::Usage`] when the file is malformed;
/// [`ReproError::MissingResult`] when the schedule no longer reproduces
/// the recorded violation.
pub fn run_replay(path: &std::path::Path) -> Result<(), ReproError> {
    let text = std::fs::read_to_string(path)?;
    let ce = parse_counterexample(&text).map_err(|e| {
        ReproError::Usage(format!("malformed counterexample {}: {e}", path.display()))
    })?;
    let v = replay_counterexample(&ce)
        .map_err(|e| ReproError::MissingResult(format!("replay of {}: {e}", path.display())))?;
    println!(
        "replayed {} on workload {}: violation reproduced",
        v.kind.as_str(),
        ce.workload.name()
    );
    println!("  schedule: {}", v.schedule.iter().map(u64::to_string).collect::<Vec<_>>().join(","));
    println!("  {}", v.detail);
    Ok(())
}

/// The full `modelcheck` driver: explore (or replay), print, write CSV.
///
/// Returns `true` when any violation was found (or a replay reproduced
/// one) — the process should exit nonzero.
///
/// # Errors
///
/// Returns [`ReproError::Usage`] for bad flag values or malformed
/// counterexample files, or the first run/output error.
pub fn run_modelcheck(args: &Args) -> Result<bool, ReproError> {
    if let Some(path) = &args.replay {
        run_replay(path)?;
        return Ok(true);
    }
    let sel = McSelection::from_args(args)?;
    let rows = run_cells(args, sel)?;

    let table = modelcheck_table(&rows)?;
    table.print();
    table.write_csv(&args.csv_path("modelcheck.csv")?)?;
    write_counterexamples(args, &rows)?;

    let mut any = false;
    for row in rows {
        let v = row.dpor.violations();
        let exhaustive = if row.dpor.capped { "capped" } else { "exhaustive" };
        println!(
            "{}: {} schedule(s) ({exhaustive}; naive {}), {} violation(s) -> {}",
            row.workload.name(),
            row.dpor.schedules,
            row.naive.schedules,
            v,
            if v > 0 { "FAIL" } else { "ok" }
        );
        any |= v > 0;
    }
    Ok(any)
}

/// The modelcheck binary's `main`: exit 0 when no violation was found,
/// 1 when a violation was found (or replayed), 2 on usage errors.
pub fn main_modelcheck() {
    let args = Args::from_env();
    match run_modelcheck(&args) {
        Ok(false) => {}
        Ok(true) => std::process::exit(1),
        Err(ReproError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Scale;

    fn args_for(workload: Option<&str>) -> Args {
        Args {
            scale: Scale::Small,
            workload: workload.map(str::to_string),
            jobs: 1,
            no_cache: true,
            out: std::env::temp_dir().join(format!("locality-mc-unit-{}", std::process::id())),
            ..Args::default()
        }
    }

    #[test]
    fn selection_parses_and_rejects() {
        assert_eq!(McSelection::from_args(&args_for(None)).unwrap(), McSelection::All);
        assert_eq!(
            McSelection::from_args(&args_for(Some("deadlock"))).unwrap(),
            McSelection::One(McWorkload::Deadlock)
        );
        assert_eq!(McSelection::from_args(&args_for(Some("all"))).unwrap(), McSelection::All);
        let err = McSelection::from_args(&args_for(Some("bogus"))).unwrap_err();
        assert!(matches!(err, ReproError::Usage(_)), "{err:?}");
        assert_eq!(McSelection::All.workloads().len(), 4);
    }

    #[test]
    fn clean_cell_is_quiet_and_dpor_reduces() {
        let dpor = modelcheck_cell(McWorkload::Clean { rounds: 1 }, false, 64, 20_000, None);
        let naive = modelcheck_cell(McWorkload::Clean { rounds: 1 }, true, 64, 20_000, None);
        assert_eq!(dpor.violations(), 0);
        assert!(!dpor.capped, "clean DPOR exploration must be exhaustive");
        assert!(!naive.capped, "clean naive exploration must be exhaustive");
        assert!(
            naive.schedules > dpor.schedules,
            "reduction factor must exceed 1 (naive {} vs dpor {})",
            naive.schedules,
            dpor.schedules
        );
        assert!(dpor.counterexample.is_none());
    }

    #[test]
    fn violating_cells_carry_replayable_counterexamples() {
        for (workload, check) in [
            (McWorkload::Racy { rounds: 1 }, "race"),
            (McWorkload::Deadlock, "deadlock"),
            (McWorkload::LostWakeup, "condvar-stall"),
        ] {
            let cell = modelcheck_cell(workload, false, 64, 20_000, None);
            assert!(cell.violations() > 0, "{}", workload.name());
            let text = cell.counterexample.as_deref().unwrap_or_else(|| {
                panic!("{} cell should carry a counterexample", workload.name())
            });
            assert!(text.contains(&format!("violation {check}")), "{text}");
            let ce = parse_counterexample(text).expect("parse");
            replay_counterexample(&ce).expect("replay reproduces");
        }
    }

    #[test]
    fn cells_are_deterministic_across_explore_jobs() {
        set_explore_jobs(1);
        let serial = modelcheck_cell(McWorkload::Deadlock, false, 64, 5_000, None);
        set_explore_jobs(4);
        let parallel = modelcheck_cell(McWorkload::Deadlock, false, 64, 5_000, None);
        set_explore_jobs(1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn table_reports_reduction_and_counterexample_paths() {
        let dpor = modelcheck_cell(McWorkload::Racy { rounds: 1 }, false, 64, 5_000, None);
        let naive = modelcheck_cell(McWorkload::Racy { rounds: 1 }, true, 64, 5_000, None);
        let rows = vec![McRow { workload: McWorkload::Racy { rounds: 1 }, dpor, naive }];
        let csv = modelcheck_table(&rows).unwrap().to_csv();
        assert!(csv.contains("racy"), "{csv}");
        assert!(csv.contains("counterexample_racy.txt"), "{csv}");
    }
}
