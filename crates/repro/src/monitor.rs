//! The Figure 5/6/7 measurement harness: monitor a single work thread's
//! footprint (observed vs model-predicted) and miss rate as it executes.
//!
//! Mirrors the paper's §3.3 protocol: the application's data structures
//! are built during an initialization stage (no cache traffic — the
//! caches start cold, i.e. "the work threads' state is flushed"); the
//! work thread then runs on processor 0, yielding between batches, and a
//! scheduling-event hook samples at every context switch:
//!
//! * the **observed** footprint — resident E-cache lines belonging to the
//!   thread's registered state (the simulator-only ground truth);
//! * the **predicted** footprint — the LFF estimator's expected value,
//!   driven purely by the performance counters (and annotations, were
//!   there any);
//! * cumulative misses and instructions (for the MPI series of Fig. 6).

use active_threads::events::EngineView;
use active_threads::{
    Engine, EngineConfig, EngineHook, RuntimeError, SchedPolicy, SwitchEvent, ThreadId,
};
use locality_sim::MachineConfig;
use locality_workloads::App;
use std::cell::RefCell;
use std::rc::Rc;

/// One sample of the monitored thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cumulative E-cache misses of the monitored thread.
    pub misses: u64,
    /// Cumulative instructions executed.
    pub instructions: u64,
    /// Ground-truth footprint in lines.
    pub observed: f64,
    /// Model-predicted footprint in lines.
    pub predicted: f64,
}

/// The completed trace of a monitored run.
#[derive(Debug, Clone)]
pub struct MonitorTrace {
    /// Application name.
    pub app: &'static str,
    /// The samples, one per context switch.
    pub samples: Vec<Sample>,
}

impl MonitorTrace {
    /// Mean relative prediction error over samples with ≥ 64 observed
    /// lines (tiny footprints make relative error meaningless).
    pub fn mean_rel_error(&self) -> f64 {
        let pts: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.observed >= 64.0)
            .map(|s| (s.predicted - s.observed) / s.observed)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    }

    /// The last sample (end of the run).
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Downsamples to at most `n` evenly spaced samples (for printing).
    pub fn thin(&self, n: usize) -> Vec<Sample> {
        if self.samples.len() <= n || n == 0 {
            return self.samples.clone();
        }
        let step = self.samples.len() as f64 / n as f64;
        (0..n).map(|i| self.samples[(i as f64 * step) as usize]).collect()
    }
}

struct MonitorHook {
    tid: ThreadId,
    out: Rc<RefCell<Vec<Sample>>>,
    cum_misses: u64,
    /// Reused across samples so the per-switch E-cache scan stays
    /// allocation-free once warmed up.
    scratch: locality_sim::FootprintScratch,
}

impl EngineHook for MonitorHook {
    fn on_context_switch(&mut self, ev: &SwitchEvent, view: &EngineView<'_>) {
        if ev.tid != self.tid {
            return;
        }
        self.cum_misses += ev.delta.misses;
        view.machine.l2_footprints_into(ev.cpu, &mut self.scratch);
        let observed = self.scratch.lines(self.tid) as f64;
        let predicted = view.sched.expected_footprint(ev.cpu, self.tid).unwrap_or(0.0);
        let instructions = view.machine.cpu_stats(ev.cpu).instructions;
        self.out.borrow_mut().push(Sample {
            misses: self.cum_misses,
            instructions,
            observed,
            predicted,
        });
    }
}

/// Runs `app`'s monitored work thread on a single simulated UltraSPARC-1
/// under the (single-thread-equivalent) LFF scheduler and returns the
/// sampled trace.
///
/// The machine uses the paper's own careful page mapping (Kessler & Hill
/// bin hopping) by default; [`monitor_app_with_placement`] lets the
/// accuracy study bracket the VM's influence (a naive mapping makes
/// clustered applications *collide*, flipping the model's deviation from
/// slight under- to over-prediction — see EXPERIMENTS.md).
///
/// # Errors
///
/// Returns the engine's [`RuntimeError`] if the monitored run cannot
/// complete.
pub fn monitor_app(app: App) -> Result<MonitorTrace, RuntimeError> {
    monitor_app_with_placement(app, locality_sim::PagePlacement::bin_hopping())
}

/// [`monitor_app`] under an explicit page-placement policy.
///
/// # Errors
///
/// Returns the engine's [`RuntimeError`] if the monitored run cannot
/// complete.
pub fn monitor_app_with_placement(
    app: App,
    placement: locality_sim::PagePlacement,
) -> Result<MonitorTrace, RuntimeError> {
    monitor_app_seeded(app, placement, app.default_seed())
}

/// [`monitor_app_with_placement`] with an explicit RNG seed for the
/// monitored workload, so every run is fully described by its
/// `(app, placement, seed)` descriptor and no two runs share state —
/// the invariant the parallel experiment runner relies on.
///
/// # Errors
///
/// Returns the engine's [`RuntimeError`] if the monitored run cannot
/// complete.
pub fn monitor_app_seeded(
    app: App,
    placement: locality_sim::PagePlacement,
    seed: u64,
) -> Result<MonitorTrace, RuntimeError> {
    let config = MachineConfig::ultra1().with_placement(placement);
    let mut engine = Engine::new(config, SchedPolicy::Lff, EngineConfig::default())?;
    let tid = app.spawn_single_seeded(&mut engine, seed);
    let out = Rc::new(RefCell::new(Vec::new()));
    engine.add_hook(Box::new(MonitorHook {
        tid,
        out: out.clone(),
        cum_misses: 0,
        scratch: Default::default(),
    }));
    engine.run()?;
    let samples = out.borrow().clone();
    Ok(MonitorTrace { app: app.name(), samples })
}

/// MPI (misses per 1000 instructions) series derived from a trace, as
/// `(instructions, mpi-over-the-last-window)` points.
pub fn mpi_series(trace: &MonitorTrace) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(trace.samples.len());
    let mut prev = Sample { misses: 0, instructions: 0, observed: 0.0, predicted: 0.0 };
    for s in &trace.samples {
        let di = s.instructions.saturating_sub(prev.instructions);
        let dm = s.misses.saturating_sub(prev.misses);
        if di > 0 {
            out.push((s.instructions, dm as f64 * 1000.0 / di as f64));
        }
        prev = *s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_statistics() {
        let t = MonitorTrace {
            app: "x",
            samples: vec![
                Sample { misses: 10, instructions: 100, observed: 100.0, predicted: 110.0 },
                Sample { misses: 20, instructions: 200, observed: 200.0, predicted: 220.0 },
            ],
        };
        assert!((t.mean_rel_error() - 0.1).abs() < 1e-12);
        assert_eq!(t.last().unwrap().misses, 20);
        assert_eq!(t.thin(1).len(), 1);
        assert_eq!(t.thin(10).len(), 2);
    }

    #[test]
    fn mpi_series_windows() {
        let t = MonitorTrace {
            app: "x",
            samples: vec![
                Sample { misses: 5, instructions: 1000, observed: 0.0, predicted: 0.0 },
                Sample { misses: 7, instructions: 2000, observed: 0.0, predicted: 0.0 },
            ],
        };
        let s = mpi_series(&t);
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 5.0).abs() < 1e-12);
        assert!((s[1].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn monitor_small_app_end_to_end() {
        // Merge's worker on small parameters: quick and representative.
        use active_threads::{Engine, EngineConfig, SchedPolicy};
        use locality_sim::MachineConfig;
        let mut engine =
            Engine::new(MachineConfig::ultra1(), SchedPolicy::Lff, EngineConfig::default())
                .unwrap();
        let tid = locality_workloads::merge::spawn_single(
            &mut engine,
            &locality_workloads::merge::MergeParams::small(),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        engine.add_hook(Box::new(MonitorHook {
            tid,
            out: out.clone(),
            cum_misses: 0,
            scratch: Default::default(),
        }));
        engine.run().unwrap();
        let samples = out.borrow();
        assert!(samples.len() > 3);
        // Footprints grow from cold.
        assert!(samples.last().unwrap().observed > samples[0].observed);
        // Predictions are live.
        assert!(samples.last().unwrap().predicted > 0.0);
    }
}
