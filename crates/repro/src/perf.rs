//! The §5 performance harness: runs tasks/merge/photo/tsp under each
//! scheduling policy on the 1-cpu Ultra-1 and the 8-cpu Enterprise 5000
//! (Figures 8 and 9, Table 5, and the ablations).

use crate::args::Scale;
use active_threads::{Engine, EngineConfig, RunReport, RuntimeError, SchedPolicy};
use locality_sim::MachineConfig;
use locality_workloads::{merge, photo, tasks, tsp};

/// The four §5 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfApp {
    /// Squillante–Lazowska disjoint tasks.
    Tasks,
    /// Parallel mergesort.
    Merge,
    /// Row-threaded image filter.
    Photo,
    /// Branch-and-bound TSP.
    Tsp,
}

impl PerfApp {
    /// All four, in the paper's order.
    pub const ALL: [PerfApp; 4] = [PerfApp::Tasks, PerfApp::Merge, PerfApp::Photo, PerfApp::Tsp];

    /// Lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            PerfApp::Tasks => "tasks",
            PerfApp::Merge => "merge",
            PerfApp::Photo => "photo",
            PerfApp::Tsp => "tsp",
        }
    }

    /// Spawns the app into an engine at the given scale (Table 4
    /// parameters for [`Scale::Paper`]).
    pub fn spawn(&self, engine: &mut Engine, scale: Scale) {
        match self {
            PerfApp::Tasks => {
                let params = match scale {
                    Scale::Paper => tasks::TasksParams::default(),
                    Scale::Small => tasks::TasksParams {
                        tasks: 96,
                        footprint_lines: 100,
                        periods: 12,
                        overlap: 0.0,
                    },
                };
                tasks::spawn_parallel(engine, &params);
            }
            PerfApp::Merge => {
                let params = match scale {
                    Scale::Paper => merge::MergeParams::default(),
                    Scale::Small => merge::MergeParams { elements: 20_000, cutoff: 100, seed: 12 },
                };
                merge::spawn_parallel(engine, &params);
            }
            PerfApp::Photo => {
                let params = match scale {
                    Scale::Paper => photo::PhotoParams::default(),
                    Scale::Small => photo::PhotoParams {
                        width: 512,
                        height: 96,
                        filter_radius: 2,
                        share_radius: 4,
                        seed: 5,
                    },
                };
                photo::spawn_parallel(engine, &params);
            }
            PerfApp::Tsp => {
                let params = match scale {
                    Scale::Paper => tsp::TspParams::default(),
                    Scale::Small => {
                        tsp::TspParams { cities: 48, thread_budget: 120, max_depth: 10, seed: 3 }
                    }
                };
                tsp::spawn_parallel(engine, &params);
            }
        }
    }
}

/// Runs one `(app, policy, machine)` cell and returns the report.
///
/// # Errors
///
/// Returns the engine's [`RuntimeError`] if the workload cannot
/// complete.
pub fn run_cell(
    app: PerfApp,
    policy: SchedPolicy,
    cpus: usize,
    scale: Scale,
) -> Result<RunReport, RuntimeError> {
    let machine =
        if cpus == 1 { MachineConfig::ultra1() } else { MachineConfig::enterprise5000(cpus) };
    let mut engine = Engine::new(machine, policy, EngineConfig::default())?;
    app.spawn(&mut engine, scale);
    engine.run()
}

/// One application's results across the three policies.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// The application.
    pub app: PerfApp,
    /// Processors used.
    pub cpus: usize,
    /// FCFS baseline.
    pub fcfs: RunReport,
    /// Largest Footprint First.
    pub lff: RunReport,
    /// Cache-reload ratio.
    pub crt: RunReport,
}

impl PolicyComparison {
    /// Runs all three policies for one app/machine.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuntimeError`] of the three runs.
    pub fn run(app: PerfApp, cpus: usize, scale: Scale) -> Result<Self, RuntimeError> {
        Ok(PolicyComparison {
            app,
            cpus,
            fcfs: run_cell(app, SchedPolicy::Fcfs, cpus, scale)?,
            lff: run_cell(app, SchedPolicy::Lff, cpus, scale)?,
            crt: run_cell(app, SchedPolicy::Crt, cpus, scale)?,
        })
    }

    /// Assembles a comparison from three already-completed reports (the
    /// experiment runner executes the cells independently and possibly
    /// in parallel or from cache).
    pub fn from_reports(
        app: PerfApp,
        cpus: usize,
        fcfs: RunReport,
        lff: RunReport,
        crt: RunReport,
    ) -> Self {
        PolicyComparison { app, cpus, fcfs, lff, crt }
    }

    /// `(normalized misses, speedup)` for a policy report vs FCFS.
    pub fn vs_fcfs(&self, report: &RunReport) -> (f64, f64) {
        let norm_misses = if self.fcfs.total_l2_misses == 0 {
            1.0
        } else {
            report.total_l2_misses as f64 / self.fcfs.total_l2_misses as f64
        };
        (norm_misses, report.speedup_over(&self.fcfs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names() {
        let names: Vec<_> = PerfApp::ALL.iter().map(PerfApp::name).collect();
        assert_eq!(names, vec!["tasks", "merge", "photo", "tsp"]);
    }

    #[test]
    fn small_cells_run_everywhere() {
        for app in PerfApp::ALL {
            let r = run_cell(app, SchedPolicy::Fcfs, 2, Scale::Small).unwrap();
            assert!(r.threads_completed > 0, "{app:?}");
            assert!(r.total_l2_misses > 0);
        }
    }

    #[test]
    fn comparison_shape_tasks_smp() {
        // The headline effect at small scale: locality policies eliminate
        // misses for oversubscribed disjoint tasks.
        let cmp = PolicyComparison::run(PerfApp::Tasks, 2, Scale::Small).unwrap();
        let (norm_lff, speed_lff) = cmp.vs_fcfs(&cmp.lff);
        assert!(norm_lff < 0.9, "LFF should cut misses, got {norm_lff:.2}");
        assert!(speed_lff > 1.0, "LFF should speed up, got {speed_lff:.2}");
    }
}
