//! The shared experiment runner: every figure and table is a list of
//! independent, explicitly-seeded run descriptors ([`RunKind`]) that a
//! pool of OS worker threads executes in parallel (`--jobs N`), with an
//! on-disk result cache so re-invocations skip finished points.
//!
//! Determinism contract: a descriptor fully describes its run (machine,
//! workload, seeds), each run builds all of its state privately, and
//! callers format output only after `run_all` returns results in
//! descriptor order — so CSV artifacts are **byte-identical** for every
//! `--jobs` value. Wall-clock measurements (the per-run stats below and
//! Table 3's ns/update column) are the only nondeterministic outputs
//! and are confined to stdout.
//!
//! Cache entries are keyed by an FNV-1a hash of the canonical
//! descriptor string, which embeds the crate version and wire-format
//! revision — a rebuild with different semantics never reuses stale
//! results. Entries are written via a temp-file rename, so concurrent
//! invocations sharing a cache directory cannot observe torn files, and
//! each carries a SHA-256 of its payload: a truncated or bit-rotted
//! entry is quarantined (renamed aside) and recomputed instead of
//! misparsing or panicking.
//!
//! Runs execute behind a guard ([`GuardPolicy`]): panics are caught per
//! descriptor (`catch_unwind`), a watchdog times out hung runs, and
//! both are retried with bounded backoff before the typed error
//! surfaces. Combined with the cache, this makes `repro-all` resumable:
//! a killed invocation re-runs only the descriptors whose entries never
//! landed, and the reassembled artifacts are byte-identical.

use crate::args::{Args, Scale};
use crate::chaos::ChaosScenario;
use crate::digest;
use crate::error::ReproError;
use crate::experiments::{self, ChaosCell, CostCase, FaultCell, PredictionProbe};
use crate::faults::FaultScenario;
use crate::geometry::{self, GeometryExperiment, GeometryPoint};
use crate::microbench::{self, WalkExperiment, WalkPoint};
use crate::modelcheck::McCell;
use crate::monitor::{self, MonitorTrace, Sample};
use crate::perf::{self, PerfApp};
use crate::table::{Table, TableError};
use active_threads::{RunReport, SchedPolicy};
use locality_core::PolicyKind;
use locality_sim::PagePlacement;
use locality_workloads::App;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Bumped whenever the wire encoding of [`RunOutput`] changes, so stale
/// cache entries miss instead of misparsing.
const WIRE_FORMAT: u32 = 2;

/// Serializable page-placement selector mirroring
/// [`locality_sim::PagePlacement`] (descriptors avoid embedded seeds by
/// using the default-seeded arbitrary policy, like the binaries always
/// have).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Kessler & Hill bin hopping (the paper's VM).
    BinHopping,
    /// Page coloring.
    PageColoring,
    /// Default-seeded pseudo-random placement.
    Arbitrary,
}

impl Placement {
    /// The simulator policy this selector denotes.
    pub fn to_sim(self) -> PagePlacement {
        match self {
            Placement::BinHopping => PagePlacement::bin_hopping(),
            Placement::PageColoring => PagePlacement::PageColoring,
            Placement::Arbitrary => PagePlacement::arbitrary(),
        }
    }
}

/// Serializable scheduling-policy selector for descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyId {
    /// First-come first-served.
    Fcfs,
    /// Largest Footprint First.
    Lff,
    /// Cache-reload ratio.
    Crt,
    /// LFF ignoring `at_share` annotations.
    LffNoAnnotations,
}

impl PolicyId {
    /// Lowercase label for run labels and stats.
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::Fcfs => "fcfs",
            PolicyId::Lff => "lff",
            PolicyId::Crt => "crt",
            PolicyId::LffNoAnnotations => "lff-noann",
        }
    }

    /// The engine policy this selector denotes.
    pub fn to_sched(self) -> SchedPolicy {
        match self {
            PolicyId::Fcfs => SchedPolicy::Fcfs,
            PolicyId::Lff => SchedPolicy::Lff,
            PolicyId::Crt => SchedPolicy::Crt,
            PolicyId::LffNoAnnotations => SchedPolicy::LffNoAnnotations,
        }
    }
}

/// One independent, explicitly-seeded simulation run. The variant value
/// fully determines the run's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunKind {
    /// A Figure 4 random-walk curve.
    Walk(WalkExperiment),
    /// A geometry-validation curve (`repro geometry`): one workload on
    /// one cache geometry, predicted by both estimators.
    Geometry(GeometryExperiment),
    /// A Figure 5/6/7 monitored-application trace.
    Monitor {
        /// The monitored application.
        app: App,
        /// Page-placement policy of the simulated VM.
        placement: Placement,
        /// The workload's RNG seed.
        seed: u64,
    },
    /// A §5 policy-comparison cell (Figures 8/9, Table 5, ablation 1).
    Policy {
        /// The application.
        app: PerfApp,
        /// The scheduling policy.
        policy: PolicyId,
        /// Processor count (1 = Ultra-1, else Enterprise 5000).
        cpus: usize,
        /// Workload scale.
        scale: Scale,
    },
    /// A heap-eviction-threshold sweep cell (ablation 2).
    Threshold {
        /// Threshold in lines.
        threshold_lines: u64,
        /// Workload scale.
        scale: Scale,
    },
    /// A page-placement probe (ablation 3).
    PlacementProbe {
        /// The application.
        app: App,
        /// Page-placement policy.
        placement: Placement,
    },
    /// An invalidation-effects cell (ablation 4).
    Invalidation {
        /// Lines written by the remote processor.
        written_lines: u64,
    },
    /// A sharing-inference pipeline cell (ablation 5).
    Pipeline {
        /// The scheduling policy.
        policy: PolicyId,
        /// Hand `at_share` annotations on?
        annotate: bool,
        /// CML-driven runtime inference on?
        infer: bool,
        /// Workload scale.
        scale: Scale,
    },
    /// A counter-fault robustness cell (ablation 6).
    Fault {
        /// The scheduling policy.
        policy: PolicyId,
        /// The injected fault scenario.
        scenario: FaultScenario,
        /// Workload scale.
        scale: Scale,
    },
    /// A thread-lifecycle chaos cell (ablation 7, `--chaos`).
    Chaos {
        /// The scheduling policy.
        policy: PolicyId,
        /// The injected lifecycle-fault scenario.
        scenario: ChaosScenario,
        /// Workload scale.
        scale: Scale,
    },
    /// A Table 3 priority-update cost cell.
    UpdateCost {
        /// The locality policy.
        policy: PolicyKind,
        /// The thread class.
        case: CostCase,
    },
    /// A stateless-model-checking cell (the `modelcheck` binary): one
    /// exhaustive schedule exploration of a fixture workload.
    ModelCheck {
        /// The explored workload.
        workload: locality_analyze::McWorkload,
        /// Naive full enumeration (the DPOR reduction baseline)?
        naive: bool,
        /// Maximum decisions per execution.
        depth_bound: u64,
        /// Maximum executions across the exploration.
        max_schedules: u64,
        /// Optional preemption bound.
        preempt_bound: Option<u64>,
    },
    /// A traced monitored-application run's aggregated metrics (the
    /// `trace` binary). Only executable in builds with the `trace`
    /// feature; see [`crate::trace::trace_metrics_cell`].
    TraceMetrics {
        /// The monitored application.
        app: App,
        /// The scheduling policy of the traced run.
        policy: PolicyId,
        /// The workload's RNG seed.
        seed: u64,
    },
}

/// A labelled run descriptor.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Human-readable label for the stats summary.
    pub label: String,
    /// The run itself.
    pub kind: RunKind,
}

impl RunRequest {
    /// Creates a labelled request.
    pub fn new(label: impl Into<String>, kind: RunKind) -> Self {
        RunRequest { label: label.into(), kind }
    }
}

/// The canonical cache key of a descriptor: crate version, wire-format
/// revision, and the descriptor's exhaustive debug form.
pub fn cache_key(kind: &RunKind) -> String {
    format!("locality-repro {} wire {WIRE_FORMAT} | {kind:?}", env!("CARGO_PKG_VERSION"))
}

/// The result of one run.
#[derive(Debug, Clone)]
pub enum RunOutput {
    /// Points of one walk curve.
    Points(Vec<WalkPoint>),
    /// Points of one geometry-validation curve.
    GeometryPoints(Vec<GeometryPoint>),
    /// A monitored-application trace.
    Trace(MonitorTrace),
    /// An engine run report.
    Report(RunReport),
    /// A fault-robustness cell.
    FaultCell(FaultCell),
    /// A thread-lifecycle chaos cell.
    ChaosCell(ChaosCell),
    /// `(observed, predicted)` footprints of an invalidation cell.
    Invalidation {
        /// Ground-truth resident lines after the remote writes.
        observed: u64,
        /// What the counter-driven model still predicts.
        predicted: u64,
    },
    /// A priority-update cost measurement.
    UpdateCost {
        /// Floating-point operations per update.
        flops: u64,
        /// Table lookups per update.
        lookups: u64,
        /// Measured wall-clock nanoseconds per update (stdout only —
        /// never written to CSV, to keep artifacts deterministic).
        ns_per_op: f64,
    },
    /// A traced run's aggregated trace metrics (boxed: the histograms
    /// make it by far the largest payload).
    TraceSummary(Box<locality_trace::TraceSummary>),
    /// A model-checking exploration summary.
    ModelCheck(McCell),
}

/// Simulated E-cache misses a run performed (for the throughput stats).
fn sim_misses(out: &RunOutput) -> u64 {
    match out {
        RunOutput::Points(points) => points.last().map_or(0, |p| p.misses),
        RunOutput::Trace(trace) => trace.samples.last().map_or(0, |s| s.misses),
        RunOutput::Report(report) => report.total_l2_misses,
        RunOutput::FaultCell(cell) => cell.report.total_l2_misses,
        RunOutput::ChaosCell(cell) => cell.report.total_l2_misses,
        RunOutput::GeometryPoints(points) => points.last().map_or(0, |p| p.misses),
        RunOutput::Invalidation { .. }
        | RunOutput::UpdateCost { .. }
        | RunOutput::TraceSummary(_)
        | RunOutput::ModelCheck(_) => 0,
    }
}

/// Executes one descriptor from scratch. Everything the run touches is
/// built inside this call, so it is safe to dispatch from any thread.
///
/// # Errors
///
/// Propagates the underlying engine/model error.
pub fn execute(kind: &RunKind) -> Result<RunOutput, ReproError> {
    match *kind {
        RunKind::Walk(exp) => Ok(RunOutput::Points(microbench::run(&exp))),
        RunKind::Geometry(exp) => Ok(RunOutput::GeometryPoints(geometry::run(&exp))),
        RunKind::Monitor { app, placement, seed } => {
            Ok(RunOutput::Trace(monitor::monitor_app_seeded(app, placement.to_sim(), seed)?))
        }
        RunKind::Policy { app, policy, cpus, scale } => {
            Ok(RunOutput::Report(perf::run_cell(app, policy.to_sched(), cpus, scale)?))
        }
        RunKind::Threshold { threshold_lines, scale } => {
            Ok(RunOutput::Report(experiments::threshold_cell(threshold_lines, scale)?))
        }
        RunKind::PlacementProbe { app, placement } => {
            Ok(RunOutput::Report(experiments::placement_cell(app, placement.to_sim())?))
        }
        RunKind::Invalidation { written_lines } => {
            let (observed, predicted) = experiments::invalidation_cell(written_lines);
            Ok(RunOutput::Invalidation { observed, predicted })
        }
        RunKind::Pipeline { policy, annotate, infer, scale } => Ok(RunOutput::Report(
            experiments::pipeline_cell(policy.to_sched(), annotate, infer, scale)?,
        )),
        RunKind::Fault { policy, scenario, scale } => {
            Ok(RunOutput::FaultCell(experiments::fault_cell(policy.to_sched(), scenario, scale)?))
        }
        RunKind::Chaos { policy, scenario, scale } => {
            Ok(RunOutput::ChaosCell(experiments::chaos_cell(policy.to_sched(), scenario, scale)?))
        }
        RunKind::UpdateCost { policy, case } => {
            let (flops, lookups, ns_per_op) = experiments::update_cost_cell(policy, case);
            Ok(RunOutput::UpdateCost { flops, lookups, ns_per_op })
        }
        RunKind::TraceMetrics { app, policy, seed } => Ok(RunOutput::TraceSummary(Box::new(
            crate::trace::trace_metrics_cell(app, policy, seed)?,
        ))),
        RunKind::ModelCheck { workload, naive, depth_bound, max_schedules, preempt_bound } => {
            Ok(RunOutput::ModelCheck(crate::modelcheck::modelcheck_cell(
                workload,
                naive,
                depth_bound,
                max_schedules,
                preempt_bound,
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Wire format: a plain-text encoding of RunOutput for the disk cache.
// Floats travel as their IEEE-754 bit patterns in hex so every value
// round-trips exactly — the byte-identical-CSV invariant depends on it.

fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn dec_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn encode_report(out: &mut String, r: &RunReport) {
    out.push_str(&format!("report {}\n", r.policy));
    out.push_str(&format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        r.cpus,
        r.total_cycles,
        r.total_l2_misses,
        r.total_l2_refs,
        r.total_instructions,
        r.context_switches,
        r.threads_completed,
        r.threads_aborted,
        r.steals,
        r.priority_flops.0,
        r.priority_flops.1,
        r.degraded_intervals,
        r.corrected_intervals
    ));
}

fn decode_report<'a, I: Iterator<Item = &'a str>>(lines: &mut I) -> Option<RunReport> {
    let policy = lines.next()?.strip_prefix("report ")?.to_string();
    let nums: Vec<u64> = lines.next()?.split(' ').map(str::parse).collect::<Result<_, _>>().ok()?;
    if nums.len() != 13 {
        return None;
    }
    Some(RunReport {
        policy,
        cpus: usize::try_from(nums[0]).ok()?,
        total_cycles: nums[1],
        total_l2_misses: nums[2],
        total_l2_refs: nums[3],
        total_instructions: nums[4],
        context_switches: nums[5],
        threads_completed: nums[6],
        threads_aborted: nums[7],
        steals: nums[8],
        priority_flops: (nums[9], nums[10]),
        degraded_intervals: nums[11],
        corrected_intervals: nums[12],
        // Per-processor breakdowns are not cached; no figure consumes
        // them and they would dominate the entry size.
        per_cpu: Vec::new(),
    })
}

/// Serializes a run result for the disk cache.
fn encode(out: &RunOutput) -> String {
    let mut s = String::new();
    match out {
        RunOutput::Points(points) => {
            s.push_str(&format!("points {}\n", points.len()));
            for p in points {
                s.push_str(&format!(
                    "{} {} {}\n",
                    p.misses,
                    enc_f64(p.observed),
                    enc_f64(p.predicted)
                ));
            }
        }
        RunOutput::GeometryPoints(points) => {
            s.push_str(&format!("gpoints {}\n", points.len()));
            for p in points {
                s.push_str(&format!(
                    "{} {} {} {}\n",
                    p.misses,
                    enc_f64(p.observed),
                    enc_f64(p.closed_form),
                    enc_f64(p.per_set)
                ));
            }
        }
        RunOutput::Trace(trace) => {
            s.push_str(&format!("trace {}\n", trace.samples.len()));
            for p in &trace.samples {
                s.push_str(&format!(
                    "{} {} {} {}\n",
                    p.misses,
                    p.instructions,
                    enc_f64(p.observed),
                    enc_f64(p.predicted)
                ));
            }
        }
        RunOutput::Report(r) => encode_report(&mut s, r),
        RunOutput::FaultCell(cell) => {
            s.push_str(&format!(
                "fault {} {} {} {}\n",
                u8::from(cell.recovered),
                enc_f64(cell.probe.sum_abs_err),
                enc_f64(cell.probe.sum_observed),
                cell.probe.samples
            ));
            encode_report(&mut s, &cell.report);
        }
        RunOutput::ChaosCell(cell) => {
            s.push_str(&format!(
                "chaos {} {} {} {}\n",
                cell.poisoned,
                enc_f64(cell.probe.sum_abs_err),
                enc_f64(cell.probe.sum_observed),
                cell.probe.samples
            ));
            encode_report(&mut s, &cell.report);
        }
        RunOutput::Invalidation { observed, predicted } => {
            s.push_str(&format!("inval {observed} {predicted}\n"));
        }
        RunOutput::UpdateCost { flops, lookups, ns_per_op } => {
            s.push_str(&format!("cost {flops} {lookups} {}\n", enc_f64(*ns_per_op)));
        }
        RunOutput::TraceSummary(t) => {
            s.push_str(&format!(
                "tsum {} {} {} {} {} {} {} {}\n",
                t.events,
                t.intervals,
                t.dropped,
                t.mode_transitions,
                enc_f64(t.abs_err_mean),
                t.abs_err_samples,
                enc_f64(t.rel_err_mean),
                t.rel_err_samples
            ));
            for hist in [&t.miss_hist, &t.depth_hist, &t.fanout_hist, &t.abs_err_hist] {
                let cells: Vec<String> = hist.iter().map(u64::to_string).collect();
                s.push_str(&cells.join(" "));
                s.push('\n');
            }
        }
        RunOutput::ModelCheck(cell) => {
            let ce_lines = cell.counterexample.as_deref().map_or(0, |t| t.lines().count());
            s.push_str(&format!(
                "mc {} {} {} {} {} {} {} {} {} {ce_lines}\n",
                cell.schedules,
                cell.pruned,
                cell.truncated,
                u8::from(cell.capped),
                cell.max_depth,
                cell.races,
                cell.deadlocks,
                cell.stalls,
                cell.invariants
            ));
            if let Some(text) = &cell.counterexample {
                for line in text.lines() {
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
    }
    s
}

fn decode_hist<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
) -> Option<[u64; locality_trace::HIST_BUCKETS]> {
    let nums: Vec<u64> = lines.next()?.split(' ').map(str::parse).collect::<Result<_, _>>().ok()?;
    nums.try_into().ok()
}

/// Deserializes a cached payload, using the descriptor for context
/// (e.g. the static app name of a trace). `None` means the entry is
/// unreadable and the run is simply repeated.
fn decode(kind: &RunKind, payload: &str) -> Option<RunOutput> {
    let mut lines = payload.lines();
    match kind {
        RunKind::Walk(_) => {
            let n: usize = lines.next()?.strip_prefix("points ")?.parse().ok()?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let mut it = lines.next()?.split(' ');
                points.push(WalkPoint {
                    misses: it.next()?.parse().ok()?,
                    observed: dec_f64(it.next()?)?,
                    predicted: dec_f64(it.next()?)?,
                });
            }
            Some(RunOutput::Points(points))
        }
        RunKind::Geometry(_) => {
            let n: usize = lines.next()?.strip_prefix("gpoints ")?.parse().ok()?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let mut it = lines.next()?.split(' ');
                points.push(GeometryPoint {
                    misses: it.next()?.parse().ok()?,
                    observed: dec_f64(it.next()?)?,
                    closed_form: dec_f64(it.next()?)?,
                    per_set: dec_f64(it.next()?)?,
                });
            }
            Some(RunOutput::GeometryPoints(points))
        }
        RunKind::Monitor { app, .. } => {
            let n: usize = lines.next()?.strip_prefix("trace ")?.parse().ok()?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let mut it = lines.next()?.split(' ');
                samples.push(Sample {
                    misses: it.next()?.parse().ok()?,
                    instructions: it.next()?.parse().ok()?,
                    observed: dec_f64(it.next()?)?,
                    predicted: dec_f64(it.next()?)?,
                });
            }
            Some(RunOutput::Trace(MonitorTrace { app: app.name(), samples }))
        }
        RunKind::Policy { .. }
        | RunKind::Threshold { .. }
        | RunKind::PlacementProbe { .. }
        | RunKind::Pipeline { .. } => Some(RunOutput::Report(decode_report(&mut lines)?)),
        RunKind::Fault { .. } => {
            let mut it = lines.next()?.strip_prefix("fault ")?.split(' ');
            let recovered = it.next()? == "1";
            let probe = PredictionProbe {
                sum_abs_err: dec_f64(it.next()?)?,
                sum_observed: dec_f64(it.next()?)?,
                samples: it.next()?.parse().ok()?,
            };
            let report = decode_report(&mut lines)?;
            Some(RunOutput::FaultCell(FaultCell { report, probe, recovered }))
        }
        RunKind::Chaos { .. } => {
            let mut it = lines.next()?.strip_prefix("chaos ")?.split(' ');
            let poisoned = it.next()?.parse().ok()?;
            let probe = PredictionProbe {
                sum_abs_err: dec_f64(it.next()?)?,
                sum_observed: dec_f64(it.next()?)?,
                samples: it.next()?.parse().ok()?,
            };
            let report = decode_report(&mut lines)?;
            Some(RunOutput::ChaosCell(ChaosCell { report, probe, poisoned }))
        }
        RunKind::Invalidation { .. } => {
            let mut it = lines.next()?.strip_prefix("inval ")?.split(' ');
            Some(RunOutput::Invalidation {
                observed: it.next()?.parse().ok()?,
                predicted: it.next()?.parse().ok()?,
            })
        }
        RunKind::UpdateCost { .. } => {
            let mut it = lines.next()?.strip_prefix("cost ")?.split(' ');
            Some(RunOutput::UpdateCost {
                flops: it.next()?.parse().ok()?,
                lookups: it.next()?.parse().ok()?,
                ns_per_op: dec_f64(it.next()?)?,
            })
        }
        RunKind::TraceMetrics { .. } => {
            let mut it = lines.next()?.strip_prefix("tsum ")?.split(' ');
            let events = it.next()?.parse().ok()?;
            let intervals = it.next()?.parse().ok()?;
            let dropped = it.next()?.parse().ok()?;
            let mode_transitions = it.next()?.parse().ok()?;
            let abs_err_mean = dec_f64(it.next()?)?;
            let abs_err_samples = it.next()?.parse().ok()?;
            let rel_err_mean = dec_f64(it.next()?)?;
            let rel_err_samples = it.next()?.parse().ok()?;
            Some(RunOutput::TraceSummary(Box::new(locality_trace::TraceSummary {
                events,
                intervals,
                dropped,
                mode_transitions,
                miss_hist: decode_hist(&mut lines)?,
                depth_hist: decode_hist(&mut lines)?,
                fanout_hist: decode_hist(&mut lines)?,
                abs_err_hist: decode_hist(&mut lines)?,
                abs_err_mean,
                abs_err_samples,
                rel_err_mean,
                rel_err_samples,
            })))
        }
        RunKind::ModelCheck { .. } => {
            let mut it = lines.next()?.strip_prefix("mc ")?.split(' ');
            let schedules = it.next()?.parse().ok()?;
            let pruned = it.next()?.parse().ok()?;
            let truncated = it.next()?.parse().ok()?;
            let capped = it.next()? == "1";
            let max_depth = it.next()?.parse().ok()?;
            let races = it.next()?.parse().ok()?;
            let deadlocks = it.next()?.parse().ok()?;
            let stalls = it.next()?.parse().ok()?;
            let invariants = it.next()?.parse().ok()?;
            let ce_lines: usize = it.next()?.parse().ok()?;
            let counterexample = if ce_lines == 0 {
                None
            } else {
                let mut text = String::new();
                for _ in 0..ce_lines {
                    text.push_str(lines.next()?);
                    text.push('\n');
                }
                Some(text)
            };
            Some(RunOutput::ModelCheck(McCell {
                schedules,
                pruned,
                truncated,
                capped,
                max_depth,
                races,
                deadlocks,
                stalls,
                invariants,
                counterexample,
            }))
        }
    }
}

// ---------------------------------------------------------------------
// Disk cache.

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.run", fnv1a(key)))
    }

    /// Loads a cached result. `Ok(None)` is a clean miss (no entry, or
    /// an FNV key collision); [`ReproError::CorruptCache`] means the
    /// entry existed but failed its checksum or decode — it has been
    /// quarantined (renamed to `.quarantine`) so the recomputed result
    /// can land fresh, and the caller recomputes after logging.
    fn load(&self, key: &str, kind: &RunKind) -> Result<Option<RunOutput>, ReproError> {
        let path = self.entry_path(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(None);
        };
        let corrupt = |what: &str| {
            let quarantined = path.with_extension("quarantine");
            // Best effort: if the rename fails, the fresh store below
            // simply overwrites the bad entry.
            let _ = std::fs::rename(&path, &quarantined);
            ReproError::CorruptCache { quarantined, what: what.to_string() }
        };
        let Some((first, rest)) = text.split_once('\n') else {
            return Err(corrupt("truncated header"));
        };
        if first != key {
            return Ok(None);
        }
        let Some((sum_line, payload)) = rest.split_once('\n') else {
            return Err(corrupt("missing checksum line"));
        };
        let Some(expected) = sum_line.strip_prefix("sha256 ") else {
            return Err(corrupt("malformed checksum line"));
        };
        if digest::hex(payload.as_bytes()) != expected {
            return Err(corrupt("payload checksum mismatch"));
        }
        match decode(kind, payload) {
            Some(out) => Ok(Some(out)),
            None => Err(corrupt("undecodable payload")),
        }
    }

    /// Stores a result atomically (temp file + rename), so concurrent
    /// invocations sharing this directory never read torn entries; the
    /// embedded SHA-256 lets `load` reject anything that still lands
    /// damaged (partial disk, bit rot).
    fn store(&self, key: &str, out: &RunOutput) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        let payload = encode(out);
        let checksum = digest::hex(payload.as_bytes());
        std::fs::write(&tmp, format!("{key}\nsha256 {checksum}\n{payload}"))?;
        std::fs::rename(&tmp, &path)
    }
}

// ---------------------------------------------------------------------
// Guarded execution: panic isolation, watchdog, bounded retry.

/// Per-run isolation policy: how panics, hangs, and flaky failures are
/// contained so one bad descriptor cannot tear down a whole suite.
#[derive(Debug, Clone)]
pub struct GuardPolicy {
    /// Watchdog timeout per attempt. `None` disables the watchdog and
    /// runs the descriptor on the calling worker thread (panic
    /// isolation still applies).
    pub timeout: Option<Duration>,
    /// Additional attempts after a panicked or timed-out run.
    pub retries: u32,
    /// Base backoff between attempts (scaled by the attempt number).
    pub backoff: Duration,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            timeout: Some(Duration::from_secs(600)),
            retries: 1,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Renders a panic payload the way the default hook would.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one descriptor with panics converted to
/// [`ReproError::RunPanicked`]. Every run builds its state privately,
/// so unwinding cannot leave shared state torn (`AssertUnwindSafe` is
/// sound here).
fn execute_isolated(kind: &RunKind) -> Result<RunOutput, ReproError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(kind))) {
        Ok(res) => res,
        Err(payload) => Err(ReproError::RunPanicked { what: panic_message(payload.as_ref()) }),
    }
}

/// Runs one descriptor on a watchdog thread; a run that outlives
/// `timeout` is abandoned (Rust threads cannot be killed — it finishes
/// in the background) and reported as [`ReproError::RunTimedOut`].
fn execute_watched(kind: RunKind, timeout: Duration) -> Result<RunOutput, ReproError> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(execute_isolated(&kind));
    });
    match rx.recv_timeout(timeout) {
        Ok(res) => res,
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            Err(ReproError::RunTimedOut { after: timeout })
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            Err(ReproError::RunPanicked { what: "worker vanished before reporting".to_string() })
        }
    }
}

/// Executes one descriptor under `guard`: panic isolation, watchdog
/// timeout, and bounded retry with linear backoff. Only panics and
/// timeouts are retried — typed engine/model errors are deterministic
/// and surface immediately.
///
/// # Errors
///
/// Propagates the underlying error, or [`ReproError::RunPanicked`] /
/// [`ReproError::RunTimedOut`] once the retry budget is spent.
pub fn execute_guarded(kind: &RunKind, guard: &GuardPolicy) -> Result<RunOutput, ReproError> {
    let mut attempt = 0u32;
    loop {
        let res = match guard.timeout {
            Some(timeout) => execute_watched(*kind, timeout),
            None => execute_isolated(kind),
        };
        match res {
            Err(e @ (ReproError::RunPanicked { .. } | ReproError::RunTimedOut { .. }))
                if attempt < guard.retries =>
            {
                attempt += 1;
                eprintln!("[guard] {e}; retrying ({attempt}/{})", guard.retries);
                std::thread::sleep(guard.backoff * attempt);
            }
            other => return other,
        }
    }
}

// ---------------------------------------------------------------------
// The runner.

/// Instrumentation for one completed run.
#[derive(Debug, Clone)]
pub struct RunStat {
    /// The request's label.
    pub label: String,
    /// Wall-clock time of the run (zero when served from cache).
    pub wall: Duration,
    /// Simulated E-cache misses the run performed.
    pub sim_misses: u64,
    /// Whether the result came from the disk cache.
    pub cached: bool,
}

/// Runner configuration, usually derived from [`Args`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads.
    pub jobs: usize,
    /// Cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Panic/timeout isolation policy for individual runs.
    pub guard: GuardPolicy,
}

/// The parallel, cached experiment runner.
pub struct Runner {
    jobs: usize,
    cache: Option<DiskCache>,
    guard: GuardPolicy,
    stats: Mutex<Vec<RunStat>>,
}

impl Runner {
    /// Creates a runner.
    pub fn new(config: RunnerConfig) -> Self {
        Runner {
            jobs: config.jobs.max(1),
            cache: config.cache_dir.map(|dir| DiskCache { dir }),
            guard: config.guard,
            stats: Mutex::new(Vec::new()),
        }
    }

    /// A runner honouring `--jobs` and `--no-cache`; the cache lives
    /// under `<out>/.cache` next to the CSVs it accelerates.
    pub fn from_args(args: &Args) -> Self {
        Runner::new(RunnerConfig {
            jobs: args.jobs,
            cache_dir: (!args.no_cache).then(|| args.out.join(".cache")),
            guard: GuardPolicy::default(),
        })
    }

    /// The worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every request (deduplicating identical descriptors) and
    /// returns the results **in request order**, which is what keeps
    /// output byte-identical across `--jobs` values.
    ///
    /// # Errors
    ///
    /// Returns the first failing run's error (first in request order).
    pub fn run_all(&self, reqs: &[RunRequest]) -> Result<Vec<RunOutput>, ReproError> {
        let keys: Vec<String> = reqs.iter().map(|r| cache_key(&r.kind)).collect();
        // One slot per distinct descriptor, first occurrence wins.
        let mut first_of: HashMap<&str, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            first_of.entry(key).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
        }
        let slots: Vec<Mutex<Option<Result<RunOutput, ReproError>>>> =
            unique.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(unique.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    if u >= unique.len() {
                        break;
                    }
                    let i = unique[u];
                    let res = self.run_one(&reqs[i], &keys[i]);
                    *slots[u].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(res);
                });
            }
        });
        // Reassemble in request order; surface the earliest error.
        let mut done: Vec<Option<RunOutput>> = Vec::with_capacity(unique.len());
        for (u, slot) in slots.into_iter().enumerate() {
            let res = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .ok_or_else(|| ReproError::MissingResult(keys[unique[u]].clone()))?;
            done.push(Some(res?));
        }
        keys.iter()
            .map(|key| {
                let slot = first_of[key.as_str()];
                done[slot].as_ref().cloned().ok_or_else(|| ReproError::MissingResult(key.clone()))
            })
            .collect()
    }

    fn run_one(&self, req: &RunRequest, key: &str) -> Result<RunOutput, ReproError> {
        if let Some(cache) = &self.cache {
            match cache.load(key, &req.kind) {
                Ok(Some(out)) => {
                    self.push_stat(RunStat {
                        label: req.label.clone(),
                        wall: Duration::ZERO,
                        sim_misses: sim_misses(&out),
                        cached: true,
                    });
                    return Ok(out);
                }
                Ok(None) => {}
                // Quarantined; recompute and store a fresh entry.
                Err(e) => eprintln!("[cache] {}: {e}", req.label),
            }
        }
        let start = Instant::now();
        let out = execute_guarded(&req.kind, &self.guard)?;
        let wall = start.elapsed();
        if let Some(cache) = &self.cache {
            // A failing cache write must not kill the suite; the result
            // is in hand and only re-invocation speed is lost.
            if let Err(e) = cache.store(key, &out) {
                eprintln!("[cache] could not store {}: {e}", req.label);
            }
        }
        self.push_stat(RunStat {
            label: req.label.clone(),
            wall,
            sim_misses: sim_misses(&out),
            cached: false,
        });
        Ok(out)
    }

    fn stats(&self) -> std::sync::MutexGuard<'_, Vec<RunStat>> {
        self.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push_stat(&self, stat: RunStat) {
        self.stats().push(stat);
    }

    /// Runs executed fresh so far.
    pub fn fresh_runs(&self) -> usize {
        self.stats().iter().filter(|s| !s.cached).count()
    }

    /// Runs served from the disk cache so far.
    pub fn cached_runs(&self) -> usize {
        self.stats().iter().filter(|s| s.cached).count()
    }

    /// The per-run instrumentation table: wall time and simulated-miss
    /// throughput per run, plus a totals row. Wall times are
    /// nondeterministic, so this table is printed, never written to CSV.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] if a row cannot be appended.
    pub fn summary(&self) -> Result<Table, TableError> {
        let mut stats = self.stats().clone();
        stats.sort_by(|a, b| a.label.cmp(&b.label));
        let mut t = Table::new(
            &format!(
                "runner — {} jobs, {} fresh, {} cached",
                self.jobs,
                self.fresh_runs(),
                self.cached_runs()
            ),
            &["run", "source", "wall ms", "sim misses", "sim misses/sec"],
        );
        let rate = |misses: u64, wall: Duration| -> String {
            let secs = wall.as_secs_f64();
            if secs > 0.0 {
                format!("{:.0}", misses as f64 / secs)
            } else {
                "-".to_string()
            }
        };
        for s in &stats {
            t.row(&[
                s.label.clone(),
                if s.cached { "cache" } else { "run" }.to_string(),
                format!("{:.1}", s.wall.as_secs_f64() * 1e3),
                s.sim_misses.to_string(),
                if s.cached { "-".to_string() } else { rate(s.sim_misses, s.wall) },
            ])?;
        }
        let total_wall: Duration = stats.iter().map(|s| s.wall).sum();
        let fresh_misses: u64 = stats.iter().filter(|s| !s.cached).map(|s| s.sim_misses).sum();
        let total_misses: u64 = stats.iter().map(|s| s.sim_misses).sum();
        t.row(&[
            "total".to_string(),
            format!("{} runs", stats.len()),
            format!("{:.1}", total_wall.as_secs_f64() * 1e3),
            total_misses.to_string(),
            rate(fresh_misses, total_wall),
        ])?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench::Monitored;

    fn walk_req(seed: u64) -> RunRequest {
        RunRequest::new(
            format!("walk-{seed}"),
            RunKind::Walk(WalkExperiment::direct(Monitored::Walker { s0: 0.0 }, 2_000, 500, seed)),
        )
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(""), 0xcbf29ce484222325);
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }

    #[test]
    fn cache_keys_distinguish_descriptors() {
        let a = cache_key(&walk_req(1).kind);
        let b = cache_key(&walk_req(2).kind);
        assert_ne!(a, b);
        assert_eq!(a, cache_key(&walk_req(1).kind));
        assert!(a.contains("wire"));
    }

    #[test]
    fn wire_round_trips_every_variant() {
        let outs: Vec<(RunKind, RunOutput)> = vec![
            (
                walk_req(1).kind,
                RunOutput::Points(vec![
                    WalkPoint { misses: 3, observed: 1.5, predicted: 0.1 },
                    WalkPoint { misses: 9, observed: f64::MAX, predicted: -0.0 },
                ]),
            ),
            (
                RunKind::Geometry(GeometryExperiment {
                    monitored: crate::microbench::Monitored::Walker { s0: 0.0 },
                    sets: 1024,
                    ways: 8,
                    page_bytes: 8192,
                    total_misses: 100,
                    sample_every: 50,
                    seed: 3,
                }),
                RunOutput::GeometryPoints(vec![
                    GeometryPoint { misses: 0, observed: 0.0, closed_form: 0.0, per_set: 0.0 },
                    GeometryPoint { misses: 50, observed: 48.0, closed_form: 49.7, per_set: 49.9 },
                ]),
            ),
            (
                RunKind::Monitor { app: App::Merge, placement: Placement::BinHopping, seed: 7 },
                RunOutput::Trace(MonitorTrace {
                    app: "merge",
                    samples: vec![Sample {
                        misses: 1,
                        instructions: 2,
                        observed: 3.25,
                        predicted: 4.5,
                    }],
                }),
            ),
            (
                RunKind::Invalidation { written_lines: 4 },
                RunOutput::Invalidation { observed: 10, predicted: 12 },
            ),
            (
                RunKind::UpdateCost { policy: PolicyKind::Lff, case: CostCase::Blocking },
                RunOutput::UpdateCost { flops: 5, lookups: 1, ns_per_op: 12.75 },
            ),
            (
                RunKind::TraceMetrics { app: App::Merge, policy: PolicyId::Lff, seed: 12 },
                RunOutput::TraceSummary(Box::new({
                    let mut miss_hist = [0u64; locality_trace::HIST_BUCKETS];
                    miss_hist[3] = 17;
                    locality_trace::TraceSummary {
                        events: 100,
                        intervals: 20,
                        dropped: 2,
                        mode_transitions: 1,
                        miss_hist,
                        depth_hist: [1; locality_trace::HIST_BUCKETS],
                        fanout_hist: [0; locality_trace::HIST_BUCKETS],
                        abs_err_hist: [2; locality_trace::HIST_BUCKETS],
                        abs_err_mean: 3.5,
                        abs_err_samples: 20,
                        rel_err_mean: -0.0625,
                        rel_err_samples: 18,
                    }
                })),
            ),
        ];
        for (kind, out) in &outs {
            let wire = encode(out);
            let back = decode(kind, &wire).expect("round trip");
            assert_eq!(encode(&back), wire, "{kind:?}");
        }
    }

    #[test]
    fn wire_round_trips_reports_and_fault_cells() {
        let report = RunReport {
            policy: "lff".to_string(),
            cpus: 4,
            total_cycles: 10,
            total_l2_misses: 20,
            total_l2_refs: 30,
            total_instructions: 40,
            context_switches: 50,
            threads_completed: 60,
            threads_aborted: 65,
            steals: 70,
            priority_flops: (80, 90),
            degraded_intervals: 1,
            corrected_intervals: 2,
            per_cpu: Vec::new(),
        };
        let kind = RunKind::Policy {
            app: PerfApp::Tasks,
            policy: PolicyId::Lff,
            cpus: 4,
            scale: Scale::Small,
        };
        let wire = encode(&RunOutput::Report(report.clone()));
        let back = decode(&kind, &wire).expect("report round trip");
        assert_eq!(encode(&back), wire);

        let cell = FaultCell {
            report,
            probe: PredictionProbe { sum_abs_err: 1.25, sum_observed: 2.5, samples: 3 },
            recovered: true,
        };
        let kind = RunKind::Fault {
            policy: PolicyId::Lff,
            scenario: FaultScenario::Window,
            scale: Scale::Small,
        };
        let wire = encode(&RunOutput::FaultCell(cell));
        let back = decode(&kind, &wire).expect("fault round trip");
        assert_eq!(encode(&back), wire);
    }

    #[test]
    fn corrupt_cache_entries_miss_instead_of_misparsing() {
        let kind = walk_req(1).kind;
        assert!(decode(&kind, "points zero\n").is_none());
        assert!(decode(&kind, "trace 1\n1 2 0 0\n").is_none());
        assert!(decode(&kind, "").is_none());
    }

    #[test]
    fn run_all_dedupes_and_orders() {
        let dir = std::env::temp_dir().join(format!("repro-runner-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runner = Runner::new(RunnerConfig {
            jobs: 4,
            cache_dir: Some(dir.join("cache")),
            guard: GuardPolicy::default(),
        });
        // Two distinct walks, with the first repeated: 3 requests, 2 runs.
        let reqs = vec![walk_req(1), walk_req(2), walk_req(1)];
        let outs = runner.run_all(&reqs).expect("walks succeed");
        assert_eq!(outs.len(), 3);
        assert_eq!(runner.fresh_runs(), 2, "duplicate descriptor must not run twice");
        let (first, third) = (&outs[0], &outs[2]);
        let (RunOutput::Points(a), RunOutput::Points(b)) = (first, third) else {
            panic!("walks return points");
        };
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "shared descriptor, same result");

        // A second runner over the same cache dir does zero fresh runs
        // and returns identical results.
        let runner2 = Runner::new(RunnerConfig {
            jobs: 1,
            cache_dir: Some(dir.join("cache")),
            guard: GuardPolicy::default(),
        });
        let outs2 = runner2.run_all(&reqs).expect("cached walks succeed");
        assert_eq!(runner2.fresh_runs(), 0);
        // Stats count unique executions (the duplicate request shares
        // its twin's cache entry without a separate load).
        assert_eq!(runner2.cached_runs(), 2);
        let RunOutput::Points(a2) = &outs2[0] else { panic!("points") };
        let RunOutput::Points(a1) = &outs[0] else { panic!("points") };
        assert!(a1.iter().zip(a2.iter()).all(|(x, y)| x == y), "cache round trip is exact");
        assert!(runner2.summary().unwrap().render().contains("cache"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_runner_reruns() {
        let runner =
            Runner::new(RunnerConfig { jobs: 2, cache_dir: None, guard: GuardPolicy::default() });
        let reqs = vec![walk_req(3)];
        runner.run_all(&reqs).expect("walk succeeds");
        runner.run_all(&reqs).expect("walk succeeds");
        assert_eq!(runner.fresh_runs(), 2);
        assert_eq!(runner.cached_runs(), 0);
    }

    #[test]
    fn wire_round_trips_chaos_cells() {
        let cell = experiments::ChaosCell {
            report: RunReport {
                policy: "crt".to_string(),
                cpus: 4,
                total_cycles: 11,
                total_l2_misses: 22,
                total_l2_refs: 33,
                total_instructions: 44,
                context_switches: 55,
                threads_completed: 66,
                threads_aborted: 7,
                steals: 88,
                priority_flops: (9, 10),
                degraded_intervals: 0,
                corrected_intervals: 0,
                per_cpu: Vec::new(),
            },
            probe: PredictionProbe { sum_abs_err: 3.5, sum_observed: 7.25, samples: 4 },
            poisoned: 2,
        };
        let kind = RunKind::Chaos {
            policy: PolicyId::Crt,
            scenario: ChaosScenario::AbortLocked,
            scale: Scale::Small,
        };
        let wire = encode(&RunOutput::ChaosCell(cell));
        let back = decode(&kind, &wire).expect("chaos round trip");
        assert_eq!(encode(&back), wire);
    }

    #[test]
    fn corrupted_entry_is_quarantined_then_recomputed() {
        let dir = std::env::temp_dir().join(format!("repro-quarantine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_dir = dir.join("cache");
        let config = RunnerConfig {
            jobs: 1,
            cache_dir: Some(cache_dir.clone()),
            guard: GuardPolicy::default(),
        };
        let reqs = vec![walk_req(9)];
        let outs = Runner::new(config.clone()).run_all(&reqs).expect("walk succeeds");

        // Flip payload bytes behind the checksum's back.
        let cache = DiskCache { dir: cache_dir.clone() };
        let key = cache_key(&reqs[0].kind);
        let path = cache.entry_path(&key);
        let mut text = std::fs::read_to_string(&path).expect("entry exists");
        text.truncate(text.len() - 8);
        text.push_str("garbage\n");
        std::fs::write(&path, text).expect("rewrite entry");
        let err = cache.load(&key, &reqs[0].kind).expect_err("checksum must fail");
        let ReproError::CorruptCache { quarantined, what } = &err else {
            panic!("expected CorruptCache, got {err:?}");
        };
        assert!(what.contains("checksum"));
        assert!(quarantined.exists(), "bad entry moved aside");
        assert!(!path.exists(), "bad entry no longer served");

        // A fresh runner over the damaged cache recomputes and re-stores
        // the identical result instead of erroring or misparsing.
        let runner = Runner::new(config);
        let outs2 = runner.run_all(&reqs).expect("recompute succeeds");
        assert_eq!(runner.fresh_runs(), 1);
        assert_eq!(encode(&outs[0]), encode(&outs2[0]));
        assert!(path.exists(), "fresh entry stored after quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn guard_times_out_and_retries_then_reports() {
        let guard = GuardPolicy {
            timeout: Some(Duration::from_micros(1)),
            retries: 1,
            backoff: Duration::ZERO,
        };
        // A full chaos cell takes hundreds of milliseconds — it cannot
        // beat a one-microsecond watchdog, so both attempts time out.
        let kind = RunKind::Chaos {
            policy: PolicyId::Lff,
            scenario: ChaosScenario::Churn,
            scale: Scale::Small,
        };
        let err = execute_guarded(&kind, &guard).expect_err("watchdog must fire");
        assert!(matches!(err, ReproError::RunTimedOut { .. }), "got {err:?}");
    }

    #[test]
    fn panic_messages_are_preserved() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("dynamic boom"));
        assert_eq!(panic_message(payload.as_ref()), "dynamic boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(payload.as_ref()), "opaque panic payload");
    }
}
