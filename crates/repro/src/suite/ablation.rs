//! The §5/§3 ablations, each expressed as runner descriptors:
//!
//! 1. **Annotation ablation** (photo, 8 cpus);
//! 2. **Threshold sweep** (heap-eviction threshold);
//! 3. **Page placement** (§3.1);
//! 4. **Invalidation effects** (§3.4);
//! 5. **Runtime sharing inference** (§7 future work);
//! 6. **Counter-fault robustness** (`--fault <scenario>|all` runs *only*
//!    this table);
//! 7. **Thread-lifecycle chaos** (`--chaos <scenario>|all` runs *only*
//!    this table): every policy under seeded thread aborts, deaths while
//!    holding locks, and spawn failures — the run must complete, account
//!    for every thread, and keep footprint predictions sane.

use crate::args::{Args, Scale};
use crate::chaos::ChaosScenario;
use crate::error::ReproError;
use crate::faults::FaultScenario;
use crate::runner::{Placement, PolicyId, RunKind, RunRequest};
use crate::suite::ResultSet;
use crate::table::Table;
use locality_workloads::App;

const THRESHOLDS: [u64; 5] = [1, 8, 64, 256, 1024];
const PLACEMENT_APPS: [App; 2] = [App::Typechecker, App::Raytrace];
const PLACEMENTS: [Placement; 3] =
    [Placement::BinHopping, Placement::PageColoring, Placement::Arbitrary];
const INVALIDATION_WRITES: [u64; 4] = [0, 1024, 2048, 4096];
/// The inference-ablation configurations: `(label, policy, annotate,
/// infer)`.
const PIPELINE_CONFIGS: [(&str, PolicyId, bool, bool); 4] = [
    ("fcfs", PolicyId::Fcfs, false, false),
    ("lff + hand annotations", PolicyId::Lff, true, false),
    ("lff + CML inference, no annotations", PolicyId::Lff, false, true),
    ("lff, no annotations", PolicyId::Lff, false, false),
];

fn annotation_kinds(scale: Scale) -> [RunKind; 3] {
    [PolicyId::Fcfs, PolicyId::Lff, PolicyId::LffNoAnnotations].map(|policy| RunKind::Policy {
        app: crate::perf::PerfApp::Photo,
        policy,
        cpus: 8,
        scale,
    })
}

fn pipeline_kind(policy: PolicyId, annotate: bool, infer: bool, scale: Scale) -> RunKind {
    RunKind::Pipeline { policy, annotate, infer, scale }
}

fn fault_kind(policy: PolicyId, scenario: FaultScenario, scale: Scale) -> RunKind {
    RunKind::Fault { policy, scenario, scale }
}

fn fault_scenarios(args: &Args) -> Result<Option<Vec<FaultScenario>>, ReproError> {
    match &args.fault {
        None => Ok(None),
        Some(value) => FaultScenario::parse(value).map(Some).map_err(ReproError::Usage),
    }
}

fn chaos_kind(policy: PolicyId, scenario: ChaosScenario, scale: Scale) -> RunKind {
    RunKind::Chaos { policy, scenario, scale }
}

/// The chaos table's policies: the three the paper compares.
const CHAOS_POLICIES: [PolicyId; 3] = [PolicyId::Fcfs, PolicyId::Lff, PolicyId::Crt];

/// Parses `--chaos` and canonicalizes the run list: the clean baseline
/// first, then the requested fault scenarios.
fn chaos_scenarios(args: &Args) -> Result<Option<Vec<ChaosScenario>>, ReproError> {
    match &args.chaos {
        None => Ok(None),
        Some(value) => {
            let requested = ChaosScenario::parse(value).map_err(ReproError::Usage)?;
            let mut list = vec![ChaosScenario::Clean];
            list.extend(requested.into_iter().filter(|s| *s != ChaosScenario::Clean));
            Ok(Some(list))
        }
    }
}

pub(super) fn requests(args: &Args) -> Result<Vec<RunRequest>, ReproError> {
    if let Some(scenarios) = chaos_scenarios(args)? {
        let mut reqs = Vec::new();
        for &scenario in &scenarios {
            for policy in CHAOS_POLICIES {
                reqs.push(RunRequest::new(
                    format!("chaos:{}/{}", policy.name(), scenario.name()),
                    chaos_kind(policy, scenario, args.scale),
                ));
            }
        }
        return Ok(reqs);
    }
    if let Some(scenarios) = fault_scenarios(args)? {
        let mut reqs = vec![
            RunRequest::new(
                "faults:fcfs/clean",
                fault_kind(PolicyId::Fcfs, FaultScenario::Clean, args.scale),
            ),
            RunRequest::new(
                "faults:lff/clean",
                fault_kind(PolicyId::Lff, FaultScenario::Clean, args.scale),
            ),
        ];
        reqs.extend(scenarios.into_iter().map(|scenario| {
            RunRequest::new(
                format!("faults:lff/{}", scenario.name()),
                fault_kind(PolicyId::Lff, scenario, args.scale),
            )
        }));
        return Ok(reqs);
    }
    let mut reqs = Vec::new();
    for kind in annotation_kinds(args.scale) {
        let RunKind::Policy { policy, .. } = kind else { unreachable!() };
        reqs.push(RunRequest::new(format!("ablation:photo/{}", policy.name()), kind));
    }
    for threshold in THRESHOLDS {
        reqs.push(RunRequest::new(
            format!("ablation:threshold/{threshold}"),
            RunKind::Threshold { threshold_lines: threshold, scale: args.scale },
        ));
    }
    for app in PLACEMENT_APPS {
        for placement in PLACEMENTS {
            reqs.push(RunRequest::new(
                format!("ablation:placement/{}/{}", app.name(), placement.to_sim().name()),
                RunKind::PlacementProbe { app, placement },
            ));
        }
    }
    for written in INVALIDATION_WRITES {
        reqs.push(RunRequest::new(
            format!("ablation:invalidation/{written}"),
            RunKind::Invalidation { written_lines: written },
        ));
    }
    for (label, policy, annotate, infer) in PIPELINE_CONFIGS {
        reqs.push(RunRequest::new(
            format!("ablation:inference/{label}"),
            pipeline_kind(policy, annotate, infer, args.scale),
        ));
    }
    Ok(reqs)
}

pub(super) fn emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    if let Some(scenarios) = chaos_scenarios(args)? {
        return emit_chaos(args, results, &scenarios);
    }
    if let Some(scenarios) = fault_scenarios(args)? {
        return emit_faults(args, results, &scenarios);
    }
    emit_annotations(args, results)?;
    emit_threshold(args, results)?;
    emit_placement(args, results)?;
    emit_invalidation(args, results)?;
    emit_inference(args, results)
}

fn emit_annotations(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Ablation 1 — photo on 8 cpus: the value of at_share annotations",
        &["policy", "l2 misses", "cycles", "misses eliminated", "speedup"],
    );
    let [fcfs_kind, lff_kind, noann_kind] = annotation_kinds(args.scale);
    let fcfs = results.report(&fcfs_kind)?;
    let lff = results.report(&lff_kind)?;
    let noann = results.report(&noann_kind)?;
    for r in [fcfs, lff, noann] {
        t.row(&[
            r.policy.clone(),
            r.total_l2_misses.to_string(),
            r.total_cycles.to_string(),
            format!("{:.0}%", r.misses_eliminated_vs(fcfs) * 100.0),
            format!("{:.2}", r.speedup_over(fcfs)),
        ])?;
    }
    t.print();
    let full_elim = lff.misses_eliminated_vs(fcfs);
    let part_elim = noann.misses_eliminated_vs(fcfs);
    let full_speed = lff.speedup_over(fcfs) - 1.0;
    let part_speed = noann.speedup_over(fcfs) - 1.0;
    if full_elim > 0.0 && full_speed > 0.0 {
        println!(
            "without annotations, LFF achieves {:.0}% of the full miss elimination and {:.0}% of the speedup\n\
             (paper: 41% and 53%).\n",
            100.0 * part_elim / full_elim,
            100.0 * part_speed / full_speed
        );
    }
    t.write_csv(&args.csv_path("ablation_annotations.csv")?)?;
    Ok(())
}

fn emit_threshold(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Ablation 2 — heap-eviction threshold sweep (tasks, 1 cpu, LFF)",
        &["threshold (lines)", "l2 misses", "cycles"],
    );
    for threshold in THRESHOLDS {
        let r = results
            .report(&RunKind::Threshold { threshold_lines: threshold, scale: args.scale })?;
        t.row(&[threshold.to_string(), r.total_l2_misses.to_string(), r.total_cycles.to_string()])?;
    }
    t.print();
    t.write_csv(&args.csv_path("ablation_threshold.csv")?)?;
    Ok(())
}

fn emit_placement(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Ablation 3 — page placement policies (conflict-sensitive apps, 1 cpu)",
        &["app", "placement", "l2 misses"],
    );
    for app in PLACEMENT_APPS {
        for placement in PLACEMENTS {
            let r = results.report(&RunKind::PlacementProbe { app, placement })?;
            t.row(&[
                app.name().to_string(),
                placement.to_sim().name().to_string(),
                r.total_l2_misses.to_string(),
            ])?;
        }
    }
    t.print();
    println!(
        "careful placement (bin hopping / coloring, per Kessler & Hill) avoids a share of\n\
         the conflict misses that arbitrary placement incurs; capacity-bound streaming\n\
         apps (e.g. ocean) are insensitive to placement.\n"
    );
    t.write_csv(&args.csv_path("ablation_placement.csv")?)?;
    Ok(())
}

fn emit_invalidation(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Ablation 4 — invalidation effects the model ignores (2 cpus)",
        &["lines written remotely", "observed footprint", "model prediction", "error"],
    );
    for written in INVALIDATION_WRITES {
        let (observed, predicted) =
            results.invalidation(&RunKind::Invalidation { written_lines: written })?;
        t.row(&[
            written.to_string(),
            observed.to_string(),
            predicted.to_string(),
            format!("{:+.0}%", 100.0 * (predicted as f64 - observed as f64) / predicted as f64),
        ])?;
    }
    t.print();
    println!("cross-processor writes shrink real footprints while the counter-driven model sees nothing (paper §3.4).\n");
    t.write_csv(&args.csv_path("ablation_invalidation.csv")?)?;
    Ok(())
}

fn emit_inference(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let (_, fp, fa, fi) = PIPELINE_CONFIGS[0];
    let fcfs = results.report(&pipeline_kind(fp, fa, fi, args.scale))?;
    let mut t = Table::new(
        "Ablation 5 — runtime sharing inference (producer/consumer pipeline, 8 cpus; §7 future work)",
        &["configuration", "l2 misses", "misses eliminated", "speedup"],
    );
    let mut eliminated = Vec::new();
    for (label, policy, annotate, infer) in PIPELINE_CONFIGS {
        let r = results.report(&pipeline_kind(policy, annotate, infer, args.scale))?;
        eliminated.push(r.misses_eliminated_vs(fcfs));
        t.row(&[
            label.to_string(),
            r.total_l2_misses.to_string(),
            format!("{:.0}%", r.misses_eliminated_vs(fcfs) * 100.0),
            format!("{:.2}", r.speedup_over(fcfs)),
        ])?;
    }
    t.print();
    let hand = eliminated[1];
    let auto = eliminated[2];
    if hand > 0.0 {
        println!(
            "CML-driven inference recovers {:.0}% of the hand-annotated miss elimination\n\
             with zero programmer effort (the paper's §7 conjecture, demonstrated).\n",
            100.0 * auto / hand
        );
    }
    t.write_csv(&args.csv_path("ablation_inference.csv")?)?;
    Ok(())
}

fn emit_faults(
    args: &Args,
    results: &ResultSet,
    scenarios: &[FaultScenario],
) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Ablation 6 — counter faults vs sanitizer + graceful degradation (tasks, 4 cpus, LFF)",
        &[
            "scenario",
            "l2 misses",
            "miss ratio",
            "vs clean lff",
            "vs fcfs",
            "pred err (lines)",
            "pred err (rel)",
            "corrected",
            "degraded ivals",
            "recovered",
        ],
    );
    let fcfs = results.fault_cell(&fault_kind(PolicyId::Fcfs, FaultScenario::Clean, args.scale))?;
    let clean = results.fault_cell(&fault_kind(PolicyId::Lff, FaultScenario::Clean, args.scale))?;
    let ratio = |misses: u64, base: u64| {
        if base == 0 {
            0.0
        } else {
            misses as f64 / base as f64
        }
    };
    for &scenario in scenarios {
        let cell = results.fault_cell(&fault_kind(PolicyId::Lff, scenario, args.scale))?;
        let r = &cell.report;
        t.row(&[
            scenario.name().to_string(),
            r.total_l2_misses.to_string(),
            format!("{:.4}", r.miss_ratio()),
            format!("{:.2}x", ratio(r.total_l2_misses, clean.report.total_l2_misses)),
            format!("{:.2}x", ratio(r.total_l2_misses, fcfs.report.total_l2_misses)),
            format!("{:.1}", cell.probe.mean_abs_err()),
            format!("{:.0}%", 100.0 * cell.probe.relative_err()),
            r.corrected_intervals.to_string(),
            r.degraded_intervals.to_string(),
            if r.degraded_intervals == 0 {
                "-".to_string()
            } else if cell.recovered {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ])?;
    }
    t.row(&[
        "fcfs (ref)".to_string(),
        fcfs.report.total_l2_misses.to_string(),
        format!("{:.4}", fcfs.report.miss_ratio()),
        format!("{:.2}x", ratio(fcfs.report.total_l2_misses, clean.report.total_l2_misses)),
        "1.00x".to_string(),
        "-".to_string(),
        "-".to_string(),
        "0".to_string(),
        "0".to_string(),
        "-".to_string(),
    ])?;
    t.print();
    println!(
        "the sanitizer bounds what the model sees, so faulted LFF degrades toward — never\n\
         far past — the FCFS miss rate; the 'window' scenario shows the scheduler entering\n\
         degraded mode under sustained traps and recovering once reads come back clean.\n"
    );
    t.write_csv(&args.csv_path("ablation_faults.csv")?)?;
    Ok(())
}

fn emit_chaos(
    args: &Args,
    results: &ResultSet,
    scenarios: &[ChaosScenario],
) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Ablation 7 — thread-lifecycle chaos (tasks + lock-stepped workers, 4 cpus)",
        &[
            "scenario",
            "policy",
            "aborted",
            "completed",
            "poisoned locks",
            "l2 misses",
            "miss ratio",
            "vs clean",
            "pred err (lines)",
            "pred err (rel)",
        ],
    );
    let ratio = |misses: u64, base: u64| {
        if base == 0 {
            0.0
        } else {
            misses as f64 / base as f64
        }
    };
    for &scenario in scenarios {
        for policy in CHAOS_POLICIES {
            let cell = results.chaos_cell(&chaos_kind(policy, scenario, args.scale))?;
            let clean =
                results.chaos_cell(&chaos_kind(policy, ChaosScenario::Clean, args.scale))?;
            let r = &cell.report;
            t.row(&[
                scenario.name().to_string(),
                policy.name().to_string(),
                r.threads_aborted.to_string(),
                r.threads_completed.to_string(),
                cell.poisoned.to_string(),
                r.total_l2_misses.to_string(),
                format!("{:.4}", r.miss_ratio()),
                format!("{:.2}x", ratio(r.total_l2_misses, clean.report.total_l2_misses)),
                format!("{:.1}", cell.probe.mean_abs_err()),
                format!("{:.0}%", 100.0 * cell.probe.relative_err()),
            ])?;
        }
    }
    t.print();
    println!(
        "every scenario must finish without a panic: aborted threads leave the run queue,\n\
         the sharing graph, and the owner directory; locks orphaned by a dying holder are\n\
         poisoned, reclaimed, and handed to the next waiter. The footprint-prediction\n\
         error shows how much thread churn costs the model.\n"
    );
    t.write_csv(&args.csv_path("ablation_chaos.csv")?)?;
    Ok(())
}
