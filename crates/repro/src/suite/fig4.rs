//! Figure 4: the random-memory-walk microbenchmark — observed vs
//! predicted footprints, five panels, one descriptor per curve.

use crate::args::{Args, Scale};
use crate::error::ReproError;
use crate::microbench::{max_rel_error, Monitored, WalkExperiment, WalkPoint};
use crate::runner::{RunKind, RunRequest};
use crate::suite::ResultSet;
use crate::table::Table;

struct Panel {
    id: &'static str,
    title: &'static str,
    curves: Vec<(String, WalkExperiment)>,
}

fn panels(scale: Scale) -> Vec<Panel> {
    let (total, every) = match scale {
        Scale::Paper => (25_000u64, 1_000u64),
        Scale::Small => (8_000, 1_000),
    };
    let mut out = Vec::with_capacity(5);

    // Panel a: the executing thread, several initial footprints.
    out.push(Panel {
        id: "a",
        title: "Figure 4a — executing thread footprint",
        curves: [0.0f64, 2048.0, 4096.0, 6144.0]
            .into_iter()
            .map(|s0| {
                (
                    format!("S_A={s0:.0}"),
                    WalkExperiment::direct(Monitored::Walker { s0 }, total, every, 11),
                )
            })
            .collect(),
    });

    // Panel b: sleeping independent threads decay.
    out.push(Panel {
        id: "b",
        title: "Figure 4b — sleeping independent threads",
        curves: [2048.0f64, 4096.0, 8192.0]
            .into_iter()
            .map(|s0| {
                (
                    format!("S_B={s0:.0}"),
                    WalkExperiment::direct(Monitored::Independent { s0 }, total, every, 12),
                )
            })
            .collect(),
    });

    // Panel c: sleeping dependent thread, q = 0.5, several initial
    // footprints (grows or decays toward qN = 4096).
    out.push(Panel {
        id: "c",
        title: "Figure 4c — sleeping dependent threads (q=0.5)",
        curves: [512.0f64, 2048.0, 6144.0, 8000.0]
            .into_iter()
            .map(|s0| {
                (
                    format!("S_C={s0:.0}"),
                    WalkExperiment::direct(Monitored::Dependent { q: 0.5, s0 }, total, every, 13),
                )
            })
            .collect(),
    });

    // Panel d: varying sharing coefficient, fixed initial footprint.
    out.push(Panel {
        id: "d",
        title: "Figure 4d — sleeping dependent threads vs q (S_C=4096)",
        curves: [0.1f64, 0.25, 0.5, 0.75, 1.0]
            .into_iter()
            .map(|q| {
                (
                    format!("q={q:.2}"),
                    WalkExperiment::direct(
                        Monitored::Dependent { q, s0: 4096.0 },
                        total,
                        every,
                        14,
                    ),
                )
            })
            .collect(),
    });

    // Extension (paper §2.1): the same closed forms on LRU associative
    // E-caches of equal capacity.
    out.push(Panel {
        id: "e",
        title: "Figure 4e (extension) — executing thread footprint vs E-cache associativity",
        curves: [1u64, 2, 4]
            .into_iter()
            .map(|assoc| {
                (
                    format!("{assoc}-way"),
                    WalkExperiment {
                        monitored: Monitored::Walker { s0: 0.0 },
                        total_misses: total,
                        sample_every: every,
                        associativity: assoc,
                        seed: 15,
                    },
                )
            })
            .collect(),
    });
    out
}

pub(super) fn requests(scale: Scale) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for panel in panels(scale) {
        for (name, exp) in panel.curves {
            reqs.push(RunRequest::new(format!("fig4{}:{name}", panel.id), RunKind::Walk(exp)));
        }
    }
    reqs
}

fn emit_panel(
    args: &Args,
    panel: &str,
    title: &str,
    curves: &[(String, &[WalkPoint])],
) -> Result<(), ReproError> {
    let mut t = Table::new(title, &["curve", "misses", "observed", "predicted"]);
    for (name, pts) in curves {
        for p in *pts {
            t.row(&[
                name.clone(),
                p.misses.to_string(),
                format!("{:.0}", p.observed),
                format!("{:.0}", p.predicted),
            ])?;
        }
    }
    t.write_csv(&args.csv_path(&format!("fig4{panel}.csv"))?)?;

    // Print a compact summary per curve instead of every point.
    let mut s =
        Table::new(title, &["curve", "start", "end observed", "end predicted", "max rel err"]);
    for (name, pts) in curves {
        let (Some(first), Some(last)) = (pts.first(), pts.last()) else {
            return Err(ReproError::MissingResult(format!("fig4 curve {name} has no points")));
        };
        s.row(&[
            name.clone(),
            format!("{:.0}", first.observed),
            format!("{:.0}", last.observed),
            format!("{:.0}", last.predicted),
            format!("{:.3}", max_rel_error(pts, 256.0)),
        ])?;
    }
    s.print();
    Ok(())
}

pub(super) fn emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    for panel in panels(args.scale) {
        let mut curves: Vec<(String, &[WalkPoint])> = Vec::with_capacity(panel.curves.len());
        for (name, exp) in &panel.curves {
            curves.push((name.clone(), results.points(&RunKind::Walk(*exp))?));
        }
        emit_panel(args, panel.id, panel.title, &curves)?;
    }
    Ok(())
}
