//! The `repro geometry` validation experiment: every monitored workload
//! of Figure 4 replayed across L2 geometries of equal capacity, with
//! per-cell mean absolute prediction error for both predictors (the
//! paper's closed forms and the per-set occupancy generalization).

use crate::args::{Args, Scale};
use crate::error::ReproError;
use crate::geometry::{mean_abs_error, GeometryExperiment};
use crate::microbench::Monitored;
use crate::runner::{RunKind, RunRequest};
use crate::suite::ResultSet;
use crate::table::Table;

/// The default sweep: the paper's direct-mapped E-cache, a modern
/// 8-way geometry, and the fully associative limit — all 512 KiB.
const GEOMETRIES: [(u64, u64); 3] = [(8192, 1), (1024, 8), (1, 8192)];

/// Default TLB page size (the UltraSPARC-1's 8 KiB).
const DEFAULT_PAGE_BYTES: u64 = 8 * 1024;

fn workloads() -> [(&'static str, Monitored); 3] {
    [
        ("walker", Monitored::Walker { s0: 0.0 }),
        ("sleeper", Monitored::Independent { s0: 4096.0 }),
        ("dependent", Monitored::Dependent { q: 0.5, s0: 0.0 }),
    ]
}

fn cells(args: &Args) -> Vec<(&'static str, GeometryExperiment)> {
    let (total, every) = match args.scale {
        Scale::Paper => (40_000u64, 4_000u64),
        Scale::Small => (12_000, 2_000),
    };
    let geometries: Vec<(u64, u64)> =
        args.geometry.map_or_else(|| GEOMETRIES.to_vec(), |g| vec![g]);
    let page_bytes = args.page_size.unwrap_or(DEFAULT_PAGE_BYTES);
    let mut out = Vec::with_capacity(workloads().len() * geometries.len());
    for (name, monitored) in workloads() {
        for &(sets, ways) in &geometries {
            out.push((
                name,
                GeometryExperiment {
                    monitored,
                    sets,
                    ways,
                    page_bytes,
                    total_misses: total,
                    sample_every: every,
                    seed: 31,
                },
            ));
        }
    }
    out
}

pub(super) fn requests(args: &Args) -> Vec<RunRequest> {
    cells(args)
        .into_iter()
        .map(|(name, exp)| {
            RunRequest::new(
                format!("geometry:{name}:{}", exp.geometry_label()),
                RunKind::Geometry(exp),
            )
        })
        .collect()
}

pub(super) fn emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Geometry validation — observed vs both predictors",
        &["workload", "sets", "ways", "misses", "observed", "closed_form", "per_set"],
    );
    let mut s = Table::new(
        "Geometry validation — mean abs prediction error (lines)",
        &["workload", "geometry", "closed form", "per-set", "better"],
    );
    for (name, exp) in cells(args) {
        let pts = results.geometry_points(&RunKind::Geometry(exp))?;
        for p in pts {
            t.row(&[
                name.to_string(),
                exp.sets.to_string(),
                exp.ways.to_string(),
                p.misses.to_string(),
                format!("{:.1}", p.observed),
                format!("{:.1}", p.closed_form),
                format!("{:.1}", p.per_set),
            ])?;
        }
        let closed = mean_abs_error(pts, |p| p.closed_form);
        let per_set = mean_abs_error(pts, |p| p.per_set);
        let better = if per_set <= closed { "per-set" } else { "closed" };
        s.row(&[
            name.to_string(),
            exp.geometry_label(),
            format!("{closed:.1}"),
            format!("{per_set:.1}"),
            better.to_string(),
        ])?;
    }
    t.write_csv(&args.csv_path("geometry.csv")?)?;
    s.print();
    Ok(())
}
