//! The figure/table suite on top of the [runner](crate::runner): each
//! figure declares its run descriptors, the runner executes them
//! (deduplicated, in parallel, through the cache), and the figure's
//! emitter formats tables and CSVs from the completed results — strictly
//! after all runs finish and strictly in descriptor order, so artifacts
//! are byte-identical for any `--jobs` value.
//!
//! The umbrella `repro-all` binary runs every figure through one runner,
//! so runs shared between figures (e.g. the monitored traces behind
//! Figures 5, 6, and 7, or the FCFS/CRT cells behind Figures 8/9 and
//! Table 5) execute exactly once.

mod ablation;
mod fig4;
mod geometry;
mod monitor_figs;
mod perf_figs;
mod static_tables;
mod table3;

use crate::args::Args;
use crate::error::ReproError;
use crate::experiments::{ChaosCell, FaultCell};
use crate::geometry::GeometryPoint;
use crate::microbench::WalkPoint;
use crate::monitor::MonitorTrace;
use crate::runner::{cache_key, RunKind, RunOutput, RunRequest, Runner};
use active_threads::RunReport;
use std::collections::HashMap;

/// One reproducible figure or table of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Table 1 — simulated UltraSPARC-1 memory hierarchy.
    Table1,
    /// Table 2 — simulated workloads.
    Table2,
    /// Table 3 — costs of priority updates.
    Table3,
    /// Table 4 — input parameters for application runs.
    Table4,
    /// Figure 4 — random-memory-walk model validation.
    Fig4,
    /// Figure 5 — observed vs predicted footprints.
    Fig5,
    /// Figure 6 — E-cache misses per 1000 instructions.
    Fig6,
    /// Figure 7 — overestimated footprints.
    Fig7,
    /// Figure 8 — locality scheduling, 1-cpu Ultra-1.
    Fig8,
    /// Figure 9 — locality scheduling, 8-cpu Enterprise 5000.
    Fig9,
    /// Table 5 — CRT relative to FCFS.
    Table5,
    /// §5/§3 ablations (or the `--fault` robustness table).
    Ablation,
    /// Geometry validation — model vs simulator across L2 geometries
    /// (the `geometry` binary; not part of `repro-all`).
    Geometry,
}

impl Figure {
    /// Every figure, in the order `repro-all` regenerates them.
    pub const ALL: [Figure; 12] = [
        Figure::Table1,
        Figure::Table2,
        Figure::Table3,
        Figure::Table4,
        Figure::Fig4,
        Figure::Fig5,
        Figure::Fig6,
        Figure::Fig7,
        Figure::Fig8,
        Figure::Fig9,
        Figure::Table5,
        Figure::Ablation,
    ];

    /// The figure's run descriptors. Static tables need none.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Usage`] for an invalid `--fault` value.
    pub fn requests(&self, args: &Args) -> Result<Vec<RunRequest>, ReproError> {
        Ok(match self {
            Figure::Table1 | Figure::Table2 | Figure::Table4 => Vec::new(),
            Figure::Table3 => table3::requests(),
            Figure::Fig4 => fig4::requests(args.scale),
            Figure::Fig5 => monitor_figs::fig5_requests(),
            Figure::Fig6 => monitor_figs::fig6_requests(),
            Figure::Fig7 => monitor_figs::fig7_requests(),
            Figure::Fig8 => perf_figs::figure_requests(1, args.scale),
            Figure::Fig9 => perf_figs::figure_requests(8, args.scale),
            Figure::Table5 => perf_figs::table5_requests(args.scale),
            Figure::Ablation => ablation::requests(args)?,
            Figure::Geometry => geometry::requests(args),
        })
    }

    /// Formats the figure's tables and CSVs from completed results.
    ///
    /// # Errors
    ///
    /// Returns a [`ReproError`] if a result is missing or an output file
    /// cannot be written.
    pub fn emit(&self, args: &Args, results: &ResultSet) -> Result<(), ReproError> {
        match self {
            Figure::Table1 => static_tables::emit_table1(args),
            Figure::Table2 => static_tables::emit_table2(args),
            Figure::Table3 => table3::emit(args, results),
            Figure::Table4 => static_tables::emit_table4(args),
            Figure::Fig4 => fig4::emit(args, results),
            Figure::Fig5 => monitor_figs::fig5_emit(args, results),
            Figure::Fig6 => monitor_figs::fig6_emit(args, results),
            Figure::Fig7 => monitor_figs::fig7_emit(args, results),
            Figure::Fig8 => perf_figs::figure_emit(args, results, 1),
            Figure::Fig9 => perf_figs::figure_emit(args, results, 8),
            Figure::Table5 => perf_figs::table5_emit(args, results),
            Figure::Ablation => ablation::emit(args, results),
            Figure::Geometry => geometry::emit(args, results),
        }
    }
}

/// Completed run results keyed by descriptor, with typed accessors that
/// surface descriptor bookkeeping bugs as [`ReproError::MissingResult`].
#[derive(Default)]
pub struct ResultSet {
    map: HashMap<String, RunOutput>,
}

impl ResultSet {
    fn insert(&mut self, kind: &RunKind, out: RunOutput) {
        self.map.insert(cache_key(kind), out);
    }

    fn get(&self, kind: &RunKind) -> Result<&RunOutput, ReproError> {
        self.map.get(&cache_key(kind)).ok_or_else(|| ReproError::MissingResult(format!("{kind:?}")))
    }

    fn mismatch(kind: &RunKind) -> ReproError {
        ReproError::MissingResult(format!("wrong result variant for {kind:?}"))
    }

    /// The walk curve a [`RunKind::Walk`] descriptor produced.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn points(&self, kind: &RunKind) -> Result<&[WalkPoint], ReproError> {
        match self.get(kind)? {
            RunOutput::Points(p) => Ok(p),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The validation curve a [`RunKind::Geometry`] descriptor
    /// produced.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn geometry_points(&self, kind: &RunKind) -> Result<&[GeometryPoint], ReproError> {
        match self.get(kind)? {
            RunOutput::GeometryPoints(p) => Ok(p),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The trace a [`RunKind::Monitor`] descriptor produced.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn trace(&self, kind: &RunKind) -> Result<&MonitorTrace, ReproError> {
        match self.get(kind)? {
            RunOutput::Trace(t) => Ok(t),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The report a policy/threshold/placement/pipeline descriptor
    /// produced.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn report(&self, kind: &RunKind) -> Result<&RunReport, ReproError> {
        match self.get(kind)? {
            RunOutput::Report(r) => Ok(r),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The cell a [`RunKind::Fault`] descriptor produced.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn fault_cell(&self, kind: &RunKind) -> Result<&FaultCell, ReproError> {
        match self.get(kind)? {
            RunOutput::FaultCell(c) => Ok(c),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The cell a [`RunKind::Chaos`] descriptor produced.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn chaos_cell(&self, kind: &RunKind) -> Result<&ChaosCell, ReproError> {
        match self.get(kind)? {
            RunOutput::ChaosCell(c) => Ok(c),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The `(observed, predicted)` footprints of a
    /// [`RunKind::Invalidation`] descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn invalidation(&self, kind: &RunKind) -> Result<(u64, u64), ReproError> {
        match self.get(kind)? {
            RunOutput::Invalidation { observed, predicted } => Ok((*observed, *predicted)),
            _ => Err(Self::mismatch(kind)),
        }
    }

    /// The `(flops, lookups, ns/op)` of a [`RunKind::UpdateCost`]
    /// descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::MissingResult`] if absent or mistyped.
    pub fn update_cost(&self, kind: &RunKind) -> Result<(u64, u64, f64), ReproError> {
        match self.get(kind)? {
            RunOutput::UpdateCost { flops, lookups, ns_per_op } => {
                Ok((*flops, *lookups, *ns_per_op))
            }
            _ => Err(Self::mismatch(kind)),
        }
    }
}

/// What a suite invocation did, for tests and callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteReport {
    /// Runs executed fresh.
    pub fresh_runs: usize,
    /// Runs served from the disk cache.
    pub cached_runs: usize,
}

/// Runs the given figures through one shared runner (so descriptors
/// shared between figures execute once), emits each figure's output in
/// order, and prints the runner's wall-time/throughput summary.
///
/// # Errors
///
/// Returns the first run or output error.
pub fn run_figures(args: &Args, figures: &[Figure]) -> Result<SuiteReport, ReproError> {
    let mut reqs: Vec<RunRequest> = Vec::new();
    for figure in figures {
        reqs.extend(figure.requests(args)?);
    }
    let runner = Runner::from_args(args);
    let outs = runner.run_all(&reqs)?;
    let mut results = ResultSet::default();
    for (req, out) in reqs.iter().zip(outs) {
        results.insert(&req.kind, out);
    }
    for figure in figures {
        figure.emit(args, &results)?;
    }
    if !reqs.is_empty() {
        runner.summary()?.print();
    }
    Ok(SuiteReport { fresh_runs: runner.fresh_runs(), cached_runs: runner.cached_runs() })
}

/// A single-figure binary's `main`: parse args, run, exit nonzero with a
/// message on failure (2 for usage errors, 1 otherwise).
pub fn main_for(figure: Figure) {
    let args = Args::from_env();
    exit_on_error(run_figures(&args, &[figure]));
}

/// The `repro-all` umbrella `main`: every figure through one runner.
pub fn main_all() {
    let args = Args::from_env();
    exit_on_error(run_figures(&args, &Figure::ALL));
}

fn exit_on_error(res: Result<SuiteReport, ReproError>) {
    match res {
        Ok(_) => {}
        Err(ReproError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
