//! Figures 5, 6, and 7: the monitored-application traces. One descriptor
//! per `(app, placement)` pair; the three figures share the bin-hopping
//! traces, so `repro-all` runs each application once.

use crate::args::Args;
use crate::error::ReproError;
use crate::monitor::mpi_series;
use crate::runner::{Placement, RunKind, RunRequest};
use crate::suite::ResultSet;
use crate::table::Table;
use locality_workloads::App;

fn kind(app: App, placement: Placement) -> RunKind {
    RunKind::Monitor { app, placement, seed: app.default_seed() }
}

fn monitor_request(figure: &str, app: App, placement: Placement) -> RunRequest {
    let suffix = match placement {
        Placement::Arbitrary => "/naive",
        _ => "",
    };
    RunRequest::new(format!("{figure}:{}{suffix}", app.name()), kind(app, placement))
}

pub(super) fn fig5_requests() -> Vec<RunRequest> {
    App::FIG5
        .iter()
        .flat_map(|&app| {
            [
                monitor_request("fig5", app, Placement::BinHopping),
                monitor_request("fig5", app, Placement::Arbitrary),
            ]
        })
        .collect()
}

pub(super) fn fig5_emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut summary = Table::new(
        "Figure 5 — observed footprints versus predictions (work thread, Ultra-1)",
        &[
            "app",
            "samples",
            "final misses",
            "final observed",
            "final predicted",
            "mean rel err (bin-hop VM)",
            "mean rel err (naive VM)",
        ],
    );
    for app in App::FIG5 {
        let trace = results.trace(&kind(app, Placement::BinHopping))?;
        let naive = results.trace(&kind(app, Placement::Arbitrary))?;
        let mut t = Table::new("", &["misses", "instructions", "observed", "predicted"]);
        for s in &trace.samples {
            t.row(&[
                s.misses.to_string(),
                s.instructions.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ])?;
        }
        t.write_csv(&args.csv_path(&format!("fig5_{}.csv", app.name()))?)?;

        let last = trace
            .last()
            .ok_or_else(|| ReproError::MissingResult(format!("fig5 trace for {}", app.name())))?;
        summary.row(&[
            app.name().to_string(),
            trace.samples.len().to_string(),
            last.misses.to_string(),
            format!("{:.0}", last.observed),
            format!("{:.0}", last.predicted),
            format!("{:+.1}%", trace.mean_rel_error() * 100.0),
            format!("{:+.1}%", naive.mean_rel_error() * 100.0),
        ])?;

        // Print a thinned view of the curve.
        let mut view =
            Table::new(&format!("fig5: {}", app.name()), &["misses", "observed", "predicted"]);
        for s in trace.thin(10) {
            view.row(&[
                s.misses.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ])?;
        }
        view.print();
    }
    summary.print();
    println!(
        "the model's only inputs are miss counts; on the idealized bin-hopping VM, a\n\
         clustered (streaming) app claims a fresh set with every miss, so predictions\n\
         run slightly LOW; on a naive VM, placements collide and repeated misses stop\n\
         growing footprints, so predictions run HIGH (the paper's regime)."
    );
    summary.write_csv(&args.csv_path("fig5_summary.csv")?)?;
    Ok(())
}

pub(super) fn fig6_requests() -> Vec<RunRequest> {
    App::FIG5
        .iter()
        .chain(App::FIG7.iter())
        .map(|&app| monitor_request("fig6", app, Placement::BinHopping))
        .collect()
}

pub(super) fn fig6_emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut summary = Table::new(
        "Figure 6 — E-cache misses per 1000 instructions (work thread, Ultra-1)",
        &["app", "peak mpi", "final-quarter mpi", "burst ratio"],
    );
    for app in App::FIG5.iter().chain(App::FIG7.iter()) {
        let trace = results.trace(&kind(*app, Placement::BinHopping))?;
        let series = mpi_series(trace);
        let mut t = Table::new("", &["instructions", "mpi"]);
        for (instr, mpi) in &series {
            t.row(&[instr.to_string(), format!("{mpi:.3}")])?;
        }
        t.write_csv(&args.csv_path(&format!("fig6_{}.csv", app.name()))?)?;

        let peak = series.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let tail_start = series.len() * 3 / 4;
        let tail = &series[tail_start..];
        let tail_mpi = if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64
        };
        summary.row(&[
            app.name().to_string(),
            format!("{peak:.2}"),
            format!("{tail_mpi:.2}"),
            format!("{:.1}x", if tail_mpi > 0.0 { peak / tail_mpi } else { f64::INFINITY }),
        ])?;
    }
    summary.print();
    println!(
        "unblocking threads show a burst of reload-transient misses followed by a\n\
         steadier phase (burst ratio = peak / final-quarter MPI)."
    );
    summary.write_csv(&args.csv_path("fig6_summary.csv")?)?;
    Ok(())
}

pub(super) fn fig7_requests() -> Vec<RunRequest> {
    App::FIG7
        .iter()
        .flat_map(|&app| {
            [
                monitor_request("fig7", app, Placement::BinHopping),
                monitor_request("fig7", app, Placement::Arbitrary),
            ]
        })
        .collect()
}

pub(super) fn fig7_emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut summary = Table::new(
        "Figure 7 — overestimated footprints (Ultra-1)",
        &[
            "app",
            "final misses",
            "final observed",
            "final predicted",
            "overestimate",
            "overestimate (naive VM)",
        ],
    );
    for app in App::FIG7 {
        let trace = results.trace(&kind(app, Placement::BinHopping))?;
        let naive = results.trace(&kind(app, Placement::Arbitrary))?;
        let mut t = Table::new("", &["misses", "observed", "predicted"]);
        for s in &trace.samples {
            t.row(&[
                s.misses.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ])?;
        }
        t.write_csv(&args.csv_path(&format!("fig7_{}.csv", app.name()))?)?;

        let mut view =
            Table::new(&format!("fig7: {}", app.name()), &["misses", "observed", "predicted"]);
        for s in trace.thin(10) {
            view.row(&[
                s.misses.to_string(),
                format!("{:.0}", s.observed),
                format!("{:.0}", s.predicted),
            ])?;
        }
        view.print();

        let (Some(last), Some(nlast)) = (trace.last(), naive.last()) else {
            return Err(ReproError::MissingResult(format!("fig7 trace for {}", app.name())));
        };
        summary.row(&[
            app.name().to_string(),
            last.misses.to_string(),
            format!("{:.0}", last.observed),
            format!("{:.0}", last.predicted),
            format!("{:.1}x", last.predicted / last.observed.max(1.0)),
            format!("{:.1}x", nlast.predicted / nlast.observed.max(1.0)),
        ])?;
    }
    summary.print();
    summary.write_csv(&args.csv_path("fig7_summary.csv")?)?;
    Ok(())
}
