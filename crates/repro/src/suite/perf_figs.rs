//! Figures 8 and 9 and Table 5: the §5 policy-comparison cells. One
//! descriptor per `(app, policy, cpus)` cell; Table 5 reuses the
//! FCFS/CRT cells the figures already ran.

use crate::args::{Args, Scale};
use crate::error::ReproError;
use crate::perf::{PerfApp, PolicyComparison};
use crate::runner::{PolicyId, RunKind, RunRequest};
use crate::suite::ResultSet;
use crate::table::Table;

fn cell(app: PerfApp, policy: PolicyId, cpus: usize, scale: Scale) -> RunKind {
    RunKind::Policy { app, policy, cpus, scale }
}

fn cell_request(app: PerfApp, policy: PolicyId, cpus: usize, scale: Scale) -> RunRequest {
    RunRequest::new(
        format!("{}cpu:{}/{}", cpus, app.name(), policy.name()),
        cell(app, policy, cpus, scale),
    )
}

pub(super) fn figure_requests(cpus: usize, scale: Scale) -> Vec<RunRequest> {
    PerfApp::ALL
        .iter()
        .flat_map(|&app| {
            [PolicyId::Fcfs, PolicyId::Lff, PolicyId::Crt]
                .map(|policy| cell_request(app, policy, cpus, scale))
        })
        .collect()
}

fn comparison(
    results: &ResultSet,
    app: PerfApp,
    cpus: usize,
    scale: Scale,
) -> Result<PolicyComparison, ReproError> {
    Ok(PolicyComparison::from_reports(
        app,
        cpus,
        results.report(&cell(app, PolicyId::Fcfs, cpus, scale))?.clone(),
        results.report(&cell(app, PolicyId::Lff, cpus, scale))?.clone(),
        results.report(&cell(app, PolicyId::Crt, cpus, scale))?.clone(),
    ))
}

pub(super) fn figure_emit(args: &Args, results: &ResultSet, cpus: usize) -> Result<(), ReproError> {
    let (fig, machine) =
        if cpus == 1 { (8, "1-cpu Ultra-1") } else { (9, "8-cpu Enterprise 5000") };
    let mut misses = Table::new(
        &format!("Figure {fig} (left) — total E-cache misses, {machine} (normalized to FCFS)"),
        &["app", "fcfs", "lff", "crt"],
    );
    let mut perf = Table::new(
        &format!("Figure {fig} (right) — performance relative to FCFS, {machine}"),
        &["app", "fcfs", "lff", "crt"],
    );
    let mut raw =
        Table::new("raw data", &["app", "policy", "l2 misses", "cycles", "switches", "threads"]);
    for app in PerfApp::ALL {
        let cmp = comparison(results, app, cpus, args.scale)?;
        let (m_lff, s_lff) = cmp.vs_fcfs(&cmp.lff);
        let (m_crt, s_crt) = cmp.vs_fcfs(&cmp.crt);
        misses.row(&[
            app.name().to_string(),
            "1.00".to_string(),
            format!("{m_lff:.2}"),
            format!("{m_crt:.2}"),
        ])?;
        perf.row(&[
            app.name().to_string(),
            "1.00".to_string(),
            format!("{s_lff:.2}"),
            format!("{s_crt:.2}"),
        ])?;
        for r in [&cmp.fcfs, &cmp.lff, &cmp.crt] {
            raw.row(&[
                app.name().to_string(),
                r.policy.clone(),
                r.total_l2_misses.to_string(),
                r.total_cycles.to_string(),
                r.context_switches.to_string(),
                r.threads_completed.to_string(),
            ])?;
        }
    }
    misses.print();
    perf.print();
    raw.print();
    misses.write_csv(&args.csv_path(&format!("fig{fig}_misses.csv"))?)?;
    perf.write_csv(&args.csv_path(&format!("fig{fig}_perf.csv"))?)?;
    raw.write_csv(&args.csv_path(&format!("fig{fig}_raw.csv"))?)?;
    Ok(())
}

pub(super) fn table5_requests(scale: Scale) -> Vec<RunRequest> {
    PerfApp::ALL
        .iter()
        .flat_map(|&app| {
            [(PolicyId::Fcfs, 1), (PolicyId::Crt, 1), (PolicyId::Fcfs, 8), (PolicyId::Crt, 8)]
                .map(|(policy, cpus)| cell_request(app, policy, cpus, scale))
        })
        .collect()
}

pub(super) fn table5_emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Table 5 — CRT relative to FCFS",
        &[
            "app",
            "E-misses eliminated, 1cpu",
            "E-misses eliminated, 8cpu",
            "relative perf, 1cpu",
            "relative perf, 8cpu",
        ],
    );
    for app in PerfApp::ALL {
        let fcfs_uni = results.report(&cell(app, PolicyId::Fcfs, 1, args.scale))?;
        let crt_uni = results.report(&cell(app, PolicyId::Crt, 1, args.scale))?;
        let fcfs_smp = results.report(&cell(app, PolicyId::Fcfs, 8, args.scale))?;
        let crt_smp = results.report(&cell(app, PolicyId::Crt, 8, args.scale))?;
        t.row(&[
            app.name().to_string(),
            format!("{:.0}%", crt_uni.misses_eliminated_vs(fcfs_uni) * 100.0),
            format!("{:.0}%", crt_smp.misses_eliminated_vs(fcfs_smp) * 100.0),
            format!("{:.2}", crt_uni.speedup_over(fcfs_uni)),
            format!("{:.2}", crt_smp.speedup_over(fcfs_smp)),
        ])?;
    }
    t.print();
    t.write_csv(&args.csv_path("table5.csv")?)?;
    Ok(())
}
