//! Tables 1, 2, and 4: static configuration tables (no simulation runs).

use crate::args::{Args, Scale};
use crate::error::ReproError;
use crate::table::Table;
use locality_sim::MachineConfig;
use locality_workloads::{merge, photo, tasks, tsp};

pub(super) fn emit_table1(args: &Args) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Table 1 — simulated UltraSPARC-1 memory hierarchy",
        &["level", "size", "assoc", "line", "policy", "latency (cycles)"],
    );
    let ultra = MachineConfig::ultra1();
    let e5000 = MachineConfig::enterprise5000(8);
    let h = ultra.hierarchy;
    t.row(&[
        "L1 I-cache".into(),
        format!("{} KiB", h.l1i.size_bytes() / 1024),
        format!("{}-way", h.l1i.ways),
        format!("{} B", h.l1i.line),
        "physically indexed/tagged".into(),
        format!("hit {}", ultra.latencies.l1_hit),
    ])?;
    t.row(&[
        "L1 D-cache".into(),
        format!("{} KiB", h.l1d.size_bytes() / 1024),
        "direct".into(),
        format!("{} B", h.l1d.line),
        "write-through, no-write-allocate".into(),
        format!("hit {}", ultra.latencies.l1_hit),
    ])?;
    t.row(&[
        "unified E-cache (L2)".into(),
        format!("{} KiB", h.l2.size_bytes() / 1024),
        "direct".into(),
        format!("{} B", h.l2.line),
        "write-back, inclusive of both L1s".into(),
        format!(
            "hit {}, miss {} (E5000: {} clean / {} cached elsewhere)",
            ultra.latencies.l2_hit,
            ultra.latencies.l2_miss,
            e5000.latencies.l2_miss,
            e5000.latencies.l2_miss_remote
        ),
    ])?;
    t.row(&[
        "VM".into(),
        format!("{} KiB pages", ultra.page_bytes / 1024),
        "-".into(),
        "-".into(),
        format!("{} page placement (Kessler & Hill)", ultra.placement.name()),
        "-".into(),
    ])?;
    t.print();
    println!("E-cache lines N = {}", ultra.l2_lines());
    t.write_csv(&args.csv_path("table1.csv")?)?;
    Ok(())
}

pub(super) fn emit_table2(args: &Args) -> Result<(), ReproError> {
    let mut t = Table::new("Table 2 — simulated workloads", &["app", "suite", "description"]);
    t.row_strs(&[
        "barnes",
        "SPLASH-2",
        "Barnes-Hut hierarchical N-body; octree built over random bodies; θ-controlled traversal",
    ])?;
    t.row_strs(&[
        "fmm",
        "SPLASH-2",
        "adaptive fast multipole (2-D; p=4 expansions; P2M/M2M/M2L/L2L/P2P passes)",
    ])?;
    t.row_strs(&[
        "ocean",
        "SPLASH-2-style",
        "regular-grid red-black SOR solver; 5-point stencil sweeps over a large f64 grid",
    ])?;
    t.row_strs(&[
        "raytrace",
        "SPLASH-2",
        "uniform-grid ray tracer; rays march voxels with per-step scratch (conflict-heavy)",
    ])?;
    t.row_strs(&[
        "merge",
        "Sather",
        "parallel mergesort; split to cutoff-100 insertion-sort leaves, merge on join",
    ])?;
    t.row_strs(&[
        "photo",
        "Sather",
        "softening filter: each thread retouches one pixel row using its neighbour rows",
    ])?;
    t.row_strs(&[
        "tsp",
        "Sather",
        "branch-and-bound TSP over adjacency matrices; subspaces split per edge",
    ])?;
    t.row_strs(&[
        "typechecker",
        "Sather",
        "compiler typechecker: type-graph burst, then AST walked in creation order",
    ])?;
    t.print();
    t.write_csv(&args.csv_path("table2.csv")?)?;
    Ok(())
}

pub(super) fn emit_table4(args: &Args) -> Result<(), ReproError> {
    let mut t =
        Table::new("Table 4 — input parameters for application runs", &["app", "parameters"]);
    match args.scale {
        Scale::Paper => {
            let tk = tasks::TasksParams::default();
            t.row(&[
                "tasks".into(),
                format!(
                    "{} tasks, footprints {} lines each, {} scheduling periods per task",
                    tk.tasks, tk.footprint_lines, tk.periods
                ),
            ])?;
            let mg = merge::MergeParams::default();
            t.row(&[
                "merge".into(),
                format!(
                    "{} uniformly distributed elements; insertion sort at tasks of {} or smaller",
                    mg.elements, mg.cutoff
                ),
            ])?;
            let ph = photo::PhotoParams::default();
            t.row(&[
                "photo".into(),
                format!(
                    "softening filter over an rgb pixmap of {}x{}; one thread per row ({} threads)",
                    ph.width, ph.height, ph.height
                ),
            ])?;
            let ts = tsp::TspParams::default();
            t.row(&[
                "tsp".into(),
                format!(
                    "suboptimal tour for {} cities; execution of {} threads measured",
                    ts.cities, ts.thread_budget
                ),
            ])?;
        }
        Scale::Small => {
            t.row_strs(&["tasks", "96 tasks x 100 lines x 12 periods (smoke scale)"])?;
            t.row_strs(&["merge", "20,000 elements, cutoff 100 (smoke scale)"])?;
            t.row_strs(&["photo", "512x96 pixmap, 96 row threads (smoke scale)"])?;
            t.row_strs(&["tsp", "48 cities, 120 threads (smoke scale)"])?;
        }
    }
    t.print();
    t.write_csv(&args.csv_path("table4.csv")?)?;
    Ok(())
}
