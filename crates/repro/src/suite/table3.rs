//! Table 3: the costs of priority updates. Operation counts are
//! deterministic and go to CSV; the measured wall-clock ns/update column
//! is printed only (keeping CSV artifacts byte-identical across runs,
//! `--jobs` values, and cache hits).

use crate::args::Args;
use crate::error::ReproError;
use crate::experiments::CostCase;
use crate::runner::{RunKind, RunRequest};
use crate::suite::ResultSet;
use crate::table::Table;
use locality_core::PolicyKind;

const POLICIES: [PolicyKind; 2] = [PolicyKind::Lff, PolicyKind::Crt];

pub(super) fn requests() -> Vec<RunRequest> {
    POLICIES
        .iter()
        .flat_map(|&policy| {
            CostCase::ALL.map(|case| {
                RunRequest::new(
                    format!("table3:{}/{}", policy.name(), case.name()),
                    RunKind::UpdateCost { policy, case },
                )
            })
        })
        .collect()
}

pub(super) fn emit(args: &Args, results: &ResultSet) -> Result<(), ReproError> {
    let mut t = Table::new(
        "Table 3 — costs of priority updates (per thread, at a context switch)",
        &["policy", "thread class", "fp ops", "table lookups", "measured ns/update"],
    );
    let mut csv = Table::new(
        "Table 3 — costs of priority updates (per thread, at a context switch)",
        &["policy", "thread class", "fp ops", "table lookups"],
    );
    for policy in POLICIES {
        for case in CostCase::ALL {
            let (flops, lookups, ns) =
                results.update_cost(&RunKind::UpdateCost { policy, case })?;
            t.row(&[
                policy.name().to_uppercase(),
                case.name().to_string(),
                flops.to_string(),
                lookups.to_string(),
                format!("{ns:.1}"),
            ])?;
            csv.row(&[
                policy.name().to_uppercase(),
                case.name().to_string(),
                flops.to_string(),
                lookups.to_string(),
            ])?;
        }
    }
    t.print();
    println!(
        "independent threads cost zero operations by construction (the paper's key property);\n\
         blocking-thread CRT updates need fewer fp ops than LFF (no log lookup), as in the paper.\n\
         (measured ns/update is wall-clock and appears here only, never in the CSV.)"
    );
    csv.write_csv(&args.csv_path("table3.csv")?)?;
    Ok(())
}
