//! Aligned text tables and CSV output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also serialize itself as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// CSV form (header + rows; commas in cells are replaced by `;`).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| s.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV form to `path`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (repro binaries treat that as
    /// fatal).
    pub fn write_csv(&self, path: &Path) {
        std::fs::write(path, self.to_csv())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("[csv] {}", path.display());
    }
}

/// Formats a float with `digits` decimal places.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_strs(&["a", "1"]);
        t.row_strs(&["longer", "22"]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("name    value"));
        assert!(r.contains("longer  22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_strs(&["x,y", "2"]);
        assert_eq!(t.to_csv(), "a,b\nx;y,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("", &["a", "b"]).row_strs(&["only-one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("t", &["x"]);
        t.row_strs(&["1"]);
        let dir = std::env::temp_dir().join("locality-repro-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        t.write_csv(&p);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "x\n1\n");
    }
}
