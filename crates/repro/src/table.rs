//! Aligned text tables and CSV output.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Errors from building or writing a [`Table`].
#[derive(Debug)]
pub enum TableError {
    /// A row's cell count does not match the header.
    WidthMismatch {
        /// Columns in the header.
        expected: usize,
        /// Cells in the offending row.
        got: usize,
    },
    /// Writing the CSV file failed.
    Io {
        /// The destination path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::WidthMismatch { expected, got } => {
                write!(f, "row width mismatch: table has {expected} columns, row has {got}")
            }
            TableError::Io { path, source } => {
                write!(f, "writing {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::WidthMismatch { .. } => None,
            TableError::Io { source, .. } => Some(source),
        }
    }
}

/// A simple column-aligned table that can also serialize itself as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::WidthMismatch`] if the cell count differs
    /// from the header's column count.
    pub fn row(&mut self, cells: &[String]) -> Result<&mut Self, TableError> {
        if cells.len() != self.header.len() {
            return Err(TableError::WidthMismatch {
                expected: self.header.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells.to_vec());
        Ok(self)
    }

    /// Convenience for string-slice rows.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::WidthMismatch`] if the cell count differs
    /// from the header's column count.
    pub fn row_strs(&mut self, cells: &[&str]) -> Result<&mut Self, TableError> {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        // `saturating_sub` guards the zero-column table, which would
        // otherwise underflow the separator width.
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// CSV form (header + rows), quoted per RFC 4180: fields containing
    /// commas, quotes, or line breaks are wrapped in double quotes with
    /// embedded quotes doubled. Cell contents are never altered.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV form to `path` atomically: the bytes land in a
    /// sibling temp file first and are renamed into place, so a crash
    /// mid-write never leaves a truncated artifact where a complete one
    /// is expected (the kill-and-resume guarantee for `repro-all`).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Io`] if the file cannot be written.
    pub fn write_csv(&self, path: &Path) -> Result<(), TableError> {
        let io_err = |source| TableError::Io { path: path.to_path_buf(), source };
        let tmp = path.with_extension(format!("csv.tmp{}", std::process::id()));
        std::fs::write(&tmp, self.to_csv()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        println!("[csv] {}", path.display());
        Ok(())
    }
}

/// Formats a float with `digits` decimal places.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_strs(&["a", "1"]).unwrap();
        t.row_strs(&["longer", "22"]).unwrap();
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("name    value"));
        assert!(r.contains("longer  22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_empty_header_without_panicking() {
        let t = Table::new("empty", &[]);
        let r = t.render();
        assert!(r.contains("## empty"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_strs(&["x,y", "2"]).unwrap();
        // RFC 4180: the comma-bearing cell is quoted, not rewritten.
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",2\n");
    }

    #[test]
    fn csv_escapes_quotes_and_newlines() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_strs(&["say \"hi\"", "line1\nline2"]).unwrap();
        assert_eq!(t.to_csv(), "a,b\n\"say \"\"hi\"\"\",\"line1\nline2\"\n");
    }

    #[test]
    fn row_width_checked() {
        let err = Table::new("", &["a", "b"]).row_strs(&["only-one"]).unwrap_err();
        assert!(matches!(err, TableError::WidthMismatch { expected: 2, got: 1 }));
        assert!(err.to_string().contains("row width mismatch"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("t", &["x"]);
        t.row_strs(&["1"]).unwrap();
        let dir = std::env::temp_dir().join("locality-repro-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        t.write_csv(&p).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "x\n1\n");
    }

    #[test]
    fn write_csv_reports_the_path_on_error() {
        let t = Table::new("t", &["x"]);
        let p = Path::new("/nonexistent-dir/locality-repro/t.csv");
        let err = t.write_csv(p).unwrap_err();
        assert!(err.to_string().contains("/nonexistent-dir"));
    }
}
