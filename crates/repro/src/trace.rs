//! The `trace` binary's driver: run a monitored application with the
//! locality-trace sink installed, export the event stream (JSONL and
//! Chrome `trace_event`), and write the aggregated trace metrics as CSV
//! through the shared runner cache.
//!
//! The protocol is the Figure 5/6/7 monitor protocol (`--workload` picks
//! the app, Ultra-1, bin-hopping VM) with the scheduling policy opened
//! up via `--policy` — so the per-thread prediction-error statistic the
//! trace aggregates matches the existing fig5 summary for the same
//! `(app, seed)` under LFF.
//!
//! Artifacts per traced app, all pure functions of the seeded run:
//!
//! * `trace_<app>.jsonl` — one JSON object per retained event;
//! * `trace_<app>.chrome.json` — Chrome `trace_event` document (opens in
//!   Perfetto / `chrome://tracing`), one track per CPU and per thread;
//! * a row in `trace_metrics.csv` plus per-app histogram CSVs
//!   (`trace_hist_<app>.csv`), both served from the runner cache.
//!
//! Requires a build with the `trace` cargo feature; without it the
//! driver exits with a usage error *before* touching the runner, so a
//! feature-less build can never poison the cache with empty summaries.
//! The `trace-bench` binary measures the sink's overhead (enabled
//! builds) and proves the instrumentation is compiled out (disabled
//! builds).

use crate::args::{Args, Scale};
use crate::error::ReproError;
use crate::runner::{PolicyId, RunKind, RunOutput, RunRequest, Runner};
use crate::table::Table;
use active_threads::events::EngineView;
use active_threads::{Engine, EngineConfig, EngineHook, SwitchEvent, ThreadId};
use locality_sim::MachineConfig;
use locality_trace::{Histogram, Record, TraceSummary, HIST_BUCKETS};
use locality_workloads::App;

/// Parses the `--policy` keyword (default `lff`, the paper's monitored
/// configuration).
///
/// # Errors
///
/// Returns [`ReproError::Usage`] for anything but `fcfs`/`lff`/`crt`.
pub fn policy_from_args(args: &Args) -> Result<PolicyId, ReproError> {
    match args.policy.as_deref() {
        None | Some("lff") => Ok(PolicyId::Lff),
        Some("fcfs") => Ok(PolicyId::Fcfs),
        Some("crt") => Ok(PolicyId::Crt),
        Some(other) => {
            Err(ReproError::Usage(format!("unknown policy '{other}' (expected fcfs, lff, or crt)")))
        }
    }
}

/// Parses the `--workload` keyword into the list of apps to trace. The
/// default depends on scale: `--scale small` traces only the quick
/// mergesort worker (the CI smoke configuration); `--scale paper`
/// traces every monitored application (Figures 5 and 7).
///
/// # Errors
///
/// Returns [`ReproError::Usage`] for an unknown app name.
pub fn apps_from_args(args: &Args) -> Result<Vec<App>, ReproError> {
    let all: Vec<App> = App::FIG5.iter().chain(App::FIG7.iter()).copied().collect();
    match args.workload.as_deref() {
        None => match args.scale {
            Scale::Paper => Ok(all),
            Scale::Small => Ok(vec![App::Merge]),
        },
        Some("all") => Ok(all),
        Some(name) => {
            all.iter().find(|app| app.name() == name).map(|&app| vec![app]).ok_or_else(|| {
                ReproError::Usage(format!(
                    "unknown workload '{name}' (expected a monitored app name or 'all')"
                ))
            })
        }
    }
}

/// One completed traced run: the retained event records plus the online
/// aggregate, summarized for the monitored work thread.
#[derive(Debug)]
pub struct TracedRun {
    /// The traced application.
    pub app: App,
    /// Retained event records, oldest first.
    pub records: Vec<Record>,
    /// The aggregated metrics (exact even if `records` wrapped).
    pub summary: TraceSummary,
}

fn feature_gate() -> Result<(), ReproError> {
    if locality_trace::ENABLED {
        Ok(())
    } else {
        Err(ReproError::Usage(
            "this build carries no trace instrumentation; \
             rebuild with `cargo build --release --features trace`"
                .to_string(),
        ))
    }
}

/// A scheduling-event hook that emits [`PredictionSample`] trace events
/// for the monitored thread: observed (ground-truth E-cache scan) vs
/// predicted (the estimator's expected footprint) at every context
/// switch, exactly the fig5 `MonitorHook` measurement. The scan is far
/// too expensive for the engine's unconditional hot path, so it is an
/// opt-in hook here — trace runs pay the same monitoring cost fig5
/// already does, while plainly-traced engine runs stay cheap.
///
/// [`PredictionSample`]: locality_trace::TraceEvent::PredictionSample
struct PredictionSampler {
    tid: ThreadId,
    /// Reused across samples so the per-switch E-cache scan stays
    /// allocation-free once warmed up.
    scratch: locality_sim::FootprintScratch,
}

impl EngineHook for PredictionSampler {
    fn on_context_switch(&mut self, ev: &SwitchEvent, view: &EngineView<'_>) {
        if ev.tid != self.tid {
            return;
        }
        let scratch = &mut self.scratch;
        locality_trace::emit_with(|| {
            view.machine.l2_footprints_into(ev.cpu, scratch);
            locality_trace::TraceEvent::PredictionSample {
                cpu: ev.cpu as u32,
                tid: self.tid.0,
                observed: scratch.lines(self.tid) as f64,
                predicted: view.sched.expected_footprint(ev.cpu, self.tid).unwrap_or(0.0),
            }
        });
    }
}

/// Runs `app`'s monitored work thread (Ultra-1, bin-hopping VM, the
/// fig5 protocol) with a trace sink installed and returns the records
/// and aggregated summary.
///
/// # Errors
///
/// Returns [`ReproError::Usage`] when the build lacks the `trace`
/// feature, or the engine's error if the run cannot complete.
pub fn traced_run(app: App, policy: PolicyId, seed: u64) -> Result<TracedRun, ReproError> {
    feature_gate()?;
    let config = MachineConfig::ultra1().with_placement(locality_sim::PagePlacement::bin_hopping());
    let mut engine = Engine::new(config, policy.to_sched(), EngineConfig::default())?;
    let tid = app.spawn_single_seeded(&mut engine, seed);
    engine.add_hook(Box::new(PredictionSampler {
        tid,
        scratch: locality_sim::FootprintScratch::new(),
    }));
    locality_trace::install(locality_trace::sink::DEFAULT_CAPACITY);
    let run = engine.run();
    let Some(sink) = locality_trace::take() else {
        return Err(ReproError::MissingResult("trace sink installed above".to_string()));
    };
    run?;
    Ok(TracedRun { app, records: sink.records(), summary: sink.summary(Some(tid.0)) })
}

/// Executes one [`RunKind::TraceMetrics`] cell: a traced run reduced to
/// its aggregated summary (what the runner caches — the full event
/// stream is re-recorded per invocation, never cached).
///
/// # Errors
///
/// Returns [`ReproError::Usage`] when the build lacks the `trace`
/// feature — raised *before* any run so a feature-less build cannot
/// write empty summaries into a cache shared with instrumented builds.
pub fn trace_metrics_cell(
    app: App,
    policy: PolicyId,
    seed: u64,
) -> Result<TraceSummary, ReproError> {
    traced_run(app, policy, seed).map(|run| run.summary)
}

fn metrics_requests(apps: &[App], policy: PolicyId) -> Vec<RunRequest> {
    apps.iter()
        .map(|&app| {
            RunRequest::new(
                format!("trace:{}/{}", app.name(), policy.name()),
                RunKind::TraceMetrics { app, policy, seed: app.default_seed() },
            )
        })
        .collect()
}

fn summary_of(out: &RunOutput) -> Result<TraceSummary, ReproError> {
    match out {
        RunOutput::TraceSummary(s) => Ok(**s),
        other => Err(ReproError::MissingResult(format!("expected trace summary, got {other:?}"))),
    }
}

/// The metrics table: one row per traced app.
fn metrics_table(
    apps: &[App],
    policy: PolicyId,
    summaries: &[TraceSummary],
) -> Result<Table, ReproError> {
    let mut t = Table::new(
        "trace metrics — monitored work thread, Ultra-1, bin-hopping VM",
        &[
            "app",
            "policy",
            "events",
            "intervals",
            "dropped",
            "mode transitions",
            "mean abs err (lines)",
            "abs err samples",
            "mean rel err",
            "rel err samples",
        ],
    );
    for (app, s) in apps.iter().zip(summaries) {
        t.row(&[
            app.name().to_string(),
            policy.name().to_string(),
            s.events.to_string(),
            s.intervals.to_string(),
            s.dropped.to_string(),
            s.mode_transitions.to_string(),
            format!("{:.3}", s.abs_err_mean),
            s.abs_err_samples.to_string(),
            format!("{:+.6}", s.rel_err_mean),
            s.rel_err_samples.to_string(),
        ])?;
    }
    Ok(t)
}

/// One app's histogram table: bucket lower bounds against the four
/// aggregated distributions.
fn hist_table(app: App, s: &TraceSummary) -> Result<Table, ReproError> {
    let mut t = Table::new(
        &format!("trace histograms: {}", app.name()),
        &["bucket floor", "interval misses", "ready depth", "update fanout", "abs err (lines)"],
    );
    for i in 0..HIST_BUCKETS {
        let row = [s.miss_hist[i], s.depth_hist[i], s.fanout_hist[i], s.abs_err_hist[i]];
        if row.iter().all(|&c| c == 0) {
            continue;
        }
        t.row(&[
            Histogram::bucket_floor(i).to_string(),
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string(),
            row[3].to_string(),
        ])?;
    }
    Ok(t)
}

/// Records the traced runs for the export files, in app order,
/// parallelized across `jobs` threads (each run's sink is thread-local,
/// so runs never share trace state).
fn export_runs(apps: &[App], policy: PolicyId, jobs: usize) -> Result<Vec<TracedRun>, ReproError> {
    if jobs > 1 && apps.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = apps
                .iter()
                .map(|&app| scope.spawn(move || traced_run(app, policy, app.default_seed())))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        Err(ReproError::RunPanicked {
                            what: crate::runner::panic_message(p.as_ref()),
                        })
                    })
                })
                .collect()
        })
    } else {
        apps.iter().map(|&app| traced_run(app, policy, app.default_seed())).collect()
    }
}

/// The full `trace` driver: run, export, write CSVs.
///
/// # Errors
///
/// Returns [`ReproError::Usage`] for a bad `--policy`/`--workload`
/// value or a build without the `trace` feature, or the first
/// run/output error.
pub fn run_trace(args: &Args) -> Result<(), ReproError> {
    let policy = policy_from_args(args)?;
    let apps = apps_from_args(args)?;
    feature_gate()?;

    // Aggregated metrics through the shared runner (cached, ordered).
    let runner = Runner::from_args(args);
    let outs = runner.run_all(&metrics_requests(&apps, policy))?;
    let summaries: Vec<TraceSummary> = outs.iter().map(summary_of).collect::<Result<_, _>>()?;

    let metrics = metrics_table(&apps, policy, &summaries)?;
    metrics.print();
    metrics.write_csv(&args.csv_path("trace_metrics.csv")?)?;
    for (app, s) in apps.iter().zip(&summaries) {
        hist_table(*app, s)?
            .write_csv(&args.csv_path(&format!("trace_hist_{}.csv", app.name()))?)?;
    }

    // Event-stream exports: always recorded fresh (too large to cache),
    // byte-identical across invocations and `--jobs` values.
    let runs = export_runs(&apps, policy, args.jobs)?;
    for run in &runs {
        let name = run.app.name();
        std::fs::write(
            args.csv_path(&format!("trace_{name}.jsonl"))?,
            locality_trace::export::to_jsonl(&run.records),
        )?;
        std::fs::write(
            args.csv_path(&format!("trace_{name}.chrome.json"))?,
            locality_trace::export::to_chrome(&run.records),
        )?;
        println!(
            "{name}: {} events recorded ({} retained, {} dropped) -> trace_{name}.jsonl, \
             trace_{name}.chrome.json",
            run.summary.events,
            run.records.len(),
            run.summary.dropped
        );
    }
    runner.summary()?.print();
    Ok(())
}

/// The trace binary's `main`: exit 0 on success, 1 on run errors, 2 on
/// usage errors (including a build without the `trace` feature).
pub fn main_trace() {
    let args = Args::from_env();
    match run_trace(&args) {
        Ok(()) => {}
        Err(ReproError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------
// The overhead bench (the `trace-bench` binary).

/// What the overhead bench concluded.
#[derive(Debug, Clone, Copy)]
pub enum BenchVerdict {
    /// Feature-less build: instrumentation is compiled out; an installed
    /// sink recorded exactly zero events.
    DisabledZeroEvents,
    /// Instrumented build: tracing overhead vs the same build without a
    /// sink, as a fraction (median of interleaved pairs).
    Enabled {
        /// Median run time without a sink installed, seconds.
        baseline_secs: f64,
        /// Median run time with a sink installed, seconds.
        traced_secs: f64,
        /// `(traced - baseline) / baseline`.
        overhead: f64,
        /// Events recorded by the final traced run.
        events: u64,
    },
}

/// Tracing overhead above this fraction fails the bench.
pub const OVERHEAD_BUDGET: f64 = 0.05;

fn bench_once(app: App, with_sink: bool) -> Result<(f64, u64), ReproError> {
    let config = MachineConfig::ultra1().with_placement(locality_sim::PagePlacement::bin_hopping());
    let mut engine = Engine::new(config, PolicyId::Lff.to_sched(), EngineConfig::default())?;
    app.spawn_single_seeded(&mut engine, app.default_seed());
    if with_sink {
        locality_trace::install(locality_trace::sink::DEFAULT_CAPACITY);
    }
    let start = std::time::Instant::now();
    let run = engine.run();
    let secs = start.elapsed().as_secs_f64();
    let events = locality_trace::take().map_or(0, |s| s.events_emitted());
    run?;
    Ok((secs, events))
}

/// Noise-robust cost estimate for a timed run: the fastest of the
/// samples. Contention from other processes only ever slows a run
/// down, so the minimum is the best estimate of the inherent cost.
fn min_secs(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Runs the overhead bench on the mergesort worker.
///
/// In a feature-less build this proves the zero-cost claim directly: a
/// sink is installed, a run executes, and the sink must come back with
/// zero events (the emission points are compiled out, so the run is the
/// un-instrumented hot path — its regression vs an untraced binary is
/// zero by construction). In an instrumented build, five interleaved
/// A/B pairs (no sink installed vs sink installed) are timed and the
/// per-side minima compared against [`OVERHEAD_BUDGET`] — the minimum
/// estimates each side's inherent cost and discards transient machine
/// load, which only ever adds time. The bench measures the
/// engine/scheduler/simulator emission points themselves; the optional
/// [`PredictionSampler`] ground-truth hook is not installed, since its
/// E-cache scan is the same cost the fig5 monitor protocol already pays
/// with or without tracing.
///
/// # Errors
///
/// Returns the engine's error if a bench run cannot complete.
pub fn run_bench() -> Result<BenchVerdict, ReproError> {
    let app = App::Merge;
    if !locality_trace::ENABLED {
        let (_, events) = bench_once(app, true)?;
        assert_eq!(events, 0, "disabled build recorded events — emission points are live");
        return Ok(BenchVerdict::DisabledZeroEvents);
    }
    // Warm-up pair, then five interleaved measured pairs.
    bench_once(app, false)?;
    bench_once(app, true)?;
    let mut baseline = Vec::new();
    let mut traced = Vec::new();
    let mut events = 0;
    for _ in 0..5 {
        baseline.push(bench_once(app, false)?.0);
        let (secs, n) = bench_once(app, true)?;
        traced.push(secs);
        events = n;
    }
    let baseline_secs = min_secs(&baseline);
    let traced_secs = min_secs(&traced);
    let overhead = (traced_secs - baseline_secs) / baseline_secs;
    Ok(BenchVerdict::Enabled { baseline_secs, traced_secs, overhead, events })
}

/// The trace-bench binary's `main`: exit 0 when the overhead budget
/// holds (or the build is feature-less and recorded zero events), 1
/// otherwise.
pub fn main_bench() {
    match run_bench() {
        Ok(BenchVerdict::DisabledZeroEvents) => {
            println!(
                "trace feature disabled: emission points compiled out, \
                 0 events recorded (zero overhead by construction)"
            );
        }
        Ok(BenchVerdict::Enabled { baseline_secs, traced_secs, overhead, events }) => {
            println!(
                "trace feature enabled: baseline {:.1} ms, traced {:.1} ms, \
                 overhead {:+.2}% ({events} events)",
                baseline_secs * 1e3,
                traced_secs * 1e3,
                overhead * 100.0
            );
            assert!(events > 0, "instrumented run recorded no events");
            if overhead >= OVERHEAD_BUDGET {
                eprintln!(
                    "tracing overhead {:.2}% exceeds the {:.0}% budget",
                    overhead * 100.0,
                    OVERHEAD_BUDGET * 100.0
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_with(workload: Option<&str>, policy: Option<&str>, scale: Scale) -> Args {
        Args {
            scale,
            workload: workload.map(str::to_string),
            policy: policy.map(str::to_string),
            ..Args::default()
        }
    }

    #[test]
    fn policy_keyword_parses_and_rejects() {
        let parse = |p| policy_from_args(&args_with(None, p, Scale::Small));
        assert_eq!(parse(None).unwrap(), PolicyId::Lff);
        assert_eq!(parse(Some("fcfs")).unwrap(), PolicyId::Fcfs);
        assert_eq!(parse(Some("crt")).unwrap(), PolicyId::Crt);
        assert!(matches!(parse(Some("lifo")), Err(ReproError::Usage(_))));
    }

    #[test]
    fn workload_keyword_selects_apps() {
        let apps = |w, s| apps_from_args(&args_with(w, None, s));
        assert_eq!(apps(None, Scale::Small).unwrap(), vec![App::Merge]);
        assert_eq!(apps(None, Scale::Paper).unwrap().len(), 8);
        assert_eq!(apps(Some("all"), Scale::Small).unwrap().len(), 8);
        assert_eq!(apps(Some("barnes"), Scale::Paper).unwrap(), vec![App::Barnes]);
        assert!(matches!(apps(Some("doom"), Scale::Paper), Err(ReproError::Usage(_))));
    }

    #[test]
    fn min_secs_discards_load_outliers() {
        assert_eq!(min_secs(&[2.5, 100.0, 2.0, 3.0]), 2.0);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn featureless_build_refuses_to_run() {
        let err = trace_metrics_cell(App::Merge, PolicyId::Lff, 1).unwrap_err();
        assert!(matches!(err, ReproError::Usage(_)), "{err:?}");
        let err = run_trace(&args_with(None, None, Scale::Small)).unwrap_err();
        assert!(matches!(err, ReproError::Usage(_)), "{err:?}");
    }

    #[cfg(feature = "trace")]
    mod traced {
        use super::*;
        use locality_trace::export::{to_chrome, to_jsonl};

        #[test]
        fn seeded_runs_export_byte_identical_traces() {
            let seed = App::Merge.default_seed();
            let a = traced_run(App::Merge, PolicyId::Lff, seed).unwrap();
            let b = traced_run(App::Merge, PolicyId::Lff, seed).unwrap();
            assert!(a.summary.events > 0);
            assert_eq!(a.summary, b.summary);
            assert_eq!(to_jsonl(&a.records), to_jsonl(&b.records));
            assert_eq!(to_chrome(&a.records), to_chrome(&b.records));
        }

        #[test]
        fn trace_rel_error_matches_fig5_statistic() {
            // The aggregate's relative-error statistic must agree with
            // the MonitorTrace statistic the fig5 summary reports, for
            // the same (app, placement, seed) under LFF.
            let seed = App::Merge.default_seed();
            let run = traced_run(App::Merge, PolicyId::Lff, seed).unwrap();
            let monitor = crate::monitor::monitor_app_seeded(
                App::Merge,
                locality_sim::PagePlacement::bin_hopping(),
                seed,
            )
            .unwrap();
            assert!(run.summary.rel_err_samples > 0, "no qualifying prediction samples");
            assert!(
                (run.summary.rel_err_mean - monitor.mean_rel_error()).abs() < 1e-9,
                "trace {} vs fig5 {}",
                run.summary.rel_err_mean,
                monitor.mean_rel_error()
            );
        }

        #[test]
        fn traced_run_records_the_full_event_palette() {
            let run = traced_run(App::Merge, PolicyId::Lff, App::Merge.default_seed()).unwrap();
            let kinds: std::collections::BTreeSet<&str> =
                run.records.iter().map(|r| r.event.kind()).collect();
            for kind in
                ["interval-begin", "interval-end", "dispatch", "pic-read", "prediction-sample"]
            {
                assert!(kinds.contains(kind), "missing {kind} in {kinds:?}");
            }
            // Clocks are monotone per record order up to same-cycle
            // batches on one CPU (single-cpu protocol).
            let mut prev = 0;
            for r in &run.records {
                assert!(r.clock >= prev, "clock went backwards");
                prev = r.clock;
            }
        }

        #[test]
        fn chrome_export_is_valid_enough_for_viewers() {
            let run = traced_run(App::Merge, PolicyId::Lff, App::Merge.default_seed()).unwrap();
            let text = to_chrome(&run.records);
            assert!(text.starts_with("{\"traceEvents\":["));
            assert!(text.trim_end().ends_with("]}"));
            assert_eq!(text.matches('{').count(), text.matches('}').count());
            assert!(text.contains("\"ph\":\"X\""));
        }
    }
}
