//! End-to-end tests of the `analyze` binary: exit codes, help/usage
//! behaviour, and verdict determinism across reruns and `--jobs` values.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_analyze")).args(args).output().expect("spawn analyze")
}

fn tmp_out(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("locality-analyze-test-{}-{label}", std::process::id()));
    // Stale dirs from a previous crashed run are fine; CSVs are overwritten.
    std::fs::create_dir_all(&dir).expect("create temp out dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = run(&[flag]);
        assert_eq!(out.status.code(), Some(0), "{flag}");
        assert!(stdout(&out).contains("usage:"), "{flag}: {}", stdout(&out));
        assert!(out.stderr.is_empty(), "{flag} wrote to stderr");
    }
}

#[test]
fn bad_flags_exit_two_with_usage_on_stderr() {
    let unknown = run(&["--bogus"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("usage:"));

    let bad_workload = run(&["--workload", "bogus"]);
    assert_eq!(bad_workload.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_workload.stderr).contains("unknown workload"));
}

#[test]
fn clean_workload_exits_zero() {
    let out_dir = tmp_out("clean");
    let out = run(&["--scale", "small", "--workload", "clean", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("clean: 0 race(s)"), "{}", stdout(&out));
    assert!(out_dir.join("analyze.csv").is_file());
}

#[test]
fn racy_workload_is_flagged_with_both_accesses_and_clocks() {
    let out_dir = tmp_out("racy");
    let out = run(&["--scale", "small", "--workload", "racy", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("data-race"), "{text}");
    // The race line carries both access spans and both vector clocks.
    assert!(text.contains("is concurrent with"), "{text}");
    assert!(text.matches("write of [").count() >= 2, "{text}");
    assert!(text.matches(':').count() >= 2 && text.contains('{'), "{text}");
    assert!(text.contains("racy: 1 race(s)"), "{text}");
}

#[test]
fn verdict_and_csv_stable_across_jobs_and_reruns() {
    let mut csvs = Vec::new();
    for (i, jobs) in ["1", "2", "4", "1"].iter().enumerate() {
        let out_dir = tmp_out(&format!("determinism-{i}"));
        let out = run(&["--scale", "small", "--jobs", jobs, "--out", out_dir.to_str().unwrap()]);
        // Both workloads run; the racy one drives the nonzero exit.
        assert_eq!(out.status.code(), Some(1), "jobs={jobs}");
        csvs.push(std::fs::read_to_string(out_dir.join("analyze.csv")).expect("csv written"));
    }
    assert!(csvs.windows(2).all(|w| w[0] == w[1]), "analyze.csv varies across jobs/reruns");
}
