//! Crash-safety gate for the experiment pipeline: a `repro-all` process
//! killed mid-run must, on rerun into the same output directory, resume
//! from the on-disk result cache and finish with artifacts that are
//! byte-identical to an uninterrupted run. This is the end-to-end check
//! behind the atomic cache writes (temp-file + rename + checksum) and
//! atomic CSV writes — a SIGKILL at any point leaves either a complete,
//! verifiable entry or nothing, never a torn file the resume trusts.
//!
//! The test runs the real binary three times (reference, killed, resume),
//! which takes minutes in a debug build, so it is `#[ignore]`d here and
//! executed in release mode by `ci.sh`:
//!
//! ```sh
//! cargo test --release -p locality-repro --test kill_resume -- --ignored
//! ```

use std::collections::BTreeMap;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_repro-all");

/// Runs `repro-all --scale small` to completion into `out`.
fn run_to_completion(out: &Path) {
    let status = Command::new(BIN)
        .args(["--scale", "small", "--jobs", "2", "--out"])
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("spawn repro-all");
    assert!(status.success(), "repro-all exited with {status}");
}

/// Starts `repro-all`, waits until the cache shows committed progress
/// (so the kill lands mid-run, after real work), then SIGKILLs it.
/// Returns how many cache entries had landed when the axe fell.
fn run_and_kill(out: &Path) -> usize {
    let mut child = Command::new(BIN)
        .args(["--scale", "small", "--jobs", "2", "--out"])
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn repro-all");
    let cache = out.join(".cache");
    let deadline = Instant::now() + Duration::from_secs(300);
    let committed = loop {
        if let Some(status) = child.try_wait().expect("poll repro-all") {
            // The run outpaced the poll; that still exercises the
            // resume path (everything served from cache), but flag it
            // so a suspiciously fast binary is noticed.
            eprintln!("[kill_resume] run finished before the kill ({status})");
            break cache_entries(&cache);
        }
        let n = cache_entries(&cache);
        if n >= 5 {
            child.kill().expect("SIGKILL repro-all");
            child.wait().expect("reap repro-all");
            break n;
        }
        assert!(Instant::now() < deadline, "no cache progress within 300s");
        std::thread::sleep(Duration::from_millis(20));
    };
    committed
}

fn cache_entries(cache: &Path) -> usize {
    std::fs::read_dir(cache)
        .map(|rd| rd.flatten().filter(|e| e.path().extension().is_some_and(|x| x == "run")).count())
        .unwrap_or(0)
}

/// Collects `name -> sha256` for every artifact (CSV and text report)
/// in `out`, ignoring the cache directory.
fn artifact_digests(out: &Path) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for entry in std::fs::read_dir(out).expect("read out dir").flatten() {
        let path = entry.path();
        let is_artifact = path.extension().is_some_and(|x| x == "csv" || x == "txt");
        if !is_artifact {
            continue;
        }
        let bytes = std::fs::read(&path).expect("read artifact");
        let name = entry.file_name().to_string_lossy().into_owned();
        map.insert(name, locality_repro::digest::hex(&bytes));
    }
    map
}

#[test]
#[ignore = "runs the full small suite three times; exercised in release mode by ci.sh"]
fn killed_run_resumes_to_byte_identical_artifacts() {
    let scratch = std::env::temp_dir().join(format!("locality-kill-resume-{}", std::process::id()));
    let reference = scratch.join("reference");
    let resumed = scratch.join("resumed");
    std::fs::create_dir_all(&reference).expect("mkdir reference");
    std::fs::create_dir_all(&resumed).expect("mkdir resumed");

    run_to_completion(&reference);
    let want = artifact_digests(&reference);
    assert!(!want.is_empty(), "reference run produced no artifacts");

    let committed = run_and_kill(&resumed);
    eprintln!("[kill_resume] killed with {committed} cache entries committed");
    run_to_completion(&resumed);
    let got = artifact_digests(&resumed);

    assert_eq!(
        want.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "resumed run produced a different artifact set"
    );
    for (name, digest) in &want {
        assert_eq!(
            digest, &got[name],
            "{name} diverged between the clean and the killed-then-resumed run"
        );
    }

    // The committed golden hashes must agree with what this build
    // produces, or the determinism contract has drifted.
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/golden_small.sha256");
    let golden = std::fs::read_to_string(&golden).expect("results/golden_small.sha256 missing");
    let mut checked = 0;
    for line in golden.lines().filter(|l| !l.trim().is_empty()) {
        let (hash, name) = line.split_once("  ").expect("golden line must be `<sha256>  <file>`");
        assert_eq!(
            want.get(name).map(String::as_str),
            Some(hash),
            "{name} does not match results/golden_small.sha256"
        );
        checked += 1;
    }
    assert!(checked > 0, "golden file is empty");

    std::fs::remove_dir_all(&scratch).expect("clean scratch");
}
