//! End-to-end tests of the `modelcheck` binary: exit codes, help/usage
//! behaviour, counterexample round-trips through `--replay`, and CSV
//! determinism across reruns and `--jobs` values.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_modelcheck")).args(args).output().expect("spawn modelcheck")
}

fn tmp_out(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("locality-modelcheck-test-{}-{label}", std::process::id()));
    // Stale dirs from a previous crashed run are fine; CSVs are overwritten.
    std::fs::create_dir_all(&dir).expect("create temp out dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = run(&[flag]);
        assert_eq!(out.status.code(), Some(0), "{flag}");
        assert!(stdout(&out).contains("usage:"), "{flag}: {}", stdout(&out));
        assert!(out.stderr.is_empty(), "{flag} wrote to stderr");
    }
}

#[test]
fn bad_flags_exit_two_with_usage_on_stderr() {
    let unknown = run(&["--bogus"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("usage:"));

    let bad_workload = run(&["--workload", "bogus"]);
    assert_eq!(bad_workload.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_workload.stderr).contains("unknown workload"));

    let bad_bound = run(&["--depth-bound", "0"]);
    assert_eq!(bad_bound.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_bound.stderr).contains("positive integer"));
}

#[test]
fn clean_workload_explores_exhaustively_and_exits_zero() {
    let out_dir = tmp_out("clean");
    let out = run(&["--workload", "clean", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("exhaustive"), "{text}");
    assert!(text.contains("0 violation(s) -> ok"), "{text}");
    assert!(out_dir.join("modelcheck.csv").is_file());
    assert!(!out_dir.join("counterexample_clean.txt").exists());
}

#[test]
fn racy_workload_is_flagged_and_exits_one() {
    let out_dir = tmp_out("racy");
    let out = run(&["--workload", "racy", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("counterexample_racy.txt"), "{text}");
    let ce = std::fs::read_to_string(out_dir.join("counterexample_racy.txt"))
        .expect("counterexample written");
    assert!(ce.contains("violation race"), "{ce}");
}

#[test]
fn deadlock_counterexample_round_trips_through_replay() {
    let out_dir = tmp_out("replay");
    let out = run(&["--workload", "deadlock", "--out", out_dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));

    let ce_path = out_dir.join("counterexample_deadlock.txt");
    assert!(ce_path.is_file(), "counterexample not written");
    let replay = run(&["--replay", ce_path.to_str().unwrap()]);
    assert_eq!(replay.status.code(), Some(1), "stdout: {}", stdout(&replay));
    let text = stdout(&replay);
    assert!(text.contains("replayed deadlock on workload deadlock"), "{text}");
    assert!(text.contains("violation reproduced"), "{text}");
}

#[test]
fn malformed_replay_file_exits_two() {
    let out_dir = tmp_out("malformed");
    let bad = out_dir.join("bogus.txt");
    std::fs::write(&bad, "not a counterexample\n").expect("write junk");
    let out = run(&["--replay", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stdout: {}", stdout(&out));
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed counterexample"));
}

#[test]
fn verdict_and_csv_stable_across_jobs_and_reruns() {
    let mut csvs = Vec::new();
    for (i, jobs) in ["1", "2", "4", "1"].iter().enumerate() {
        let out_dir = tmp_out(&format!("determinism-{i}"));
        let out = run(&["--jobs", jobs, "--out", out_dir.to_str().unwrap()]);
        // All workloads run; the violating fixtures drive the nonzero exit.
        assert_eq!(out.status.code(), Some(1), "jobs={jobs}");
        csvs.push(std::fs::read_to_string(out_dir.join("modelcheck.csv")).expect("csv written"));
    }
    assert!(csvs.windows(2).all(|w| w[0] == w[1]), "modelcheck.csv varies across jobs/reruns");
}
