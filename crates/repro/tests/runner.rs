//! Integration tests for the experiment runner's two core guarantees:
//!
//! * **Determinism under parallelism** — CSV artifacts are byte-identical
//!   whether runs execute on one worker or many;
//! * **Caching** — a second invocation over the same output directory
//!   performs zero fresh runs and reproduces the same artifacts exactly.

use locality_repro::args::{Args, Scale};
use locality_repro::suite::{run_figures, Figure};
use std::path::{Path, PathBuf};

fn test_args(out: PathBuf, jobs: usize, no_cache: bool) -> Args {
    Args { scale: Scale::Small, out, jobs, no_cache, ..Args::default() }
}

fn tmp_out(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("locality-repro-test-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every CSV in `dir` (not recursing into `.cache`), sorted by name.
fn csv_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("output dir exists")
        .map(|e| e.expect("readable entry"))
        .filter(|e| e.file_name().to_string_lossy().ends_with(".csv"))
        .map(|e| {
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).expect("csv"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn parallel_csvs_are_byte_identical_to_serial() {
    let serial_out = tmp_out("serial");
    let parallel_out = tmp_out("parallel");
    run_figures(&test_args(serial_out.clone(), 1, true), &[Figure::Fig4])
        .expect("serial fig4 succeeds");
    run_figures(&test_args(parallel_out.clone(), 4, true), &[Figure::Fig4])
        .expect("parallel fig4 succeeds");

    let serial = csv_files(&serial_out);
    let parallel = csv_files(&parallel_out);
    assert_eq!(serial.len(), 5, "fig4 writes five panel CSVs");
    assert_eq!(
        serial.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        parallel.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );
    for ((name, serial_bytes), (_, parallel_bytes)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(serial_bytes, parallel_bytes, "{name} must not depend on --jobs");
    }
    let _ = std::fs::remove_dir_all(&serial_out);
    let _ = std::fs::remove_dir_all(&parallel_out);
}

#[test]
fn second_invocation_is_fully_cached() {
    let out = tmp_out("cached");
    let first = run_figures(&test_args(out.clone(), 2, false), &[Figure::Fig4])
        .expect("first fig4 succeeds");
    assert!(first.fresh_runs > 0, "first invocation must execute runs");
    assert_eq!(first.cached_runs, 0);
    let first_csvs = csv_files(&out);

    let second = run_figures(&test_args(out.clone(), 2, false), &[Figure::Fig4])
        .expect("second fig4 succeeds");
    assert_eq!(second.fresh_runs, 0, "second invocation must be served from cache");
    assert_eq!(second.cached_runs, first.fresh_runs);
    assert_eq!(first_csvs, csv_files(&out), "cached results reproduce artifacts exactly");

    // --no-cache ignores the populated cache.
    let third = run_figures(&test_args(out.clone(), 2, true), &[Figure::Fig4])
        .expect("no-cache fig4 succeeds");
    assert_eq!(third.cached_runs, 0);
    assert_eq!(third.fresh_runs, first.fresh_runs);
    let _ = std::fs::remove_dir_all(&out);
}
