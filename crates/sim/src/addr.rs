//! Virtual and physical address newtypes.
//!
//! The simulator never stores data behind these addresses; workloads keep
//! their real data in native Rust structures and use simulated addresses
//! purely to model memory *layout* and the resulting cache behaviour.

use std::fmt;
use std::ops::Range;

/// A virtual address in the single shared simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A physical address assigned by the simulated VM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

impl VAddr {
    /// The address `offset` bytes past this one.
    #[must_use]
    pub fn offset(self, offset: u64) -> VAddr {
        VAddr(self.0 + offset)
    }

    /// The virtual page number for pages of `page_bytes` bytes.
    pub fn page(self, page_bytes: u64) -> u64 {
        self.0 / page_bytes
    }

    /// The offset within the page.
    pub fn page_offset(self, page_bytes: u64) -> u64 {
        self.0 % page_bytes
    }

    /// The byte range `[self, self + len)`.
    pub fn range(self, len: u64) -> Range<u64> {
        self.0..self.0 + len
    }
}

impl PAddr {
    /// The address `offset` bytes past this one.
    #[must_use]
    pub fn offset(self, offset: u64) -> PAddr {
        PAddr(self.0 + offset)
    }

    /// The physical line number for lines of `line_bytes` bytes.
    pub fn line(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

impl From<u64> for VAddr {
    fn from(raw: u64) -> Self {
        VAddr(raw)
    }
}

impl From<u64> for PAddr {
    fn from(raw: u64) -> Self {
        PAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_and_pages() {
        let a = VAddr(0x2000);
        assert_eq!(a.offset(0x10), VAddr(0x2010));
        assert_eq!(a.page(0x2000), 1);
        assert_eq!(a.offset(0x10).page_offset(0x2000), 0x10);
        assert_eq!(a.range(4), 0x2000..0x2004);
    }

    #[test]
    fn paddr_lines() {
        let p = PAddr(192);
        assert_eq!(p.line(64), 3);
        assert_eq!(p.offset(64).line(64), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VAddr(0x10).to_string(), "v0x10");
        assert_eq!(PAddr(0x20).to_string(), "p0x20");
    }

    #[test]
    fn conversions() {
        assert_eq!(VAddr::from(7u64), VAddr(7));
        assert_eq!(PAddr::from(9u64), PAddr(9));
    }
}
