//! The simulated heap allocator.
//!
//! Hands out virtual address ranges in the single shared address space.
//! It is a bump allocator with alignment and an optional free list for
//! exact-size reuse — the paper's tsp workload allocates and frees
//! solution-subspace matrices continuously through "a standard Solaris
//! memory allocator protected by the mutual exclusion lock", and reuse
//! through a free list reproduces the address-recycling behaviour that
//! makes some of tsp's misses unavoidable.

use crate::addr::VAddr;
use std::collections::BTreeMap;

/// A bump allocator with size-class reuse over the simulated address
/// space.
#[derive(Debug, Clone)]
pub struct SimAllocator {
    next: u64,
    /// Freed blocks by (rounded) size.
    free: BTreeMap<u64, Vec<VAddr>>,
    allocated: u64,
    live: u64,
}

/// Allocations start here, leaving page zero unmapped (null-ish guard).
const HEAP_BASE: u64 = 0x0001_0000;

impl Default for SimAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl SimAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        SimAllocator { next: HEAP_BASE, free: BTreeMap::new(), allocated: 0, live: 0 }
    }

    fn round(bytes: u64, align: u64) -> u64 {
        let align = align.max(1);
        bytes.max(1).div_ceil(align) * align
    }

    /// Allocates `bytes` bytes aligned to `align` (which must be a power
    /// of two; 0 is treated as 1). Freed blocks of the same rounded size
    /// are reused LIFO.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> VAddr {
        let align = align.max(1);
        assert!(align.is_power_of_two(), "alignment {align} must be a power of two");
        let size = Self::round(bytes, align);
        self.allocated += size;
        self.live += size;
        if let Some(list) = self.free.get_mut(&size) {
            if let Some(addr) = list.pop() {
                if list.is_empty() {
                    self.free.remove(&size);
                }
                return addr;
            }
        }
        // Bump: align the cursor, carve the block.
        self.next = self.next.div_ceil(align) * align;
        let addr = VAddr(self.next);
        self.next += size;
        addr
    }

    /// Returns a block for reuse. The size/alignment must match the
    /// original request for the block to be found again.
    pub fn free(&mut self, addr: VAddr, bytes: u64, align: u64) {
        let size = Self::round(bytes, align.max(1));
        self.live = self.live.saturating_sub(size);
        self.free.entry(size).or_default().push(addr);
    }

    /// Total bytes ever allocated (including reuse).
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes currently live.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// Highest address handed out so far (address-space extent).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_do_not_overlap() {
        let mut a = SimAllocator::new();
        let x = a.alloc(100, 8);
        let y = a.alloc(100, 8);
        assert!(y.0 >= x.0 + 100 || x.0 >= y.0 + 100);
    }

    #[test]
    fn alignment_respected() {
        let mut a = SimAllocator::new();
        for align in [1u64, 8, 64, 4096] {
            let x = a.alloc(10, align);
            assert_eq!(x.0 % align, 0, "align {align}");
        }
    }

    #[test]
    fn free_list_reuses_lifo() {
        let mut a = SimAllocator::new();
        let x = a.alloc(256, 64);
        let y = a.alloc(256, 64);
        a.free(x, 256, 64);
        a.free(y, 256, 64);
        assert_eq!(a.alloc(256, 64), y, "LIFO reuse");
        assert_eq!(a.alloc(256, 64), x);
        let z = a.alloc(256, 64);
        assert!(z != x && z != y, "exhausted free list bumps");
    }

    #[test]
    fn different_sizes_do_not_mix() {
        let mut a = SimAllocator::new();
        let x = a.alloc(128, 64);
        a.free(x, 128, 64);
        let y = a.alloc(256, 64);
        assert_ne!(x, y);
    }

    #[test]
    fn accounting() {
        let mut a = SimAllocator::new();
        let x = a.alloc(100, 4); // rounds to 100
        assert_eq!(a.total_allocated(), 100);
        assert_eq!(a.live_bytes(), 100);
        a.free(x, 100, 4);
        assert_eq!(a.live_bytes(), 0);
        a.alloc(100, 4);
        assert_eq!(a.total_allocated(), 200);
        assert!(a.high_water() > 0x10000);
    }

    #[test]
    fn zero_sized_requests_still_distinct() {
        let mut a = SimAllocator::new();
        let x = a.alloc(0, 1);
        let y = a.alloc(0, 1);
        assert_ne!(x, y);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        SimAllocator::new().alloc(8, 3);
    }
}
