//! A generic set-associative cache with true-LRU replacement.
//!
//! Direct-mapped caches (the L1-D and the E-cache of the simulated
//! UltraSPARC-1) are the `associativity = 1` special case. The cache
//! stores no data — only which physical lines are resident and whether
//! they are dirty — which is all the locality experiments need.

use crate::SimError;

/// Geometry of one cache level, in its index-native form: the address
/// split is `line` offset bits, then `log2(sets)` index bits, then the
/// tag. Capacity is the derived quantity (`sets × ways × line`), not a
/// stored one — `8192×1` (direct-mapped), `1024×8` (8-way), and `1×8192`
/// (fully associative) all describe the same 512 KiB of 64-byte lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (1 = fully associative).
    pub sets: u64,
    /// Number of ways per set (1 = direct-mapped).
    pub ways: u64,
    /// Line size in bytes.
    pub line: u64,
}

impl CacheGeometry {
    /// Creates and validates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadGeometry`] if any parameter is zero or not a
    /// power of two.
    pub fn new(sets: u64, ways: u64, line: u64) -> Result<Self, SimError> {
        let geom = CacheGeometry { sets, ways, line };
        geom.validate()?;
        Ok(geom)
    }

    /// Creates a geometry from a total capacity, the historical
    /// `(size, line, ways)` parameterization.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadGeometry`] if any parameter is zero or not a
    /// power of two, or if `size < line × ways` (less than one set).
    pub fn from_capacity(size_bytes: u64, line_bytes: u64, ways: u64) -> Result<Self, SimError> {
        for (name, v) in [("size", size_bytes), ("line", line_bytes), ("ways", ways)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(SimError::BadGeometry {
                    reason: format!("{name} = {v} must be a non-zero power of two"),
                });
            }
        }
        if size_bytes < line_bytes * ways {
            return Err(SimError::BadGeometry {
                reason: format!(
                    "size {} smaller than one set ({} bytes)",
                    size_bytes,
                    line_bytes * ways
                ),
            });
        }
        CacheGeometry::new(size_bytes / (line_bytes * ways), ways, line_bytes)
    }

    /// Validates the geometry (all three parameters must be non-zero
    /// powers of two).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadGeometry`] on any violation.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [("sets", self.sets), ("ways", self.ways), ("line", self.line)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(SimError::BadGeometry {
                    reason: format!("{name} = {v} must be a non-zero power of two"),
                });
            }
        }
        Ok(())
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.sets * self.ways * self.line
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.sets * self.ways
    }
}

/// Result of inserting a line: what, if anything, was displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The displaced physical line number.
    pub pline: u64,
    /// Whether it was dirty (would be written back).
    pub dirty: bool,
}

/// Sentinel for a vacant way. Tags are stored as `pline + 1` so the
/// vacant encoding is zero: a freshly built tag array is all-zero and the
/// allocator can hand back untouched (lazily zeroed) pages instead of a
/// real fill — machine construction sits inside the benchmarks' timed
/// region. The `+ 1` cannot overflow: that would need a physical address
/// within one line of the top of the 64-bit space.
const EMPTY: u64 = 0;

/// Tag encoding of a physical line number (see [`EMPTY`]).
#[inline(always)]
fn tag_of(pline: u64) -> u64 {
    pline + 1
}

/// A set-associative cache tracking resident physical line numbers.
///
/// Storage is structure-of-arrays: the tag array (`plines`) is one `u64`
/// per way, so the hot probe path touches 8 bytes per way instead of a
/// padded tag/dirty/LRU record; the dirty bits and LRU timestamps live in
/// side arrays only read on the insert/eviction paths.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `sets − 1`; the validated geometry makes `sets` a power of two, so
    /// set selection is a mask instead of a modulo on the access path.
    set_mask: u64,
    /// Tag per way (`pline + 1`, [`EMPTY`] = vacant), row-major by set.
    plines: Vec<u64>,
    /// Dirty flag per way (meaningless where `plines` is [`EMPTY`]).
    dirty: Vec<bool>,
    /// LRU timestamp per way (global monotone counter; unused, and left
    /// untouched, for direct-mapped geometries).
    last_use: Vec<u64>,
    tick: u64,
    resident: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n = geometry.lines() as usize;
        Cache {
            geometry,
            set_mask: geometry.sets - 1,
            plines: vec![EMPTY; n], // all-zero: backed by untouched pages
            dirty: vec![false; n],
            // Direct-mapped caches never consult LRU state; skip the
            // allocation (every `last_use` access is behind a
            // `ways > 1` guard).
            last_use: if geometry.ways == 1 { Vec::new() } else { vec![0; n] },
            tick: 0,
            resident: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    #[inline]
    fn set_of(&self, pline: u64) -> usize {
        (pline & self.set_mask) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let ways = self.geometry.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks the line up and, on a hit, refreshes its LRU position.
    /// Returns `true` on hit.
    #[inline]
    pub fn probe(&mut self, pline: u64) -> bool {
        // Direct-mapped: one way per set, so LRU state can never affect a
        // victim choice — a probe is a single tag load and compare, with
        // no timestamp maintenance (the probed line stays clean in the
        // host cache).
        if self.geometry.ways == 1 {
            return self.plines[(pline & self.set_mask) as usize] == tag_of(pline);
        }
        self.tick += 1;
        let tick = self.tick;
        let tag = tag_of(pline);
        let range = self.set_range(self.set_of(pline));
        for i in range {
            if self.plines[i] == tag {
                self.last_use[i] = tick;
                return true;
            }
        }
        false
    }

    /// Whether the line is resident, without touching LRU state.
    pub fn contains(&self, pline: u64) -> bool {
        let range = self.set_range(self.set_of(pline));
        self.plines[range].contains(&tag_of(pline))
    }

    /// Marks a resident line dirty. Returns `true` if the line was found.
    pub fn mark_dirty(&mut self, pline: u64) -> bool {
        let tag = tag_of(pline);
        let range = self.set_range(self.set_of(pline));
        for i in range {
            if self.plines[i] == tag {
                self.dirty[i] = true;
                return true;
            }
        }
        false
    }

    /// Inserts the line (it must not already be resident — use
    /// [`probe`](Self::probe) first), evicting the LRU way of its set if
    /// the set is full. Returns the eviction, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already resident.
    pub fn insert(&mut self, pline: u64, dirty: bool) -> Option<Eviction> {
        debug_assert!(!self.contains(pline), "line {pline:#x} already resident");
        // Direct-mapped: the single way of the set is the victim; no LRU
        // scan or timestamp needed.
        if self.geometry.ways == 1 {
            let set = (pline & self.set_mask) as usize;
            let old = self.plines[set];
            let old_dirty = self.dirty[set];
            self.plines[set] = tag_of(pline);
            self.dirty[set] = dirty;
            return if old == EMPTY {
                self.resident += 1;
                None
            } else {
                Some(Eviction { pline: old - 1, dirty: old_dirty })
            };
        }
        self.tick += 1;
        let range = self.set_range(self.set_of(pline));

        // Empty way first; otherwise evict the LRU way. The set range is
        // never empty (geometry validation keeps `ways ≥ 1`), so seeding
        // the victim with the first index is always in range and the
        // fallthrough below only runs when every way is occupied.
        let mut victim = range.start;
        let mut victim_use = u64::MAX;
        for i in range {
            if self.plines[i] == EMPTY {
                self.plines[i] = tag_of(pline);
                self.dirty[i] = dirty;
                self.last_use[i] = self.tick;
                self.resident += 1;
                return None;
            }
            if self.last_use[i] < victim_use {
                victim_use = self.last_use[i];
                victim = i;
            }
        }
        let evicted = Eviction { pline: self.plines[victim] - 1, dirty: self.dirty[victim] };
        self.plines[victim] = tag_of(pline);
        self.dirty[victim] = dirty;
        self.last_use[victim] = self.tick;
        Some(evicted)
    }

    /// Fused lookup-plus-fill: probes for the line and, on a miss, inserts
    /// it in the same step. Returns `(hit, eviction)`. On a hit the dirty
    /// bit is set when `dirty` is passed (a store) and left untouched
    /// otherwise (a load) — exactly `probe` + `mark_dirty`/`insert`,
    /// which the set-associative path literally is; the direct-mapped
    /// path just avoids recomputing the set and reloading the tag.
    #[inline]
    pub fn probe_or_fill(&mut self, pline: u64, dirty: bool) -> (bool, Option<Eviction>) {
        if self.geometry.ways == 1 {
            let set = (pline & self.set_mask) as usize;
            let tag = tag_of(pline);
            let old = self.plines[set];
            if old == tag {
                if dirty {
                    self.dirty[set] = true;
                }
                return (true, None);
            }
            let old_dirty = self.dirty[set];
            self.plines[set] = tag;
            self.dirty[set] = dirty;
            return if old == EMPTY {
                self.resident += 1;
                (false, None)
            } else {
                (false, Some(Eviction { pline: old - 1, dirty: old_dirty }))
            };
        }
        if self.probe(pline) {
            if dirty {
                self.mark_dirty(pline);
            }
            (true, None)
        } else {
            (false, self.insert(pline, dirty))
        }
    }

    /// Removes the line if resident; returns whether it was dirty.
    pub fn invalidate(&mut self, pline: u64) -> Option<bool> {
        let tag = tag_of(pline);
        let range = self.set_range(self.set_of(pline));
        for i in range {
            if self.plines[i] == tag {
                self.plines[i] = EMPTY;
                self.resident -= 1;
                return Some(self.dirty[i]);
            }
        }
        None
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.resident
    }

    /// Iterates over resident physical line numbers (set order).
    pub fn iter_resident(&self) -> impl Iterator<Item = u64> + '_ {
        self.plines.iter().copied().filter(|&p| p != EMPTY).map(|p| p - 1)
    }

    /// Empties the cache (e.g. between experiment phases, mirroring the
    /// paper's "state is flushed from the cache" setup for Figure 5).
    pub fn flush(&mut self) {
        self.plines.fill(EMPTY);
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache(lines: u64) -> Cache {
        Cache::new(CacheGeometry::new(lines, 1, 64).unwrap())
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(8192, 1, 64).is_ok());
        assert!(CacheGeometry::new(0, 1, 64).is_err());
        assert!(CacheGeometry::new(1024, 1, 0).is_err());
        assert!(CacheGeometry::new(1024, 0, 64).is_err());
        assert!(CacheGeometry::new(1000, 1, 64).is_err(), "non power of two");
    }

    #[test]
    fn geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(512 * 1024, 64, 1).unwrap();
        assert_eq!(g, CacheGeometry { sets: 8192, ways: 1, line: 64 });
        assert_eq!(g.size_bytes(), 512 * 1024);
        let g = CacheGeometry::from_capacity(16 * 1024, 32, 2).unwrap();
        assert_eq!(g, CacheGeometry { sets: 256, ways: 2, line: 32 });
        assert!(CacheGeometry::from_capacity(64, 64, 2).is_err(), "one set needs 128B");
        assert!(CacheGeometry::from_capacity(0, 64, 1).is_err());
        assert!(CacheGeometry::from_capacity(1000, 64, 1).is_err(), "non power of two");
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = CacheGeometry::new(8192, 1, 64).unwrap();
        assert_eq!(g.lines(), 8192);
        assert_eq!(g.size_bytes(), 512 * 1024);
        let g = CacheGeometry::new(256, 2, 32).unwrap();
        assert_eq!(g.lines(), 512);
        assert_eq!(g.size_bytes(), 16 * 1024);
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = dm_cache(16);
        assert!(!c.probe(5));
        assert_eq!(c.insert(5, false), None);
        assert!(c.probe(5));
        assert!(c.contains(5));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm_cache(16);
        c.insert(3, false);
        // 3 and 19 share set 3 in a 16-set direct-mapped cache.
        let ev = c.insert(19, false).expect("conflict must evict");
        assert_eq!(ev.pline, 3);
        assert!(!ev.dirty);
        assert!(!c.contains(3));
        assert!(c.contains(19));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = dm_cache(16);
        c.insert(3, false);
        assert!(c.mark_dirty(3));
        let ev = c.insert(19, false).unwrap();
        assert!(ev.dirty);
        assert!(!c.mark_dirty(3), "gone after eviction");
    }

    #[test]
    fn lru_in_two_way_set() {
        let g = CacheGeometry::new(4, 2, 64).unwrap(); // 4 sets, 2 ways
        let mut c = Cache::new(g);
        // Lines 0, 4, 8 all map to set 0.
        c.insert(0, false);
        c.insert(4, false);
        assert!(c.probe(0)); // 0 becomes MRU; 4 is LRU
        let ev = c.insert(8, false).unwrap();
        assert_eq!(ev.pline, 4, "LRU way must be evicted");
        assert!(c.contains(0) && c.contains(8));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = dm_cache(8);
        c.insert(1, false);
        c.insert(2, true);
        assert_eq!(c.invalidate(2), Some(true));
        assert_eq!(c.invalidate(2), None);
        assert_eq!(c.invalidate(1), Some(false));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn iter_resident_and_flush() {
        let mut c = dm_cache(8);
        for l in [1u64, 2, 5] {
            c.insert(l, false);
        }
        let mut res: Vec<u64> = c.iter_resident().collect();
        res.sort_unstable();
        assert_eq!(res, vec![1, 2, 5]);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.iter_resident().count(), 0);
    }

    #[test]
    fn fills_whole_cache_without_evictions() {
        let mut c = dm_cache(32);
        for l in 0..32u64 {
            assert_eq!(c.insert(l, false), None);
        }
        assert_eq!(c.resident_lines(), 32);
        // The 33rd distinct line must evict.
        assert!(c.insert(32, false).is_some());
    }
}
