//! A generic set-associative cache with true-LRU replacement.
//!
//! Direct-mapped caches (the L1-D and the E-cache of the simulated
//! UltraSPARC-1) are the `associativity = 1` special case. The cache
//! stores no data — only which physical lines are resident and whether
//! they are dirty — which is all the locality experiments need.

use crate::SimError;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Number of ways (1 = direct-mapped).
    pub associativity: u64,
}

impl CacheGeometry {
    /// Creates and validates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadGeometry`] if any parameter is zero or not a
    /// power of two, or if `size < line × associativity`.
    pub fn new(size_bytes: u64, line_bytes: u64, associativity: u64) -> Result<Self, SimError> {
        let geom = CacheGeometry { size_bytes, line_bytes, associativity };
        geom.validate()?;
        Ok(geom)
    }

    fn validate(&self) -> Result<(), SimError> {
        for (name, v) in
            [("size", self.size_bytes), ("line", self.line_bytes), ("ways", self.associativity)]
        {
            if v == 0 || !v.is_power_of_two() {
                return Err(SimError::BadGeometry {
                    reason: format!("{name} = {v} must be a non-zero power of two"),
                });
            }
        }
        if self.size_bytes < self.line_bytes * self.associativity {
            return Err(SimError::BadGeometry {
                reason: format!(
                    "size {} smaller than one set ({} bytes)",
                    self.size_bytes,
                    self.line_bytes * self.associativity
                ),
            });
        }
        Ok(())
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / self.associativity
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    /// Physical line number (`paddr / line_bytes`) resident in this way.
    pline: u64,
    dirty: bool,
    /// LRU timestamp (global monotone counter).
    last_use: u64,
}

/// Result of inserting a line: what, if anything, was displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The displaced physical line number.
    pub pline: u64,
    /// Whether it was dirty (would be written back).
    pub dirty: bool,
}

/// A set-associative cache tracking resident physical line numbers.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `sets × ways` entries, row-major by set.
    ways: Vec<Option<Way>>,
    tick: u64,
    resident: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n = (geometry.sets() * geometry.associativity) as usize;
        Cache { geometry, ways: vec![None; n], tick: 0, resident: 0 }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_of(&self, pline: u64) -> usize {
        (pline % self.geometry.sets()) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let ways = self.geometry.associativity as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks the line up and, on a hit, refreshes its LRU position.
    /// Returns `true` on hit.
    pub fn probe(&mut self, pline: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(pline);
        let tick = self.tick;
        let range = self.set_range(set);
        for way in self.ways[range].iter_mut().flatten() {
            if way.pline == pline {
                way.last_use = tick;
                return true;
            }
        }
        false
    }

    /// Whether the line is resident, without touching LRU state.
    pub fn contains(&self, pline: u64) -> bool {
        let set = self.set_of(pline);
        self.ways[self.set_range(set)].iter().any(|w| w.is_some_and(|way| way.pline == pline))
    }

    /// Marks a resident line dirty. Returns `true` if the line was found.
    pub fn mark_dirty(&mut self, pline: u64) -> bool {
        let set = self.set_of(pline);
        let range = self.set_range(set);
        for way in self.ways[range].iter_mut().flatten() {
            if way.pline == pline {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Inserts the line (it must not already be resident — use
    /// [`probe`](Self::probe) first), evicting the LRU way of its set if
    /// the set is full. Returns the eviction, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already resident.
    pub fn insert(&mut self, pline: u64, dirty: bool) -> Option<Eviction> {
        debug_assert!(!self.contains(pline), "line {pline:#x} already resident");
        self.tick += 1;
        let set = self.set_of(pline);
        let range = self.set_range(set);
        let new = Way { pline, dirty, last_use: self.tick };

        // Empty way first.
        let mut victim: Option<usize> = None;
        let mut victim_use = u64::MAX;
        for i in range {
            match self.ways[i] {
                None => {
                    self.ways[i] = Some(new);
                    self.resident += 1;
                    return None;
                }
                Some(w) if w.last_use < victim_use => {
                    victim_use = w.last_use;
                    victim = Some(i);
                }
                Some(_) => {}
            }
        }
        let i = victim.expect("non-empty set must have an LRU victim");
        let old = self.ways[i].replace(new).expect("victim way is occupied");
        Some(Eviction { pline: old.pline, dirty: old.dirty })
    }

    /// Removes the line if resident; returns whether it was dirty.
    pub fn invalidate(&mut self, pline: u64) -> Option<bool> {
        let set = self.set_of(pline);
        for i in self.set_range(set) {
            if let Some(way) = self.ways[i] {
                if way.pline == pline {
                    self.ways[i] = None;
                    self.resident -= 1;
                    return Some(way.dirty);
                }
            }
        }
        None
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.resident
    }

    /// Iterates over resident physical line numbers (set order).
    pub fn iter_resident(&self) -> impl Iterator<Item = u64> + '_ {
        self.ways.iter().filter_map(|w| w.map(|way| way.pline))
    }

    /// Empties the cache (e.g. between experiment phases, mirroring the
    /// paper's "state is flushed from the cache" setup for Figure 5).
    pub fn flush(&mut self) {
        self.ways.fill(None);
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache(lines: u64) -> Cache {
        Cache::new(CacheGeometry::new(lines * 64, 64, 1).unwrap())
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(512 * 1024, 64, 1).is_ok());
        assert!(CacheGeometry::new(0, 64, 1).is_err());
        assert!(CacheGeometry::new(1024, 0, 1).is_err());
        assert!(CacheGeometry::new(1024, 64, 0).is_err());
        assert!(CacheGeometry::new(1000, 64, 1).is_err(), "non power of two");
        assert!(CacheGeometry::new(64, 64, 2).is_err(), "one set needs 128B");
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = CacheGeometry::new(512 * 1024, 64, 1).unwrap();
        assert_eq!(g.lines(), 8192);
        assert_eq!(g.sets(), 8192);
        let g = CacheGeometry::new(16 * 1024, 32, 2).unwrap();
        assert_eq!(g.lines(), 512);
        assert_eq!(g.sets(), 256);
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = dm_cache(16);
        assert!(!c.probe(5));
        assert_eq!(c.insert(5, false), None);
        assert!(c.probe(5));
        assert!(c.contains(5));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm_cache(16);
        c.insert(3, false);
        // 3 and 19 share set 3 in a 16-set direct-mapped cache.
        let ev = c.insert(19, false).expect("conflict must evict");
        assert_eq!(ev.pline, 3);
        assert!(!ev.dirty);
        assert!(!c.contains(3));
        assert!(c.contains(19));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = dm_cache(16);
        c.insert(3, false);
        assert!(c.mark_dirty(3));
        let ev = c.insert(19, false).unwrap();
        assert!(ev.dirty);
        assert!(!c.mark_dirty(3), "gone after eviction");
    }

    #[test]
    fn lru_in_two_way_set() {
        let g = CacheGeometry::new(4 * 64 * 2, 64, 2).unwrap(); // 4 sets, 2 ways
        let mut c = Cache::new(g);
        // Lines 0, 4, 8 all map to set 0.
        c.insert(0, false);
        c.insert(4, false);
        assert!(c.probe(0)); // 0 becomes MRU; 4 is LRU
        let ev = c.insert(8, false).unwrap();
        assert_eq!(ev.pline, 4, "LRU way must be evicted");
        assert!(c.contains(0) && c.contains(8));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = dm_cache(8);
        c.insert(1, false);
        c.insert(2, true);
        assert_eq!(c.invalidate(2), Some(true));
        assert_eq!(c.invalidate(2), None);
        assert_eq!(c.invalidate(1), Some(false));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn iter_resident_and_flush() {
        let mut c = dm_cache(8);
        for l in [1u64, 2, 5] {
            c.insert(l, false);
        }
        let mut res: Vec<u64> = c.iter_resident().collect();
        res.sort_unstable();
        assert_eq!(res, vec![1, 2, 5]);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.iter_resident().count(), 0);
    }

    #[test]
    fn fills_whole_cache_without_evictions() {
        let mut c = dm_cache(32);
        for l in 0..32u64 {
            assert_eq!(c.insert(l, false), None);
        }
        assert_eq!(c.resident_lines(), 32);
        // The 33rd distinct line must evict.
        assert!(c.insert(32, false).is_some());
    }
}
