//! A Cache Miss Lookaside buffer (CML).
//!
//! The paper's future-work section (§7) cites Bershad et al.'s CML — "an
//! inexpensive hardware device placed between the cache and main memory"
//! that records a miss history at page granularity — and suggests that
//! "with the use of a related hardware device … some sharing patterns
//! could be inferred without user intervention."
//!
//! This is that device: a small direct-mapped table of per-page miss
//! counters, filled on every E-cache miss and drained by the runtime at
//! context switches. Like the real hardware it is lossy — two pages that
//! collide in the table evict each other's history — so anything built
//! on it must tolerate approximation.

/// One CML entry: a virtual page number and its miss count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmlEntry {
    /// Virtual page number.
    pub vpn: u64,
    /// Misses recorded for this page since the last drain.
    pub count: u32,
}

/// The miss-lookaside device of one processor.
#[derive(Debug, Clone)]
pub struct Cml {
    slots: Vec<Option<CmlEntry>>,
    /// Misses dropped because of slot collisions (diagnostics).
    collisions: u64,
}

impl Cml {
    /// Creates a CML with `entries` slots (rounded up to a power of two,
    /// minimum 8).
    pub fn new(entries: usize) -> Self {
        let entries = entries.max(8).next_power_of_two();
        Cml { slots: vec![None; entries], collisions: 0 }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one miss on `vpn`. A colliding resident entry for another
    /// page is replaced (its history is lost — the device is lossy).
    pub fn record(&mut self, vpn: u64) {
        let idx = (vpn as usize) & (self.slots.len() - 1);
        match &mut self.slots[idx] {
            Some(e) if e.vpn == vpn => e.count += 1,
            slot => {
                if slot.is_some() {
                    self.collisions += 1;
                }
                *slot = Some(CmlEntry { vpn, count: 1 });
            }
        }
    }

    /// Returns all entries (sorted by vpn for determinism) and clears the
    /// table — the runtime's context-switch read.
    pub fn drain(&mut self) -> Vec<CmlEntry> {
        let mut out: Vec<CmlEntry> = self.slots.iter_mut().filter_map(Option::take).collect();
        out.sort_unstable_by_key(|e| e.vpn);
        out
    }

    /// Collisions observed so far (history lost to the small table).
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut cml = Cml::new(16);
        cml.record(5);
        cml.record(5);
        cml.record(7);
        let drained = cml.drain();
        assert_eq!(drained, vec![CmlEntry { vpn: 5, count: 2 }, CmlEntry { vpn: 7, count: 1 }]);
        assert!(cml.drain().is_empty(), "drain clears");
    }

    #[test]
    fn collisions_replace_older_history() {
        let mut cml = Cml::new(8);
        cml.record(1);
        cml.record(9); // 9 & 7 == 1: collides with page 1
        assert_eq!(cml.collisions(), 1);
        let drained = cml.drain();
        assert_eq!(drained, vec![CmlEntry { vpn: 9, count: 1 }], "newer page wins the slot");
    }

    #[test]
    fn capacity_rounding() {
        assert_eq!(Cml::new(0).capacity(), 8);
        assert_eq!(Cml::new(9).capacity(), 16);
        assert_eq!(Cml::new(128).capacity(), 128);
    }

    #[test]
    fn drain_is_sorted() {
        let mut cml = Cml::new(64);
        for vpn in [40u64, 3, 17, 22] {
            cml.record(vpn);
        }
        let vpns: Vec<u64> = cml.drain().iter().map(|e| e.vpn).collect();
        assert_eq!(vpns, vec![3, 17, 22, 40]);
    }
}
