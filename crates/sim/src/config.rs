//! Machine configurations, including the paper's two platforms.
//!
//! Table 1 of the paper gives the simulated UltraSPARC-1 memory hierarchy;
//! §5 adds the Enterprise 5000 numbers (E-cache miss of 50 cycles, or 80
//! if the line is cached by another processor) and the interconnect.

use crate::cache::CacheGeometry;
use crate::paging::PagePlacement;
use crate::tlb::TlbConfig;
use crate::SimError;

/// Cycle costs of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLatencies {
    /// An access that hits in the L1 (data or instruction).
    pub l1_hit: u64,
    /// An L1 miss that hits in the unified E-cache (paper: 3 cycles).
    pub l2_hit: u64,
    /// An E-cache miss served from memory (Ultra-1: 42; E5000: 50).
    pub l2_miss: u64,
    /// An E-cache miss for a line currently cached by *another* processor
    /// (E5000: 80; equal to `l2_miss` on single-processor machines).
    pub l2_miss_remote: u64,
}

/// Geometries of the three caches of one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache (Table 1: 16 KiB, 2-way, 32-byte lines).
    pub l1i: CacheGeometry,
    /// L1 data cache (Table 1: 16 KiB, direct-mapped, 32-byte lines,
    /// write-through).
    pub l1d: CacheGeometry,
    /// Unified external (L2) E-cache (Table 1: 512 KiB, direct-mapped,
    /// 64-byte lines, write-back, inclusive of both L1s).
    pub l2: CacheGeometry,
}

impl HierarchyConfig {
    /// The Table 1 UltraSPARC-1 hierarchy.
    pub fn ultrasparc1() -> Self {
        HierarchyConfig {
            l1i: CacheGeometry { sets: 256, ways: 2, line: 32 },
            l1d: CacheGeometry { sets: 512, ways: 1, line: 32 },
            l2: CacheGeometry { sets: 8192, ways: 1, line: 64 },
        }
    }

    /// Validates all three geometries and the inclusion requirement
    /// (L2 line size must be a multiple of the L1 line sizes).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadGeometry`] on any violation.
    pub fn validate(&self) -> Result<(), SimError> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        if !self.l2.line.is_multiple_of(self.l1d.line)
            || !self.l2.line.is_multiple_of(self.l1i.line)
        {
            return Err(SimError::BadGeometry {
                reason: "L2 line size must be a multiple of the L1 line sizes (inclusion)".into(),
            });
        }
        Ok(())
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of processors.
    pub cpus: usize,
    /// Per-processor cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Cycle costs.
    pub latencies: CacheLatencies,
    /// Page size in bytes (UltraSPARC/Solaris: 8 KiB).
    pub page_bytes: u64,
    /// Virtual→physical page placement policy.
    pub placement: PagePlacement,
    /// Per-processor TLB geometry and walk latency.
    pub tlb: TlbConfig,
}

impl MachineConfig {
    /// The paper's single-processor platform: a stand-alone 167 MHz
    /// UltraSPARC-1 workstation (Table 1: E-cache miss penalty 42 cycles).
    pub fn ultra1() -> Self {
        MachineConfig {
            cpus: 1,
            hierarchy: HierarchyConfig::ultrasparc1(),
            latencies: CacheLatencies { l1_hit: 1, l2_hit: 3, l2_miss: 42, l2_miss_remote: 42 },
            page_bytes: 8 * 1024,
            placement: PagePlacement::bin_hopping(),
            tlb: TlbConfig::default(),
        }
    }

    /// The paper's multiprocessor platform: an `cpus`-way Sun Enterprise
    /// 5000 (E-cache miss: 50 cycles, or 80 if the line is cached by
    /// another processor). The paper uses 8 processors.
    pub fn enterprise5000(cpus: usize) -> Self {
        MachineConfig {
            cpus,
            hierarchy: HierarchyConfig::ultrasparc1(),
            latencies: CacheLatencies { l1_hit: 1, l2_hit: 3, l2_miss: 50, l2_miss_remote: 80 },
            page_bytes: 8 * 1024,
            placement: PagePlacement::bin_hopping(),
            tlb: TlbConfig::default(),
        }
    }

    /// Replaces the page placement policy (builder-style).
    #[must_use]
    pub fn with_placement(mut self, placement: PagePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Replaces the E-cache geometry (builder-style). Line size and the
    /// L1s are untouched, so Table 1 inclusion still validates.
    #[must_use]
    pub fn with_l2_geometry(mut self, l2: CacheGeometry) -> Self {
        self.hierarchy.l2 = l2;
        self
    }

    /// Replaces the page size (builder-style).
    #[must_use]
    pub fn with_page_size(mut self, page_bytes: u64) -> Self {
        self.page_bytes = page_bytes;
        self
    }

    /// Replaces the TLB configuration (builder-style).
    #[must_use]
    pub fn with_tlb(mut self, tlb: TlbConfig) -> Self {
        self.tlb = tlb;
        self
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCpus`] or [`SimError::BadGeometry`].
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cpus == 0 {
            return Err(SimError::NoCpus);
        }
        self.hierarchy.validate()?;
        if self.page_bytes == 0 || !self.page_bytes.is_power_of_two() {
            return Err(SimError::BadGeometry {
                reason: format!("page size {} must be a power of two", self.page_bytes),
            });
        }
        self.tlb.validate()?;
        Ok(())
    }

    /// Number of E-cache lines `N` — the cache-model parameter.
    pub fn l2_lines(&self) -> usize {
        self.hierarchy.l2.lines() as usize
    }

    /// Number of page-sized bins in the L2 cache (for placement policies).
    pub fn l2_page_bins(&self) -> u64 {
        (self.hierarchy.l2.size_bytes() / self.page_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ultra1_matches_table1() {
        let c = MachineConfig::ultra1();
        assert_eq!(c.cpus, 1);
        assert_eq!(c.hierarchy.l2.size_bytes(), 512 * 1024);
        assert_eq!(c.hierarchy.l2.line, 64);
        assert_eq!(c.hierarchy.l2.ways, 1);
        assert_eq!(c.tlb, TlbConfig::default());
        assert_eq!(c.l2_lines(), 8192);
        assert_eq!(c.latencies.l2_hit, 3);
        assert_eq!(c.latencies.l2_miss, 42);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn e5000_miss_costs() {
        let c = MachineConfig::enterprise5000(8);
        assert_eq!(c.cpus, 8);
        assert_eq!(c.latencies.l2_miss, 50);
        assert_eq!(c.latencies.l2_miss_remote, 80);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = MachineConfig::ultra1();
        c.cpus = 0;
        assert_eq!(c.validate(), Err(SimError::NoCpus));

        let mut c = MachineConfig::ultra1();
        c.page_bytes = 3000;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::ultra1();
        c.hierarchy.l1d.line = 128; // larger than the L2 line
        assert!(c.validate().is_err());

        let mut c = MachineConfig::ultra1();
        c.tlb.ways = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn page_bins() {
        let c = MachineConfig::ultra1();
        assert_eq!(c.l2_page_bins(), 64); // 512 KiB / 8 KiB
    }

    #[test]
    fn l1_geometries_match_table1() {
        let h = HierarchyConfig::ultrasparc1();
        assert_eq!(h.l1i.size_bytes(), 16 * 1024);
        assert_eq!(h.l1i.ways, 2);
        assert_eq!(h.l1i.line, 32);
        assert_eq!(h.l1d.ways, 1);

        let c = MachineConfig::ultra1()
            .with_l2_geometry(CacheGeometry { sets: 1024, ways: 8, line: 64 })
            .with_page_size(4096)
            .with_tlb(TlbConfig { sets: 16, ways: 4, walk_cycles: 30 });
        assert!(c.validate().is_ok());
        assert_eq!(c.l2_lines(), 8192);
        assert_eq!(c.l2_page_bins(), 128);
    }
}
