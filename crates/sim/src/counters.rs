//! Performance instrumentation counters (PICs).
//!
//! The UltraSPARC exposes two 32-bit Performance Instrumentation Counters
//! configured through the Performance Control Register (PCR); with the
//! user-access bit set, a runtime can read them without a system call
//! (paper §2.2). The paper's runtime configures them to count **E-cache
//! references** and **E-cache hits** and reads both at every context
//! switch; the difference is the miss count `n` fed to the cache model.
//!
//! [`Pic`] models exactly that: two counters, an event selection, a cheap
//! read, and an interval-delta helper. Overflow wraps at 32 bits like the
//! hardware (callers that read every context switch never notice).

/// Events a counter can be configured to count (subset relevant here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PicEvent {
    /// E-cache (L2) references.
    EcacheRefs,
    /// E-cache (L2) hits.
    EcacheHits,
    /// Cycle count (used by the high-resolution timer experiments).
    Cycles,
}

/// The per-processor performance-counter block.
///
/// ```
/// use locality_sim::Pic;
/// let mut pic = Pic::new();
/// pic.record_l2(true);
/// pic.record_l2(false);
/// assert_eq!(pic.refs(), 2);
/// assert_eq!(pic.hits(), 1);
/// assert_eq!(pic.misses(), 1);
/// let delta = pic.take_interval();
/// assert_eq!(delta.misses, 1);
/// assert_eq!(pic.take_interval().refs, 0); // interval was reset
/// ```
#[derive(Debug, Clone)]
pub struct Pic {
    pic0: u32,
    pic1: u32,
    event0: PicEvent,
    event1: PicEvent,
    /// Snapshot of (pic0, pic1) at the last `take_interval`.
    snap: (u32, u32),
    /// Whether user-level access is enabled (PCR.UT/ST bits). Reads with
    /// user access disabled model a trap and are surfaced to the caller as
    /// a higher cost; the values are returned either way.
    user_access: bool,
}

impl Default for Pic {
    fn default() -> Self {
        Self::new()
    }
}

/// Counter deltas over a scheduling interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PicDelta {
    /// E-cache references during the interval.
    pub refs: u64,
    /// E-cache hits during the interval.
    pub hits: u64,
    /// E-cache misses (`refs − hits`).
    pub misses: u64,
}

impl Pic {
    /// Creates a PIC block configured the way the paper's runtime uses it:
    /// PIC0 = E-cache references, PIC1 = E-cache hits, user access on.
    pub fn new() -> Self {
        Pic {
            pic0: 0,
            pic1: 0,
            event0: PicEvent::EcacheRefs,
            event1: PicEvent::EcacheHits,
            snap: (0, 0),
            user_access: true,
        }
    }

    /// Reconfigures the events (writing the PCR). Clears both counters,
    /// like reprogramming the PCR does in practice.
    pub fn configure(&mut self, event0: PicEvent, event1: PicEvent, user_access: bool) {
        self.event0 = event0;
        self.event1 = event1;
        self.user_access = user_access;
        self.pic0 = 0;
        self.pic1 = 0;
        self.snap = (0, 0);
    }

    /// The configured events.
    pub fn events(&self) -> (PicEvent, PicEvent) {
        (self.event0, self.event1)
    }

    /// Whether user-level reads are enabled.
    pub fn user_access(&self) -> bool {
        self.user_access
    }

    /// Records one E-cache access (called by the cache hierarchy).
    pub fn record_l2(&mut self, hit: bool) {
        self.bump(PicEvent::EcacheRefs);
        if hit {
            self.bump(PicEvent::EcacheHits);
        }
    }

    /// Records `refs` E-cache accesses of which `hits` hit, in one shot.
    ///
    /// Equivalent to `refs` calls of [`record_l2`](Self::record_l2) with
    /// `hits` of them hitting: the counters are pure wrapping sums, so a
    /// bulk add lands on exactly the same register values.
    pub fn record_l2_bulk(&mut self, refs: u64, hits: u64) {
        self.bump_by(PicEvent::EcacheRefs, refs);
        self.bump_by(PicEvent::EcacheHits, hits);
    }

    /// Records elapsed cycles (for a `Cycles` event selection).
    pub fn record_cycles(&mut self, cycles: u64) {
        if self.event0 == PicEvent::Cycles {
            self.pic0 = self.pic0.wrapping_add(cycles as u32);
        }
        if self.event1 == PicEvent::Cycles {
            self.pic1 = self.pic1.wrapping_add(cycles as u32);
        }
    }

    fn bump(&mut self, ev: PicEvent) {
        self.bump_by(ev, 1);
    }

    fn bump_by(&mut self, ev: PicEvent, n: u64) {
        // `n as u32` is `n mod 2³²` — the same value `n` wrapping
        // single-increments leave behind.
        if self.event0 == ev {
            self.pic0 = self.pic0.wrapping_add(n as u32);
        }
        if self.event1 == ev {
            self.pic1 = self.pic1.wrapping_add(n as u32);
        }
    }

    /// Raw register values `(PIC0, PIC1)`.
    pub fn read_raw(&self) -> (u32, u32) {
        (self.pic0, self.pic1)
    }

    /// Cumulative E-cache references (assuming the default configuration).
    pub fn refs(&self) -> u64 {
        self.pic0 as u64
    }

    /// Cumulative E-cache hits (assuming the default configuration).
    pub fn hits(&self) -> u64 {
        self.pic1 as u64
    }

    /// Cumulative E-cache misses (`refs − hits`, 32-bit wrapping like the
    /// hardware registers).
    pub fn misses(&self) -> u64 {
        self.pic0.wrapping_sub(self.pic1) as u64
    }

    /// Reads the interval deltas since the previous call and starts a new
    /// interval — exactly what the runtime does at a context switch
    /// ("reading and resetting the appropriate registers", paper §5).
    pub fn take_interval(&mut self) -> PicDelta {
        let refs = self.pic0.wrapping_sub(self.snap.0) as u64;
        let hits = self.pic1.wrapping_sub(self.snap.1) as u64;
        self.snap = (self.pic0, self.pic1);
        PicDelta { refs, hits, misses: refs.saturating_sub(hits) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration() {
        let pic = Pic::new();
        assert_eq!(pic.events(), (PicEvent::EcacheRefs, PicEvent::EcacheHits));
        assert!(pic.user_access());
        assert_eq!(pic.read_raw(), (0, 0));
    }

    #[test]
    fn records_refs_and_hits() {
        let mut pic = Pic::new();
        for i in 0..10 {
            pic.record_l2(i % 2 == 0);
        }
        assert_eq!(pic.refs(), 10);
        assert_eq!(pic.hits(), 5);
        assert_eq!(pic.misses(), 5);
    }

    #[test]
    fn interval_deltas_reset() {
        let mut pic = Pic::new();
        pic.record_l2(false);
        pic.record_l2(false);
        pic.record_l2(true);
        let d = pic.take_interval();
        assert_eq!(d, PicDelta { refs: 3, hits: 1, misses: 2 });
        pic.record_l2(false);
        let d = pic.take_interval();
        assert_eq!(d, PicDelta { refs: 1, hits: 0, misses: 1 });
    }

    #[test]
    fn wrapping_at_32_bits() {
        let mut pic = Pic::new();
        pic.pic0 = u32::MAX;
        pic.snap = (u32::MAX, 0);
        pic.record_l2(false); // pic0 wraps to 0
        let d = pic.take_interval();
        assert_eq!(d.refs, 1, "wrap must still yield a correct delta");
    }

    #[test]
    fn both_registers_wrap_between_snapshots() {
        // An interval in which pic0 (refs) and pic1 (hits) each cross
        // the 32-bit boundary: the wrapping deltas must still be exact.
        let mut pic = Pic::new();
        pic.pic0 = u32::MAX - 2;
        pic.pic1 = u32::MAX - 1;
        pic.snap = (pic.pic0, pic.pic1);
        for i in 0..10 {
            pic.record_l2(i % 2 == 0); // 10 refs, 5 hits
        }
        assert!(pic.pic0 < 10, "pic0 must have wrapped");
        assert!(pic.pic1 < 10, "pic1 must have wrapped");
        let d = pic.take_interval();
        assert_eq!(d, PicDelta { refs: 10, hits: 5, misses: 5 });
    }

    #[test]
    fn hits_register_wraps_alone() {
        // Only pic1 crosses the boundary (possible after a PCR rewrite
        // left the registers at different counts): the delta for pic1
        // must still come out right, and misses must not underflow.
        let mut pic = Pic::new();
        pic.pic1 = u32::MAX;
        pic.snap = (0, u32::MAX);
        pic.record_l2(true); // both bump; pic1 wraps to 0
        pic.record_l2(true);
        let d = pic.take_interval();
        assert_eq!(d.hits, 2, "pic1 wrap must still yield a correct delta");
        assert_eq!(d.refs, 2);
        assert_eq!(d.misses, 0);
        // Next interval starts clean from the post-wrap snapshot.
        assert_eq!(pic.take_interval(), PicDelta::default());
    }

    #[test]
    fn reconfigure_clears() {
        let mut pic = Pic::new();
        pic.record_l2(true);
        pic.configure(PicEvent::Cycles, PicEvent::EcacheHits, false);
        assert_eq!(pic.read_raw(), (0, 0));
        assert!(!pic.user_access());
        pic.record_cycles(7);
        assert_eq!(pic.read_raw().0, 7);
        pic.record_l2(true); // hits still counted on pic1
        assert_eq!(pic.read_raw().1, 1);
    }
}
