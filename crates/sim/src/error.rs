use std::error::Error;
use std::fmt;

/// Errors raised by simulator configuration validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A cache geometry parameter was zero or not a power of two, or the
    /// sizes were inconsistent (e.g. line larger than the cache).
    BadGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The machine was configured with zero processors.
    NoCpus,
    /// A processor index was out of range.
    BadCpu {
        /// The rejected index.
        cpu: usize,
        /// The number of processors configured.
        cpus: usize,
    },
    /// A performance-counter read trapped: the PCR user-access bit is
    /// cleared (a user-level `rd %pic` faults into the kernel) or an
    /// injected [`TrapOnRead`](crate::faults::FaultKind::TrapOnRead)
    /// fault is live. The interval is *not* reset — counts keep
    /// accumulating until a read succeeds.
    CounterTrap {
        /// The processor whose read trapped.
        cpu: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadGeometry { reason } => write!(f, "invalid cache geometry: {reason}"),
            SimError::NoCpus => write!(f, "machine must have at least one processor"),
            SimError::BadCpu { cpu, cpus } => {
                write!(f, "processor index {cpu} out of range (machine has {cpus})")
            }
            SimError::CounterTrap { cpu } => {
                write!(f, "performance-counter read trapped on cpu {cpu}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::NoCpus.to_string().contains("at least one"));
        assert!(SimError::BadCpu { cpu: 9, cpus: 8 }.to_string().contains('9'));
        assert!(SimError::CounterTrap { cpu: 3 }.to_string().contains("trapped on cpu 3"));
        let e = SimError::BadGeometry { reason: "line of 0 bytes".into() };
        assert!(e.to_string().contains("line of 0 bytes"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
