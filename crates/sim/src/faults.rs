//! Deterministic fault injection on the performance-counter read path.
//!
//! Real PIC reads are not as clean as the simulator's: the 32-bit
//! registers wrap on long intervals, multiplexed counters lose whole
//! intervals, PCR misprogramming freezes or saturates counts, and a read
//! with the user-access bit cleared traps into the kernel. The paper's
//! runtime quietly assumes none of this happens; the point of this
//! module is to stop assuming and let the estimator/scheduler stack
//! prove it degrades gracefully instead of panicking or chasing garbage
//! miss counts.
//!
//! A [`FaultInjector`] is installed on the [`Machine`](crate::Machine)
//! and perturbs every [`pic_take_interval`](crate::Machine::pic_take_interval)
//! result while active. Everything is driven by a caller-supplied seed
//! through a private SplitMix64 stream, so runs are exactly
//! reproducible, and an optional activation [`FaultWindow`] lets
//! experiments demonstrate *recovery* once a transient fault clears.

use crate::counters::PicDelta;

/// Reported deltas at or above this are physically implausible for one
/// scheduling interval (the registers are 32-bit; a quantum of ~10⁵
/// references is generous) and indicate a wrap/reset artifact.
pub const WRAP_ARTIFACT_THRESHOLD: u64 = 1 << 31;

/// The ways a counter read can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// 32-bit wraparound on a long interval (or a counter reset between
    /// snapshots): the reference register goes "backwards", so the
    /// wrapping 32-bit delta comes out near 2³² — an absurd miss count.
    Wraparound,
    /// The registers freeze: every read while the fault is active
    /// repeats the first delta observed, regardless of real activity.
    StuckAt,
    /// Counter multiplexing loses intervals: with probability
    /// `p_millis`/1000 a read reports all-zero deltas.
    Dropout {
        /// Drop probability in thousandths (0..=1000).
        p_millis: u32,
    },
    /// Counts clamp at `cap` per register, as if the counter saturated
    /// instead of wrapping. Misses are recomputed from the clamped
    /// registers, so they shrink toward zero.
    Saturate {
        /// Per-register ceiling applied to the interval delta.
        cap: u64,
    },
    /// Multiplicative over/under-count: each register is scaled by an
    /// independent factor drawn uniformly from `1 ± percent/100`.
    Noise {
        /// Maximum relative error, in percent (e.g. 40 ⇒ ±40%).
        percent: u32,
    },
    /// Every read traps (models the PCR user-access bit being cleared:
    /// a user-level `rd %pic` faults into the kernel). The read fails
    /// and the interval is *not* reset — counts keep accumulating.
    TrapOnRead,
}

/// Activation window in units of machine-wide counter reads: the fault
/// is live for reads `start..end` and dormant outside. `None` in
/// [`FaultConfig::window`] means "always active".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First read (0-based, machine-wide) the fault affects.
    pub start: u64,
    /// First read no longer affected.
    pub end: u64,
}

impl FaultWindow {
    /// Whether read number `read` falls inside the window.
    pub fn contains(&self, read: u64) -> bool {
        (self.start..self.end).contains(&read)
    }
}

/// A complete fault specification: what goes wrong, when, and the seed
/// that makes the pseudo-random parts reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// The failure mode to inject.
    pub kind: FaultKind,
    /// Seed of the injector's private random stream.
    pub seed: u64,
    /// Optional activation window; `None` = active for the whole run.
    pub window: Option<FaultWindow>,
}

impl FaultConfig {
    /// A fault of `kind` that is active for the whole run.
    pub fn always(kind: FaultKind, seed: u64) -> Self {
        FaultConfig { kind, seed, window: None }
    }

    /// A fault of `kind` active only for reads `start..end`.
    pub fn windowed(kind: FaultKind, seed: u64, start: u64, end: u64) -> Self {
        FaultConfig { kind, seed, window: Some(FaultWindow { start, end }) }
    }
}

/// Stateful perturbation of the PIC read path; see the module docs.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    /// SplitMix64 state (private stream: the sim crate stays free of
    /// RNG dependencies and workload RNG streams stay undisturbed).
    state: u64,
    /// Machine-wide reads observed so far (window clock).
    reads: u64,
    /// The frozen delta for [`FaultKind::StuckAt`].
    stuck: Option<PicDelta>,
}

impl FaultInjector {
    /// Creates an injector for `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            // Pre-mix so seed 0 does not start with a zero state.
            state: config.seed ^ 0x9E37_79B9_7F4A_7C15,
            reads: 0,
            stuck: None,
        }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Machine-wide counter reads observed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Whether the fault would affect the *next* read.
    pub fn active(&self) -> bool {
        match self.config.window {
            Some(w) => w.contains(self.reads),
            None => true,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Advances the window clock by one read and reports whether the
    /// fault is live for it. Leaving the window clears sticky state, so
    /// recovery after a transient fault is genuine.
    pub fn begin_read(&mut self) -> bool {
        let live = self.active();
        self.reads += 1;
        if !live {
            self.stuck = None;
        }
        live
    }

    /// Whether a live read should trap instead of returning a delta.
    /// Only meaningful after [`begin_read`](Self::begin_read) returned
    /// `true`.
    pub fn traps(&self) -> bool {
        matches!(self.config.kind, FaultKind::TrapOnRead)
    }

    /// Perturbs one true interval delta according to the fault kind.
    pub fn perturb(&mut self, truth: PicDelta) -> PicDelta {
        match self.config.kind {
            FaultKind::Wraparound => {
                // The refs register went backwards by `excess` (reset or
                // missed 2³² carry); the 32-bit wrapping subtraction then
                // reports a near-2³² garbage delta. Hits stay sane —
                // refs wraps first because it counts strictly more
                // events — so misses explode.
                let excess = (1 << 24) + (self.next_u64() & ((1 << 28) - 1));
                let refs = truth.refs.wrapping_sub(excess) & 0xFFFF_FFFF;
                PicDelta { refs, hits: truth.hits, misses: refs.saturating_sub(truth.hits) }
            }
            FaultKind::StuckAt => {
                let frozen = *self.stuck.get_or_insert(truth);
                frozen
            }
            FaultKind::Dropout { p_millis } => {
                if self.next_u64() % 1000 < u64::from(p_millis.min(1000)) {
                    PicDelta::default()
                } else {
                    truth
                }
            }
            FaultKind::Saturate { cap } => {
                let refs = truth.refs.min(cap);
                let hits = truth.hits.min(cap);
                PicDelta { refs, hits, misses: refs.saturating_sub(hits) }
            }
            FaultKind::Noise { percent } => {
                let spread = f64::from(percent) / 100.0;
                let scale = |v: u64, f: &mut Self| -> u64 {
                    let factor = 1.0 + spread * (2.0 * f.next_f64() - 1.0);
                    ((v as f64 * factor).max(0.0)) as u64
                };
                let refs = scale(truth.refs, self);
                let hits = scale(truth.hits, self).min(refs);
                PicDelta { refs, hits, misses: refs.saturating_sub(hits) }
            }
            FaultKind::TrapOnRead => truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> PicDelta {
        PicDelta { refs: 1000, hits: 900, misses: 100 }
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = FaultConfig::always(FaultKind::Noise { percent: 40 }, 7);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..50 {
            assert!(a.begin_read() && b.begin_read());
            assert_eq!(a.perturb(truth()), b.perturb(truth()));
        }
        let mut c = FaultInjector::new(FaultConfig::always(FaultKind::Noise { percent: 40 }, 8));
        c.begin_read();
        assert_ne!(a.perturb(truth()), c.perturb(truth()), "different seed, different stream");
    }

    #[test]
    fn wraparound_reports_absurd_misses() {
        let mut inj = FaultInjector::new(FaultConfig::always(FaultKind::Wraparound, 1));
        assert!(inj.begin_read());
        let d = inj.perturb(truth());
        assert!(d.refs >= WRAP_ARTIFACT_THRESHOLD, "refs must look wrapped: {d:?}");
        assert!(d.misses >= WRAP_ARTIFACT_THRESHOLD, "misses must be absurd: {d:?}");
        assert!(d.refs < 1 << 32, "still a 32-bit register delta");
    }

    #[test]
    fn stuck_at_repeats_first_delta_and_clears_outside_window() {
        let mut inj = FaultInjector::new(FaultConfig::windowed(FaultKind::StuckAt, 1, 0, 3));
        assert!(inj.begin_read());
        let first = inj.perturb(PicDelta { refs: 5, hits: 5, misses: 0 });
        assert!(inj.begin_read());
        assert_eq!(inj.perturb(truth()), first, "stuck counters repeat");
        assert!(inj.begin_read());
        assert_eq!(inj.perturb(truth()), first);
        // Window over: the next read is healthy and sticky state resets.
        assert!(!inj.begin_read());
        assert!(inj.stuck.is_none(), "recovery must be genuine");
    }

    #[test]
    fn dropout_zeroes_some_intervals() {
        let mut inj =
            FaultInjector::new(FaultConfig::always(FaultKind::Dropout { p_millis: 500 }, 3));
        let mut zeroed = 0;
        for _ in 0..400 {
            inj.begin_read();
            if inj.perturb(truth()) == PicDelta::default() {
                zeroed += 1;
            }
        }
        assert!((100..300).contains(&zeroed), "~50% dropout expected, got {zeroed}/400");
    }

    #[test]
    fn saturation_clamps_registers() {
        let mut inj = FaultInjector::new(FaultConfig::always(FaultKind::Saturate { cap: 950 }, 1));
        inj.begin_read();
        let d = inj.perturb(truth());
        assert_eq!(d, PicDelta { refs: 950, hits: 900, misses: 50 });
        let d2 = inj.perturb(PicDelta { refs: 2000, hits: 1990, misses: 10 });
        assert_eq!(d2, PicDelta { refs: 950, hits: 950, misses: 0 }, "misses vanish");
    }

    #[test]
    fn noise_stays_consistent() {
        let mut inj = FaultInjector::new(FaultConfig::always(FaultKind::Noise { percent: 40 }, 5));
        for _ in 0..200 {
            inj.begin_read();
            let d = inj.perturb(truth());
            assert!(d.hits <= d.refs, "hits must never exceed refs: {d:?}");
            assert_eq!(d.misses, d.refs - d.hits);
            assert!(d.refs <= 1400 && d.refs >= 600, "±40% bound: {d:?}");
        }
    }

    #[test]
    fn window_gates_activity() {
        let mut inj = FaultInjector::new(FaultConfig::windowed(FaultKind::Wraparound, 1, 2, 4));
        assert!(!inj.begin_read()); // read 0
        assert!(!inj.begin_read()); // read 1
        assert!(inj.begin_read()); // read 2
        assert!(inj.begin_read()); // read 3
        assert!(!inj.begin_read()); // read 4
        assert_eq!(inj.reads(), 5);
    }

    #[test]
    fn trap_kind_traps() {
        let mut inj = FaultInjector::new(FaultConfig::always(FaultKind::TrapOnRead, 1));
        assert!(inj.begin_read());
        assert!(inj.traps());
    }
}
