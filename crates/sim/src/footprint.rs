//! Reusable, slot-indexed scratch for ground-truth footprint scans.
//!
//! [`Machine::l2_footprints`](crate::machine::Machine::l2_footprints)
//! returns a fresh `BTreeMap` and allocates an owner list per resident
//! line — fine for tests, too heavy for monitoring hooks that scan the
//! E-cache at **every context switch**. [`FootprintScratch`] is the
//! steady-state-allocation-free alternative: owner thread ids are
//! interned into dense slots (a scratch-local
//! [`ThreadSlots`](locality_core::ThreadSlots) registry), counts live in
//! a slot-indexed `Vec`, and every buffer is reused across scans.
//!
//! ```
//! use locality_sim::{FootprintScratch, Machine, MachineConfig};
//! use locality_sim::machine::AccessKind;
//! use locality_core::ThreadId;
//!
//! let mut m = Machine::try_new(MachineConfig::ultra1())?;
//! let a = m.alloc(4096, 64);
//! m.register_region(ThreadId(1), a, 4096);
//! for i in (0..4096u64).step_by(64) {
//!     m.access(0, a.offset(i), AccessKind::Read);
//! }
//! let mut scratch = FootprintScratch::new();
//! m.l2_footprints_into(0, &mut scratch);
//! assert_eq!(scratch.lines(ThreadId(1)), 64);
//! # Ok::<(), locality_sim::SimError>(())
//! ```

use locality_core::{ThreadId, ThreadSlots};

/// Reusable output buffer for [`Machine::l2_footprints_into`].
///
/// Holds the per-thread resident-line counts of the most recent scan.
/// Thread ids seen across scans are interned once; subsequent scans
/// reuse the slot, so a scratch that has warmed up performs no
/// allocation at all.
///
/// [`Machine::l2_footprints_into`]: crate::machine::Machine::l2_footprints_into
#[derive(Debug, Clone, Default)]
pub struct FootprintScratch {
    /// Scratch-local interning of owner ids (never released: a stale
    /// thread simply keeps a zero count).
    slots: ThreadSlots,
    /// Slot-indexed resident-line counts of the current scan.
    counts: Vec<u64>,
    /// Slots with a non-zero count this scan, in first-touch order.
    touched: Vec<(u32, ThreadId)>,
    /// Per-line owner list, loaned to the scan via
    /// [`take_owner_buf`](Self::take_owner_buf).
    owners: Vec<ThreadId>,
}

impl FootprintScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        FootprintScratch::default()
    }

    /// Resident lines of `tid` in the most recent scan (zero if the
    /// thread owned nothing).
    pub fn lines(&self, tid: ThreadId) -> u64 {
        match self.slots.lookup(tid) {
            Some(slot) => self.counts.get(slot.index()).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Number of threads with at least one resident line in the most
    /// recent scan.
    pub fn thread_count(&self) -> usize {
        self.touched.len()
    }

    /// The `(thread, lines)` pairs of the most recent scan, sorted by
    /// thread id (control path: collects and sorts).
    pub fn to_sorted(&self) -> Vec<(ThreadId, u64)> {
        let mut out: Vec<(ThreadId, u64)> =
            self.touched.iter().map(|&(i, tid)| (tid, self.counts[i as usize])).collect();
        out.sort_unstable_by_key(|&(tid, _)| tid);
        out
    }

    /// Resets the counts of the previous scan (sparse reset: only slots
    /// that were touched are zeroed).
    pub(crate) fn begin(&mut self) {
        for &(i, _) in &self.touched {
            self.counts[i as usize] = 0;
        }
        self.touched.clear();
    }

    /// Loans out the per-line owner buffer (return it with
    /// [`restore_owner_buf`](Self::restore_owner_buf)).
    pub(crate) fn take_owner_buf(&mut self) -> Vec<ThreadId> {
        std::mem::take(&mut self.owners)
    }

    /// Returns the loaned owner buffer for reuse by the next scan.
    pub(crate) fn restore_owner_buf(&mut self, buf: Vec<ThreadId>) {
        self.owners = buf;
    }

    /// Credits one resident line to every owner in `owners`.
    pub(crate) fn tally(&mut self, owners: &[ThreadId]) {
        for &tid in owners {
            let slot = self.slots.bind(tid);
            let i = slot.index();
            if i >= self.counts.len() {
                self.counts.resize(i + 1, 0);
            }
            if self.counts[i] == 0 {
                self.touched.push((i as u32, tid));
            }
            self.counts[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn tally_counts_and_resets() {
        let mut s = FootprintScratch::new();
        s.begin();
        s.tally(&[t(1), t(2)]);
        s.tally(&[t(1)]);
        assert_eq!(s.lines(t(1)), 2);
        assert_eq!(s.lines(t(2)), 1);
        assert_eq!(s.lines(t(3)), 0);
        assert_eq!(s.thread_count(), 2);
        // A new scan fully forgets the previous one.
        s.begin();
        s.tally(&[t(3)]);
        assert_eq!(s.lines(t(1)), 0);
        assert_eq!(s.lines(t(3)), 1);
        assert_eq!(s.thread_count(), 1);
    }

    #[test]
    fn to_sorted_orders_by_thread_id() {
        let mut s = FootprintScratch::new();
        s.begin();
        s.tally(&[t(9)]);
        s.tally(&[t(2), t(9)]);
        assert_eq!(s.to_sorted(), vec![(t(2), 1), (t(9), 2)]);
    }

    #[test]
    fn owner_buf_round_trips() {
        let mut s = FootprintScratch::new();
        let mut buf = s.take_owner_buf();
        buf.push(t(5));
        s.restore_owner_buf(buf);
        assert_eq!(s.take_owner_buf(), vec![t(5)]);
    }
}
