//! One processor's cache hierarchy: L1-I, L1-D, unified L2, and the PIC
//! block, with L2 inclusion over both L1s.
//!
//! The L1 data cache is write-through / no-write-allocate (UltraSPARC-1),
//! so every store references the E-cache; the E-cache is write-back and
//! write-allocate. When an L2 line is evicted or invalidated, the covered
//! L1 lines are invalidated too (inclusion).

use crate::cache::{Cache, Eviction};
use crate::config::HierarchyConfig;
use crate::counters::Pic;

/// What a single access did at the L2 level (for directory maintenance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Change {
    /// Line brought into the L2 by this access.
    pub filled: Option<u64>,
    /// Line displaced from the L2 (inclusion already enforced).
    pub evicted: Option<Eviction>,
}

/// Outcome of one access against a [`CpuCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Hit in the relevant L1.
    pub l1_hit: bool,
    /// Whether the E-cache was referenced.
    pub l2_ref: bool,
    /// Whether the E-cache reference hit (meaningless if `!l2_ref`).
    pub l2_hit: bool,
    /// L2 fill/eviction performed.
    pub change: L2Change,
}

/// The kind of access at the hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierAccess {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Fetch,
}

/// One processor's caches and counters.
#[derive(Debug, Clone)]
pub struct CpuCache {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    pic: Pic,
    /// `log2(line_bytes)` of the L1s / L2 — line sizes are validated
    /// powers of two, so line-number extraction is a shift, not a divide.
    l1_shift: u32,
    l2_shift: u32,
}

impl CpuCache {
    /// Builds the hierarchy from a validated configuration.
    pub fn new(config: &HierarchyConfig) -> Self {
        CpuCache {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            pic: Pic::new(),
            l1_shift: config.l1d.line.trailing_zeros(),
            l2_shift: config.l2.line.trailing_zeros(),
        }
    }

    /// The performance counters (read-only).
    pub fn pic(&self) -> &Pic {
        &self.pic
    }

    /// The performance counters (for interval reads / reconfiguration).
    pub fn pic_mut(&mut self) -> &mut Pic {
        &mut self.pic
    }

    /// The unified L2 (E-cache), read-only — used for footprint ground
    /// truth.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Performs one access at physical address `pa`.
    pub fn access(&mut self, pa: u64, kind: HierAccess) -> AccessOutcome {
        let outcome = self.access_quiet(pa, kind);
        if outcome.l2_ref {
            self.pic.record_l2(outcome.l2_hit);
        }
        outcome
    }

    /// [`access`](Self::access) without the PIC update. The run-level
    /// machine path accumulates E-cache refs/hits across a whole run and
    /// records them in one [`Pic::record_l2_bulk`] call; the final counter
    /// values are identical because the PIC is a pure event counter.
    pub fn access_quiet(&mut self, pa: u64, kind: HierAccess) -> AccessOutcome {
        let pline1 = pa >> self.l1_shift;
        let pline2 = pa >> self.l2_shift;
        match kind {
            HierAccess::Read => self.read_like(pline1, pline2, false),
            HierAccess::Fetch => self.read_like(pline1, pline2, true),
            HierAccess::Write => self.write(pline1, pline2),
        }
    }

    fn read_like(&mut self, pline1: u64, pline2: u64, fetch: bool) -> AccessOutcome {
        // Fused L1 probe-plus-fill (read allocate; a displaced L1 line is
        // clean under write-through and simply dropped). Filling before
        // the L2 step is equivalent to the textbook fill-after order: the
        // only L1 work the L2 step can do is inclusion-invalidation of
        // the *evicted* L2 line's sublines, which never cover this line —
        // and if the displaced L1 line is among them, both orders leave
        // the set holding exactly the new line.
        let l1 = if fetch { &mut self.l1i } else { &mut self.l1d };
        let (l1_hit, _) = l1.probe_or_fill(pline1, false);
        if l1_hit {
            return AccessOutcome {
                l1_hit: true,
                l2_ref: false,
                l2_hit: false,
                change: L2Change::default(),
            };
        }
        let (l2_hit, evicted) = self.l2.probe_or_fill(pline2, false);
        let mut change = L2Change::default();
        if !l2_hit {
            if let Some(ev) = evicted {
                self.enforce_inclusion(ev.pline);
            }
            change = L2Change { filled: Some(pline2), evicted };
        }
        AccessOutcome { l1_hit: false, l2_ref: true, l2_hit, change }
    }

    fn write(&mut self, pline1: u64, pline2: u64) -> AccessOutcome {
        // Write-through L1: update in place if present (stays clean), no
        // allocation on a write miss.
        let l1_hit = self.l1d.probe(pline1);
        // The store always references the E-cache: a hit marks the line
        // dirty, a miss write-allocates it dirty.
        let (l2_hit, evicted) = self.l2.probe_or_fill(pline2, true);
        let mut change = L2Change::default();
        if !l2_hit {
            if let Some(ev) = evicted {
                self.enforce_inclusion(ev.pline);
            }
            change = L2Change { filled: Some(pline2), evicted };
        }
        AccessOutcome { l1_hit, l2_ref: true, l2_hit, change }
    }

    /// Invalidates the L1 lines covered by an evicted/invalidated L2 line.
    fn enforce_inclusion(&mut self, pline2: u64) {
        let sublines = 1u64 << (self.l2_shift - self.l1_shift);
        let first = pline2 << (self.l2_shift - self.l1_shift);
        for pl1 in first..first + sublines {
            self.l1d.invalidate(pl1);
            self.l1i.invalidate(pl1);
        }
    }

    /// Externally invalidates an L2 line (coherence). Returns `true` if
    /// the line was resident.
    pub fn invalidate_line(&mut self, pline2: u64) -> bool {
        if self.l2.invalidate(pline2).is_some() {
            self.enforce_inclusion(pline2);
            true
        } else {
            false
        }
    }

    /// Whether the L2 holds the line (no LRU side effects).
    pub fn l2_contains(&self, pline2: u64) -> bool {
        self.l2.contains(pline2)
    }

    /// Flushes all three caches.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuCache {
        CpuCache::new(&HierarchyConfig::ultrasparc1())
    }

    #[test]
    fn read_miss_then_hits() {
        let mut c = cpu();
        let o = c.access(0x1000, HierAccess::Read);
        assert!(!o.l1_hit && o.l2_ref && !o.l2_hit);
        assert_eq!(o.change.filled, Some(0x1000 / 64));
        // Same address: L1 hit, no L2 traffic.
        let o = c.access(0x1000, HierAccess::Read);
        assert!(o.l1_hit && !o.l2_ref);
        // Next L1 line within the same L2 line: L1 miss, L2 hit.
        let o = c.access(0x1020, HierAccess::Read);
        assert!(!o.l1_hit && o.l2_ref && o.l2_hit);
        assert_eq!(c.pic().refs(), 2);
        assert_eq!(c.pic().misses(), 1);
    }

    #[test]
    fn write_through_always_references_l2() {
        let mut c = cpu();
        c.access(0x2000, HierAccess::Read); // L1+L2 fill
        let o = c.access(0x2000, HierAccess::Write);
        assert!(o.l1_hit, "line is in L1");
        assert!(o.l2_ref && o.l2_hit, "write-through still references E-cache");
    }

    #[test]
    fn write_miss_does_not_allocate_l1() {
        let mut c = cpu();
        let o = c.access(0x3000, HierAccess::Write);
        assert!(!o.l1_hit && o.l2_ref && !o.l2_hit);
        // A read after the write: L1 must miss (no-write-allocate), L2 hit.
        let o = c.access(0x3000, HierAccess::Read);
        assert!(!o.l1_hit && o.l2_hit);
    }

    #[test]
    fn dirty_line_reported_on_eviction() {
        let mut c = cpu();
        c.access(0x4000, HierAccess::Write);
        // Conflict in the direct-mapped 512 KiB L2: same index, 512 KiB apart.
        let o = c.access(0x4000 + 512 * 1024, HierAccess::Read);
        let ev = o.change.evicted.expect("conflict eviction");
        assert_eq!(ev.pline, 0x4000 / 64);
        assert!(ev.dirty, "written line must evict dirty");
    }

    #[test]
    fn inclusion_invalidates_l1_on_l2_eviction() {
        let mut c = cpu();
        c.access(0x5000, HierAccess::Read); // in L1D and L2
        c.access(0x5000 + 512 * 1024, HierAccess::Read); // evicts L2 line
                                                         // The L1 copy must be gone: a re-read misses both.
        let o = c.access(0x5000, HierAccess::Read);
        assert!(!o.l1_hit, "inclusion must purge the L1 copy");
        assert!(!o.l2_hit);
    }

    #[test]
    fn fetches_use_l1i() {
        let mut c = cpu();
        let o = c.access(0x6000, HierAccess::Fetch);
        assert!(!o.l1_hit && o.l2_ref);
        let o = c.access(0x6000, HierAccess::Fetch);
        assert!(o.l1_hit);
        // A data read of the same address misses L1D but hits the unified L2.
        let o = c.access(0x6000, HierAccess::Read);
        assert!(!o.l1_hit && o.l2_hit);
    }

    #[test]
    fn external_invalidation() {
        let mut c = cpu();
        c.access(0x7000, HierAccess::Read);
        assert!(c.l2_contains(0x7000 / 64));
        assert!(c.invalidate_line(0x7000 / 64));
        assert!(!c.l2_contains(0x7000 / 64));
        assert!(!c.invalidate_line(0x7000 / 64), "already gone");
        // The L1 copy is gone too (inclusion).
        let o = c.access(0x7000, HierAccess::Read);
        assert!(!o.l1_hit && !o.l2_hit);
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = cpu();
        for a in (0..4096u64).step_by(64) {
            c.access(a, HierAccess::Read);
        }
        assert!(c.l2().resident_lines() > 0);
        c.flush();
        assert_eq!(c.l2().resident_lines(), 0);
        let o = c.access(0, HierAccess::Read);
        assert!(!o.l1_hit && !o.l2_hit);
    }
}
