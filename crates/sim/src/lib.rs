//! # locality-sim
//!
//! A deterministic SMP machine simulator: the substrate that stands in for
//! the paper's UltraSPARC-1 / Sun Enterprise 5000 hardware and its
//! Shade-based cache/thread simulator (paper §3).
//!
//! The simulator models, per processor:
//!
//! * a 16 KiB 2-way L1 instruction cache (32-byte lines),
//! * a 16 KiB direct-mapped write-through L1 data cache (32-byte lines),
//! * a unified physically-indexed direct-mapped 512 KiB L2 "E-cache"
//!   (64-byte lines, write-back) that maintains inclusion over both L1s,
//! * a pair of user-readable **performance instrumentation counters**
//!   ([`Pic`]) counting E-cache references and hits — the UltraSPARC PICs
//!   that the paper's runtime reads at every context switch,
//!
//! plus machine-wide:
//!
//! * virtual→physical translation with pluggable page-placement policies
//!   (arbitrary/random, page coloring, Kessler & Hill bin hopping),
//! * a write-invalidate coherence directory (a miss satisfied from another
//!   processor's cache costs more, per the E5000's 50-vs-80-cycle split),
//! * a simulated heap allocator handing out virtual address ranges,
//! * **per-thread footprint ground truth**: threads register the address
//!   ranges that make up their state, and the machine can report exactly
//!   how many resident L2 lines of any processor belong to any thread —
//!   the measurement that is impossible on real hardware and motivated the
//!   paper's simulations.
//!
//! ```
//! use locality_sim::{Machine, MachineConfig, AccessKind};
//! use locality_core::ThreadId;
//!
//! let mut m = Machine::try_new(MachineConfig::ultra1())?;
//! let t = ThreadId(1);
//! m.set_running(0, Some(t));
//! let buf = m.alloc(4096, 64);
//! m.register_region(t, buf, 4096);
//! for off in (0..4096).step_by(64) {
//!     m.access(0, buf.offset(off), AccessKind::Read);
//! }
//! assert_eq!(m.l2_footprint_lines(0, t), 64); // 4096 B / 64 B lines
//! assert_eq!(m.pic(0).misses(), 64);          // all compulsory misses
//! # Ok::<(), locality_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod addr;
pub mod alloc;
pub mod cache;
pub mod cml;
pub mod config;
pub mod counters;
pub mod faults;
pub mod footprint;
pub mod hierarchy;
pub mod machine;
pub mod paging;
pub mod regions;
pub mod stats;
pub mod tlb;
pub mod trace;

pub use addr::{PAddr, VAddr};

/// Spelled-out alias of [`VAddr`].
pub type VirtualAddress = VAddr;
/// Spelled-out alias of [`PAddr`].
pub type PhysicalAddress = PAddr;
pub use cache::{Cache, CacheGeometry};
pub use cml::{Cml, CmlEntry};
pub use config::{CacheLatencies, HierarchyConfig, MachineConfig};
pub use counters::Pic;
pub use error::SimError;
pub use faults::{FaultConfig, FaultInjector, FaultKind, FaultWindow};
pub use footprint::FootprintScratch;
pub use machine::{AccessKind, Machine};
pub use paging::PagePlacement;
pub use regions::RegionTable;
pub use stats::{CpuStats, ThreadStats};
pub use tlb::{Tlb, TlbConfig};
pub use trace::{Trace, TraceRecord};
