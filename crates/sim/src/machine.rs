//! The whole simulated SMP: processors, translation, coherence, and
//! footprint ground truth.

use crate::addr::{PAddr, VAddr};
use crate::alloc::SimAllocator;
use crate::cml::{Cml, CmlEntry};
use crate::config::MachineConfig;
use crate::counters::{Pic, PicDelta};
use crate::error::SimError;
use crate::faults::{FaultConfig, FaultInjector};
use crate::footprint::FootprintScratch;
use crate::hierarchy::{AccessOutcome, CpuCache, HierAccess};
use crate::paging::PageTable;
use crate::regions::RegionTable;
use crate::stats::{CpuStats, ThreadStats};
use crate::tlb::Tlb;
use crate::trace::Trace;
use locality_core::{ThreadId, ThreadSlots};
use std::collections::{BTreeMap, HashMap};

/// `running_slot` sentinel: no thread attributed on this processor.
const IDLE_SLOT: u32 = u32::MAX;

/// The kind of a memory access issued by a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Fetch,
}

impl From<AccessKind> for HierAccess {
    fn from(kind: AccessKind) -> Self {
        match kind {
            AccessKind::Read => HierAccess::Read,
            AccessKind::Write => HierAccess::Write,
            AccessKind::Fetch => HierAccess::Fetch,
        }
    }
}

/// The simulated multiprocessor.
///
/// All methods take plain `usize` processor indices; the machine is
/// deterministic and single-threaded — "parallelism" is the caller's
/// interleaving of `access` calls across processor indices, which is how
/// the runtime engine models an SMP.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    cpus: Vec<CpuCache>,
    page_table: PageTable,
    allocator: SimAllocator,
    regions: RegionTable,
    /// Coherence directory: flat `physical L2 line → bitmask of holders`.
    /// Physical line numbers are dense (frames are allocated `bin +
    /// bins·fill`), so the access path indexes instead of hashing; the
    /// vector grows on fill, and an absent entry means "no holders".
    directory: Vec<u64>,
    /// Per-cpu slot index of the attributed thread ([`IDLE_SLOT`] while
    /// idle), resolved once in [`set_running`](Self::set_running) so the
    /// access path never touches the slot registry's map.
    running_slot: Vec<u32>,
    /// Dense slot registry over threads with live statistics.
    slots: ThreadSlots,
    cpu_stats: Vec<CpuStats>,
    /// Slot-indexed statistics of live threads.
    thread_stats: Vec<ThreadStats>,
    /// Cold storage for retired threads' statistics (slot recycled).
    retired_stats: HashMap<ThreadId, ThreadStats>,
    tracer: Option<Trace>,
    cml: Option<Vec<Cml>>,
    /// Installed counter-fault injector (see [`crate::faults`]).
    faults: Option<FaultInjector>,
    /// `log2` of the E-cache line size (validated power of two), cached so
    /// the access path shifts instead of dividing.
    l2_shift: u32,
    /// Per-processor TLBs (see [`crate::tlb`]).
    tlbs: Vec<Tlb>,
    /// Per-processor µ-translation cache: the last VPN translated
    /// (`u64::MAX` = none) and its frame base. Both the scalar and the
    /// run access paths consult it, so TLB probes fire exactly on page
    /// transitions in either path and a mixed scalar/run access history
    /// stays byte-identical (counters included) to the all-scalar one.
    tlb_vpn: Vec<u64>,
    tlb_frame: Vec<u64>,
}

impl Machine {
    /// Builds the machine, returning a typed error on an invalid
    /// configuration. (The old panicking `Machine::new` constructor is
    /// gone; every caller now handles the `SimError`.)
    pub fn try_new(config: MachineConfig) -> Result<Self, SimError> {
        config.validate()?;
        if config.cpus > 64 {
            // The coherence directory packs holders into a u64 mask.
            return Err(SimError::BadCpu { cpu: config.cpus - 1, cpus: 64 });
        }
        let cpus = (0..config.cpus).map(|_| CpuCache::new(&config.hierarchy)).collect();
        let tlbs = (0..config.cpus).map(|_| Tlb::new(config.tlb)).collect();
        let page_table =
            PageTable::new(config.page_bytes, config.l2_page_bins(), config.placement.clone());
        Ok(Machine {
            tlbs,
            tlb_vpn: vec![u64::MAX; config.cpus],
            tlb_frame: vec![0; config.cpus],
            l2_shift: config.hierarchy.l2.line.trailing_zeros(),
            cpu_stats: vec![CpuStats::default(); config.cpus],
            thread_stats: Vec::new(),
            retired_stats: HashMap::new(),
            slots: ThreadSlots::new(),
            running_slot: vec![IDLE_SLOT; config.cpus],
            cpus,
            page_table,
            allocator: SimAllocator::new(),
            regions: RegionTable::new(),
            // One cache's worth of lines up front; fills past that grow
            // the vector amortized.
            directory: vec![0; config.l2_lines()],
            tracer: None,
            cml: None,
            faults: None,
            config,
        })
    }

    /// Starts recording every access into an in-memory [`Trace`]
    /// (Shade-style reference forwarding; see [`crate::trace`]).
    pub fn start_tracing(&mut self) {
        self.tracer = Some(Trace::new());
    }

    /// Stops tracing and returns the recorded trace (None if tracing was
    /// never started).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.take()
    }

    /// Attaches a Cache Miss Lookaside device (see [`crate::cml`]) with
    /// `entries` slots to every processor. E-cache misses then record
    /// their virtual page numbers.
    pub fn enable_cml(&mut self, entries: usize) {
        self.cml = Some((0..self.cpu_count()).map(|_| Cml::new(entries)).collect());
    }

    /// Drains `cpu`'s CML (empty if no device is attached).
    pub fn cml_drain(&mut self, cpu: usize) -> Vec<CmlEntry> {
        match &mut self.cml {
            Some(devices) => {
                let drained = devices[cpu].drain();
                locality_trace::emit_with(|| locality_trace::TraceEvent::CmlDrain {
                    cpu: cpu as u32,
                    entries: drained.len() as u32,
                });
                drained
            }
            None => Vec::new(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of processors.
    pub fn cpu_count(&self) -> usize {
        self.config.cpus
    }

    /// Number of E-cache lines per processor (the model's `N`).
    pub fn l2_lines(&self) -> usize {
        self.config.l2_lines()
    }

    /// Allocates `bytes` of simulated memory aligned to `align`.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> VAddr {
        self.allocator.alloc(bytes, align)
    }

    /// Frees a block previously returned by [`alloc`](Self::alloc).
    pub fn free(&mut self, addr: VAddr, bytes: u64, align: u64) {
        self.allocator.free(addr, bytes, align);
    }

    /// Registers `[start, start+bytes)` as part of `tid`'s state (ground
    /// truth for footprints and exact sharing coefficients).
    pub fn register_region(&mut self, tid: ThreadId, start: VAddr, bytes: u64) {
        self.regions.register(tid, start, bytes);
    }

    /// The region table (exact sharing coefficients, state sizes, …).
    pub fn regions(&self) -> &RegionTable {
        &self.regions
    }

    /// Drops `tid` from the region table (thread exit).
    pub fn remove_thread_regions(&mut self, tid: ThreadId) {
        self.regions.remove_thread(tid);
    }

    /// Retires `tid` from every hot-path table: regions are dropped,
    /// the statistics slot is recycled (the accumulated numbers move to
    /// cold storage and stay visible through
    /// [`thread_stats`](Self::thread_stats)), and any processor still
    /// attributing to the slot goes idle.
    pub fn retire_thread(&mut self, tid: ThreadId) {
        self.remove_thread_regions(tid);
        if let Some(slot) = self.slots.release(tid) {
            let index = slot.index();
            let stats = std::mem::take(&mut self.thread_stats[index]);
            self.retired_stats.insert(tid, stats);
            for rs in &mut self.running_slot {
                if *rs == index as u32 {
                    *rs = IDLE_SLOT;
                }
            }
        }
    }

    /// Binds `tid` to a statistics slot, zeroing a recycled slot's
    /// entry (and restoring cold stats if the thread was retired).
    fn stats_slot(&mut self, tid: ThreadId) -> usize {
        if let Some(slot) = self.slots.lookup_cached(tid) {
            return slot.index();
        }
        let index = self.slots.bind(tid).index();
        {
            if index >= self.thread_stats.len() {
                self.thread_stats.resize(index + 1, ThreadStats::default());
            }
            self.thread_stats[index] = self.retired_stats.remove(&tid).unwrap_or_default();
        }
        index
    }

    /// Declares which thread is running on `cpu` (attribution for
    /// per-thread statistics; `None` while idle).
    pub fn set_running(&mut self, cpu: usize, tid: Option<ThreadId>) {
        self.running_slot[cpu] = match tid {
            Some(tid) => self.stats_slot(tid) as u32,
            None => IDLE_SLOT,
        };
    }

    /// Translates `va` on `cpu` through the µ-translation cache and the
    /// TLB. Returns the physical address and the page-table-walk cycles
    /// charged (non-zero only on a TLB miss). The TLB is probed exactly
    /// when the accessed page changes; repeated accesses within a page
    /// are translation-free, matching the run path.
    #[inline]
    fn translate_cached(&mut self, cpu: usize, va: VAddr) -> (u64, u64) {
        let page_shift = self.page_table.page_shift();
        let vpn = va.0 >> page_shift;
        let mut walk = 0;
        if self.tlb_vpn[cpu] != vpn {
            if self.tlbs[cpu].probe(vpn) {
                self.cpu_stats[cpu].tlb_hits += 1;
            } else {
                walk = self.tlbs[cpu].walk_cycles();
                self.cpu_stats[cpu].tlb_misses += 1;
                self.cpu_stats[cpu].tlb_walk_cycles += walk;
                self.tlbs[cpu].insert(vpn);
            }
            self.tlb_vpn[cpu] = vpn;
            self.tlb_frame[cpu] = self.page_table.frame_of(vpn) << page_shift;
        }
        (self.tlb_frame[cpu] | (va.0 & self.page_table.page_mask()), walk)
    }

    /// Performs one memory access on `cpu` and returns its cost in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn access(&mut self, cpu: usize, va: VAddr, kind: AccessKind) -> u64 {
        if let Some(tracer) = &mut self.tracer {
            tracer.record(cpu, kind, va);
        }
        let (pa, walk_cycles) = self.translate_cached(cpu, va);
        let pline2 = pa >> self.l2_shift;

        // Check for remote holders before the local fill updates the
        // directory (this decides the E5000's 50-vs-80-cycle split).
        let me = 1u64 << cpu;
        let holders_before = self.directory_mask(pline2);
        let outcome = self.cpus[cpu].access(pa, kind.into());
        let remote = outcome.l2_ref && !outcome.l2_hit && (holders_before & !me) != 0;

        // Directory maintenance for this processor's fill/eviction.
        if let Some(ev) = outcome.change.evicted {
            self.directory_clear(ev.pline, cpu);
        }
        if let Some(fill) = outcome.change.filled {
            self.directory_set(fill, me);
        }

        // Write-invalidate coherence: a store purges every other copy.
        if kind == AccessKind::Write {
            let holders = self.directory_mask(pline2) & !me;
            if holders != 0 {
                for other in 0..self.cpu_count() {
                    if holders & (1 << other) != 0 {
                        self.cpus[other].invalidate_line(pline2);
                        self.cpu_stats[other].invalidations += 1;
                        self.directory_clear(pline2, other);
                    }
                }
            }
        }

        // Cycle cost (the page-table walk, if any, rides on top; it is
        // zero under the default TLB configuration).
        let lat = self.config.latencies;
        let cycles = walk_cycles
            + if outcome.l1_hit {
                lat.l1_hit
            } else if outcome.l2_hit {
                lat.l2_hit
            } else if remote {
                lat.l2_miss_remote
            } else {
                lat.l2_miss
            };

        // Statistics.
        let cs = &mut self.cpu_stats[cpu];
        cs.instructions += 1;
        cs.mem_cycles += cycles;
        match kind {
            AccessKind::Fetch => {
                cs.l1i_refs += 1;
                if !outcome.l1_hit {
                    cs.l1i_misses += 1;
                }
            }
            _ => {
                cs.l1d_refs += 1;
                if !outcome.l1_hit {
                    cs.l1d_misses += 1;
                }
            }
        }
        if outcome.l2_ref {
            cs.l2_refs += 1;
            if outcome.l2_hit {
                cs.l2_hits += 1;
            } else {
                cs.l2_misses += 1;
                if remote {
                    cs.l2_misses_remote += 1;
                }
            }
        }
        let slot = self.running_slot[cpu];
        if slot != IDLE_SLOT {
            let ts = &mut self.thread_stats[slot as usize];
            ts.accesses += 1;
            ts.instructions += 1;
            ts.mem_cycles += cycles;
            if outcome.l2_ref {
                ts.l2_refs += 1;
                if !outcome.l2_hit {
                    ts.l2_misses += 1;
                }
            }
        }
        if outcome.l2_ref && !outcome.l2_hit {
            if let Some(devices) = &mut self.cml {
                devices[cpu].record(va.0 >> self.page_table.page_shift());
            }
        }
        cycles
    }

    /// Performs a reference **run** — `count` accesses at `base`,
    /// `base + stride`, `base + 2·stride`, … — on `cpu` and returns the
    /// total cost in cycles.
    ///
    /// Observationally **byte-identical** to the equivalent per-address
    /// loop of [`access`](Self::access): every element still probes the
    /// cache tags in order (so LRU state, evictions, coherence, the CML,
    /// and the trace evolve exactly as in the scalar path), but the run
    /// pays for its bookkeeping once — page translation is cached per
    /// page the run touches, PIC updates are batched into a single
    /// [`Pic::record_l2_bulk`](crate::Pic) call, and per-cpu/per-thread
    /// statistics are accumulated in registers and flushed once at the
    /// end. A whole-line run (`stride` = L2 line size) therefore costs
    /// exactly one tag probe per line plus O(1) overhead.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn access_run(
        &mut self,
        cpu: usize,
        base: VAddr,
        stride: u64,
        count: u64,
        kind: AccessKind,
    ) -> u64 {
        if count == 0 {
            return 0;
        }
        if let Some(tracer) = &mut self.tracer {
            for i in 0..count {
                tracer.record(cpu, kind, base.offset(i * stride));
            }
        }
        let lat = self.config.latencies;
        let hier: HierAccess = kind.into();
        let is_write = kind == AccessKind::Write;
        let me = 1u64 << cpu;
        let page_shift = self.page_table.page_shift();
        let page_mask = self.page_table.page_mask();
        let l2_shift = self.l2_shift;

        // Split borrows: the element loop touches the caches, directory,
        // translation, CML, and (on invalidations) other cpus' stats.
        let Machine {
            cpus,
            page_table,
            directory,
            cml,
            cpu_stats,
            running_slot,
            thread_stats,
            tlbs,
            tlb_vpn,
            tlb_frame,
            ..
        } = self;
        let cpu_count = cpus.len();
        let mut cml_dev = cml.as_mut().map(|devices| &mut devices[cpu]);
        let tlb = &mut tlbs[cpu];
        let walk_cost = tlb.walk_cycles();

        let mut cycles_total = 0u64;
        let mut l1_misses = 0u64;
        let mut l2_refs = 0u64;
        let mut l2_hits = 0u64;
        let mut l2_misses_remote = 0u64;
        let mut tlb_hits = 0u64;
        let mut tlb_misses = 0u64;

        // One probe-plus-bookkeeping step, shared by the read and write
        // loops below. Inlined so the per-element state stays in
        // registers; the directory is only consulted on an L2 miss
        // (remote-miss classification) — reading it *after* the probe is
        // equivalent to reading it before, because the access itself
        // cannot change `pline2`'s holders: the eviction touches the
        // *displaced* line, and the fill (which adds this cpu) is applied
        // after the read.
        #[inline(always)]
        fn run_element(
            cache: &mut CpuCache,
            directory: &mut Vec<u64>,
            pa: u64,
            l2_shift: u32,
            hier: HierAccess,
            me: u64,
        ) -> (AccessOutcome, bool) {
            let pline2 = pa >> l2_shift;
            let outcome = cache.access_quiet(pa, hier);
            let remote = outcome.l2_ref
                && !outcome.l2_hit
                && (directory.get(pline2 as usize).copied().unwrap_or(0) & !me) != 0;
            if let Some(ev) = outcome.change.evicted {
                if let Some(mask) = directory.get_mut(ev.pline as usize) {
                    *mask &= !me;
                }
            }
            if let Some(fill) = outcome.change.filled {
                let index = fill as usize;
                if index >= directory.len() {
                    directory.resize(index + 1, 0);
                }
                directory[index] |= me;
            }
            (outcome, remote)
        }

        // One translation per page transition, continuing from wherever
        // the previous access (scalar or run) left the µ-cache.
        let mut cur_vpn = tlb_vpn[cpu];
        let mut frame_base = tlb_frame[cpu];
        macro_rules! element_loop {
            (|$va:ident, $pa:ident| $probe:expr) => {
                for i in 0..count {
                    let $va = base.0 + i * stride;
                    let vpn = $va >> page_shift;
                    if vpn != cur_vpn {
                        if tlb.probe(vpn) {
                            tlb_hits += 1;
                        } else {
                            tlb_misses += 1;
                            cycles_total += walk_cost;
                            tlb.insert(vpn);
                        }
                        frame_base = page_table.frame_of(vpn) << page_shift;
                        cur_vpn = vpn;
                    }
                    let $pa = frame_base | ($va & page_mask);
                    let (outcome, remote) = $probe;
                    cycles_total += if outcome.l1_hit {
                        lat.l1_hit
                    } else if outcome.l2_hit {
                        lat.l2_hit
                    } else if remote {
                        lat.l2_miss_remote
                    } else {
                        lat.l2_miss
                    };
                    if !outcome.l1_hit {
                        l1_misses += 1;
                    }
                    if outcome.l2_ref {
                        l2_refs += 1;
                        if outcome.l2_hit {
                            l2_hits += 1;
                        } else {
                            if remote {
                                l2_misses_remote += 1;
                            }
                            if let Some(dev) = cml_dev.as_mut() {
                                dev.record($va >> page_shift);
                            }
                        }
                    }
                }
            };
        }
        if is_write {
            element_loop!(|va, pa| {
                let out = run_element(&mut cpus[cpu], directory, pa, l2_shift, hier, me);
                let pline2 = pa >> l2_shift;
                let holders = directory.get(pline2 as usize).copied().unwrap_or(0) & !me;
                if holders != 0 {
                    for other in 0..cpu_count {
                        if holders & (1 << other) != 0 {
                            cpus[other].invalidate_line(pline2);
                            cpu_stats[other].invalidations += 1;
                            if let Some(mask) = directory.get_mut(pline2 as usize) {
                                *mask &= !(1u64 << other);
                            }
                        }
                    }
                }
                out
            });
        } else {
            // Reads never invalidate other cpus, so the cache borrow can
            // be hoisted out of the loop (no per-element slice index).
            let cache = &mut cpus[cpu];
            element_loop!(|va, pa| run_element(cache, directory, pa, l2_shift, hier, me));
        }

        // The next access on this cpu resumes from this run's last page.
        tlb_vpn[cpu] = cur_vpn;
        tlb_frame[cpu] = frame_base;

        // PIC and statistics updated once per run.
        cpus[cpu].pic_mut().record_l2_bulk(l2_refs, l2_hits);
        let l2_misses = l2_refs - l2_hits;
        let cs = &mut cpu_stats[cpu];
        cs.instructions += count;
        cs.mem_cycles += cycles_total;
        cs.tlb_hits += tlb_hits;
        cs.tlb_misses += tlb_misses;
        cs.tlb_walk_cycles += tlb_misses * walk_cost;
        if kind == AccessKind::Fetch {
            cs.l1i_refs += count;
            cs.l1i_misses += l1_misses;
        } else {
            cs.l1d_refs += count;
            cs.l1d_misses += l1_misses;
        }
        cs.l2_refs += l2_refs;
        cs.l2_hits += l2_hits;
        cs.l2_misses += l2_misses;
        cs.l2_misses_remote += l2_misses_remote;
        let slot = running_slot[cpu];
        if slot != IDLE_SLOT {
            let ts = &mut thread_stats[slot as usize];
            ts.accesses += count;
            ts.instructions += count;
            ts.mem_cycles += cycles_total;
            ts.l2_refs += l2_refs;
            ts.l2_misses += l2_misses;
        }
        cycles_total
    }

    /// Holder mask of a physical line (0 = not cached anywhere).
    #[inline]
    fn directory_mask(&self, pline: u64) -> u64 {
        self.directory.get(pline as usize).copied().unwrap_or(0)
    }

    /// ORs `bits` into a line's holder mask, growing the table on the
    /// first fill past its end.
    fn directory_set(&mut self, pline: u64, bits: u64) {
        let index = pline as usize;
        if index >= self.directory.len() {
            self.directory.resize(index + 1, 0);
        }
        self.directory[index] |= bits;
    }

    fn directory_clear(&mut self, pline: u64, cpu: usize) {
        if let Some(mask) = self.directory.get_mut(pline as usize) {
            *mask &= !(1u64 << cpu);
        }
    }

    /// Records `n` non-memory instructions (compute) on `cpu`, attributed
    /// to the running thread.
    pub fn note_instructions(&mut self, cpu: usize, n: u64) {
        self.cpu_stats[cpu].instructions += n;
        let slot = self.running_slot[cpu];
        if slot != IDLE_SLOT {
            self.thread_stats[slot as usize].instructions += n;
        }
    }

    /// The performance counters of `cpu` (read-only).
    pub fn pic(&self, cpu: usize) -> &Pic {
        self.cpus[cpu].pic()
    }

    /// The TLB of `cpu` (read-only; reach/retire inspection for tests).
    pub fn tlb(&self, cpu: usize) -> &Tlb {
        &self.tlbs[cpu]
    }

    /// Installs a counter-fault injector; every subsequent
    /// [`pic_take_interval`](Self::pic_take_interval) goes through it.
    /// Replaces any previously installed injector.
    pub fn install_fault(&mut self, config: FaultConfig) {
        self.faults = Some(FaultInjector::new(config));
    }

    /// Removes the installed fault injector, if any.
    pub fn clear_fault(&mut self) {
        self.faults = None;
    }

    /// The installed fault injector (None when the counters are clean).
    pub fn fault(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Reads-and-resets the counter interval on `cpu` — the context-switch
    /// read.
    ///
    /// # Errors
    ///
    /// [`SimError::BadCpu`] for an out-of-range processor index, and
    /// [`SimError::CounterTrap`] when the read traps — because the PIC's
    /// user-access bit is cleared, or a [`FaultKind::TrapOnRead`]
    /// (see [`crate::faults::FaultKind`]) fault is live. On a trap the
    /// interval is **not** reset: counts keep accumulating and are
    /// reported whole by the next successful read, like a runtime that
    /// skips a failed sample and catches up at the next switch.
    pub fn pic_take_interval(&mut self, cpu: usize) -> Result<PicDelta, SimError> {
        if cpu >= self.cpu_count() {
            return Err(SimError::BadCpu { cpu, cpus: self.cpu_count() });
        }
        let result = self.pic_take_interval_inner(cpu);
        match &result {
            Ok(delta) => {
                let (refs, hits, misses) = (delta.refs, delta.hits, delta.misses);
                locality_trace::emit_with(|| locality_trace::TraceEvent::PicRead {
                    cpu: cpu as u32,
                    refs,
                    hits,
                    misses,
                    trapped: false,
                });
            }
            Err(SimError::CounterTrap { .. }) => {
                locality_trace::emit_with(|| locality_trace::TraceEvent::PicRead {
                    cpu: cpu as u32,
                    refs: 0,
                    hits: 0,
                    misses: 0,
                    trapped: true,
                });
            }
            Err(_) => {}
        }
        result
    }

    fn pic_take_interval_inner(&mut self, cpu: usize) -> Result<PicDelta, SimError> {
        if !self.cpus[cpu].pic().user_access() {
            return Err(SimError::CounterTrap { cpu });
        }
        let Some(inj) = &mut self.faults else {
            return Ok(self.cpus[cpu].pic_mut().take_interval());
        };
        if !inj.begin_read() {
            return Ok(self.cpus[cpu].pic_mut().take_interval());
        }
        if inj.traps() {
            return Err(SimError::CounterTrap { cpu });
        }
        let truth = self.cpus[cpu].pic_mut().take_interval();
        Ok(inj.perturb(truth))
    }

    /// Cumulative statistics of `cpu`.
    pub fn cpu_stats(&self, cpu: usize) -> CpuStats {
        self.cpu_stats[cpu]
    }

    /// Cumulative statistics of `tid` (zero if it never ran). Retired
    /// threads (see [`retire_thread`](Self::retire_thread)) keep
    /// reporting their final numbers from cold storage.
    pub fn thread_stats(&self, tid: ThreadId) -> ThreadStats {
        match self.slots.lookup(tid) {
            Some(slot) => self.thread_stats[slot.index()],
            None => self.retired_stats.get(&tid).copied().unwrap_or_default(),
        }
    }

    /// Total E-cache misses over all processors.
    pub fn total_l2_misses(&self) -> u64 {
        self.cpu_stats.iter().map(|s| s.l2_misses).sum()
    }

    /// Total instructions over all processors.
    pub fn total_instructions(&self) -> u64 {
        self.cpu_stats.iter().map(|s| s.instructions).sum()
    }

    /// **Ground truth**: number of resident L2 lines on `cpu` that belong
    /// to `tid`'s registered state — the thread's observed footprint
    /// (paper §3's per-thread line association).
    pub fn l2_footprint_lines(&self, cpu: usize, tid: ThreadId) -> u64 {
        let line = self.config.hierarchy.l2.line;
        self.cpus[cpu]
            .l2()
            .iter_resident()
            .filter(|&pl| match self.page_table.reverse(PAddr(pl * line)) {
                Some(va) => self.regions.range_touches(tid, va, line),
                None => false,
            })
            .count() as u64
    }

    /// Ground-truth footprints of *all* threads with state in `cpu`'s
    /// E-cache (a resident line shared by several threads counts for each).
    pub fn l2_footprints(&self, cpu: usize) -> BTreeMap<ThreadId, u64> {
        let mut scratch = FootprintScratch::new();
        self.l2_footprints_into(cpu, &mut scratch);
        scratch.to_sorted().into_iter().collect()
    }

    /// [`l2_footprints`](Self::l2_footprints) into a reusable
    /// [`FootprintScratch`]: the same full E-cache scan, but slot-indexed
    /// and allocation-free once the scratch has warmed up — cheap enough
    /// for monitoring hooks that sample at every context switch.
    pub fn l2_footprints_into(&self, cpu: usize, out: &mut FootprintScratch) {
        let line = self.config.hierarchy.l2.line;
        out.begin();
        let mut owners = out.take_owner_buf();
        for pl in self.cpus[cpu].l2().iter_resident() {
            if let Some(va) = self.page_table.reverse(PAddr(pl * line)) {
                self.regions.owners_in_range_into(va, line, &mut owners);
                out.tally(&owners);
            }
        }
        out.restore_owner_buf(owners);
    }

    /// Resident L2 lines on `cpu` (all threads plus unattributed lines).
    pub fn l2_resident_lines(&self, cpu: usize) -> u64 {
        self.cpus[cpu].l2().resident_lines()
    }

    /// Flushes all caches of `cpu` (experiment setup; directory updated),
    /// the TLB, and the µ-translation cache.
    pub fn flush_cpu(&mut self, cpu: usize) {
        let resident: Vec<u64> = self.cpus[cpu].l2().iter_resident().collect();
        for pl in resident {
            self.directory_clear(pl, cpu);
        }
        self.cpus[cpu].flush();
        self.tlbs[cpu].flush();
        self.tlb_vpn[cpu] = u64::MAX;
    }

    /// Flushes every processor's caches.
    pub fn flush_all(&mut self) {
        for cpu in 0..self.cpu_count() {
            self.flush_cpu(cpu);
        }
    }

    /// Page faults taken so far.
    pub fn page_faults(&self) -> u64 {
        self.page_table.faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn sequential_walk_costs_and_counts() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let buf = m.alloc(64 * 64, 64);
        let mut cycles = 0;
        for i in 0..64u64 {
            cycles += m.access(0, buf.offset(i * 64), AccessKind::Read);
        }
        // Every access touched a fresh 64-byte L2 line: all L2 misses.
        assert_eq!(m.pic(0).misses(), 64);
        assert_eq!(cycles, 64 * 42);
        assert_eq!(m.cpu_stats(0).l2_misses, 64);
        assert_eq!(m.thread_stats(t(1)).l2_misses, 64);
        // Re-walk: now L1-line-granular; every other access hits L1,
        // the rest hit L2 (64B L2 line = 2×32B L1 lines).
        let before = m.pic(0).misses();
        for i in 0..64u64 {
            m.access(0, buf.offset(i * 64), AccessKind::Read);
        }
        assert_eq!(m.pic(0).misses(), before, "no new misses on re-walk");
    }

    #[test]
    fn footprint_ground_truth() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let a = m.alloc(4096, 64);
        let b = m.alloc(4096, 64);
        m.register_region(t(1), a, 4096);
        m.register_region(t(2), b, 4096);
        for i in (0..4096u64).step_by(64) {
            m.access(0, a.offset(i), AccessKind::Read);
        }
        assert_eq!(m.l2_footprint_lines(0, t(1)), 64);
        assert_eq!(m.l2_footprint_lines(0, t(2)), 0);
        let all = m.l2_footprints(0);
        assert_eq!(all.get(&t(1)), Some(&64));
        assert!(!all.contains_key(&t(2)));
    }

    #[test]
    fn shared_lines_count_for_both_threads() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let a = m.alloc(1024, 64);
        m.register_region(t(1), a, 1024);
        m.register_region(t(2), a, 1024);
        for i in (0..1024u64).step_by(64) {
            m.access(0, a.offset(i), AccessKind::Read);
        }
        assert_eq!(m.l2_footprint_lines(0, t(1)), 16);
        assert_eq!(m.l2_footprint_lines(0, t(2)), 16);
    }

    #[test]
    fn remote_miss_costs_more_on_e5000() {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(64, 64);
        let c0 = m.access(0, a, AccessKind::Read);
        assert_eq!(c0, 50, "clean miss");
        let c1 = m.access(1, a, AccessKind::Read);
        assert_eq!(c1, 80, "line cached by cpu0 costs the remote penalty");
        assert_eq!(m.cpu_stats(1).l2_misses_remote, 1);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(64, 64);
        m.access(0, a, AccessKind::Read);
        m.access(1, a, AccessKind::Read);
        // cpu1 writes: cpu0's copy must be invalidated.
        m.access(1, a, AccessKind::Write);
        assert_eq!(m.cpu_stats(0).invalidations, 1);
        // cpu0 re-reads: it's a miss again, and remote (cpu1 holds it).
        let c = m.access(0, a, AccessKind::Read);
        assert_eq!(c, 80);
    }

    #[test]
    fn invalidation_shrinks_footprint() {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(64 * 8, 64);
        m.register_region(t(1), a, 64 * 8);
        for i in 0..8u64 {
            m.access(0, a.offset(i * 64), AccessKind::Read);
        }
        assert_eq!(m.l2_footprint_lines(0, t(1)), 8);
        for i in 0..8u64 {
            m.access(1, a.offset(i * 64), AccessKind::Write);
        }
        assert_eq!(m.l2_footprint_lines(0, t(1)), 0, "all copies invalidated");
        assert_eq!(m.l2_footprint_lines(1, t(1)), 8);
    }

    #[test]
    fn flush_cpu_clears_footprints_and_directory() {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(4096, 64);
        m.register_region(t(1), a, 4096);
        for i in (0..4096u64).step_by(64) {
            m.access(0, a.offset(i), AccessKind::Read);
        }
        m.flush_cpu(0);
        assert_eq!(m.l2_footprint_lines(0, t(1)), 0);
        // After the flush the line is not "cached by another processor".
        let c = m.access(1, a, AccessKind::Read);
        assert_eq!(c, 50);
    }

    #[test]
    fn note_instructions_feeds_mpi() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let a = m.alloc(64, 64);
        m.access(0, a, AccessKind::Read);
        m.note_instructions(0, 999);
        assert_eq!(m.cpu_stats(0).instructions, 1000);
        assert!((m.cpu_stats(0).mpi() - 1.0).abs() < 1e-12);
        assert_eq!(m.thread_stats(t(1)).instructions, 1000);
    }

    #[test]
    fn capacity_eviction_updates_directory() {
        // Two lines that conflict in the direct-mapped L2: after the
        // second fill, the first is no longer charged as remote elsewhere.
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(64, 64);
        let b = VAddr(a.0 + 512 * 1024); // same L2 index after translation?
                                         // Use page-coloring to be sure of conflict: translate both and
                                         // check; with bin hopping the pages land in different bins, so
                                         // instead just verify directory consistency via re-reads.
        m.access(0, a, AccessKind::Read);
        m.access(0, b, AccessKind::Read);
        // Whatever happened, a read from cpu1 of `a` is remote only if
        // cpu0 still holds it.
        let holds = {
            let pa = m.page_table.translate_existing(a).unwrap();
            m.cpus[0].l2_contains(pa.0 / 64)
        };
        let c = m.access(1, a, AccessKind::Read);
        assert_eq!(c == 80, holds, "remote charge must match directory truth");
    }

    #[test]
    fn tracing_records_and_replays_identically() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.start_tracing();
        let a = m.alloc(4096, 64);
        for i in (0..4096u64).step_by(64) {
            m.access(0, a.offset(i), AccessKind::Read);
        }
        m.access(0, a, AccessKind::Write);
        let trace = m.take_trace().expect("tracing was on");
        assert_eq!(trace.len(), 65);
        // Replaying on a fresh identical machine reproduces the stats.
        let mut fresh = Machine::try_new(MachineConfig::ultra1()).unwrap();
        // The fresh machine must see the same virtual addresses; alloc
        // the same block first so translation state matches.
        let b = fresh.alloc(4096, 64);
        assert_eq!(a, b, "deterministic allocator");
        trace.replay(&mut fresh);
        assert_eq!(fresh.cpu_stats(0).l2_misses, m.cpu_stats(0).l2_misses);
        assert_eq!(fresh.cpu_stats(0).l2_refs, m.cpu_stats(0).l2_refs);
    }

    #[test]
    fn cml_observes_miss_pages() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.enable_cml(128);
        let a = m.alloc(3 * 8192, 8192); // three pages
        for page in 0..3u64 {
            m.access(0, a.offset(page * 8192), AccessKind::Read);
        }
        // A hit records nothing.
        m.access(0, a, AccessKind::Read);
        let drained = m.cml_drain(0);
        assert_eq!(drained.len(), 3);
        assert!(drained.iter().all(|e| e.count == 1));
        assert!(m.cml_drain(0).is_empty());
        // Without a device, drain is empty.
        let mut plain = Machine::try_new(MachineConfig::ultra1()).unwrap();
        assert!(plain.cml_drain(0).is_empty());
    }

    #[test]
    fn try_new_rejects_bad_configs() {
        let mut cfg = MachineConfig::ultra1();
        cfg.cpus = 0;
        assert_eq!(Machine::try_new(cfg).unwrap_err(), SimError::NoCpus);
        let mut big = MachineConfig::enterprise5000(2);
        big.cpus = 65;
        assert!(matches!(Machine::try_new(big), Err(SimError::BadCpu { .. })));
        assert!(Machine::try_new(MachineConfig::ultra1()).is_ok());
    }

    #[test]
    fn take_interval_checks_cpu_and_user_access() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        assert!(matches!(m.pic_take_interval(5), Err(SimError::BadCpu { cpu: 5, cpus: 1 })));
        let a = m.alloc(64, 64);
        m.access(0, a, AccessKind::Read);
        assert_eq!(m.pic_take_interval(0).unwrap().refs, 1);
        // Clearing user access turns every read into a trap.
        use crate::counters::PicEvent;
        m.cpus[0].pic_mut().configure(PicEvent::EcacheRefs, PicEvent::EcacheHits, false);
        assert_eq!(m.pic_take_interval(0).unwrap_err(), SimError::CounterTrap { cpu: 0 });
    }

    #[test]
    fn installed_fault_perturbs_reads() {
        use crate::faults::{FaultConfig, FaultKind, WRAP_ARTIFACT_THRESHOLD};
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.install_fault(FaultConfig::always(FaultKind::Wraparound, 11));
        let a = m.alloc(4096, 64);
        for i in (0..4096u64).step_by(64) {
            m.access(0, a.offset(i), AccessKind::Read);
        }
        let d = m.pic_take_interval(0).unwrap();
        assert!(d.misses >= WRAP_ARTIFACT_THRESHOLD, "wraparound must corrupt: {d:?}");
        assert!(m.fault().is_some());
        m.clear_fault();
        m.access(0, a, AccessKind::Read);
        let clean = m.pic_take_interval(0).unwrap();
        assert!(clean.misses < 64, "clean after clear_fault: {clean:?}");
    }

    #[test]
    fn trap_fault_leaves_interval_accumulating() {
        use crate::faults::{FaultConfig, FaultKind};
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        // Trap for the first two reads, then recover.
        m.install_fault(FaultConfig::windowed(FaultKind::TrapOnRead, 1, 0, 2));
        let a = m.alloc(64 * 8, 64);
        for i in 0..8u64 {
            m.access(0, a.offset(i * 64), AccessKind::Read);
        }
        assert_eq!(m.pic_take_interval(0).unwrap_err(), SimError::CounterTrap { cpu: 0 });
        assert_eq!(m.pic_take_interval(0).unwrap_err(), SimError::CounterTrap { cpu: 0 });
        // Third read succeeds and reports the *whole* accumulated span.
        assert_eq!(m.pic_take_interval(0).unwrap().refs, 8, "no counts lost across traps");
    }

    #[test]
    fn retired_stats_survive_slot_recycling() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let a = m.alloc(64 * 8, 64);
        for i in 0..8u64 {
            m.access(0, a.offset(i * 64), AccessKind::Read);
        }
        m.set_running(0, None);
        m.retire_thread(t(1));
        assert_eq!(m.thread_stats(t(1)).l2_misses, 8, "cold storage keeps the numbers");
        // A younger thread recycling the slot must start from zero.
        m.set_running(0, Some(t(2)));
        assert_eq!(m.thread_stats(t(2)), ThreadStats::default());
        m.access(0, a, AccessKind::Read);
        assert_eq!(m.thread_stats(t(2)).accesses, 1);
        assert_eq!(m.thread_stats(t(1)).l2_misses, 8, "retired numbers unchanged");
    }

    #[test]
    fn retire_while_running_goes_idle() {
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let a = m.alloc(64, 64);
        m.access(0, a, AccessKind::Read);
        m.retire_thread(t(1));
        // The access after retirement is attributed to nobody.
        m.access(0, a.offset(0), AccessKind::Read);
        assert_eq!(m.thread_stats(t(1)).accesses, 1);
    }

    #[test]
    fn footprint_scratch_agrees_with_map_variant() {
        use crate::footprint::FootprintScratch;
        let mut m = Machine::try_new(MachineConfig::ultra1()).unwrap();
        m.set_running(0, Some(t(1)));
        let a = m.alloc(4096, 64);
        m.register_region(t(1), a, 4096);
        m.register_region(t(2), a.offset(2048), 2048);
        for i in (0..4096u64).step_by(64) {
            m.access(0, a.offset(i), AccessKind::Read);
        }
        let map = m.l2_footprints(0);
        let mut scratch = FootprintScratch::new();
        m.l2_footprints_into(0, &mut scratch);
        assert_eq!(scratch.to_sorted(), map.into_iter().collect::<Vec<_>>());
        assert_eq!(scratch.lines(t(1)), m.l2_footprint_lines(0, t(1)));
        assert_eq!(scratch.lines(t(2)), m.l2_footprint_lines(0, t(2)));
        // Reusing the scratch after evictions reports the new truth.
        m.flush_cpu(0);
        m.l2_footprints_into(0, &mut scratch);
        assert_eq!(scratch.thread_count(), 0);
        assert_eq!(scratch.lines(t(1)), 0);
    }

    #[test]
    fn total_counters() {
        let mut m = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let a = m.alloc(128, 64);
        m.access(0, a, AccessKind::Read);
        m.access(1, a.offset(64), AccessKind::Read);
        assert_eq!(m.total_l2_misses(), 2);
        assert_eq!(m.total_instructions(), 2);
        assert!(m.page_faults() >= 1);
    }
}
