//! Virtual→physical translation and page placement.
//!
//! The E-cache is physically indexed while workloads generate virtual
//! addresses, so the virtual→physical mapping chosen at page-fault time
//! determines which cache bins pages land in. The paper (§3.1) uses a
//! variant of the **hierarchical/careful page mapping of Kessler & Hill**,
//! which reduces conflict misses compared to naive placement. We provide
//! three policies and an ablation experiment comparing them:
//!
//! * [`PagePlacement::Arbitrary`] — a pseudo-random frame per fault (the
//!   "naive (arbitrary) page placement" baseline of the paper);
//! * [`PagePlacement::PageColoring`] — frame color = virtual page color;
//! * [`PagePlacement::BinHopping`] — Kessler & Hill bin hopping: faults
//!   walk the cache bins round-robin, so pages touched close in *time*
//!   land in different bins.

use crate::addr::{PAddr, VAddr};

/// Sentinel for "no mapping" in the flat translation tables.
const UNMAPPED: u64 = u64::MAX;

/// A page-placement policy (chooses the cache bin of each new frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagePlacement {
    /// Pseudo-random bin per fault (xorshift over the given seed).
    Arbitrary {
        /// RNG seed, so runs stay reproducible.
        seed: u64,
    },
    /// Frame color equals virtual page color (`vpn mod bins`).
    PageColoring,
    /// Kessler & Hill bin hopping: consecutive faults take consecutive
    /// bins.
    BinHopping,
}

impl PagePlacement {
    /// The default-seeded arbitrary policy.
    pub fn arbitrary() -> Self {
        PagePlacement::Arbitrary { seed: 0x9e3779b97f4a7c15 }
    }

    /// The bin-hopping policy (the paper's choice).
    pub fn bin_hopping() -> Self {
        PagePlacement::BinHopping
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PagePlacement::Arbitrary { .. } => "arbitrary",
            PagePlacement::PageColoring => "page-coloring",
            PagePlacement::BinHopping => "bin-hopping",
        }
    }
}

/// The simulated page table: demand-allocates a frame for each virtual
/// page on first touch and remembers the inverse mapping so resident
/// physical lines can be attributed back to virtual regions.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_bytes: u64,
    /// `log2(page_bytes)` / `page_bytes − 1`: page sizes are powers of
    /// two, so page-number/offset splits are shift/mask on the hot path.
    page_shift: u32,
    page_mask: u64,
    /// Number of page-sized bins in the (physically indexed) L2.
    bins: u64,
    /// `bins − 1` (bin counts are powers of two).
    bin_mask: u64,
    policy: PagePlacement,
    /// Flat `vpn -> frame` table ([`UNMAPPED`] = never touched). The
    /// simulated allocator hands out dense low virtual addresses, so a
    /// plain `Vec` keeps translation — which sits on the per-access hot
    /// path — a single bounds-checked load instead of a hash probe.
    vpn_to_frame: Vec<u64>,
    /// Flat inverse table, same representation.
    frame_to_vpn: Vec<u64>,
    /// Next frame index within each bin (frames are `bin + bins * i`).
    bin_fill: Vec<u64>,
    /// Bin-hopping cursor.
    next_bin: u64,
    /// Xorshift state for `Arbitrary`.
    rng: u64,
    faults: u64,
}

impl PageTable {
    /// Creates an empty page table.
    ///
    /// `bins` is the number of page-sized bins in the L2
    /// (`l2_bytes / page_bytes`); it must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `page_bytes` is zero or not a power of two
    /// (both derive from validated machine geometry, which only admits
    /// power-of-two sizes; the table exploits that for shift/mask
    /// translation on the access path).
    pub fn new(page_bytes: u64, bins: u64, policy: PagePlacement) -> Self {
        assert!(
            page_bytes.is_power_of_two() && bins.is_power_of_two(),
            "page size and bin count must be non-zero powers of two"
        );
        let rng = match policy {
            PagePlacement::Arbitrary { seed } => seed.max(1),
            _ => 1,
        };
        PageTable {
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            page_mask: page_bytes - 1,
            bins,
            bin_mask: bins - 1,
            policy,
            vpn_to_frame: Vec::new(),
            frame_to_vpn: Vec::new(),
            bin_fill: vec![0; bins as usize],
            next_bin: 0,
            rng,
            faults: 0,
        }
    }

    /// The page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of page faults taken (frames allocated).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn allocate_frame(&mut self, vpn: u64) -> u64 {
        let bin = match self.policy {
            PagePlacement::Arbitrary { .. } => self.xorshift() & self.bin_mask,
            PagePlacement::PageColoring => vpn & self.bin_mask,
            PagePlacement::BinHopping => {
                let b = self.next_bin;
                self.next_bin = (self.next_bin + 1) & self.bin_mask;
                b
            }
        };
        let fill = &mut self.bin_fill[bin as usize];
        let frame = bin + self.bins * *fill;
        *fill += 1;
        self.faults += 1;
        frame
    }

    /// Translates a virtual address, faulting a frame in if needed.
    #[inline]
    pub fn translate(&mut self, va: VAddr) -> PAddr {
        let vpn = va.0 >> self.page_shift;
        let frame = self.frame_of(vpn);
        PAddr((frame << self.page_shift) | (va.0 & self.page_mask))
    }

    /// The frame holding virtual page `vpn`, faulting it in if needed.
    /// The run-access path caches the result per page so a whole run pays
    /// one translation per page it touches.
    #[inline]
    pub fn frame_of(&mut self, vpn: u64) -> u64 {
        match self.vpn_to_frame.get(vpn as usize) {
            Some(&f) if f != UNMAPPED => f,
            _ => {
                let f = self.allocate_frame(vpn);
                Self::set(&mut self.vpn_to_frame, vpn, f);
                Self::set(&mut self.frame_to_vpn, f, vpn);
                f
            }
        }
    }

    /// `log2(page_bytes)` (pages are powers of two).
    #[inline]
    pub fn page_shift(&self) -> u32 {
        self.page_shift
    }

    /// `page_bytes − 1`, the in-page offset mask.
    #[inline]
    pub fn page_mask(&self) -> u64 {
        self.page_mask
    }

    fn set(table: &mut Vec<u64>, key: u64, value: u64) {
        let key = key as usize;
        if key >= table.len() {
            table.resize(key + 1, UNMAPPED);
        }
        table[key] = value;
    }

    fn get(table: &[u64], key: u64) -> Option<u64> {
        match table.get(usize::try_from(key).ok()?) {
            Some(&v) if v != UNMAPPED => Some(v),
            _ => None,
        }
    }

    /// Translates without faulting; `None` if the page was never touched.
    pub fn translate_existing(&self, va: VAddr) -> Option<PAddr> {
        let vpn = va.0 >> self.page_shift;
        Self::get(&self.vpn_to_frame, vpn)
            .map(|f| PAddr((f << self.page_shift) | (va.0 & self.page_mask)))
    }

    /// Inverse translation of a physical address (for footprint ground
    /// truth); `None` for frames the table never allocated.
    pub fn reverse(&self, pa: PAddr) -> Option<VAddr> {
        let frame = pa.0 >> self.page_shift;
        Self::get(&self.frame_to_vpn, frame)
            .map(|vpn| VAddr((vpn << self.page_shift) | (pa.0 & self.page_mask)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new(8192, 64, PagePlacement::bin_hopping());
        let a = pt.translate(VAddr(0x4000));
        let b = pt.translate(VAddr(0x4000));
        assert_eq!(a, b);
        assert_eq!(pt.faults(), 1);
    }

    #[test]
    fn offsets_preserved_within_page() {
        let mut pt = PageTable::new(8192, 64, PagePlacement::bin_hopping());
        let base = pt.translate(VAddr(0x4000));
        let off = pt.translate(VAddr(0x4000 + 100));
        assert_eq!(off.0 - base.0, 100);
    }

    #[test]
    fn reverse_round_trips() {
        let mut pt = PageTable::new(8192, 64, PagePlacement::arbitrary());
        for page in 0..100u64 {
            let va = VAddr(page * 8192 + 17);
            let pa = pt.translate(va);
            assert_eq!(pt.reverse(pa), Some(va));
        }
        assert_eq!(pt.reverse(PAddr(u64::MAX - 5)), None);
    }

    #[test]
    fn translate_existing_does_not_fault() {
        let mut pt = PageTable::new(8192, 64, PagePlacement::bin_hopping());
        assert_eq!(pt.translate_existing(VAddr(0x2000)), None);
        assert_eq!(pt.faults(), 0);
        let pa = pt.translate(VAddr(0x2000));
        assert_eq!(pt.translate_existing(VAddr(0x2000)), Some(pa));
    }

    #[test]
    fn bin_hopping_spreads_consecutive_faults() {
        let mut pt = PageTable::new(8192, 64, PagePlacement::bin_hopping());
        // 64 consecutive virtual pages must land in 64 distinct bins.
        let mut bins: Vec<u64> =
            (0..64u64).map(|p| pt.translate(VAddr(p * 8192)).0 / 8192 % 64).collect();
        bins.sort_unstable();
        bins.dedup();
        assert_eq!(bins.len(), 64);
    }

    #[test]
    fn page_coloring_matches_vpn_color() {
        let mut pt = PageTable::new(8192, 64, PagePlacement::PageColoring);
        for vpn in [0u64, 1, 63, 64, 65, 130] {
            let pa = pt.translate(VAddr(vpn * 8192));
            assert_eq!(pa.0 / 8192 % 64, vpn % 64, "vpn {vpn}");
        }
    }

    #[test]
    fn frames_are_never_reused() {
        let mut pt = PageTable::new(8192, 4, PagePlacement::PageColoring);
        // Many pages of the same color must get distinct frames.
        let mut frames: Vec<u64> =
            (0..50u64).map(|i| pt.translate(VAddr(i * 4 * 8192)).0 / 8192).collect();
        frames.sort_unstable();
        frames.dedup();
        assert_eq!(frames.len(), 50);
    }

    #[test]
    fn arbitrary_is_seed_deterministic() {
        let run = |seed| {
            let mut pt = PageTable::new(8192, 64, PagePlacement::Arbitrary { seed });
            (0..20u64).map(|p| pt.translate(VAddr(p * 8192)).0).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn policy_names() {
        assert_eq!(PagePlacement::arbitrary().name(), "arbitrary");
        assert_eq!(PagePlacement::PageColoring.name(), "page-coloring");
        assert_eq!(PagePlacement::bin_hopping().name(), "bin-hopping");
    }
}
