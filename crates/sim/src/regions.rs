//! Thread state regions: the footprint ground truth.
//!
//! The paper's Shade-based simulator "understands Active Threads context
//! switches" and tracks which cache lines belong to which thread — the
//! association that raw hardware counters lose (paper §3). We make the
//! association explicit: workloads register the virtual address ranges
//! that constitute each thread's state, possibly overlapping (shared
//! state). The machine then reports the *observed* footprint of a thread
//! as the number of resident L2 lines that intersect its regions, and the
//! region table can also derive the exact sharing coefficients
//! `q_ab = |state_a ∩ state_b| / |state_a|` that a perfectly annotated
//! program would pass to `at_share`.
//!
//! Internally this is a map of **disjoint segments**, each carrying the
//! sorted set of owning threads; registering a range splits segments as
//! needed, so lookups are a single `BTreeMap` probe.

use crate::addr::VAddr;
use locality_core::ThreadId;
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    end: u64,
    owners: Vec<ThreadId>,
}

/// A table of (possibly shared) thread state regions over virtual
/// addresses.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    /// Disjoint segments keyed by start address.
    segments: BTreeMap<u64, Segment>,
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RegionTable::default()
    }

    /// Registers `[start, start+bytes)` as part of `tid`'s state.
    /// Overlaps with existing regions (its own or other threads') are
    /// fine; zero-length regions are ignored.
    pub fn register(&mut self, tid: ThreadId, start: VAddr, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let (s, e) = (start.0, start.0 + bytes);

        // Fast path: periodic workloads re-register the same region every
        // batch. If one existing segment covers the range exactly and
        // already lists `tid`, the general walk below would be a no-op.
        if let Some(seg) = self.segments.get(&s) {
            if seg.end == e && seg.owners.binary_search(&tid).is_ok() {
                return;
            }
        }

        // If a segment begins before `s` and spills into the range, split
        // it: truncate in place through the mutable range cursor, then
        // insert the split-off tail once that borrow ends.
        let mut spill_tail = None;
        if let Some((_, seg)) = self.segments.range_mut(..s).next_back() {
            if seg.end > s {
                spill_tail = Some(Segment { end: seg.end, owners: seg.owners.clone() });
                seg.end = s;
            }
        }
        if let Some(tail) = spill_tail {
            self.segments.insert(s, tail);
        }
        // Walk segments starting in [s, e); fill gaps and tag overlaps.
        let mut cursor = s;
        while cursor < e {
            let next = self.segments.range(cursor..e).next().map(|(&ss, seg)| (ss, seg.end));
            match next {
                Some((ss, _)) if ss > cursor => {
                    // Gap before the next segment: new exclusive segment.
                    self.segments.insert(cursor, Segment { end: ss.min(e), owners: vec![tid] });
                    cursor = ss.min(e);
                }
                Some((ss, se)) => {
                    debug_assert_eq!(ss, cursor);
                    // `ss` was just read out of the map, so the lookup
                    // succeeds; structured as `if let` so a (impossible)
                    // miss degrades to a no-op instead of a panic.
                    let mut past_tail = None;
                    if let Some(seg) = self.segments.get_mut(&ss) {
                        if se > e {
                            // Split off the part past the range.
                            past_tail = Some(Segment { end: se, owners: seg.owners.clone() });
                            seg.end = e;
                        }
                        if let Err(pos) = seg.owners.binary_search(&tid) {
                            seg.owners.insert(pos, tid);
                        }
                    }
                    if let Some(tail) = past_tail {
                        self.segments.insert(e, tail);
                    }
                    cursor = se.min(e);
                }
                None => {
                    self.segments.insert(cursor, Segment { end: e, owners: vec![tid] });
                    cursor = e;
                }
            }
        }
    }

    /// The owners of the byte at `addr` (sorted); empty if unregistered.
    pub fn owners_of(&self, addr: VAddr) -> &[ThreadId] {
        match self.segments.range(..=addr.0).next_back() {
            Some((_, seg)) if seg.end > addr.0 => &seg.owners,
            _ => &[],
        }
    }

    /// Whether any byte of `[start, start+bytes)` belongs to `tid`.
    pub fn range_touches(&self, tid: ThreadId, start: VAddr, bytes: u64) -> bool {
        if bytes == 0 {
            return false;
        }
        let (s, e) = (start.0, start.0 + bytes);
        // Segment covering s, if any.
        if let Some((_, seg)) = self.segments.range(..=s).next_back() {
            if seg.end > s && seg.owners.binary_search(&tid).is_ok() {
                return true;
            }
        }
        self.segments
            .range(s..e)
            .skip_while(|(&ss, _)| ss < s)
            .any(|(_, seg)| seg.owners.binary_search(&tid).is_ok())
    }

    /// The union of owners over `[start, start+bytes)`, sorted.
    pub fn owners_in_range(&self, start: VAddr, bytes: u64) -> Vec<ThreadId> {
        let mut owners = Vec::new();
        self.owners_in_range_into(start, bytes, &mut owners);
        owners
    }

    /// [`owners_in_range`](Self::owners_in_range) into a caller-owned
    /// buffer (cleared first), so per-line scans reuse one allocation.
    pub fn owners_in_range_into(&self, start: VAddr, bytes: u64, owners: &mut Vec<ThreadId>) {
        owners.clear();
        if bytes == 0 {
            return;
        }
        let (s, e) = (start.0, start.0 + bytes);
        let mut merge = |seg: &Segment| {
            for &t in &seg.owners {
                if let Err(pos) = owners.binary_search(&t) {
                    owners.insert(pos, t);
                }
            }
        };
        if let Some((_, seg)) = self.segments.range(..=s).next_back() {
            if seg.end > s {
                merge(seg);
            }
        }
        for (_, seg) in self.segments.range(s..e) {
            merge(seg);
        }
    }

    /// Total registered state of `tid`, in bytes.
    pub fn state_bytes(&self, tid: ThreadId) -> u64 {
        self.segments
            .iter()
            .filter(|(_, seg)| seg.owners.binary_search(&tid).is_ok())
            .map(|(&s, seg)| seg.end - s)
            .sum()
    }

    /// Bytes shared between the states of `a` and `b`.
    pub fn shared_bytes(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.segments
            .iter()
            .filter(|(_, seg)| {
                seg.owners.binary_search(&a).is_ok() && seg.owners.binary_search(&b).is_ok()
            })
            .map(|(&s, seg)| seg.end - s)
            .sum()
    }

    /// The exact sharing coefficient `q_ab = |a ∩ b| / |a|` — what a
    /// perfectly informed `at_share(a, b, q)` annotation would say.
    /// Zero if `a` has no registered state.
    pub fn coefficient(&self, a: ThreadId, b: ThreadId) -> f64 {
        let total = self.state_bytes(a);
        if total == 0 {
            0.0
        } else {
            self.shared_bytes(a, b) as f64 / total as f64
        }
    }

    /// Removes `tid` from all segments (thread exit); segments left
    /// ownerless are dropped.
    pub fn remove_thread(&mut self, tid: ThreadId) {
        let mut empty = Vec::new();
        for (&s, seg) in &mut self.segments {
            if let Ok(pos) = seg.owners.binary_search(&tid) {
                seg.owners.remove(pos);
                if seg.owners.is_empty() {
                    empty.push(s);
                }
            }
        }
        for s in empty {
            self.segments.remove(&s);
        }
    }

    /// Number of internal segments (diagnostics).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn single_region_lookup() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(100), 50);
        assert_eq!(r.owners_of(VAddr(100)), &[t(1)]);
        assert_eq!(r.owners_of(VAddr(149)), &[t(1)]);
        assert!(r.owners_of(VAddr(150)).is_empty());
        assert!(r.owners_of(VAddr(99)).is_empty());
        assert_eq!(r.state_bytes(t(1)), 50);
    }

    #[test]
    fn zero_length_ignored() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(100), 0);
        assert_eq!(r.segment_count(), 0);
    }

    #[test]
    fn exact_overlap_shares() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 100);
        r.register(t(2), VAddr(0), 100);
        assert_eq!(r.owners_of(VAddr(50)), &[t(1), t(2)]);
        assert_eq!(r.shared_bytes(t(1), t(2)), 100);
        assert_eq!(r.coefficient(t(1), t(2)), 1.0);
    }

    #[test]
    fn partial_overlap_splits() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 100);
        r.register(t(2), VAddr(50), 100);
        assert_eq!(r.owners_of(VAddr(25)), &[t(1)]);
        assert_eq!(r.owners_of(VAddr(75)), &[t(1), t(2)]);
        assert_eq!(r.owners_of(VAddr(125)), &[t(2)]);
        assert_eq!(r.shared_bytes(t(1), t(2)), 50);
        assert!((r.coefficient(t(1), t(2)) - 0.5).abs() < 1e-12);
        assert!((r.coefficient(t(2), t(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contained_overlap() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 300);
        r.register(t(2), VAddr(100), 100);
        assert_eq!(r.owners_of(VAddr(150)), &[t(1), t(2)]);
        assert_eq!(r.owners_of(VAddr(250)), &[t(1)]);
        // Mergesort-style: all of child 2's state is inside parent 1's.
        assert_eq!(r.coefficient(t(2), t(1)), 1.0);
        assert!((r.coefficient(t(1), t(2)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gap_filling_across_segments() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(10), 10); // [10,20)
        r.register(t(1), VAddr(40), 10); // [40,50)
        r.register(t(2), VAddr(0), 60); // covers both and the gaps
        assert_eq!(r.owners_of(VAddr(5)), &[t(2)]);
        assert_eq!(r.owners_of(VAddr(15)), &[t(1), t(2)]);
        assert_eq!(r.owners_of(VAddr(30)), &[t(2)]);
        assert_eq!(r.owners_of(VAddr(45)), &[t(1), t(2)]);
        assert_eq!(r.state_bytes(t(2)), 60);
        assert_eq!(r.shared_bytes(t(1), t(2)), 20);
    }

    #[test]
    fn reregistering_same_range_is_idempotent() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 100);
        r.register(t(1), VAddr(0), 100);
        assert_eq!(r.state_bytes(t(1)), 100);
        assert_eq!(r.owners_of(VAddr(0)), &[t(1)]);
    }

    #[test]
    fn range_touches() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(100), 20);
        assert!(r.range_touches(t(1), VAddr(90), 15)); // overlaps head
        assert!(r.range_touches(t(1), VAddr(110), 50)); // overlaps tail
        assert!(r.range_touches(t(1), VAddr(105), 2)); // inside
        assert!(!r.range_touches(t(1), VAddr(0), 100));
        assert!(!r.range_touches(t(1), VAddr(120), 100));
        assert!(!r.range_touches(t(2), VAddr(100), 20));
        assert!(!r.range_touches(t(1), VAddr(100), 0));
    }

    #[test]
    fn remove_thread_drops_exclusive_segments() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 100);
        r.register(t(2), VAddr(50), 100);
        r.remove_thread(t(1));
        assert!(r.owners_of(VAddr(25)).is_empty());
        assert_eq!(r.owners_of(VAddr(75)), &[t(2)]);
        assert_eq!(r.state_bytes(t(1)), 0);
        assert_eq!(r.state_bytes(t(2)), 100);
    }

    #[test]
    fn three_way_sharing() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 90);
        r.register(t(2), VAddr(30), 90);
        r.register(t(3), VAddr(60), 90);
        assert_eq!(r.owners_of(VAddr(70)), &[t(1), t(2), t(3)]);
        assert_eq!(r.shared_bytes(t(1), t(3)), 30);
        assert_eq!(r.shared_bytes(t(2), t(3)), 60);
    }

    #[test]
    fn owners_in_range_unions() {
        let mut r = RegionTable::new();
        r.register(t(1), VAddr(0), 100);
        r.register(t(2), VAddr(50), 100);
        r.register(t(3), VAddr(200), 10);
        assert_eq!(r.owners_in_range(VAddr(40), 20), vec![t(1), t(2)]);
        assert_eq!(r.owners_in_range(VAddr(0), 10), vec![t(1)]);
        assert_eq!(r.owners_in_range(VAddr(0), 300), vec![t(1), t(2), t(3)]);
        assert!(r.owners_in_range(VAddr(300), 10).is_empty());
        assert!(r.owners_in_range(VAddr(0), 0).is_empty());
        // Starting mid-segment still sees the covering segment.
        assert_eq!(r.owners_in_range(VAddr(75), 1), vec![t(1), t(2)]);
    }

    #[test]
    fn segment_count_stays_bounded() {
        // Registering the same ranges repeatedly must not grow the map.
        let mut r = RegionTable::new();
        for _ in 0..10 {
            for i in 0..20u64 {
                r.register(t(i % 4), VAddr(i * 64), 64);
            }
        }
        assert!(r.segment_count() <= 20);
    }
}
