//! Per-processor and per-thread event accounting.
//!
//! These counters are the *simulator's* omniscient view (used by the
//! figures and the harness); the scheduling policies themselves only ever
//! see the [`crate::Pic`] counters, like on real hardware.

/// Events observed by one processor since machine creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// L1 data-cache references.
    pub l1d_refs: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L1 instruction-cache references.
    pub l1i_refs: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// E-cache (L2) references.
    pub l2_refs: u64,
    /// E-cache hits.
    pub l2_hits: u64,
    /// E-cache misses.
    pub l2_misses: u64,
    /// E-cache misses satisfied while another processor cached the line
    /// (the E5000's 80-cycle case).
    pub l2_misses_remote: u64,
    /// Lines invalidated in this processor's caches by other processors'
    /// writes.
    pub invalidations: u64,
    /// Instructions executed (memory accesses + compute).
    pub instructions: u64,
    /// Cycles charged for memory accesses on this processor.
    pub mem_cycles: u64,
    /// TLB hits (probes only fire on page transitions).
    pub tlb_hits: u64,
    /// TLB misses (each pays a page-table walk).
    pub tlb_misses: u64,
    /// Cycles spent in page-table walks (0 under the default free-walk
    /// TLB configuration).
    pub tlb_walk_cycles: u64,
}

/// Events attributed to one thread (wherever it ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Memory accesses issued.
    pub accesses: u64,
    /// E-cache references caused.
    pub l2_refs: u64,
    /// E-cache misses caused.
    pub l2_misses: u64,
    /// Instructions executed (accesses + compute).
    pub instructions: u64,
    /// Cycles charged for memory accesses.
    pub mem_cycles: u64,
}

impl CpuStats {
    /// E-cache misses per 1000 instructions — the paper's Figure 6 metric.
    pub fn mpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

impl ThreadStats {
    /// E-cache misses per 1000 instructions for this thread.
    pub fn mpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_computation() {
        let s = CpuStats { l2_misses: 5, instructions: 1000, ..CpuStats::default() };
        assert!((s.mpi() - 5.0).abs() < 1e-12);
        let s = CpuStats::default();
        assert_eq!(s.mpi(), 0.0);
    }

    #[test]
    fn thread_mpi() {
        let s = ThreadStats { l2_misses: 2, instructions: 4000, ..ThreadStats::default() };
        assert!((s.mpi() - 0.5).abs() < 1e-12);
        assert_eq!(ThreadStats::default().mpi(), 0.0);
    }
}
