//! A set-associative translation lookaside buffer with true-LRU
//! replacement.
//!
//! The TLB caches virtual-page-number translations per processor. Like
//! [`Cache`](crate::Cache) it stores no frame numbers — the simulated
//! page table never remaps a page once allocated, so the TLB only has to
//! model *reach*: which translations are held, and whether an access pays
//! the page-table-walk latency. The default configuration is the
//! UltraSPARC-style fully associative 64-entry dTLB with a zero-cycle
//! walk, which leaves every historical cycle count byte-identical while
//! still exposing hit/miss reach counters.

use crate::SimError;

/// Geometry and walk cost of one processor's TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (1 = fully associative).
    pub sets: u64,
    /// Number of ways per set.
    pub ways: u64,
    /// Cycles charged for the page-table walk on a TLB miss.
    pub walk_cycles: u64,
}

impl Default for TlbConfig {
    /// Fully associative, 64 entries, free walks — the configuration that
    /// reproduces the pre-TLB simulator's cycle counts exactly.
    fn default() -> Self {
        TlbConfig { sets: 1, ways: 64, walk_cycles: 0 }
    }
}

impl TlbConfig {
    /// Validates the geometry (sets and ways must be non-zero powers of
    /// two; the walk latency is unconstrained).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadGeometry`] on any violation.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [("tlb sets", self.sets), ("tlb ways", self.ways)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(SimError::BadGeometry {
                    reason: format!("{name} = {v} must be a non-zero power of two"),
                });
            }
        }
        Ok(())
    }

    /// Total number of entries.
    pub fn entries(&self) -> u64 {
        self.sets * self.ways
    }
}

/// Sentinel for a vacant way: VPNs are stored as `vpn + 1` so a freshly
/// zeroed entry array means "all vacant" (same trick as the cache tag
/// store).
const EMPTY: u64 = 0;

#[inline(always)]
fn tag_of(vpn: u64) -> u64 {
    vpn + 1
}

/// One processor's TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// `sets − 1` (sets is a validated power of two).
    set_mask: u64,
    /// VPN tag per way (`vpn + 1`, [`EMPTY`] = vacant), row-major by set.
    vpns: Vec<u64>,
    /// LRU timestamp per way.
    last_use: Vec<u64>,
    tick: u64,
}

impl Tlb {
    /// Creates an empty TLB from a validated configuration.
    pub fn new(config: TlbConfig) -> Self {
        let n = config.entries() as usize;
        Tlb {
            config,
            set_mask: config.sets - 1,
            vpns: vec![EMPTY; n],
            last_use: vec![0; n],
            tick: 0,
        }
    }

    /// The TLB configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Cycles charged on a miss (the page-table walk).
    #[inline]
    pub fn walk_cycles(&self) -> u64 {
        self.config.walk_cycles
    }

    fn set_range(&self, vpn: u64) -> std::ops::Range<usize> {
        let set = (vpn & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks the translation up and, on a hit, refreshes its LRU
    /// position. Returns `true` on hit.
    #[inline]
    pub fn probe(&mut self, vpn: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let tag = tag_of(vpn);
        for i in self.set_range(vpn) {
            if self.vpns[i] == tag {
                self.last_use[i] = tick;
                return true;
            }
        }
        false
    }

    /// Whether the translation is held, without touching LRU state.
    pub fn contains(&self, vpn: u64) -> bool {
        let range = self.set_range(vpn);
        self.vpns[range].contains(&tag_of(vpn))
    }

    /// Installs a translation after a walk (the VPN must not already be
    /// held — [`probe`](Self::probe) first), evicting the LRU way of its
    /// set if the set is full. Returns the displaced VPN, if any.
    pub fn insert(&mut self, vpn: u64) -> Option<u64> {
        debug_assert!(!self.contains(vpn), "vpn {vpn:#x} already held");
        self.tick += 1;
        let range = self.set_range(vpn);
        let mut victim = range.start;
        let mut victim_use = u64::MAX;
        for i in range {
            if self.vpns[i] == EMPTY {
                self.vpns[i] = tag_of(vpn);
                self.last_use[i] = self.tick;
                return None;
            }
            if self.last_use[i] < victim_use {
                victim_use = self.last_use[i];
                victim = i;
            }
        }
        let displaced = self.vpns[victim] - 1;
        self.vpns[victim] = tag_of(vpn);
        self.last_use[victim] = self.tick;
        Some(displaced)
    }

    /// Number of held translations.
    pub fn resident_entries(&self) -> u64 {
        self.vpns.iter().filter(|&&v| v != EMPTY).count() as u64
    }

    /// Drops every translation (e.g. alongside a cache flush).
    pub fn flush(&mut self) {
        self.vpns.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_pre_tlb_behaviour() {
        let c = TlbConfig::default();
        assert_eq!(c.entries(), 64);
        assert_eq!(c.walk_cycles, 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_validation() {
        assert!(TlbConfig { sets: 0, ways: 4, walk_cycles: 0 }.validate().is_err());
        assert!(TlbConfig { sets: 4, ways: 0, walk_cycles: 0 }.validate().is_err());
        assert!(TlbConfig { sets: 3, ways: 4, walk_cycles: 0 }.validate().is_err());
        assert!(TlbConfig { sets: 16, ways: 4, walk_cycles: 30 }.validate().is_ok());
    }

    #[test]
    fn probe_miss_insert_hit() {
        let mut t = Tlb::new(TlbConfig::default());
        assert!(!t.probe(7));
        assert_eq!(t.insert(7), None);
        assert!(t.probe(7));
        assert!(t.contains(7));
        assert_eq!(t.resident_entries(), 1);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // 2 sets × 2 ways: VPNs 0, 2, 4 all map to set 0.
        let mut t = Tlb::new(TlbConfig { sets: 2, ways: 2, walk_cycles: 0 });
        t.insert(0);
        t.insert(2);
        assert!(t.probe(0)); // 0 becomes MRU; 2 is LRU
        assert_eq!(t.insert(4), Some(2), "LRU way must be displaced");
        assert!(t.contains(0) && t.contains(4) && !t.contains(2));
    }

    #[test]
    fn reach_is_bounded_by_entries() {
        let mut t = Tlb::new(TlbConfig { sets: 4, ways: 2, walk_cycles: 0 });
        for vpn in 0..64u64 {
            if !t.probe(vpn) {
                t.insert(vpn);
            }
        }
        assert_eq!(t.resident_entries(), 8, "reach can never exceed sets × ways");
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(TlbConfig::default());
        t.insert(1);
        t.insert(2);
        t.flush();
        assert_eq!(t.resident_entries(), 0);
        assert!(!t.contains(1));
    }
}
