//! Reference-trace recording and replay.
//!
//! The paper's simulator was built on Shade, a dynamic binary translator
//! that forwards every memory reference of an unmodified binary into
//! custom analysis units (paper §3.1). Our workloads generate their
//! references programmatically instead, but the equivalent decoupling is
//! still useful: record a run's reference stream once, replay it against
//! differently-configured machines (placement policies, cache
//! geometries) without re-running the application logic.
//!
//! Traces are compact in-memory streams with an optional portable text
//! form (one record per line: `r|w|f <cpu> <hex-vaddr>`), so they can be
//! diffed, stored, and replayed across processes.

use crate::addr::VAddr;
use crate::machine::{AccessKind, Machine};

/// One recorded reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The processor that issued the access.
    pub cpu: u8,
    /// The access kind.
    pub kind: AccessKind,
    /// The virtual address.
    pub addr: VAddr,
}

/// An in-memory reference trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one reference.
    pub fn record(&mut self, cpu: usize, kind: AccessKind, addr: VAddr) {
        debug_assert!(cpu <= u8::MAX as usize, "trace supports up to 256 cpus");
        self.records.push(TraceRecord { cpu: cpu as u8, kind, addr });
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.records.iter()
    }

    /// Replays the trace against a machine, returning the total cycles
    /// charged. The machine's own statistics and counters accumulate as
    /// if the original program had run.
    pub fn replay(&self, machine: &mut Machine) -> u64 {
        let mut cycles = 0;
        for r in &self.records {
            cycles += machine.access(r.cpu as usize, r.addr, r.kind);
        }
        cycles
    }

    /// Serializes to the portable text form.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.records.len() * 16);
        for r in &self.records {
            let k = match r.kind {
                AccessKind::Read => 'r',
                AccessKind::Write => 'w',
                AccessKind::Fetch => 'f',
            };
            let _ = writeln!(out, "{k} {} {:x}", r.cpu, r.addr.0);
        }
        out
    }

    /// Parses the portable text form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut trace = Trace::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = || format!("malformed trace record on line {}: '{line}'", i + 1);
            let kind = match parts.next().ok_or_else(err)? {
                "r" => AccessKind::Read,
                "w" => AccessKind::Write,
                "f" => AccessKind::Fetch,
                _ => return Err(err()),
            };
            let cpu: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let addr = u64::from_str_radix(parts.next().ok_or_else(err)?, 16).map_err(|_| err())?;
            if parts.next().is_some() {
                return Err(err());
            }
            trace.records.push(TraceRecord { cpu, kind, addr: VAddr(addr) });
        }
        Ok(trace)
    }

    /// Per-cpu reference counts (diagnostics).
    pub fn per_cpu_counts(&self) -> Vec<(u8, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for r in &self.records {
            *counts.entry(r.cpu).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace { records: iter.into_iter().collect() }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::paging::PagePlacement;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..100u64 {
            t.record(0, AccessKind::Read, VAddr(0x10000 + i * 64));
        }
        t.record(1, AccessKind::Write, VAddr(0x10000));
        t.record(0, AccessKind::Fetch, VAddr(0x80000));
        t
    }

    #[test]
    fn replay_reproduces_machine_state() {
        let t = sample_trace();
        let mut a = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let mut b = Machine::try_new(MachineConfig::enterprise5000(2)).unwrap();
        let ca = t.replay(&mut a);
        let cb = t.replay(&mut b);
        assert_eq!(ca, cb);
        assert_eq!(a.cpu_stats(0), b.cpu_stats(0));
        assert_eq!(a.cpu_stats(1), b.cpu_stats(1));
        assert!(a.cpu_stats(0).l2_misses >= 100);
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let text = t.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn text_tolerates_comments_and_blanks() {
        let t = Trace::from_text("# header\n\nr 0 40\nw 1 80\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().next().unwrap().addr, VAddr(0x40));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Trace::from_text("x 0 40").is_err());
        assert!(Trace::from_text("r zero 40").is_err());
        assert!(Trace::from_text("r 0 zz").is_err());
        assert!(Trace::from_text("r 0").is_err());
        assert!(Trace::from_text("r 0 40 extra").is_err());
        let err = Trace::from_text("r 0 40\nbogus").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn replay_across_placements_differs_only_in_conflicts() {
        // The same trace on different placement policies: reference count
        // identical, miss counts may differ (that is the point).
        let mut t = Trace::new();
        for i in 0..2000u64 {
            t.record(0, AccessKind::Read, VAddr(0x10000 + (i % 700) * 8192));
        }
        let mut careful = Machine::try_new(MachineConfig::ultra1()).unwrap();
        let mut naive =
            Machine::try_new(MachineConfig::ultra1().with_placement(PagePlacement::arbitrary()))
                .unwrap();
        t.replay(&mut careful);
        t.replay(&mut naive);
        assert_eq!(careful.cpu_stats(0).l1d_refs, naive.cpu_stats(0).l1d_refs);
        assert!(
            naive.cpu_stats(0).l2_misses >= careful.cpu_stats(0).l2_misses,
            "naive placement must not beat bin hopping on a wrapping stride"
        );
    }

    #[test]
    fn collect_and_counts() {
        let t: Trace = sample_trace().iter().copied().collect();
        assert_eq!(t.len(), 102);
        let counts = t.per_cpu_counts();
        assert_eq!(counts, vec![(0, 101), (1, 1)]);
        assert!(!t.is_empty());
        assert!(Trace::new().is_empty());
    }
}
