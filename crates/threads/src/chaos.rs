//! Deterministic thread-lifecycle fault injection — the *chaos layer*.
//!
//! A [`ChaosConfig`] installed in [`EngineConfig`](crate::EngineConfig)
//! makes the engine kill threads at well-defined points of its own
//! discrete-event loop: at batch boundaries (abort mid-interval, with or
//! without held locks), at admission (spawn failure), and at scheduling
//! steps (death of ready/sleeping/blocked threads, abandoning their
//! shared regions). Every decision comes from a seeded xorshift64*
//! stream with fixed-point probabilities, so a chaos run is exactly as
//! reproducible as a clean one: identical config + identical workload →
//! identical kills → byte-identical artifacts.
//!
//! Recovery is the engine's job, not this module's: see
//! `Engine::abort_thread` for the cleanup chain (orphaned-lock
//! reclamation with poisoning, waiter-queue purging, scheduler/graph/
//! sanitizer/machine pruning through the slot-recycling path).

/// Chaos tunables. All probabilities are fixed-point *per 65536* so the
/// config stays `Copy + Eq` and decisions never depend on float
/// rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the fault stream. Same seed, same kills.
    pub seed: u64,
    /// Per-batch probability (×2⁻¹⁶) of aborting the running thread at
    /// the batch boundary it just reached (abort mid-interval).
    pub abort_running_per_64k: u32,
    /// Restrict running-thread aborts to victims that currently own at
    /// least one mutex (the lock-poisoning scenario).
    pub only_lock_holders: bool,
    /// Per-admission probability (×2⁻¹⁶) that a spawn fails: the thread
    /// is stillborn — it joins as aborted and never runs a batch.
    pub spawn_fail_per_64k: u32,
    /// Per-step probability (×2⁻¹⁶) of killing one idle (ready,
    /// sleeping, or blocked) thread, chosen uniformly from the live
    /// population in slot order.
    pub abort_idle_per_64k: u32,
    /// Hard cap on injected faults of all kinds.
    pub max_faults: u32,
    /// Never abort when it would drop the live population to or below
    /// this floor (spawn failures are exempt: they never reduce `live`).
    pub min_live: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            abort_running_per_64k: 0,
            only_lock_holders: false,
            spawn_fail_per_64k: 0,
            abort_idle_per_64k: 0,
            max_faults: u32::MAX,
            min_live: 1,
        }
    }
}

impl ChaosConfig {
    /// Scenario: abort running threads mid-interval (~1/64 per batch).
    pub fn abort_running(seed: u64) -> Self {
        ChaosConfig { seed, abort_running_per_64k: 1024, ..ChaosConfig::default() }
    }

    /// Scenario: abort running threads only while they hold a mutex —
    /// every kill poisons and orphans a lock (~1/32 per eligible batch).
    pub fn abort_locked(seed: u64) -> Self {
        ChaosConfig {
            seed,
            abort_running_per_64k: 2048,
            only_lock_holders: true,
            ..ChaosConfig::default()
        }
    }

    /// Scenario: spawns fail (~1/16 per admission); the stillborn thread
    /// is joinable but never runs.
    pub fn spawn_fail(seed: u64) -> Self {
        ChaosConfig { seed, spawn_fail_per_64k: 4096, ..ChaosConfig::default() }
    }

    /// Scenario: kill idle (ready/sleeping/blocked) threads, abandoning
    /// whatever shared regions and queue entries they left behind.
    pub fn abort_idle(seed: u64) -> Self {
        ChaosConfig { seed, abort_idle_per_64k: 512, ..ChaosConfig::default() }
    }

    /// Scenario: everything at once — hostile churn across the whole
    /// thread lifecycle.
    pub fn churn(seed: u64) -> Self {
        ChaosConfig {
            seed,
            abort_running_per_64k: 512,
            spawn_fail_per_64k: 2048,
            abort_idle_per_64k: 256,
            ..ChaosConfig::default()
        }
    }

    /// Whether any fault kind can fire at all.
    pub fn is_active(&self) -> bool {
        self.max_faults > 0
            && (self.abort_running_per_64k > 0
                || self.spawn_fail_per_64k > 0
                || self.abort_idle_per_64k > 0)
    }
}

/// Mutable fault-stream state owned by the engine: the PRNG position and
/// the number of faults injected so far.
#[derive(Debug, Clone)]
pub(crate) struct ChaosState {
    rng: u64,
    faults: u32,
}

impl ChaosState {
    pub(crate) fn new(cfg: &ChaosConfig) -> Self {
        // xorshift64* needs a nonzero state; fold the seed onto a salt.
        ChaosState { rng: cfg.seed ^ 0x9E37_79B9_7F4A_7C15, faults: 0 }
    }

    pub(crate) fn faults(&self) -> u32 {
        self.faults
    }

    pub(crate) fn note_fault(&mut self) {
        self.faults += 1;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): full-period, passes the statistical tests
        // that matter for fault scattering, and trivially portable.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Bernoulli roll with probability `per_64k / 65536`. Always draws
    /// (and advances the stream) so decision *sites* stay aligned across
    /// configs that differ only in rates.
    pub(crate) fn roll(&mut self, per_64k: u32) -> bool {
        let draw = (self.next_u64() >> 48) as u32; // top 16 bits
        draw < per_64k
    }

    /// Uniform pick in `0..n` (`n > 0`).
    pub(crate) fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let cfg = ChaosConfig::default();
        assert!(!cfg.is_active());
        assert_eq!(cfg.min_live, 1);
    }

    #[test]
    fn scenario_constructors_are_active() {
        for cfg in [
            ChaosConfig::abort_running(1),
            ChaosConfig::abort_locked(1),
            ChaosConfig::spawn_fail(1),
            ChaosConfig::abort_idle(1),
            ChaosConfig::churn(1),
        ] {
            assert!(cfg.is_active());
        }
        assert!(ChaosConfig::abort_locked(1).only_lock_holders);
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = ChaosConfig::churn(42);
        let mut a = ChaosState::new(&cfg);
        let mut b = ChaosState::new(&cfg);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different seeds diverge.
        let mut c = ChaosState::new(&ChaosConfig::churn(43));
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 8, "seeds 42 and 43 produced near-identical streams");
    }

    #[test]
    fn roll_rates_are_sane() {
        let mut st = ChaosState::new(&ChaosConfig::default());
        let n = 100_000;
        let hits = (0..n).filter(|_| st.roll(1024)).count();
        // 1024/65536 ≈ 1.56%; accept a generous band.
        let rate = hits as f64 / n as f64;
        assert!(rate > 0.010 && rate < 0.022, "rate {rate} outside band");
        // Zero never fires, 65536+ always fires.
        assert!(!(0..1000).any(|_| st.roll(0)));
        assert!((0..1000).all(|_| st.roll(65536)));
    }

    #[test]
    fn pick_is_in_range() {
        let mut st = ChaosState::new(&ChaosConfig::default());
        for n in 1..=17 {
            for _ in 0..100 {
                assert!(st.pick(n) < n);
            }
        }
    }
}
