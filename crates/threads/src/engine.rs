//! The multiprocessor runtime engine.
//!
//! The engine owns the simulated [`Machine`], the thread table, the
//! synchronization objects, the annotation graph, and the scheduler. It
//! advances the processor with the smallest local clock one *batch* at a
//! time — a deterministic discrete-event interleaving that models true
//! SMP execution at batch granularity.
//!
//! At every context switch it performs exactly the paper's runtime
//! sequence: read-and-reset the performance counters (a few instructions,
//! charged), run the raw deltas through the [`CounterSanitizer`]
//! (wraparound and outlier correction — the model never sees absurd miss
//! counts even under injected counter faults), hand the sanitized
//! interval to the scheduler (which runs the model's `O(out-degree)`
//! priority updates), fire scheduling-event hooks, and dispatch the next
//! thread.

use crate::chaos::{ChaosConfig, ChaosState};
use crate::error::RuntimeError;
use crate::events::{EngineHook, EngineView, SwitchEvent, SwitchReason};
use crate::inference::{InferenceConfig, SharingInference};
use crate::observe::{ObsEvent, ObsLog};
use crate::points::{BlockedOn, SchedulePoint, VisibleOp};
use crate::program::{BatchCtx, Control, PendingSpawn, Program};
use crate::report::RunReport;
use crate::sched::{self, SchedPolicy, Scheduler};
use crate::sync::{BarrierId, CondId, MutexId, SemId, SyncTables};
use crate::thread::{Tcb, ThreadState};
use locality_core::{
    CounterSanitizer, SanitizedInterval, SanitizerConfig, SharingGraph, ThreadId, ThreadSlots,
};
use locality_sim::{CacheGeometry, Machine, MachineConfig, SimError, TlbConfig};
use locality_trace::{emit_with, set_clock, TraceEvent};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Base context-switch cost in cycles (paper: "a basic context switch
    /// cost on the order of 100 instructions").
    pub switch_cost_cycles: u64,
    /// Cost of reading and resetting the PICs at a switch ("only several
    /// instructions").
    pub pic_read_cycles: u64,
    /// Cost of an uncontended synchronization operation.
    pub sync_op_cycles: u64,
    /// Optional preemption time slice in cycles (None = run to block,
    /// the common fine-grained-threads configuration).
    pub time_slice: Option<u64>,
    /// Optional runtime sharing inference (the paper's §7 future work):
    /// drain a per-processor Cache Miss Lookaside buffer at each context
    /// switch and write inferred `at_share` edges into the graph.
    pub infer_sharing: Option<InferenceConfig>,
    /// Optional thread-lifecycle fault injection (the chaos layer):
    /// seeded, deterministic thread aborts, spawn failures, and idle
    /// kills at well-defined points of the engine loop.
    pub chaos: Option<ChaosConfig>,
    /// Safety valve: maximum engine steps before aborting the run.
    pub max_steps: u64,
    /// Controlled scheduling for model checking: force a scheduling
    /// decision at every visible operation (the running thread is
    /// preempted after every batch) and record each batch as a
    /// [`SchedulePoint`]. Off for normal runs — the engine then keeps
    /// its fast continue-without-switch paths.
    pub schedule_points: bool,
    /// Optional secondary-cache geometry override, applied to the machine
    /// description before construction (`None` = keep the machine's own
    /// geometry). Lets experiment descriptors vary geometry without
    /// rebuilding the whole [`MachineConfig`].
    pub l2_geometry: Option<CacheGeometry>,
    /// Optional page-size override in bytes (`None` = machine default).
    pub page_bytes: Option<u64>,
    /// Optional TLB configuration override (`None` = machine default:
    /// fully associative, 64 entries, free walks).
    pub tlb: Option<TlbConfig>,
}

impl EngineConfig {
    /// Applies this config's memory-system overrides to a machine
    /// description (identity when all overrides are `None`).
    pub fn apply_overrides(&self, mut machine: MachineConfig) -> MachineConfig {
        if let Some(l2) = self.l2_geometry {
            machine = machine.with_l2_geometry(l2);
        }
        if let Some(page) = self.page_bytes {
            machine = machine.with_page_size(page);
        }
        if let Some(tlb) = self.tlb {
            machine = machine.with_tlb(tlb);
        }
        machine
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            switch_cost_cycles: 100,
            pic_read_cycles: 8,
            sync_op_cycles: 12,
            time_slice: None,
            infer_sharing: None,
            chaos: None,
            max_steps: 2_000_000_000,
            schedule_points: false,
            l2_geometry: None,
            page_bytes: None,
            tlb: None,
        }
    }
}

/// The Active Threads runtime over the simulated machine.
///
/// Generic over the scheduler so hot workloads monomorphize the
/// dispatch loop over a concrete policy type; the default
/// `Engine<Box<dyn Scheduler>>` (built by [`Engine::new`]) keeps
/// runtime `--policy` selection working at the binary/CLI boundary.
pub struct Engine<S: Scheduler = Box<dyn Scheduler>> {
    machine: Machine,
    config: EngineConfig,
    sched: S,
    /// Dense slot registry over live threads (slots recycle at exit).
    slots: ThreadSlots,
    /// The thread table: a slot-indexed TCB slab arena.
    tcbs: Vec<Option<Tcb>>,
    /// Exited threads, moved out of the slab so their slot can recycle
    /// while joins and post-run counter queries keep working.
    retired: HashMap<ThreadId, Tcb>,
    sync: SyncTables,
    graph: SharingGraph,
    clocks: Vec<u64>,
    current: Vec<Option<ThreadId>>,
    run_start: Vec<u64>,
    sleepers: BinaryHeap<Reverse<(u64, ThreadId)>>,
    inference: Option<SharingInference>,
    sanitizer: CounterSanitizer,
    chaos: Option<ChaosState>,
    obs: Option<ObsLog>,
    points: Vec<SchedulePoint>,
    hooks: Vec<Box<dyn EngineHook>>,
    next_tid: u64,
    live: u64,
    completed: u64,
    aborted: u64,
    switches: u64,
    corrected_intervals: u64,
    steps: u64,
}

impl<S: Scheduler> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("policy", &self.sched.name())
            .field("cpus", &self.clocks.len())
            .field("live", &self.live)
            .field("switches", &self.switches)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine over a fresh machine, with the scheduler chosen
    /// at runtime (the `dyn` boundary used by the CLI's `--policy`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidMachine`] when the machine cannot
    /// host the requested scheduler (E-cache too small for the model,
    /// zero or more than 64 processors).
    pub fn new(
        machine: MachineConfig,
        policy: SchedPolicy,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let machine = config.apply_overrides(machine);
        let sched = sched::build(policy, machine.l2_lines(), machine.cpus)?;
        Engine::with_scheduler(machine, sched, config)
    }
}

impl<S: Scheduler> Engine<S> {
    /// Builds an engine over a fresh machine with a caller-constructed
    /// scheduler. Monomorphizes the engine over `S`, eliding the virtual
    /// dispatch of the default `Box<dyn Scheduler>` engine — the fast
    /// path for benchmarks and embedded uses that know their policy at
    /// compile time.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidMachine`] when the machine
    /// description itself is invalid (bad cache geometry, zero
    /// processors); scheduler-specific requirements are the caller's
    /// problem here, since the scheduler arrives already built.
    pub fn with_scheduler(
        machine: MachineConfig,
        sched: S,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let mut machine = Machine::try_new(config.apply_overrides(machine))
            .map_err(|e| RuntimeError::InvalidMachine { what: e.to_string() })?;
        let cpus = machine.cpu_count();
        let inference = config.infer_sharing.map(|cfg| {
            machine.enable_cml(cfg.cml_entries);
            SharingInference::new(cfg)
        });
        Ok(Engine {
            inference,
            machine,
            config,
            sched,
            slots: ThreadSlots::new(),
            tcbs: Vec::new(),
            retired: HashMap::new(),
            sync: SyncTables::new(),
            graph: SharingGraph::new(),
            clocks: vec![0; cpus],
            current: vec![None; cpus],
            run_start: vec![0; cpus],
            sleepers: BinaryHeap::new(),
            sanitizer: CounterSanitizer::new(SanitizerConfig::default()),
            chaos: config.chaos.filter(ChaosConfig::is_active).map(|cfg| ChaosState::new(&cfg)),
            obs: None,
            points: Vec::new(),
            hooks: Vec::new(),
            next_tid: 1,
            live: 0,
            completed: 0,
            aborted: 0,
            switches: 0,
            corrected_intervals: 0,
            steps: 0,
        })
    }

    /// The simulated machine (ground truth, allocation, regions).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (experiment setup: prefilling caches,
    /// registering regions for externally-managed memory).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The annotation graph.
    pub fn graph(&self) -> &SharingGraph {
        &self.graph
    }

    /// Adds an `at_share(src, dst, q)` annotation from outside any thread
    /// (equivalent to annotations placed at thread-creation sites).
    ///
    /// An annotation naming an already-retired (exited or aborted)
    /// thread is dropped: the teardown path has pruned that thread from
    /// the graph, and nothing may resurrect edges for a corpse.
    ///
    /// # Errors
    ///
    /// Returns [`locality_core::ModelError`] for invalid coefficients or
    /// self-sharing; annotations are hints, so callers may ignore it.
    pub fn annotate(
        &mut self,
        src: ThreadId,
        dst: ThreadId,
        q: f64,
    ) -> Result<(), locality_core::ModelError> {
        if self.retired.contains_key(&src) || self.retired.contains_key(&dst) {
            return Ok(());
        }
        self.graph.set(src, dst, q)
    }

    /// The scheduler (e.g. for expected footprints in experiments).
    pub fn scheduler(&self) -> &S {
        &self.sched
    }

    /// Counter intervals the sanitizer had to correct so far (plus read
    /// traps); zero on a clean machine.
    pub fn corrected_intervals(&self) -> u64 {
        self.corrected_intervals
    }

    /// Looks up a live thread's TCB in the slab, surfacing a typed error
    /// instead of panicking when the runtime's tables are inconsistent.
    fn tcb_mut(&mut self, tid: ThreadId) -> Result<&mut Tcb, RuntimeError> {
        self.slots
            .lookup_cached(tid)
            .and_then(|slot| self.tcbs[slot.index()].as_mut())
            .ok_or(RuntimeError::UnknownThread { thread: tid })
    }

    /// The synchronization tables (pre-creating objects before a run).
    pub fn sync_tables_mut(&mut self) -> &mut SyncTables {
        &mut self.sync
    }

    /// Starts recording an [`ObsLog`] of sync operations, access spans,
    /// spawns/joins/exits, and annotations for offline analysis. Cheap
    /// no-ops everywhere when not enabled.
    pub fn enable_observation(&mut self) {
        self.obs = Some(ObsLog::new());
    }

    /// Takes the recorded observation log, if observation was enabled
    /// (typically after [`run`](Self::run)). Recording stops.
    pub fn take_observation(&mut self) -> Option<ObsLog> {
        self.obs.take()
    }

    fn note(&mut self, ev: ObsEvent) {
        if let Some(log) = &mut self.obs {
            log.record(ev);
        }
    }

    /// Registers an observer hook.
    pub fn add_hook(&mut self, hook: Box<dyn EngineHook>) {
        self.hooks.push(hook);
    }

    /// Removes and returns all hooks (to read results after a run).
    pub fn take_hooks(&mut self) -> Vec<Box<dyn EngineHook>> {
        std::mem::take(&mut self.hooks)
    }

    /// Number of context switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The largest processor clock (current makespan).
    pub fn now(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Spawns a root thread (ready immediately).
    pub fn spawn(&mut self, program: Box<dyn Program>) -> ThreadId {
        let tid = ThreadId(self.next_tid);
        self.next_tid += 1;
        self.note(ObsEvent::Spawn { parent: None, child: tid });
        self.admit(PendingSpawn { tid, program });
        tid
    }

    fn admit(&mut self, spawn: PendingSpawn) {
        if let (Some(cfg), Some(st)) = (self.config.chaos, self.chaos.as_mut()) {
            if st.faults() < cfg.max_faults && st.roll(cfg.spawn_fail_per_64k) {
                // Spawn failure: the thread is stillborn. It never binds
                // a slot, never runs a batch, and never reaches the
                // scheduler — but it is joinable (aborted threads land in
                // the retired table like exited ones).
                st.note_fault();
                let mut tcb = Tcb::new(spawn.tid, spawn.program);
                tcb.state = ThreadState::Aborted;
                self.aborted += 1;
                self.note(ObsEvent::Abort { tid: spawn.tid });
                emit_with(|| TraceEvent::ThreadAbort { tid: spawn.tid.0 });
                // The parent may have annotated the child between spawn
                // and admission; those edges die with the stillbirth.
                self.graph.remove_thread(spawn.tid);
                self.retired.insert(spawn.tid, tcb);
                return;
            }
        }
        let tcb = Tcb::new(spawn.tid, spawn.program);
        let slot = self.slots.bind(spawn.tid);
        let i = slot.index();
        if i >= self.tcbs.len() {
            self.tcbs.resize_with(i + 1, || None);
        }
        debug_assert!(self.tcbs[i].is_none(), "slot {i} recycled with a live TCB");
        self.tcbs[i] = Some(tcb);
        self.live += 1;
        self.sched.on_spawn(spawn.tid);
    }

    /// Runs until every thread has exited.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Deadlock`] if blocked threads can never wake;
    /// * [`RuntimeError::StepBudgetExceeded`] on runaway programs;
    /// * sync-object usage errors ([`RuntimeError::NotOwner`], …).
    pub fn run(&mut self) -> Result<RunReport, RuntimeError> {
        while self.live > 0 {
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(RuntimeError::StepBudgetExceeded { budget: self.config.max_steps });
            }
            self.process_wakeups()?;
            let cpu = self.min_clock_cpu();
            match self.current[cpu] {
                Some(tid) => self.step_thread(cpu, tid)?,
                None => {
                    if !self.dispatch(cpu)? {
                        self.advance_idle(cpu)?;
                    }
                }
            }
            self.maybe_abort_idle(cpu)?;
        }
        Ok(self.report())
    }

    /// Builds a report of the run so far.
    pub fn report(&self) -> RunReport {
        let per_cpu: Vec<_> = (0..self.clocks.len()).map(|c| self.machine.cpu_stats(c)).collect();
        RunReport {
            policy: self.sched.name().to_string(),
            cpus: self.clocks.len(),
            total_cycles: self.now(),
            total_l2_misses: per_cpu.iter().map(|s| s.l2_misses).sum(),
            total_l2_refs: per_cpu.iter().map(|s| s.l2_refs).sum(),
            total_instructions: per_cpu.iter().map(|s| s.instructions).sum(),
            context_switches: self.switches,
            threads_completed: self.completed,
            threads_aborted: self.aborted,
            steals: self.sched.steals(),
            priority_flops: self.sched.priority_flops(),
            degraded_intervals: self.sched.degraded_intervals(),
            corrected_intervals: self.corrected_intervals,
            per_cpu,
        }
    }

    fn min_clock_cpu(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.clocks.iter().enumerate() {
            if c < self.clocks[best] {
                best = i;
            }
        }
        best
    }

    fn process_wakeups(&mut self) -> Result<(), RuntimeError> {
        let frontier = self.clocks.iter().copied().min().unwrap_or(0);
        while let Some(&Reverse((wake, tid))) = self.sleepers.peek() {
            if wake > frontier {
                break;
            }
            self.sleepers.pop();
            // A sleeper killed by fault injection leaves a stale heap
            // entry behind (the binary heap has no random removal); it is
            // discarded lazily here. Tids are never reused, so a failed
            // slot lookup can only mean the thread is gone.
            if self.slots.lookup(tid).is_none() {
                continue;
            }
            self.make_ready(tid)?;
        }
        Ok(())
    }

    fn make_ready(&mut self, tid: ThreadId) -> Result<(), RuntimeError> {
        let tcb = self.tcb_mut(tid)?;
        debug_assert!(
            matches!(tcb.state, ThreadState::Blocked | ThreadState::Sleeping),
            "{tid} woken in state {:?}",
            tcb.state
        );
        tcb.state = ThreadState::Ready;
        self.sched.on_ready(tid);
        Ok(())
    }

    fn dispatch(&mut self, cpu: usize) -> Result<bool, RuntimeError> {
        // Stamp trace records emitted during the pick (scheduler dispatch
        // decisions) with this processor's clock.
        set_clock(self.clocks[cpu]);
        let Some(tid) = self.sched.pick(cpu) else { return Ok(false) };
        let tcb = self.tcb_mut(tid)?;
        debug_assert_eq!(tcb.state, ThreadState::Ready);
        tcb.state = ThreadState::Running;
        self.current[cpu] = Some(tid);
        self.run_start[cpu] = self.clocks[cpu];
        self.machine.set_running(cpu, Some(tid));
        self.sched.on_dispatch(cpu, tid);
        emit_with(|| TraceEvent::IntervalBegin {
            cpu: cpu as u32,
            tid: tid.0,
            ready_depth: self.sched.ready_count() as u32,
            expected_footprint: self.sched.expected_footprint(cpu, tid).unwrap_or(f64::NAN),
        });
        // Start the counter interval cleanly at dispatch. A trapping read
        // cannot reset the PICs; the stale span is absorbed by the
        // sanitizer when the interval ends.
        let _ = self.machine.pic_take_interval(cpu);
        Ok(true)
    }

    fn advance_idle(&mut self, cpu: usize) -> Result<(), RuntimeError> {
        let busy_min = self
            .clocks
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.current[i].is_some())
            .map(|(_, &c)| c)
            .min();
        let wake_min = self.sleepers.peek().map(|&Reverse((w, _))| w);
        let candidate = match (busy_min, wake_min) {
            (Some(b), Some(w)) => b.min(w),
            (Some(b), None) => b,
            (None, Some(w)) => w,
            (None, None) => {
                // Nothing running, nothing sleeping; with nothing ready
                // either, the remaining threads are deadlocked.
                if self.sched.ready_count() == 0 {
                    let mut blocked: Vec<ThreadId> = self
                        .tcbs
                        .iter()
                        .flatten()
                        .filter(|t| t.state == ThreadState::Blocked)
                        .map(|t| t.id)
                        .collect();
                    blocked.sort_unstable();
                    return Err(RuntimeError::Deadlock { blocked });
                }
                // Ready work exists but this policy could not hand it to
                // this cpu; retry after a minimal advance.
                self.clocks[cpu] += 1;
                return Ok(());
            }
        };
        self.clocks[cpu] = self.clocks[cpu].max(candidate).max(self.clocks[cpu] + 1);
        Ok(())
    }

    fn step_thread(&mut self, cpu: usize, tid: ThreadId) -> Result<(), RuntimeError> {
        let obs_start = self.obs.as_ref().map_or(0, ObsLog::len);
        let mut program = {
            let tcb = self.tcb_mut(tid)?;
            tcb.batches += 1;
            tcb.program.take().ok_or_else(|| RuntimeError::Internal {
                what: format!("{tid} stepped while its program was checked out"),
            })?
        };
        let mut ctx = BatchCtx {
            machine: &mut self.machine,
            sync: &mut self.sync,
            graph: &mut self.graph,
            cpu,
            tid,
            cycles: 0,
            next_tid: &mut self.next_tid,
            spawns: Vec::new(),
            obs: self.obs.as_mut(),
            accesses: self.config.schedule_points.then(Vec::new),
        };
        let control = program.next_batch(&mut ctx);
        let cycles = ctx.cycles;
        let accesses = ctx.accesses.take();
        let spawns = std::mem::take(&mut ctx.spawns);
        drop(ctx);
        self.tcb_mut(tid)?.program = Some(program);
        self.clocks[cpu] += cycles;
        if self.config.schedule_points {
            let point = SchedulePoint {
                tid,
                op: VisibleOp::of(control),
                accesses: accesses.unwrap_or_default(),
                spawned: spawns.iter().map(|s| s.tid).collect(),
                obs_range: (obs_start, obs_start),
            };
            self.sched.on_schedule_point(&point);
            self.points.push(point);
        }
        for spawn in spawns {
            self.admit(spawn);
        }
        // Chaos decision point: a thread aborted at a batch boundary dies
        // *before* its control takes effect — a lock it was about to
        // release stays held (and is reclaimed by the abort), a sync op
        // it was about to issue never happens.
        if self.maybe_abort_running(cpu, tid)? {
            return Ok(());
        }
        self.handle_control(cpu, tid, control)?;
        if self.config.schedule_points {
            let obs_end = self.obs.as_ref().map_or(0, ObsLog::len);
            if let Some(point) = self.points.last_mut() {
                point.obs_range.1 = obs_end;
            }
        }
        // Time-slice preemption applies only if the thread kept running.
        if let Some(slice) = self.config.time_slice {
            if self.current[cpu] == Some(tid) && self.clocks[cpu] - self.run_start[cpu] >= slice {
                self.switch_out(cpu, tid, SwitchReason::Preempted)?;
            }
        }
        // Controlled scheduling: every visible operation is a decision
        // point, so a thread that would continue on-processor (an
        // uncontended lock, a post, an immediate join) is preempted and
        // must be re-picked before its next batch.
        if self.config.schedule_points && self.current[cpu] == Some(tid) {
            self.switch_out(cpu, tid, SwitchReason::Preempted)?;
        }
        Ok(())
    }

    fn handle_control(
        &mut self,
        cpu: usize,
        tid: ThreadId,
        control: Control,
    ) -> Result<(), RuntimeError> {
        match control {
            Control::Yield => self.switch_out(cpu, tid, SwitchReason::Yield)?,
            Control::Sleep(dur) => {
                let wake = self.clocks[cpu] + dur;
                self.tcb_mut(tid)?.state = ThreadState::Sleeping;
                self.sleepers.push(Reverse((wake, tid)));
                self.switch_out(cpu, tid, SwitchReason::Sleeping)?;
            }
            Control::Exit => {
                self.switch_out(cpu, tid, SwitchReason::Exited)?;
                self.finish_thread(tid)?;
            }
            Control::Lock(m) => {
                let mx = self.sync.mutex(m)?;
                if mx.owner.is_none() {
                    mx.owner = Some(tid);
                    self.note(ObsEvent::MutexAcquire { tid, mutex: m });
                    self.continue_running(cpu);
                } else {
                    // Note: re-locking a held mutex self-deadlocks, like
                    // a non-recursive pthread mutex. The acquire event is
                    // recorded when the unlock hands the mutex over.
                    mx.waiters.push_back(tid);
                    self.block(cpu, tid)?;
                }
            }
            Control::Unlock(m) => {
                self.unlock_mutex(m, tid)?;
                self.continue_running(cpu);
            }
            Control::SemWait(s) => {
                let sem = self.sync.sem(s)?;
                if sem.count > 0 {
                    sem.count -= 1;
                    self.note(ObsEvent::SemAcquire { tid, sem: s });
                    self.continue_running(cpu);
                } else {
                    sem.waiters.push_back(tid);
                    self.block(cpu, tid)?;
                }
            }
            Control::SemPost(s) => {
                let sem = self.sync.sem(s)?;
                let woken = match sem.waiters.pop_front() {
                    Some(w) => Some(w),
                    None => {
                        sem.count += 1;
                        None
                    }
                };
                self.note(ObsEvent::SemPost { tid, sem: s });
                if let Some(w) = woken {
                    self.note(ObsEvent::SemAcquire { tid: w, sem: s });
                    self.make_ready(w)?;
                }
                self.continue_running(cpu);
            }
            Control::BarrierWait(b) => {
                let bar = self.sync.barrier(b)?;
                bar.waiting.push(tid);
                if bar.waiting.len() == bar.parties {
                    let parties: Vec<ThreadId> = bar.waiting.clone();
                    let woken: Vec<ThreadId> =
                        bar.waiting.drain(..).filter(|&w| w != tid).collect();
                    self.note(ObsEvent::BarrierCross { barrier: b, parties });
                    for w in woken {
                        self.make_ready(w)?;
                    }
                    self.continue_running(cpu);
                } else {
                    self.block(cpu, tid)?;
                }
            }
            Control::CondWait(c, m) => {
                self.unlock_mutex(m, tid)?;
                self.sync.cond(c)?.waiters.push_back((tid, m));
                self.block(cpu, tid)?;
            }
            Control::CondSignal(c) => {
                if let Some((w, m)) = self.sync.cond(c)?.waiters.pop_front() {
                    self.note(ObsEvent::CondWake { signaler: tid, woken: w, cond: c });
                    self.grant_or_enqueue_mutex(m, w)?;
                }
                self.continue_running(cpu);
            }
            Control::CondBroadcast(c) => {
                let woken: Vec<(ThreadId, MutexId)> =
                    self.sync.cond(c)?.waiters.drain(..).collect();
                for (w, m) in woken {
                    self.note(ObsEvent::CondWake { signaler: tid, woken: w, cond: c });
                    self.grant_or_enqueue_mutex(m, w)?;
                }
                self.continue_running(cpu);
            }
            Control::Join(target) => {
                let exited = {
                    let live =
                        self.slots.lookup(target).and_then(|slot| self.tcbs[slot.index()].as_mut());
                    match live {
                        Some(t) if t.exited() => true,
                        Some(t) => {
                            t.join_waiters.push(tid);
                            false
                        }
                        // Exited threads leave the slab so their slot can
                        // recycle; joins on them complete immediately.
                        None if self.retired.contains_key(&target) => true,
                        None => return Err(RuntimeError::UnknownThread { thread: target }),
                    }
                };
                if exited {
                    self.note(ObsEvent::JoinWake { waiter: tid, target });
                    self.continue_running(cpu);
                } else {
                    self.block(cpu, tid)?;
                }
            }
        }
        Ok(())
    }

    fn unlock_mutex(&mut self, m: MutexId, tid: ThreadId) -> Result<(), RuntimeError> {
        let mx = self.sync.mutex(m)?;
        if mx.owner != Some(tid) {
            return Err(RuntimeError::NotOwner { thread: tid, mutex: m.0 });
        }
        mx.owner = None;
        let handoff = mx.waiters.pop_front();
        if let Some(w) = handoff {
            mx.owner = Some(w);
        }
        self.note(ObsEvent::MutexRelease { tid, mutex: m });
        if let Some(w) = handoff {
            self.note(ObsEvent::MutexAcquire { tid: w, mutex: m });
            self.make_ready(w)?;
        }
        Ok(())
    }

    /// Hands the mutex to `w` (waking it) or queues it on the mutex.
    fn grant_or_enqueue_mutex(&mut self, m: MutexId, w: ThreadId) -> Result<(), RuntimeError> {
        let mx = self.sync.mutex(m)?;
        if mx.owner.is_none() {
            mx.owner = Some(w);
            self.note(ObsEvent::MutexAcquire { tid: w, mutex: m });
            self.make_ready(w)?;
        } else {
            mx.waiters.push_back(w);
        }
        Ok(())
    }

    fn continue_running(&mut self, cpu: usize) {
        self.clocks[cpu] += self.config.sync_op_cycles;
    }

    fn block(&mut self, cpu: usize, tid: ThreadId) -> Result<(), RuntimeError> {
        let tcb = self.tcb_mut(tid)?;
        if tcb.state == ThreadState::Running {
            tcb.state = ThreadState::Blocked;
        }
        self.switch_out(cpu, tid, SwitchReason::Blocked)
    }

    fn switch_out(
        &mut self,
        cpu: usize,
        tid: ThreadId,
        reason: SwitchReason,
    ) -> Result<(), RuntimeError> {
        set_clock(self.clocks[cpu]);
        // Read and reset the counters, then sanitize the raw deltas: the
        // scheduler's model never sees wrapped, inconsistent, or absurd
        // values. A trapped read (user access disabled, or an injected
        // trap fault) yields an empty interval with reduced confidence —
        // the PICs keep accumulating and the next clean read absorbs the
        // whole span.
        let delta = match self.machine.pic_take_interval(cpu) {
            Ok(raw) => self.sanitizer.sanitize(tid, raw.refs, raw.hits, raw.misses),
            Err(SimError::CounterTrap { .. }) => {
                let confidence = self.sanitizer.note_trap(tid);
                SanitizedInterval { refs: 0, hits: 0, misses: 0, confidence, corrected: true }
            }
            Err(e) => {
                return Err(RuntimeError::Internal { what: format!("counter read failed: {e}") })
            }
        };
        if delta.corrected {
            self.corrected_intervals += 1;
        }
        // Runtime sharing inference (§7): drain the CML and fold inferred
        // edges into the annotation graph before the priority updates.
        if let Some(inference) = &mut self.inference {
            let drained = self.machine.cml_drain(cpu);
            for edge in inference.note_interval(tid, &drained) {
                let _ = self.graph.set(edge.src, edge.dst, edge.q);
            }
        }
        self.clocks[cpu] += self.config.switch_cost_cycles + self.config.pic_read_cycles;
        self.switches += 1;
        {
            let tcb = self.tcb_mut(tid)?;
            tcb.switches += 1;
            match reason {
                SwitchReason::Exited => tcb.state = ThreadState::Exited,
                SwitchReason::Aborted => tcb.state = ThreadState::Aborted,
                _ => {}
            }
        }
        // Model updates: case 1 for the blocker, case 3 for dependents.
        // Compact the annotation graph first so the scheduler's dependent
        // walks hit the CSR fast path instead of the edit overlay.
        self.graph.compact();
        self.sched.on_interval_end(cpu, tid, delta, &self.graph);
        // Trace the finished interval *after* the model updates — the
        // same post-update state the hooks (and the Figure 5/7 monitors)
        // observe. Prediction-vs-ground-truth sampling is NOT done here:
        // the observed footprint is a full E-cache scan, far too
        // expensive for the unconditional hot path, so drivers that want
        // `PredictionSample` events install a scheduling-event hook that
        // emits them (hooks run below, under the same trace clock).
        set_clock(self.clocks[cpu]);
        emit_with(|| TraceEvent::IntervalEnd {
            cpu: cpu as u32,
            tid: tid.0,
            reason: reason.as_str(),
            refs: delta.refs,
            misses: delta.misses,
        });
        emit_with(|| {
            let s = self.machine.cpu_stats(cpu);
            TraceEvent::TlbCounters {
                cpu: cpu as u32,
                hits: s.tlb_hits,
                misses: s.tlb_misses,
                walk_cycles: s.tlb_walk_cycles,
            }
        });
        // Scheduling-event hooks observe the post-update state.
        if !self.hooks.is_empty() {
            let mut hooks = std::mem::take(&mut self.hooks);
            let event = SwitchEvent {
                cpu,
                tid,
                reason,
                delta,
                clock: self.clocks[cpu],
                switch_index: self.switches,
            };
            let view = EngineView { machine: &self.machine, sched: &self.sched };
            for h in &mut hooks {
                h.on_context_switch(&event, &view);
            }
            self.hooks = hooks;
        }
        if matches!(reason, SwitchReason::Yield | SwitchReason::Preempted) {
            let tcb = self.tcb_mut(tid)?;
            tcb.state = ThreadState::Ready;
            self.sched.on_ready(tid);
        }
        self.current[cpu] = None;
        self.machine.set_running(cpu, None);
        Ok(())
    }

    fn finish_thread(&mut self, tid: ThreadId) -> Result<(), RuntimeError> {
        self.live -= 1;
        self.completed += 1;
        self.note(ObsEvent::Exit { tid });
        let waiters = {
            let tcb = self.tcb_mut(tid)?;
            std::mem::take(&mut tcb.join_waiters)
        };
        for w in waiters {
            self.note(ObsEvent::JoinWake { waiter: w, target: tid });
            self.make_ready(w)?;
        }
        self.graph.remove_thread(tid);
        self.sched.on_exit(tid);
        self.machine.retire_thread(tid);
        self.sanitizer.forget(tid);
        if let Some(inference) = &mut self.inference {
            inference.forget(tid);
        }
        // Release the slot so it can recycle, moving the TCB to the
        // retired table: joins on an exited thread and post-run counter
        // queries keep working without pinning slab capacity.
        if let Some(slot) = self.slots.release(tid) {
            if let Some(tcb) = self.tcbs[slot.index()].take() {
                self.retired.insert(tid, tcb);
            }
        }
        Ok(())
    }

    /// Chaos decision point for the thread that just finished a batch on
    /// `cpu`. Returns `true` when the thread was aborted (its control
    /// must then be discarded).
    fn maybe_abort_running(&mut self, cpu: usize, tid: ThreadId) -> Result<bool, RuntimeError> {
        let Some(cfg) = self.config.chaos else { return Ok(false) };
        let Some(st) = self.chaos.as_mut() else { return Ok(false) };
        if st.faults() >= cfg.max_faults
            || self.live <= cfg.min_live
            || !st.roll(cfg.abort_running_per_64k)
        {
            return Ok(false);
        }
        if cfg.only_lock_holders && !self.sync.mutexes.iter().any(|m| m.owner == Some(tid)) {
            return Ok(false);
        }
        if let Some(st) = self.chaos.as_mut() {
            st.note_fault();
        }
        // The dying thread's final partial interval is still read and
        // sanitized — the scheduler sees a short interval, exactly what a
        // real abort at an arbitrary PC would produce.
        self.switch_out(cpu, tid, SwitchReason::Aborted)?;
        self.abort_thread(tid)
    }

    /// Chaos decision point for threads that are *not* running: once per
    /// engine step, possibly kill one ready/sleeping/blocked thread,
    /// chosen uniformly in slot order.
    fn maybe_abort_idle(&mut self, cpu: usize) -> Result<(), RuntimeError> {
        let Some(cfg) = self.config.chaos else { return Ok(()) };
        let Some(st) = self.chaos.as_mut() else { return Ok(()) };
        if st.faults() >= cfg.max_faults
            || self.live <= cfg.min_live
            || !st.roll(cfg.abort_idle_per_64k)
        {
            return Ok(());
        }
        let victims: Vec<ThreadId> = self
            .tcbs
            .iter()
            .flatten()
            .filter(|t| {
                matches!(t.state, ThreadState::Ready | ThreadState::Blocked | ThreadState::Sleeping)
            })
            .map(|t| t.id)
            .collect();
        if victims.is_empty() {
            return Ok(());
        }
        let victim = {
            let Some(st) = self.chaos.as_mut() else { return Ok(()) };
            st.note_fault();
            victims[st.pick(victims.len())]
        };
        set_clock(self.clocks[cpu]);
        self.tcb_mut(victim)?.state = ThreadState::Aborted;
        self.abort_thread(victim)?;
        Ok(())
    }

    /// Tears a dead thread out of every runtime structure. The victim
    /// must already be off every processor (`current`), with its TCB
    /// state set to [`ThreadState::Aborted`]. This is the hostile twin of
    /// [`finish_thread`](Self::finish_thread): same pruning chain, plus
    /// orphaned-lock reclamation, waiter-queue purging, and barrier
    /// membership shrinking — the recovery invariants §10 of DESIGN.md
    /// documents.
    fn abort_thread(&mut self, tid: ThreadId) -> Result<bool, RuntimeError> {
        self.live -= 1;
        self.aborted += 1;
        self.note(ObsEvent::Abort { tid });
        emit_with(|| TraceEvent::ThreadAbort { tid: tid.0 });
        // Joins on an aborted thread complete like joins on an exited one.
        let waiters = {
            let tcb = self.tcb_mut(tid)?;
            std::mem::take(&mut tcb.join_waiters)
        };
        for w in waiters {
            self.note(ObsEvent::JoinWake { waiter: w, target: tid });
            self.make_ready(w)?;
        }
        // Orphaned-lock reclamation: every mutex the dead thread owned is
        // poisoned, then released on its behalf (FIFO handoff to the next
        // waiter). The release/acquire events are emitted exactly as for
        // a live unlock, and they follow the Abort event — so analyses
        // see the reclamation happens-before ordered by the abort.
        for i in 0..self.sync.mutexes.len() {
            if self.sync.mutexes[i].owner == Some(tid) {
                self.sync.mutexes[i].poisoned = true;
                self.unlock_mutex(MutexId(i), tid)?;
            }
        }
        // Purge the corpse from every wait queue: it can never be woken.
        for m in &mut self.sync.mutexes {
            m.waiters.retain(|&w| w != tid);
        }
        for s in &mut self.sync.sems {
            s.waiters.retain(|&w| w != tid);
        }
        for c in &mut self.sync.conds {
            c.waiters.retain(|&(w, _)| w != tid);
        }
        // A dead thread that already arrived at a barrier is no longer a
        // party: shrink the membership so the survivors still release.
        // (A party that dies *before* arriving cannot be distinguished
        // from a non-party; that barrier will deadlock and be reported by
        // the engine's deadlock detection.)
        for i in 0..self.sync.barriers.len() {
            let bar = &mut self.sync.barriers[i];
            if let Some(pos) = bar.waiting.iter().position(|&w| w == tid) {
                bar.waiting.remove(pos);
                bar.parties -= 1;
                if bar.parties > 0 && bar.waiting.len() == bar.parties {
                    let parties: Vec<ThreadId> = bar.waiting.clone();
                    let woken: Vec<ThreadId> = bar.waiting.drain(..).collect();
                    self.note(ObsEvent::BarrierCross { barrier: BarrierId(i), parties });
                    for w in woken {
                        self.make_ready(w)?;
                    }
                }
            }
        }
        // It may also be parked in another thread's join list.
        for t in self.tcbs.iter_mut().flatten() {
            t.join_waiters.retain(|&w| w != tid);
        }
        // The same pruning chain as a clean exit: annotation graph,
        // scheduler run-queues (on_abort prunes ready structures the exit
        // path could assume empty), machine owner directory + counter
        // slots, sanitizer history, inference state — all through the
        // slot-recycling path, so the slot is free to recycle and stale
        // handles never resolve.
        self.graph.remove_thread(tid);
        self.sched.on_abort(tid);
        self.machine.retire_thread(tid);
        self.sanitizer.forget(tid);
        if let Some(inference) = &mut self.inference {
            inference.forget(tid);
        }
        if let Some(slot) = self.slots.release(tid) {
            if let Some(tcb) = self.tcbs[slot.index()].take() {
                debug_assert_eq!(tcb.state, ThreadState::Aborted);
                self.retired.insert(tid, tcb);
            }
        }
        Ok(true)
    }

    /// The synchronization tables (read-only: poisoning queries, counts).
    pub fn sync_tables(&self) -> &SyncTables {
        &self.sync
    }

    /// Takes the schedule points recorded so far (model checking with
    /// [`EngineConfig::schedule_points`]; empty otherwise).
    pub fn take_schedule_points(&mut self) -> Vec<SchedulePoint> {
        std::mem::take(&mut self.points)
    }

    /// What a blocked thread is blocked on, found by scanning the sync
    /// wait queues and join lists (blocked-state introspection for the
    /// model checker's deadlock classification). `None` for threads that
    /// are not live or not parked on anything.
    pub fn blocked_on(&self, tid: ThreadId) -> Option<BlockedOn> {
        // A condvar waiter that has been signalled moves to its mutex's
        // waiter queue, so a thread sits in at most one queue; condvars
        // are scanned first because "still waiting for the signal" is
        // the classification that distinguishes a lost wakeup.
        for (i, c) in self.sync.conds.iter().enumerate() {
            if c.waiters.iter().any(|&(w, _)| w == tid) {
                return Some(BlockedOn::Cond(CondId(i)));
            }
        }
        for (i, m) in self.sync.mutexes.iter().enumerate() {
            if m.waiters.contains(&tid) {
                return Some(BlockedOn::Mutex(MutexId(i)));
            }
        }
        for (i, s) in self.sync.sems.iter().enumerate() {
            if s.waiters.contains(&tid) {
                return Some(BlockedOn::Sem(SemId(i)));
            }
        }
        for (i, b) in self.sync.barriers.iter().enumerate() {
            if b.waiting.contains(&tid) {
                return Some(BlockedOn::Barrier(BarrierId(i)));
            }
        }
        for t in self.tcbs.iter().flatten() {
            if t.join_waiters.contains(&tid) {
                return Some(BlockedOn::Join(t.id));
            }
        }
        None
    }

    /// Every live thread currently in the `Blocked` state with what it
    /// is blocked on, sorted by thread id.
    pub fn blocked_threads(&self) -> Vec<(ThreadId, Option<BlockedOn>)> {
        let mut blocked: Vec<ThreadId> = self
            .tcbs
            .iter()
            .flatten()
            .filter(|t| t.state == ThreadState::Blocked)
            .map(|t| t.id)
            .collect();
        blocked.sort_unstable();
        blocked.into_iter().map(|tid| (tid, self.blocked_on(tid))).collect()
    }

    /// Threads killed by fault injection so far (including stillborn
    /// spawns).
    pub fn threads_aborted(&self) -> u64 {
        self.aborted
    }

    /// Per-thread runtime counters `(switches, batches)`.
    pub fn thread_counters(&self, tid: ThreadId) -> Option<(u64, u64)> {
        self.slots
            .lookup(tid)
            .and_then(|slot| self.tcbs[slot.index()].as_ref())
            .or_else(|| self.retired.get(&tid))
            .map(|t| (t.switches, t.batches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EngineView;
    use crate::sync::{CondId, SemId};
    use locality_sim::VAddr;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn engine(policy: SchedPolicy) -> Engine {
        Engine::new(MachineConfig::ultra1(), policy, EngineConfig::default()).unwrap()
    }

    fn engine_smp(cpus: usize, policy: SchedPolicy) -> Engine {
        Engine::new(MachineConfig::enterprise5000(cpus), policy, EngineConfig::default()).unwrap()
    }

    /// Touches a buffer `rounds` times, yielding in between.
    struct Walker {
        buf: Option<VAddr>,
        bytes: u64,
        rounds: u32,
    }
    impl Walker {
        fn new(bytes: u64, rounds: u32) -> Self {
            Walker { buf: None, bytes, rounds }
        }
    }
    impl Program for Walker {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            let bytes = self.bytes;
            let buf = *self.buf.get_or_insert_with(|| ctx.alloc(bytes, 64));
            ctx.register_region(buf, bytes);
            ctx.read_range(buf, bytes, 64);
            self.rounds -= 1;
            if self.rounds == 0 {
                Control::Exit
            } else {
                Control::Yield
            }
        }
        fn name(&self) -> &str {
            "walker"
        }
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut e = engine(SchedPolicy::Fcfs);
        let tid = e.spawn(Box::new(Walker::new(4096, 3)));
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 1);
        assert_eq!(report.policy, "fcfs");
        // 64 compulsory misses, then cache hits.
        assert_eq!(report.total_l2_misses, 64);
        assert!(report.total_cycles > 0);
        let (switches, batches) = e.thread_counters(tid).unwrap();
        assert_eq!(batches, 3);
        assert_eq!(switches, 3); // 2 yields + exit
    }

    #[test]
    fn engine_config_geometry_overrides_take_effect() {
        // A costly-walk single-entry TLB must charge walk cycles that the
        // default (free-walk) configuration does not.
        let slow = EngineConfig {
            tlb: Some(locality_sim::TlbConfig { sets: 1, ways: 1, walk_cycles: 100 }),
            l2_geometry: Some(CacheGeometry::new(1024, 8, 64).unwrap()),
            page_bytes: Some(4096),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(MachineConfig::ultra1(), SchedPolicy::Fcfs, slow).unwrap();
        e.spawn(Box::new(Walker::new(64 * 1024, 2)));
        let slow_report = e.run().unwrap();
        let l2 = e.machine().config().hierarchy.l2;
        assert_eq!((l2.sets, l2.ways), (1024, 8), "override must reach the machine");
        assert_eq!(e.machine().config().page_bytes, 4096);
        let walks: u64 =
            (0..e.machine().cpu_count()).map(|c| e.machine().cpu_stats(c).tlb_walk_cycles).sum();
        assert!(walks > 0, "a 64 KiB walk over 4 KiB pages must miss the 1-entry TLB");

        let mut e =
            Engine::new(MachineConfig::ultra1(), SchedPolicy::Fcfs, EngineConfig::default())
                .unwrap();
        e.spawn(Box::new(Walker::new(64 * 1024, 2)));
        let fast_report = e.run().unwrap();
        assert!(
            slow_report.total_cycles > fast_report.total_cycles,
            "walk latency must show up in the clock: {} vs {}",
            slow_report.total_cycles,
            fast_report.total_cycles
        );
    }

    #[test]
    fn spawn_and_join() {
        struct Parent {
            phase: u8,
            child: Option<ThreadId>,
        }
        impl Program for Parent {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        let child = ctx.spawn(Box::new(Walker::new(1024, 1)));
                        // Annotate: child's state is inside the parent's.
                        ctx.at_share(child, ctx.self_id(), 1.0).unwrap();
                        self.child = Some(child);
                        Control::Join(child)
                    }
                    _ => Control::Exit,
                }
            }
        }
        let mut e = engine(SchedPolicy::Lff);
        e.spawn(Box::new(Parent { phase: 0, child: None }));
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 2);
    }

    #[test]
    fn join_already_exited_continues() {
        struct P {
            phase: u8,
            child: Option<ThreadId>,
        }
        impl Program for P {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        self.child = Some(ctx.spawn(Box::new(Walker::new(64, 1))));
                        Control::Yield
                    }
                    1 => {
                        self.phase = 2;
                        // Sleep long enough for the child to finish.
                        Control::Sleep(1_000_000)
                    }
                    2 => {
                        self.phase = 3;
                        Control::Join(self.child.unwrap())
                    }
                    _ => Control::Exit,
                }
            }
        }
        let mut e = engine(SchedPolicy::Fcfs);
        e.spawn(Box::new(P { phase: 0, child: None }));
        assert_eq!(e.run().unwrap().threads_completed, 2);
    }

    #[test]
    fn mutex_mutual_exclusion_and_handoff() {
        // Two threads increment a shared counter region under a mutex.
        struct Incr {
            m: MutexId,
            buf: VAddr,
            phase: u8,
        }
        impl Program for Incr {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Lock(self.m)
                    }
                    1 => {
                        self.phase = 2;
                        ctx.write(self.buf);
                        Control::Unlock(self.m)
                    }
                    _ => Control::Exit,
                }
            }
        }
        let mut e = engine_smp(2, SchedPolicy::Fcfs);
        let m = e.sync_tables_mut().create_mutex();
        let buf = e.machine_mut().alloc(64, 64);
        for _ in 0..4 {
            e.spawn(Box::new(Incr { m, buf, phase: 0 }));
        }
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 4);
    }

    #[test]
    fn unlock_not_owner_is_error() {
        struct Bad;
        impl Program for Bad {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                Control::Unlock(MutexId(0))
            }
        }
        let mut e = engine(SchedPolicy::Fcfs);
        e.sync_tables_mut().create_mutex();
        let tid = e.spawn(Box::new(Bad));
        assert_eq!(e.run(), Err(RuntimeError::NotOwner { thread: tid, mutex: 0 }));
    }

    #[test]
    fn semaphore_producer_consumer() {
        struct Producer {
            s: SemId,
            n: u32,
        }
        impl Program for Producer {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                ctx.compute(10);
                if self.n == 0 {
                    return Control::Exit;
                }
                self.n -= 1;
                Control::SemPost(self.s)
            }
        }
        struct Consumer {
            s: SemId,
            n: u32,
        }
        impl Program for Consumer {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                ctx.compute(10);
                if self.n == 0 {
                    return Control::Exit;
                }
                self.n -= 1;
                Control::SemWait(self.s)
            }
        }
        let mut e = engine_smp(2, SchedPolicy::Fcfs);
        let s = e.sync_tables_mut().create_semaphore(0);
        e.spawn(Box::new(Consumer { s, n: 10 }));
        e.spawn(Box::new(Producer { s, n: 10 }));
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 2);
    }

    #[test]
    fn barrier_releases_all_parties() {
        struct Worker {
            b: crate::sync::BarrierId,
            phase: u8,
        }
        impl Program for Worker {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                ctx.compute(100);
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::BarrierWait(self.b)
                    }
                    _ => Control::Exit,
                }
            }
        }
        let mut e = engine_smp(4, SchedPolicy::Fcfs);
        let b = e.sync_tables_mut().create_barrier(4);
        for _ in 0..4 {
            e.spawn(Box::new(Worker { b, phase: 0 }));
        }
        assert_eq!(e.run().unwrap().threads_completed, 4);
    }

    #[test]
    fn condvar_signal_wakes_with_mutex_held() {
        struct Waiter {
            m: MutexId,
            c: CondId,
            phase: u8,
        }
        impl Program for Waiter {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Lock(self.m)
                    }
                    1 => {
                        self.phase = 2;
                        Control::CondWait(self.c, self.m)
                    }
                    2 => {
                        // Woken: we hold the mutex again.
                        self.phase = 3;
                        Control::Unlock(self.m)
                    }
                    _ => Control::Exit,
                }
            }
        }
        struct Signaler {
            c: CondId,
            phase: u8,
        }
        impl Program for Signaler {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Sleep(10_000) // let the waiter wait first
                    }
                    1 => {
                        self.phase = 2;
                        Control::CondSignal(self.c)
                    }
                    _ => Control::Exit,
                }
            }
        }
        let mut e = engine_smp(2, SchedPolicy::Fcfs);
        let m = e.sync_tables_mut().create_mutex();
        let c = e.sync_tables_mut().create_cond();
        e.spawn(Box::new(Waiter { m, c, phase: 0 }));
        e.spawn(Box::new(Signaler { c, phase: 0 }));
        assert_eq!(e.run().unwrap().threads_completed, 2);
    }

    #[test]
    fn condvar_broadcast_wakes_everyone() {
        struct Waiter {
            m: MutexId,
            c: CondId,
            phase: u8,
        }
        impl Program for Waiter {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Lock(self.m)
                    }
                    1 => {
                        self.phase = 2;
                        Control::CondWait(self.c, self.m)
                    }
                    2 => {
                        self.phase = 3;
                        Control::Unlock(self.m)
                    }
                    _ => Control::Exit,
                }
            }
        }
        struct Caster {
            c: CondId,
            phase: u8,
        }
        impl Program for Caster {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Sleep(100_000)
                    }
                    1 => {
                        self.phase = 2;
                        Control::CondBroadcast(self.c)
                    }
                    _ => Control::Exit,
                }
            }
        }
        let mut e = engine_smp(2, SchedPolicy::Fcfs);
        let m = e.sync_tables_mut().create_mutex();
        let c = e.sync_tables_mut().create_cond();
        for _ in 0..3 {
            e.spawn(Box::new(Waiter { m, c, phase: 0 }));
        }
        e.spawn(Box::new(Caster { c, phase: 0 }));
        assert_eq!(e.run().unwrap().threads_completed, 4);
    }

    #[test]
    fn deadlock_detected() {
        struct SelfLock {
            m: MutexId,
            phase: u8,
        }
        impl Program for SelfLock {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Lock(self.m)
                    }
                    _ => Control::Lock(self.m), // second lock: self-deadlock
                }
            }
        }
        let mut e = engine(SchedPolicy::Fcfs);
        let m = e.sync_tables_mut().create_mutex();
        let tid = e.spawn(Box::new(SelfLock { m, phase: 0 }));
        assert_eq!(e.run(), Err(RuntimeError::Deadlock { blocked: vec![tid] }));
    }

    #[test]
    fn sleep_orders_by_wake_time() {
        struct Sleeper {
            dur: u64,
            order: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
            tag: u64,
            phase: u8,
        }
        impl Program for Sleeper {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Control::Sleep(self.dur)
                    }
                    _ => {
                        self.order.borrow_mut().push(self.tag);
                        Control::Exit
                    }
                }
            }
        }
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut e = engine(SchedPolicy::Fcfs);
        for (tag, dur) in [(1u64, 50_000u64), (2, 10_000), (3, 30_000)] {
            e.spawn(Box::new(Sleeper { dur, order: order.clone(), tag, phase: 0 }));
        }
        e.run().unwrap();
        assert_eq!(*order.borrow(), vec![2, 3, 1], "wake order must follow durations");
    }

    #[test]
    fn multi_cpu_runs_in_parallel() {
        let mut e = engine_smp(4, SchedPolicy::Fcfs);
        for _ in 0..4 {
            e.spawn(Box::new(Walker::new(256 * 1024, 20)));
        }
        let report = e.run().unwrap();
        assert_eq!(report.threads_completed, 4);
        // Work must actually spread: several cpus saw instructions.
        let active = report.per_cpu.iter().filter(|s| s.instructions > 0).count();
        assert!(active >= 2, "expected parallel execution, got {active} active cpus");
        // Parallel makespan must be well under the serial sum.
        let serial: u64 = report.per_cpu.iter().map(|s| s.mem_cycles).sum();
        assert!(report.total_cycles < serial);
    }

    #[test]
    fn hooks_see_every_switch() {
        struct SharedHook {
            events: Rc<RefCell<Vec<SwitchEvent>>>,
        }
        impl EngineHook for SharedHook {
            fn on_context_switch(&mut self, event: &SwitchEvent, view: &EngineView<'_>) {
                // The hook can read model state at the switch.
                let _ = view.sched.expected_footprint(event.cpu, event.tid);
                self.events.borrow_mut().push(*event);
            }
        }
        let events = Rc::new(RefCell::new(Vec::new()));
        let mut e = engine(SchedPolicy::Lff);
        e.add_hook(Box::new(SharedHook { events: events.clone() }));
        e.spawn(Box::new(Walker::new(4096, 5)));
        let report = e.run().unwrap();
        let events = events.borrow();
        assert_eq!(events.len() as u64, report.context_switches);
        assert_eq!(events.len(), 5);
        // The first interval carried the compulsory misses.
        assert_eq!(events[0].delta.misses, 64);
        assert_eq!(events.last().unwrap().reason, SwitchReason::Exited);
    }

    #[test]
    fn preemption_time_slice() {
        // A thread that never blocks (SemPost always continues): only the
        // time slice can switch it out.
        struct Hog2 {
            s: SemId,
            batches: u32,
        }
        impl Program for Hog2 {
            fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
                ctx.compute(1000);
                self.batches -= 1;
                if self.batches == 0 {
                    return Control::Exit;
                }
                Control::SemPost(self.s)
            }
        }

        let config = EngineConfig { time_slice: Some(2500), ..EngineConfig::default() };
        let mut e = Engine::new(MachineConfig::ultra1(), SchedPolicy::Fcfs, config).unwrap();
        let s = e.sync_tables_mut().create_semaphore(0);
        e.spawn(Box::new(Hog2 { s, batches: 10 }));
        let report = e.run().unwrap();
        // 10 batches à 1000 cycles with a 2500-cycle slice: at least 3
        // preemptions (plus the exit switch).
        assert!(report.context_switches >= 4, "switches = {}", report.context_switches);
    }

    #[test]
    fn determinism_same_seeds_same_report() {
        let run = || {
            let mut e = engine_smp(4, SchedPolicy::Crt);
            for _ in 0..8 {
                e.spawn(Box::new(Walker::new(64 * 1024, 10)));
            }
            e.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "two identical runs must produce identical reports");
    }

    #[test]
    fn survives_persistent_wraparound_fault() {
        use locality_sim::{FaultConfig, FaultKind};
        let mut e = engine(SchedPolicy::Lff);
        e.machine_mut().install_fault(FaultConfig::always(FaultKind::Wraparound, 7));
        for _ in 0..3 {
            e.spawn(Box::new(Walker::new(64 * 1024, 30)));
        }
        let report = e.run().expect("run must complete under counter faults");
        assert_eq!(report.threads_completed, 3);
        assert!(report.corrected_intervals > 0, "wrap artifacts must be corrected");
    }

    #[test]
    fn degrades_under_trap_fault_and_recovers() {
        use locality_sim::{FaultConfig, FaultKind};
        let mut e = engine(SchedPolicy::Lff);
        // Every counter read traps for the first 150 reads, then the
        // fault clears for good.
        e.machine_mut().install_fault(FaultConfig::windowed(FaultKind::TrapOnRead, 3, 0, 150));
        for _ in 0..3 {
            e.spawn(Box::new(Walker::new(64 * 1024, 80)));
        }
        let report = e.run().expect("run must complete under trap faults");
        assert_eq!(report.threads_completed, 3);
        assert!(
            report.degraded_intervals > 0,
            "sustained traps must push the scheduler into degraded mode"
        );
        assert!(
            !e.scheduler().is_degraded(),
            "scheduler must recover once the fault window passes"
        );
        assert!(report.corrected_intervals > 0);
    }

    #[test]
    fn fcfs_unaffected_by_faults() {
        use locality_sim::{FaultConfig, FaultKind};
        let run = |fault: Option<FaultConfig>| {
            let mut e = engine(SchedPolicy::Fcfs);
            if let Some(f) = fault {
                e.machine_mut().install_fault(f);
            }
            for _ in 0..3 {
                e.spawn(Box::new(Walker::new(16 * 1024, 10)));
            }
            e.run().unwrap()
        };
        let clean = run(None);
        let noisy = run(Some(FaultConfig::always(FaultKind::Noise { percent: 50 }, 11)));
        // FCFS never consults the counters: identical schedule and misses.
        assert_eq!(clean.total_l2_misses, noisy.total_l2_misses);
        assert_eq!(clean.context_switches, noisy.context_switches);
        assert_eq!(clean.degraded_intervals, 0);
        assert_eq!(noisy.degraded_intervals, 0);
    }

    #[test]
    fn locality_policy_reports_flops() {
        let mut e = engine(SchedPolicy::Lff);
        for _ in 0..3 {
            e.spawn(Box::new(Walker::new(128 * 1024, 5)));
        }
        let report = e.run().unwrap();
        assert!(report.priority_flops.0 > 0, "LFF must have spent flops on updates");
        assert_eq!(report.policy, "lff");
    }

    /// Lock → touch the buffer → Unlock → Yield, `rounds` times.
    struct Locker {
        m: MutexId,
        buf: Option<VAddr>,
        rounds: u32,
        phase: u8,
    }
    impl Program for Locker {
        fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Control::Lock(self.m)
                }
                1 => {
                    let buf = *self.buf.get_or_insert_with(|| ctx.alloc(4096, 64));
                    ctx.register_region(buf, 4096);
                    ctx.read_range(buf, 4096, 64);
                    self.phase = 2;
                    Control::Unlock(self.m)
                }
                _ => {
                    self.rounds -= 1;
                    if self.rounds == 0 {
                        Control::Exit
                    } else {
                        self.phase = 0;
                        Control::Yield
                    }
                }
            }
        }
        fn name(&self) -> &str {
            "locker"
        }
    }

    fn chaos_engine(cpus: usize, policy: SchedPolicy, chaos: ChaosConfig) -> Engine {
        let config = EngineConfig { chaos: Some(chaos), ..EngineConfig::default() };
        Engine::new(MachineConfig::enterprise5000(cpus), policy, config).unwrap()
    }

    #[test]
    fn chaos_abort_running_completes_across_policies() {
        for policy in [SchedPolicy::Fcfs, SchedPolicy::Lff, SchedPolicy::Crt] {
            let mut e = chaos_engine(4, policy, ChaosConfig::abort_running(7));
            for _ in 0..16 {
                e.spawn(Box::new(Walker::new(64 * 1024, 20)));
            }
            let report = e.run().expect("chaos run must complete");
            assert!(report.threads_aborted > 0, "{policy:?}: nobody died at this rate/seed");
            assert_eq!(
                report.threads_completed + report.threads_aborted,
                16,
                "{policy:?}: every spawned thread must be accounted for"
            );
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            let mut e = chaos_engine(4, SchedPolicy::Lff, ChaosConfig::churn(99));
            for _ in 0..12 {
                e.spawn(Box::new(Walker::new(64 * 1024, 15)));
            }
            e.run().unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.threads_aborted > 0, "churn must kill somebody");
        assert_eq!(a, b, "identical chaos config must reproduce the identical report");
    }

    #[test]
    fn chaos_poisoned_mutex_is_reclaimed_by_waiters() {
        // Deterministic holder kill: every roll fires, victims must hold
        // a mutex, and exactly one fault is allowed — the first thread to
        // finish a batch while holding the lock dies, its Unlock is
        // discarded, and the orphaned lock must reach the waiters anyway.
        let chaos = ChaosConfig {
            seed: 1,
            abort_running_per_64k: 65536,
            only_lock_holders: true,
            max_faults: 1,
            ..ChaosConfig::default()
        };
        let mut e = chaos_engine(2, SchedPolicy::Fcfs, chaos);
        let m = e.sync_tables_mut().create_mutex();
        for _ in 0..3 {
            e.spawn(Box::new(Locker { m, buf: None, rounds: 4, phase: 0 }));
        }
        let report = e.run().expect("orphaned lock must be reclaimed, not deadlock");
        assert_eq!(report.threads_aborted, 1);
        assert_eq!(report.threads_completed, 2, "survivors must finish all their rounds");
        assert!(e.sync_tables().is_poisoned(m), "owner death must poison the mutex");
        assert_eq!(e.sync_tables().poisoned_mutexes(), 1);
    }

    #[test]
    fn chaos_stillborn_spawns_are_joinable() {
        // Every admission rolls and the first two faults are spent on the
        // two walkers: both are stillborn. The joiner (admitted after the
        // fault budget is exhausted) runs and joins both corpses.
        struct Joiner {
            targets: Vec<ThreadId>,
        }
        impl Program for Joiner {
            fn next_batch(&mut self, _ctx: &mut BatchCtx<'_>) -> Control {
                match self.targets.pop() {
                    Some(t) => Control::Join(t),
                    None => Control::Exit,
                }
            }
        }
        let chaos = ChaosConfig {
            seed: 5,
            spawn_fail_per_64k: 65536,
            max_faults: 2,
            ..ChaosConfig::default()
        };
        let mut e = chaos_engine(2, SchedPolicy::Lff, chaos);
        let a = e.spawn(Box::new(Walker::new(1024, 1)));
        let b = e.spawn(Box::new(Walker::new(1024, 1)));
        e.spawn(Box::new(Joiner { targets: vec![a, b] }));
        let report = e.run().expect("joins on stillborn threads must complete");
        assert_eq!(report.threads_aborted, 2);
        assert_eq!(report.threads_completed, 1);
    }

    #[test]
    fn chaos_idle_kills_leave_consistent_queues() {
        let mut e = chaos_engine(2, SchedPolicy::Crt, ChaosConfig::abort_idle(11));
        for _ in 0..10 {
            e.spawn(Box::new(Walker::new(32 * 1024, 25)));
        }
        let report = e.run().expect("idle kills must not corrupt the run queue");
        assert!(report.threads_aborted > 0, "nobody died at this rate/seed");
        assert_eq!(report.threads_completed + report.threads_aborted, 10);
    }
}
