use locality_core::ThreadId;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the runtime engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No thread can make progress: some threads are blocked, none are
    /// ready or sleeping, and no processor is running anything.
    Deadlock {
        /// The threads still blocked.
        blocked: Vec<ThreadId>,
    },
    /// A program referred to a thread id the runtime does not know.
    UnknownThread {
        /// The offending id.
        thread: ThreadId,
    },
    /// A program used a synchronization object id that was never created.
    UnknownSyncObject {
        /// Human-readable description ("mutex 3", …).
        what: String,
    },
    /// A program unlocked a mutex it does not hold.
    NotOwner {
        /// The offending thread.
        thread: ThreadId,
        /// The mutex index.
        mutex: usize,
    },
    /// The machine description cannot host a scheduler (cache too small
    /// for the model, zero or too many processors). Previously this
    /// panicked inside scheduler construction; it now surfaces as a
    /// typed error from [`crate::Engine::new`].
    InvalidMachine {
        /// What was wrong with the description.
        what: String,
    },
    /// The engine exceeded its configured step budget (runaway program).
    StepBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// An internal invariant failed (a bug surfaced as an error instead
    /// of a panic, so fault-injection runs can report it gracefully).
    Internal {
        /// What went wrong.
        what: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Deadlock { blocked } => {
                write!(f, "deadlock: {} thread(s) blocked with no runnable work", blocked.len())
            }
            RuntimeError::UnknownThread { thread } => write!(f, "unknown thread {thread}"),
            RuntimeError::UnknownSyncObject { what } => write!(f, "unknown sync object: {what}"),
            RuntimeError::NotOwner { thread, mutex } => {
                write!(f, "{thread} unlocked mutex {mutex} it does not own")
            }
            RuntimeError::InvalidMachine { what } => {
                write!(f, "invalid machine description: {what}")
            }
            RuntimeError::StepBudgetExceeded { budget } => {
                write!(f, "engine exceeded its step budget of {budget}")
            }
            RuntimeError::Internal { what } => write!(f, "internal runtime error: {what}"),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RuntimeError::Deadlock { blocked: vec![ThreadId(1), ThreadId(2)] };
        assert!(e.to_string().contains("2 thread"));
        assert!(RuntimeError::UnknownThread { thread: ThreadId(7) }.to_string().contains("t7"));
        assert!(RuntimeError::NotOwner { thread: ThreadId(1), mutex: 3 }
            .to_string()
            .contains("mutex 3"));
        assert!(RuntimeError::StepBudgetExceeded { budget: 10 }.to_string().contains("10"));
        let e = RuntimeError::InvalidMachine { what: "0 cpus".into() };
        assert!(e.to_string().contains("0 cpus"));
        let e = RuntimeError::UnknownSyncObject { what: "semaphore 9".into() };
        assert!(e.to_string().contains("semaphore 9"));
        let e = RuntimeError::Internal { what: "tcb missing".into() };
        assert!(e.to_string().contains("tcb missing"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
    }
}
