//! The scheduling event mechanism.
//!
//! Active Threads exposed scheduling events so specialized policies and
//! tools could observe the runtime (paper §5). Here, hooks observe
//! context switches with full access to the machine (ground-truth
//! footprints) and the scheduler (model-predicted footprints) — which is
//! how the model-accuracy experiments (Figures 4–7) sample both series.

use crate::sched::Scheduler;
use locality_core::{SanitizedInterval, ThreadId};
use locality_sim::Machine;

/// Why a context switch happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// The thread yielded (still ready).
    Yield,
    /// The thread blocked on a synchronization object or a join.
    Blocked,
    /// The thread went to sleep.
    Sleeping,
    /// The thread exited.
    Exited,
    /// The thread exhausted its time slice.
    Preempted,
    /// The thread was killed mid-interval by lifecycle fault injection
    /// (the chaos layer); its final partial interval is still read and
    /// sanitized like any other.
    Aborted,
}

impl SwitchReason {
    /// Stable lowercase tag (trace exports, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchReason::Yield => "yield",
            SwitchReason::Blocked => "blocked",
            SwitchReason::Sleeping => "sleeping",
            SwitchReason::Exited => "exited",
            SwitchReason::Preempted => "preempted",
            SwitchReason::Aborted => "aborted",
        }
    }
}

/// A context-switch observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// The processor switching.
    pub cpu: usize,
    /// The thread leaving the processor.
    pub tid: ThreadId,
    /// Why it left.
    pub reason: SwitchReason,
    /// Sanitized counter deltas of the ending interval (what the
    /// scheduler saw, after wraparound/outlier correction).
    pub delta: SanitizedInterval,
    /// The processor's local clock (cycles) at the switch.
    pub clock: u64,
    /// Machine-wide count of context switches so far.
    pub switch_index: u64,
}

/// Read-only view handed to hooks.
pub struct EngineView<'a> {
    /// The simulated machine (ground truth).
    pub machine: &'a Machine,
    /// The active scheduler (model state).
    pub sched: &'a dyn Scheduler,
}

impl std::fmt::Debug for EngineView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineView").field("sched", &self.sched.name()).finish_non_exhaustive()
    }
}

/// An observer of runtime events.
pub trait EngineHook {
    /// Called at every context switch, after priority updates.
    fn on_context_switch(&mut self, event: &SwitchEvent, view: &EngineView<'_>);
}

/// A hook that simply records every switch event (useful in tests).
#[derive(Debug, Default)]
pub struct RecordingHook {
    /// The recorded events.
    pub events: Vec<SwitchEvent>,
}

impl EngineHook for RecordingHook {
    fn on_context_switch(&mut self, event: &SwitchEvent, _view: &EngineView<'_>) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_hook_collects() {
        let mut h = RecordingHook::default();
        // A fabricated event is enough to exercise the plumbing.
        let ev = SwitchEvent {
            cpu: 0,
            tid: ThreadId(1),
            reason: SwitchReason::Yield,
            delta: SanitizedInterval::default(),
            clock: 100,
            switch_index: 0,
        };
        let machine = Machine::try_new(locality_sim::MachineConfig::ultra1()).unwrap();
        let sched = crate::sched::FcfsScheduler::new();
        let view = EngineView { machine: &machine, sched: &sched };
        h.on_context_switch(&ev, &view);
        assert_eq!(h.events.len(), 1);
        assert_eq!(h.events[0].tid, ThreadId(1));
        assert!(format!("{view:?}").contains("fcfs"));
    }
}
