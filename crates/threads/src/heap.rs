//! A slot-indexed d-ary max-heap of thread priorities.
//!
//! Both locality policies keep one such heap per processor (paper §5:
//! "both policies use the same binary heap data structure associated with
//! each processor"). Beyond the usual push/pop-max, the schedulers need
//! O(log n) *update-key* and *remove-by-thread* (priority updates of
//! dependents, dispatch removal) and an occasional min scan (idle
//! processors steal the thread with the **lowest** priority from a
//! neighbour).
//!
//! Entries are keyed by dense [`SlotId`] handles (see
//! [`locality_core::ThreadSlots`]), so the by-thread handle table is a
//! plain `Vec<u32>` indexed by slot — update-key and remove never hash.
//! The heap is 4-ary: one level shallower than a binary heap for the
//! same size, and the four children of a node share a cache line.
//!
//! Ties break toward the smaller [`ThreadId`] — never the slot index,
//! which is recycling-dependent — so runs are deterministic. Because the
//! `(priority, ThreadId)` order is a *strict total* order (thread ids
//! are unique), the pop sequence, the max, and the min are all
//! independent of the heap's arity and internal layout.

use locality_core::{SlotId, ThreadId};

/// Heap arity (children per node).
const ARITY: usize = 4;

/// Sentinel in the slot→position table for "not in this heap".
const ABSENT: u32 = u32::MAX;

/// A max-heap of `(priority, thread)` with slot-indexed handles.
#[derive(Debug, Clone, Default)]
pub struct PrioHeap {
    items: Vec<(f64, ThreadId, SlotId)>,
    /// Slot index → position in `items` ([`ABSENT`] when not queued).
    pos: Vec<u32>,
}

fn beats(a: (f64, ThreadId), b: (f64, ThreadId)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl PrioHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        PrioHeap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn pos_of(&self, slot: SlotId) -> Option<usize> {
        match self.pos.get(slot.index()) {
            Some(&i) if i != ABSENT => Some(i as usize),
            _ => None,
        }
    }

    /// Whether `slot`'s thread is present.
    pub fn contains(&self, slot: SlotId) -> bool {
        self.pos_of(slot).is_some()
    }

    /// Current priority of `slot`'s thread, if present.
    pub fn priority_of(&self, slot: SlotId) -> Option<f64> {
        self.pos_of(slot).map(|i| self.items[i].0)
    }

    /// Inserts `tid` (bound to `slot`) with `prio`, or updates its key if
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics if `prio` is NaN (priorities must be totally ordered).
    pub fn push(&mut self, tid: ThreadId, slot: SlotId, prio: f64) {
        assert!(!prio.is_nan(), "priority must not be NaN");
        if let Some(i) = self.pos_of(slot) {
            // A stale entry under a recycled slot would alias the new
            // thread's key; the scheduler removes threads at exit, so a
            // mismatch here is a lifecycle bug.
            debug_assert_eq!(self.items[i].2, slot, "stale heap entry under recycled slot");
            self.items[i].0 = prio;
            self.restore(i);
            return;
        }
        self.items.push((prio, tid, slot));
        let i = self.items.len() - 1;
        if slot.index() >= self.pos.len() {
            self.pos.resize(slot.index() + 1, ABSENT);
        }
        self.pos[slot.index()] = i as u32;
        self.sift_up(i);
    }

    /// Updates `slot`'s key; returns `false` if absent.
    pub fn update(&mut self, slot: SlotId, prio: f64) -> bool {
        assert!(!prio.is_nan(), "priority must not be NaN");
        let Some(i) = self.pos_of(slot) else { return false };
        debug_assert_eq!(self.items[i].2, slot, "stale heap entry under recycled slot");
        self.items[i].0 = prio;
        self.restore(i);
        true
    }

    /// The maximum entry without removing it.
    pub fn peek_max(&self) -> Option<(ThreadId, SlotId, f64)> {
        self.items.first().map(|&(p, t, s)| (t, s, p))
    }

    /// Removes and returns the maximum entry.
    pub fn pop_max(&mut self) -> Option<(ThreadId, SlotId, f64)> {
        if self.items.is_empty() {
            return None;
        }
        let (p, t, s) = self.items[0];
        self.remove_at(0);
        Some((t, s, p))
    }

    /// Removes `slot`'s thread; returns its priority if it was present.
    pub fn remove(&mut self, slot: SlotId) -> Option<f64> {
        let i = self.pos_of(slot)?;
        debug_assert_eq!(self.items[i].2, slot, "stale heap entry under recycled slot");
        let p = self.items[i].0;
        self.remove_at(i);
        Some(p)
    }

    /// The minimum entry (O(n) scan over the leaves; used only by idle
    /// stealing, which is rare). The `(priority, ThreadId)` order is
    /// strict and total, so every internal node strictly beats its
    /// children and the global minimum is always a leaf.
    pub fn min_entry(&self) -> Option<(ThreadId, SlotId, f64)> {
        let mut best: Option<(f64, ThreadId, SlotId)> = None;
        // First index with no children: ARITY * i + 1 >= len.
        let first_leaf = (self.items.len() + ARITY - 2) / ARITY;
        for &(p, t, s) in &self.items[first_leaf..] {
            if best.is_none_or(|b| beats((b.0, b.1), (p, t))) {
                best = Some((p, t, s));
            }
        }
        best.map(|(p, t, s)| (t, s, p))
    }

    /// All entries in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, SlotId, f64)> + '_ {
        self.items.iter().map(|&(p, t, s)| (t, s, p))
    }

    fn remove_at(&mut self, i: usize) {
        let last = self.items.len() - 1;
        let (_, _, slot) = self.items[i];
        self.items.swap(i, last);
        self.items.pop();
        self.pos[slot.index()] = ABSENT;
        if i < self.items.len() {
            let moved = self.items[i].2;
            self.pos[moved.index()] = i as u32;
            self.restore(i);
        }
    }

    fn key(&self, i: usize) -> (f64, ThreadId) {
        (self.items[i].0, self.items[i].1)
    }

    fn restore(&mut self, i: usize) {
        if i > 0 && beats(self.key(i), self.key((i - 1) / ARITY)) {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if beats(self.key(i), self.key(parent)) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = ARITY * i + 1;
            let end = (first + ARITY).min(self.items.len());
            let mut best = i;
            for c in first..end {
                if beats(self.key(c), self.key(best)) {
                    best = c;
                }
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.items.swap(a, b);
        self.pos[self.items[a].2.index()] = a as u32;
        self.pos[self.items[b].2.index()] = b as u32;
    }

    /// Checks the heap invariant (tests/debugging).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        for i in 1..self.items.len() {
            let parent = (i - 1) / ARITY;
            if beats(self.key(i), self.key(parent)) {
                return false;
            }
        }
        let present = self.pos.iter().filter(|&&i| i != ABSENT).count();
        present == self.items.len()
            && self
                .items
                .iter()
                .enumerate()
                .all(|(i, &(_, _, slot))| self.pos[slot.index()] == i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locality_core::ThreadSlots;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    /// A registry with tids `0..n` bound to slots in order.
    fn reg(n: u64) -> ThreadSlots {
        let mut r = ThreadSlots::new();
        for i in 0..n {
            r.bind(t(i));
        }
        r
    }

    fn push(h: &mut PrioHeap, r: &ThreadSlots, i: u64, prio: f64) {
        h.push(t(i), r.lookup(t(i)).unwrap(), prio);
    }

    #[test]
    fn push_pop_order() {
        let r = reg(4);
        let mut h = PrioHeap::new();
        push(&mut h, &r, 1, 1.0);
        push(&mut h, &r, 2, 3.0);
        push(&mut h, &r, 3, 2.0);
        assert_eq!(h.pop_max().map(|(tid, _, p)| (tid, p)), Some((t(2), 3.0)));
        assert_eq!(h.pop_max().map(|(tid, _, p)| (tid, p)), Some((t(3), 2.0)));
        assert_eq!(h.pop_max().map(|(tid, _, p)| (tid, p)), Some((t(1), 1.0)));
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn ties_break_by_smaller_tid() {
        let r = reg(10);
        let mut h = PrioHeap::new();
        push(&mut h, &r, 9, 1.0);
        push(&mut h, &r, 2, 1.0);
        push(&mut h, &r, 5, 1.0);
        assert_eq!(h.pop_max().unwrap().0, t(2));
        assert_eq!(h.pop_max().unwrap().0, t(5));
        assert_eq!(h.pop_max().unwrap().0, t(9));
    }

    #[test]
    fn update_moves_entries_both_ways() {
        let r = reg(10);
        let mut h = PrioHeap::new();
        for i in 0..10 {
            push(&mut h, &r, i, i as f64);
        }
        assert!(h.update(r.lookup(t(0)).unwrap(), 100.0));
        assert_eq!(h.peek_max().unwrap().0, t(0));
        assert!(h.update(r.lookup(t(0)).unwrap(), -1.0));
        assert_eq!(h.peek_max().unwrap().0, t(9));
        assert!(h.check_invariants());
        let mut r = r;
        let unqueued = r.bind(t(99));
        assert!(!h.update(unqueued, 5.0));
    }

    #[test]
    fn remove_arbitrary() {
        let r = reg(20);
        let mut h = PrioHeap::new();
        for i in 0..20 {
            push(&mut h, &r, i, (i * 7 % 13) as f64);
        }
        let s5 = r.lookup(t(5)).unwrap();
        assert_eq!(h.remove(s5), Some((5 * 7 % 13) as f64));
        assert_eq!(h.remove(s5), None);
        assert!(!h.contains(s5));
        assert_eq!(h.len(), 19);
        assert!(h.check_invariants());
    }

    #[test]
    fn min_entry_finds_global_min() {
        let r = reg(50);
        let mut h = PrioHeap::new();
        for i in 0..50u64 {
            push(&mut h, &r, i, ((i * 31 + 7) % 101) as f64);
        }
        let (tid, _, p) = h.min_entry().unwrap();
        let true_min = h.iter().min_by(|a, b| a.2.partial_cmp(&b.2).unwrap()).unwrap();
        assert_eq!(p, true_min.2);
        assert_eq!(tid, true_min.0);
    }

    #[test]
    fn min_of_empty_and_single() {
        let r = reg(2);
        let mut h = PrioHeap::new();
        assert_eq!(h.min_entry(), None);
        push(&mut h, &r, 1, 4.0);
        assert_eq!(h.min_entry().map(|(tid, _, p)| (tid, p)), Some((t(1), 4.0)));
    }

    #[test]
    fn push_existing_updates() {
        let r = reg(2);
        let mut h = PrioHeap::new();
        push(&mut h, &r, 1, 1.0);
        push(&mut h, &r, 1, 9.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.priority_of(r.lookup(t(1)).unwrap()), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_priority_panics() {
        let r = reg(2);
        PrioHeap::new().push(t(1), r.lookup(t(1)).unwrap(), f64::NAN);
    }

    #[test]
    fn stress_invariants() {
        // Deterministic pseudo-random operation mix.
        let r = reg(40);
        let mut h = PrioHeap::new();
        let mut x = 12345u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let op = step() % 4;
            let i = step() % 40;
            let prio = (step() % 1000) as f64;
            match op {
                0 | 1 => push(&mut h, &r, i, prio),
                2 => {
                    h.remove(r.lookup(t(i)).unwrap());
                }
                _ => {
                    h.pop_max();
                }
            }
            assert!(h.check_invariants());
        }
    }

    #[test]
    fn pop_all_sorted() {
        let r = reg(100);
        let mut h = PrioHeap::new();
        for i in 0..100u64 {
            push(&mut h, &r, i, ((i * 37 + 11) % 97) as f64);
        }
        let mut prev = f64::INFINITY;
        while let Some((_, _, p)) = h.pop_max() {
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn recycled_slot_after_remove_is_fresh() {
        let mut r = ThreadSlots::new();
        let a = r.bind(t(1));
        let mut h = PrioHeap::new();
        h.push(t(1), a, 5.0);
        assert_eq!(h.remove(a), Some(5.0));
        r.release(t(1));
        let b = r.bind(t(2));
        assert_eq!(b.index(), a.index(), "slot must be recycled for this test");
        assert!(!h.contains(b), "recycled slot must not inherit the old entry");
        h.push(t(2), b, 7.0);
        assert_eq!(h.priority_of(b), Some(7.0));
        assert_eq!(
            h.priority_of(a),
            Some(7.0),
            "positions are per-index; callers hold live handles"
        );
        assert!(h.check_invariants());
    }
}
