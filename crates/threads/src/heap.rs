//! A handle-based binary max-heap of thread priorities.
//!
//! Both locality policies keep one such heap per processor (paper §5:
//! "both policies use the same binary heap data structure associated with
//! each processor"). Beyond the usual push/pop-max, the schedulers need
//! O(log n) *update-key* and *remove-by-thread* (priority updates of
//! dependents, dispatch removal) and an occasional min scan (idle
//! processors steal the thread with the **lowest** priority from a
//! neighbour).
//!
//! Ties break toward the smaller [`ThreadId`], so runs are deterministic.

use locality_core::ThreadId;
use std::collections::HashMap;

/// A max-heap of `(priority, thread)` with by-thread handles.
#[derive(Debug, Clone, Default)]
pub struct PrioHeap {
    items: Vec<(f64, ThreadId)>,
    pos: HashMap<ThreadId, usize>,
}

fn beats(a: (f64, ThreadId), b: (f64, ThreadId)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl PrioHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        PrioHeap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `tid` is present.
    pub fn contains(&self, tid: ThreadId) -> bool {
        self.pos.contains_key(&tid)
    }

    /// Current priority of `tid`, if present.
    pub fn priority_of(&self, tid: ThreadId) -> Option<f64> {
        self.pos.get(&tid).map(|&i| self.items[i].0)
    }

    /// Inserts `tid` with `prio`, or updates its key if already present.
    ///
    /// # Panics
    ///
    /// Panics if `prio` is NaN (priorities must be totally ordered).
    pub fn push(&mut self, tid: ThreadId, prio: f64) {
        assert!(!prio.is_nan(), "priority must not be NaN");
        if let Some(&i) = self.pos.get(&tid) {
            self.items[i].0 = prio;
            self.restore(i);
            return;
        }
        self.items.push((prio, tid));
        let i = self.items.len() - 1;
        self.pos.insert(tid, i);
        self.sift_up(i);
    }

    /// Updates `tid`'s key; returns `false` if absent.
    pub fn update(&mut self, tid: ThreadId, prio: f64) -> bool {
        if self.contains(tid) {
            self.push(tid, prio);
            true
        } else {
            false
        }
    }

    /// The maximum entry without removing it.
    pub fn peek_max(&self) -> Option<(ThreadId, f64)> {
        self.items.first().map(|&(p, t)| (t, p))
    }

    /// Removes and returns the maximum entry.
    pub fn pop_max(&mut self) -> Option<(ThreadId, f64)> {
        if self.items.is_empty() {
            return None;
        }
        let (p, t) = self.items[0];
        self.remove_at(0);
        Some((t, p))
    }

    /// Removes `tid`; returns its priority if it was present.
    pub fn remove(&mut self, tid: ThreadId) -> Option<f64> {
        let i = *self.pos.get(&tid)?;
        let p = self.items[i].0;
        self.remove_at(i);
        Some(p)
    }

    /// The minimum entry (O(n) scan over the leaves; used only by idle
    /// stealing, which is rare).
    pub fn min_entry(&self) -> Option<(ThreadId, f64)> {
        let mut best: Option<(f64, ThreadId)> = None;
        let first_leaf = self.items.len() / 2;
        for &(p, t) in &self.items[first_leaf..] {
            if best.is_none_or(|b| beats(b, (p, t))) {
                best = Some((p, t));
            }
        }
        best.map(|(p, t)| (t, p))
    }

    /// All entries in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, f64)> + '_ {
        self.items.iter().map(|&(p, t)| (t, p))
    }

    fn remove_at(&mut self, i: usize) {
        let last = self.items.len() - 1;
        let (_, tid) = self.items[i];
        self.items.swap(i, last);
        self.items.pop();
        self.pos.remove(&tid);
        if i <= last && i < self.items.len() {
            let moved = self.items[i].1;
            self.pos.insert(moved, i);
            self.restore(i);
        }
    }

    fn restore(&mut self, i: usize) {
        if i > 0 && beats(self.items[i], self.items[(i - 1) / 2]) {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if beats(self.items[i], self.items[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.items.len() && beats(self.items[l], self.items[best]) {
                best = l;
            }
            if r < self.items.len() && beats(self.items[r], self.items[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.items.swap(a, b);
        self.pos.insert(self.items[a].1, a);
        self.pos.insert(self.items[b].1, b);
    }

    /// Checks the heap invariant (tests/debugging).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        for i in 1..self.items.len() {
            let parent = (i - 1) / 2;
            if beats(self.items[i], self.items[parent]) {
                return false;
            }
        }
        self.pos.len() == self.items.len() && self.pos.iter().all(|(&t, &i)| self.items[i].1 == t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn push_pop_order() {
        let mut h = PrioHeap::new();
        h.push(t(1), 1.0);
        h.push(t(2), 3.0);
        h.push(t(3), 2.0);
        assert_eq!(h.pop_max(), Some((t(2), 3.0)));
        assert_eq!(h.pop_max(), Some((t(3), 2.0)));
        assert_eq!(h.pop_max(), Some((t(1), 1.0)));
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn ties_break_by_smaller_tid() {
        let mut h = PrioHeap::new();
        h.push(t(9), 1.0);
        h.push(t(2), 1.0);
        h.push(t(5), 1.0);
        assert_eq!(h.pop_max().unwrap().0, t(2));
        assert_eq!(h.pop_max().unwrap().0, t(5));
        assert_eq!(h.pop_max().unwrap().0, t(9));
    }

    #[test]
    fn update_moves_entries_both_ways() {
        let mut h = PrioHeap::new();
        for i in 0..10 {
            h.push(t(i), i as f64);
        }
        assert!(h.update(t(0), 100.0));
        assert_eq!(h.peek_max().unwrap().0, t(0));
        assert!(h.update(t(0), -1.0));
        assert_eq!(h.peek_max().unwrap().0, t(9));
        assert!(h.check_invariants());
        assert!(!h.update(t(99), 5.0));
    }

    #[test]
    fn remove_arbitrary() {
        let mut h = PrioHeap::new();
        for i in 0..20 {
            h.push(t(i), (i * 7 % 13) as f64);
        }
        assert_eq!(h.remove(t(5)), Some((5 * 7 % 13) as f64));
        assert_eq!(h.remove(t(5)), None);
        assert!(!h.contains(t(5)));
        assert_eq!(h.len(), 19);
        assert!(h.check_invariants());
    }

    #[test]
    fn min_entry_finds_global_min() {
        let mut h = PrioHeap::new();
        for i in 0..50u64 {
            h.push(t(i), ((i * 31 + 7) % 101) as f64);
        }
        let (tid, p) = h.min_entry().unwrap();
        let true_min = h.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert_eq!(p, true_min.1);
        assert_eq!(tid, true_min.0);
    }

    #[test]
    fn min_of_empty_and_single() {
        let mut h = PrioHeap::new();
        assert_eq!(h.min_entry(), None);
        h.push(t(1), 4.0);
        assert_eq!(h.min_entry(), Some((t(1), 4.0)));
    }

    #[test]
    fn push_existing_updates() {
        let mut h = PrioHeap::new();
        h.push(t(1), 1.0);
        h.push(t(1), 9.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.priority_of(t(1)), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_priority_panics() {
        PrioHeap::new().push(t(1), f64::NAN);
    }

    #[test]
    fn stress_invariants() {
        // Deterministic pseudo-random operation mix.
        let mut h = PrioHeap::new();
        let mut x = 12345u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let op = step() % 4;
            let tid = t(step() % 40);
            let prio = (step() % 1000) as f64;
            match op {
                0 | 1 => h.push(tid, prio),
                2 => {
                    h.remove(tid);
                }
                _ => {
                    h.pop_max();
                }
            }
            assert!(h.check_invariants());
        }
    }

    #[test]
    fn pop_all_sorted() {
        let mut h = PrioHeap::new();
        for i in 0..100u64 {
            h.push(t(i), ((i * 37 + 11) % 97) as f64);
        }
        let mut prev = f64::INFINITY;
        while let Some((_, p)) = h.pop_max() {
            assert!(p <= prev);
            prev = p;
        }
    }
}
