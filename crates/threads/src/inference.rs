//! Runtime sharing inference — the paper's §7 future work, implemented.
//!
//! "It is even more attractive to identify state sharing patterns
//! entirely at runtime to handle, for instance, the existing unmodified
//! POSIX and Java Threads application bases. … perhaps with the use of a
//! related hardware device [a Cache Miss Lookaside buffer] combined with
//! the VM techniques, some sharing patterns could be inferred without
//! user intervention." (paper §7)
//!
//! The engine drains each processor's [CML](locality_sim::cml) at every
//! context switch: the virtual pages the interval's thread missed on.
//! From the accumulated page sets it maintains, incrementally, the
//! page-granular overlap between every pair of threads and derives
//! approximate sharing coefficients
//! `q̂_ab = |pages_a ∩ pages_b| / |pages_a|` — the same quantity a
//! perfectly annotated program states exactly, discovered instead from
//! miss history. Edges are written into the ordinary
//! [`SharingGraph`](locality_core::SharingGraph),
//! so the LFF/CRT machinery downstream is completely unchanged.
//!
//! Inference is approximate by construction: the CML is lossy, page
//! granularity over-counts (two threads touching different lines of one
//! page look shared), and the page sets are capped. The paper's
//! annotations remain the precision tool; inference is the
//! zero-annotation fallback, and the `ablation` binary quantifies the
//! gap.

use locality_core::ThreadId;
use locality_sim::cml::CmlEntry;
use std::collections::{BTreeMap, BTreeSet};

/// Tunables of the runtime sharing inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceConfig {
    /// CML slots per processor.
    pub cml_entries: usize,
    /// Cap on tracked pages per thread (bounds memory and update cost).
    pub max_pages_per_thread: usize,
    /// Minimum shared pages before an edge is emitted (noise floor).
    pub min_shared_pages: u64,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig { cml_entries: 128, max_pages_per_thread: 512, min_shared_pages: 1 }
    }
}

/// An inferred (or updated) sharing edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferredEdge {
    /// Source thread (whose state fraction is described).
    pub src: ThreadId,
    /// Destination thread.
    pub dst: ThreadId,
    /// Inferred coefficient `q̂ ∈ [0, 1]`.
    pub q: f64,
}

fn pair_key(a: ThreadId, b: ThreadId) -> (ThreadId, ThreadId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The incremental page-overlap tracker.
#[derive(Debug, Default)]
pub struct SharingInference {
    config: InferenceConfig,
    /// Which threads have missed on each page.
    page_threads: BTreeMap<u64, Vec<ThreadId>>,
    /// Which pages each thread has missed on.
    thread_pages: BTreeMap<ThreadId, BTreeSet<u64>>,
    /// Shared-page counts per unordered thread pair.
    pair_shared: BTreeMap<(ThreadId, ThreadId), u64>,
}

impl SharingInference {
    /// Creates the tracker.
    pub fn new(config: InferenceConfig) -> Self {
        SharingInference { config, ..SharingInference::default() }
    }

    /// The configuration.
    pub fn config(&self) -> InferenceConfig {
        self.config
    }

    /// Ingests one interval's CML drain for `tid` and returns the edges
    /// whose coefficients changed (both directions per affected pair).
    pub fn note_interval(&mut self, tid: ThreadId, drained: &[CmlEntry]) -> Vec<InferredEdge> {
        let mut touched: BTreeSet<ThreadId> = BTreeSet::new();
        for entry in drained {
            let pages = self.thread_pages.entry(tid).or_default();
            if pages.contains(&entry.vpn) {
                continue;
            }
            if pages.len() >= self.config.max_pages_per_thread {
                break; // page set capped
            }
            pages.insert(entry.vpn);
            let owners = self.page_threads.entry(entry.vpn).or_default();
            for &other in owners.iter() {
                *self.pair_shared.entry(pair_key(tid, other)).or_insert(0) += 1;
                touched.insert(other);
            }
            owners.push(tid);
        }
        let mut edges = Vec::with_capacity(2 * touched.len());
        for other in touched {
            let shared = self.shared_pages(tid, other);
            if shared < self.config.min_shared_pages {
                continue;
            }
            if let Some(q) = self.coefficient(tid, other) {
                edges.push(InferredEdge { src: tid, dst: other, q });
            }
            if let Some(q) = self.coefficient(other, tid) {
                edges.push(InferredEdge { src: other, dst: tid, q });
            }
        }
        edges
    }

    /// Shared-page count of a pair.
    pub fn shared_pages(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_shared.get(&pair_key(a, b)).copied().unwrap_or(0)
    }

    /// The inferred coefficient `q̂_ab = |a ∩ b| / |a|` (None if `a` has
    /// no tracked pages).
    pub fn coefficient(&self, a: ThreadId, b: ThreadId) -> Option<f64> {
        let pages_a = self.thread_pages.get(&a)?.len();
        if pages_a == 0 {
            return None;
        }
        Some((self.shared_pages(a, b) as f64 / pages_a as f64).clamp(0.0, 1.0))
    }

    /// Pages tracked for a thread.
    pub fn tracked_pages(&self, tid: ThreadId) -> usize {
        self.thread_pages.get(&tid).map_or(0, BTreeSet::len)
    }

    /// Forgets a thread (exit): removes its pages and pair counts.
    pub fn forget(&mut self, tid: ThreadId) {
        if let Some(pages) = self.thread_pages.remove(&tid) {
            for vpn in pages {
                if let Some(owners) = self.page_threads.get_mut(&vpn) {
                    owners.retain(|&t| t != tid);
                    if owners.is_empty() {
                        self.page_threads.remove(&vpn);
                    }
                }
            }
        }
        self.pair_shared.retain(|&(a, b), _| a != tid && b != tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(vpns: &[u64]) -> Vec<CmlEntry> {
        vpns.iter().map(|&vpn| CmlEntry { vpn, count: 1 }).collect()
    }

    fn t(i: u64) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn disjoint_threads_infer_nothing() {
        let mut inf = SharingInference::new(InferenceConfig::default());
        assert!(inf.note_interval(t(1), &entries(&[1, 2, 3])).is_empty());
        assert!(inf.note_interval(t(2), &entries(&[4, 5])).is_empty());
        assert_eq!(inf.shared_pages(t(1), t(2)), 0);
        assert_eq!(inf.coefficient(t(1), t(2)), Some(0.0));
    }

    #[test]
    fn overlap_yields_both_directions() {
        let mut inf = SharingInference::new(InferenceConfig::default());
        inf.note_interval(t(1), &entries(&[10, 11, 12, 13]));
        let edges = inf.note_interval(t(2), &entries(&[12, 13]));
        // t2 shares both of its pages with t1; t1 shares half.
        assert_eq!(edges.len(), 2);
        let q21 = edges.iter().find(|e| e.src == t(2)).unwrap().q;
        let q12 = edges.iter().find(|e| e.src == t(1)).unwrap().q;
        assert!((q21 - 1.0).abs() < 1e-12, "q21 = {q21}");
        assert!((q12 - 0.5).abs() < 1e-12, "q12 = {q12}");
    }

    #[test]
    fn repeated_drains_are_idempotent() {
        let mut inf = SharingInference::new(InferenceConfig::default());
        inf.note_interval(t(1), &entries(&[7]));
        inf.note_interval(t(2), &entries(&[7]));
        let before = inf.shared_pages(t(1), t(2));
        inf.note_interval(t(2), &entries(&[7])); // re-missing the same page
        assert_eq!(inf.shared_pages(t(1), t(2)), before);
    }

    #[test]
    fn page_cap_bounds_tracking() {
        let config = InferenceConfig { max_pages_per_thread: 4, ..Default::default() };
        let mut inf = SharingInference::new(config);
        inf.note_interval(t(1), &entries(&[1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(inf.tracked_pages(t(1)), 4);
    }

    #[test]
    fn forget_removes_all_traces() {
        let mut inf = SharingInference::new(InferenceConfig::default());
        inf.note_interval(t(1), &entries(&[1, 2]));
        inf.note_interval(t(2), &entries(&[2, 3]));
        inf.forget(t(1));
        assert_eq!(inf.tracked_pages(t(1)), 0);
        assert_eq!(inf.shared_pages(t(1), t(2)), 0);
        // t2's own pages remain; a third thread can still overlap t2.
        let edges = inf.note_interval(t(3), &entries(&[3]));
        assert!(edges.iter().any(|e| e.src == t(3) && e.dst == t(2) && e.q == 1.0));
    }

    #[test]
    fn noise_floor_suppresses_single_page_edges() {
        let config = InferenceConfig { min_shared_pages: 2, ..Default::default() };
        let mut inf = SharingInference::new(config);
        inf.note_interval(t(1), &entries(&[1, 2, 3]));
        assert!(inf.note_interval(t(2), &entries(&[3])).is_empty(), "below the floor");
        let edges = inf.note_interval(t(2), &entries(&[2]));
        assert_eq!(edges.len(), 2, "second shared page crosses the floor");
    }
}
