//! # active-threads
//!
//! A deterministic reimplementation of **Active Threads** — the paper's
//! portable high-performance user-level thread system — running over the
//! simulated SMP of `locality-sim`.
//!
//! The runtime supports the paper's general unrestricted thread model:
//! threads are units of possibly-parallel execution with independent
//! lifetimes that share one address space, and they may block on any of
//! the usual synchronization objects (mutexes, semaphores, barriers,
//! condition variables, joins). Thread state-sharing annotations
//! (`at_share`) extend the model exactly as in §2.3.
//!
//! ## Execution model
//!
//! Workload threads implement [`Program`]: the runtime repeatedly calls
//! [`Program::next_batch`], inside which the thread issues memory
//! accesses, compute, spawns, and annotations through [`BatchCtx`], and
//! then returns a [`Control`] describing how the batch ends (block on a
//! sync object, yield, sleep, exit). Blocking therefore never has to
//! unwind a call stack — no unsafe context switching — while the
//! scheduler-visible behaviour (counters read at context switches,
//! per-processor run queues, priority updates) is exactly the paper's.
//!
//! ## Schedulers
//!
//! * [`sched::FcfsScheduler`] — the paper's first-come first-served
//!   baseline (one global queue);
//! * [`sched::LocalityScheduler`] — LFF or CRT: per-processor binary
//!   heaps of expected footprints, threshold eviction to a global queue,
//!   and lowest-priority stealing for idle processors (paper §4/§5), fed
//!   by the performance counters and the annotation graph.
//!
//! ```
//! use active_threads::{Engine, EngineConfig, BatchCtx, Control, Program, SchedPolicy};
//! use locality_sim::MachineConfig;
//!
//! struct Toucher { buf: Option<locality_sim::VAddr>, rounds: u32 }
//! impl Program for Toucher {
//!     fn next_batch(&mut self, ctx: &mut BatchCtx<'_>) -> Control {
//!         let buf = *self.buf.get_or_insert_with(|| ctx.alloc(4096, 64));
//!         ctx.register_region(buf, 4096);
//!         ctx.read_range(buf, 4096, 64);
//!         self.rounds -= 1;
//!         if self.rounds == 0 { Control::Exit } else { Control::Yield }
//!     }
//! }
//!
//! let mut engine = Engine::new(
//!     MachineConfig::ultra1(),
//!     SchedPolicy::Fcfs,
//!     EngineConfig::default(),
//! )
//! .expect("valid machine");
//! engine.spawn(Box::new(Toucher { buf: None, rounds: 3 }));
//! let report = engine.run().unwrap();
//! assert_eq!(report.threads_completed, 1);
//! assert!(report.total_l2_misses >= 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod chaos;
pub mod engine;
pub mod events;
pub mod heap;
pub mod inference;
pub mod observe;
pub mod points;
pub mod program;
pub mod report;
pub mod sched;
pub mod sync;
pub mod thread;

pub use chaos::ChaosConfig;
pub use engine::{Engine, EngineConfig};
pub use error::RuntimeError;
pub use events::{EngineHook, SwitchEvent, SwitchReason};
pub use inference::{InferenceConfig, SharingInference};
pub use observe::{ObsEvent, ObsLog};
pub use points::{AccessSpan, BlockedOn, SchedulePoint, VisibleOp};
pub use program::{BatchCtx, Control, Program};
pub use report::RunReport;
pub use sched::{SchedPolicy, Scheduler};
pub use sync::{BarrierId, CondId, MutexId, SemId};

pub use locality_core::{CpuId, PolicyKind, ThreadId};
