//! Deterministic runtime observation log.
//!
//! When observation is enabled ([`Engine::enable_observation`]) the engine
//! appends one [`ObsEvent`] per synchronization transition, shared-memory
//! access span, spawn/join/exit, and `at_share` annotation — in engine
//! execution order, which is deterministic for a fixed program and
//! configuration. The log is the raw input of the offline analyses in the
//! `locality-analyze` crate (happens-before race detection, lock-order
//! cycle detection, annotation-consistency lints); keeping it a plain data
//! structure here avoids a dependency cycle between the runtime and the
//! analyzer.
//!
//! Event ordering guarantees relied on by consumers:
//!
//! * a [`MutexRelease`](ObsEvent::MutexRelease) precedes the
//!   [`MutexAcquire`](ObsEvent::MutexAcquire) it hands the mutex to;
//! * a [`SemPost`](ObsEvent::SemPost) precedes the
//!   [`SemAcquire`](ObsEvent::SemAcquire) it satisfies;
//! * a thread's [`Exit`](ObsEvent::Exit) precedes every
//!   [`JoinWake`](ObsEvent::JoinWake) on it;
//! * a [`Spawn`](ObsEvent::Spawn) precedes every event of the child;
//! * a thread's [`Abort`](ObsEvent::Abort) follows every event the
//!   thread performed itself and precedes every [`JoinWake`] on it and
//!   every [`MutexRelease`](ObsEvent::MutexRelease) reclaiming a lock it
//!   died holding — so analyses may treat the abort as the dead thread's
//!   final release point (post-abort reclamation is happens-before
//!   ordered by the abort, never racy).
//!
//! [`Engine::enable_observation`]: crate::Engine::enable_observation

use crate::sync::{BarrierId, CondId, MutexId, SemId};
use locality_core::ThreadId;
use locality_sim::VAddr;

/// One observed runtime event.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A thread was created; `parent` is `None` for root threads spawned
    /// from outside the engine.
    Spawn {
        /// The spawning thread, if any.
        parent: Option<ThreadId>,
        /// The new thread.
        child: ThreadId,
    },
    /// A thread exited.
    Exit {
        /// The exiting thread.
        tid: ThreadId,
    },
    /// A thread was killed by lifecycle fault injection (or was
    /// stillborn on spawn failure). Joins on it still complete; locks it
    /// held are reclaimed in the immediately following
    /// [`MutexRelease`](ObsEvent::MutexRelease) events.
    Abort {
        /// The aborted thread.
        tid: ThreadId,
    },
    /// `waiter`'s join on `target` completed (`target` had exited).
    JoinWake {
        /// The joining thread.
        waiter: ThreadId,
        /// The thread being joined.
        target: ThreadId,
    },
    /// `tid` acquired the mutex — immediately, by unlock hand-off, or on
    /// condition-variable wake-up.
    MutexAcquire {
        /// The acquiring thread.
        tid: ThreadId,
        /// The mutex.
        mutex: MutexId,
    },
    /// `tid` released the mutex (including the implicit release inside a
    /// condition-variable wait).
    MutexRelease {
        /// The releasing thread.
        tid: ThreadId,
        /// The mutex.
        mutex: MutexId,
    },
    /// `tid` posted (V'd) the semaphore.
    SemPost {
        /// The posting thread.
        tid: ThreadId,
        /// The semaphore.
        sem: SemId,
    },
    /// `tid` passed a semaphore wait (P) — immediately or woken by a post.
    SemAcquire {
        /// The acquiring thread.
        tid: ThreadId,
        /// The semaphore.
        sem: SemId,
    },
    /// All parties crossed the barrier together.
    BarrierCross {
        /// The barrier.
        barrier: BarrierId,
        /// Every thread released by this crossing (including the last
        /// arrival), in arrival order.
        parties: Vec<ThreadId>,
    },
    /// `signaler` woke `woken` from a condition-variable wait.
    CondWake {
        /// The signalling (or broadcasting) thread.
        signaler: ThreadId,
        /// The woken waiter.
        woken: ThreadId,
        /// The condition variable.
        cond: CondId,
    },
    /// `tid` touched every byte range within `[start, start + bytes)`
    /// (single accesses are 1-byte spans; strided range accesses record
    /// the covering span).
    Access {
        /// The accessing thread.
        tid: ThreadId,
        /// First byte of the span.
        start: VAddr,
        /// Length of the span in bytes.
        bytes: u64,
        /// True for stores, false for loads.
        write: bool,
    },
    /// `tid` issued `at_share(src, dst, q)`. Recorded even when the graph
    /// rejected the annotation (`accepted = false`), so lints can see raw
    /// coefficient values.
    AtShare {
        /// The edge source.
        src: ThreadId,
        /// The edge destination.
        dst: ThreadId,
        /// The raw coefficient as written by the program.
        q: f64,
        /// Whether the [`SharingGraph`](locality_core::SharingGraph)
        /// accepted the edge.
        accepted: bool,
    },
}

/// Append-only log of [`ObsEvent`]s in deterministic engine order.
#[derive(Debug, Default)]
pub struct ObsLog {
    events: Vec<ObsEvent>,
}

impl ObsLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ObsLog::default()
    }

    /// Appends an event.
    ///
    /// Immediately-consecutive access spans by the same thread with the
    /// same access kind are coalesced when they overlap or touch — a loop
    /// of sequential touches collapses to one span. No other event can
    /// sit between the two, so the thread's happens-before frontier is
    /// identical for both and the merge loses nothing.
    pub fn record(&mut self, ev: ObsEvent) {
        if let ObsEvent::Access { tid, start, bytes, write } = &ev {
            if let Some(ObsEvent::Access { tid: lt, start: ls, bytes: lb, write: lw }) =
                self.events.last_mut()
            {
                if lt == tid && lw == write {
                    let (a0, a1) = (ls.0, ls.0 + *lb);
                    let (b0, b1) = (start.0, start.0 + *bytes);
                    if b0 <= a1 && a0 <= b1 {
                        let lo = a0.min(b0);
                        *ls = VAddr(lo);
                        *lb = a1.max(b1) - lo;
                        return;
                    }
                }
            }
        }
        self.events.push(ev);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(tid: u64, start: u64, bytes: u64, write: bool) -> ObsEvent {
        ObsEvent::Access { tid: ThreadId(tid), start: VAddr(start), bytes, write }
    }

    #[test]
    fn coalesces_adjacent_same_kind_accesses() {
        let mut log = ObsLog::new();
        log.record(access(1, 0, 64, false));
        log.record(access(1, 64, 64, false));
        log.record(access(1, 32, 8, false));
        assert_eq!(log.len(), 1);
        assert_eq!(log.events()[0], access(1, 0, 128, false));
    }

    #[test]
    fn does_not_coalesce_across_threads_kinds_or_gaps() {
        let mut log = ObsLog::new();
        log.record(access(1, 0, 64, false));
        log.record(access(2, 64, 64, false)); // other thread
        log.record(access(2, 128, 64, true)); // other kind
        log.record(access(2, 1024, 64, true)); // gap
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn intervening_event_blocks_coalescing() {
        let mut log = ObsLog::new();
        log.record(access(1, 0, 64, false));
        log.record(ObsEvent::MutexAcquire { tid: ThreadId(1), mutex: MutexId(0) });
        log.record(access(1, 64, 64, false));
        assert_eq!(log.len(), 3);
    }
}
