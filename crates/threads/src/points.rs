//! Controlled-scheduling hooks for stateless model checking.
//!
//! When [`EngineConfig::schedule_points`](crate::EngineConfig) is set,
//! the engine turns every *visible operation* — a batch ending in any
//! [`Control`] — into a scheduling decision point: the running thread is
//! forcibly preempted after each batch, so the scheduler's `pick` is
//! consulted before every visible operation. Each executed batch is
//! recorded as a [`SchedulePoint`] carrying the operation, the memory
//! spans the batch touched, and any threads it spawned. A model checker
//! (see `locality-analyze`) drives the engine down chosen interleavings
//! by injecting a scripted scheduler and reads the recorded points back
//! to compute happens-before and dependence between steps.

use crate::program::Control;
use crate::sync::{BarrierId, CondId, MutexId, SemId};
use locality_core::ThreadId;
use locality_sim::VAddr;

/// One contiguous memory span touched by a batch (collected exactly,
/// per batch, independent of the [`ObsLog`](crate::ObsLog)'s span
/// coalescing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSpan {
    /// First byte of the span.
    pub start: VAddr,
    /// Span length in bytes.
    pub bytes: u64,
    /// Whether the span was written (true) or only read (false).
    pub write: bool,
}

impl AccessSpan {
    /// Whether two spans overlap and at least one of them writes — the
    /// data-conflict half of the model checker's dependence relation.
    pub fn conflicts(&self, other: &AccessSpan) -> bool {
        if !self.write && !other.write {
            return false;
        }
        let a_end = self.start.0.saturating_add(self.bytes);
        let b_end = other.start.0.saturating_add(other.bytes);
        self.start.0 < b_end && other.start.0 < a_end
    }
}

/// The visible operation a batch ended with — the scheduling-point
/// taxonomy (DESIGN.md §12). One-to-one with [`Control`], so every way
/// a batch can end is a decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisibleOp {
    /// Voluntary yield.
    Yield,
    /// Timed sleep.
    Sleep(u64),
    /// Mutex acquire (may block).
    Lock(MutexId),
    /// Mutex release.
    Unlock(MutexId),
    /// Semaphore P() (may block).
    SemWait(SemId),
    /// Semaphore V().
    SemPost(SemId),
    /// Barrier arrival (blocks unless last).
    BarrierWait(BarrierId),
    /// Atomic unlock + condition wait (blocks).
    CondWait(CondId, MutexId),
    /// Wake one condition waiter.
    CondSignal(CondId),
    /// Wake all condition waiters.
    CondBroadcast(CondId),
    /// Wait for a thread's exit (may block).
    Join(ThreadId),
    /// Thread termination.
    Exit,
}

impl VisibleOp {
    /// The visible operation of a batch-ending control.
    pub fn of(control: Control) -> VisibleOp {
        match control {
            Control::Yield => VisibleOp::Yield,
            Control::Sleep(d) => VisibleOp::Sleep(d),
            Control::Lock(m) => VisibleOp::Lock(m),
            Control::Unlock(m) => VisibleOp::Unlock(m),
            Control::SemWait(s) => VisibleOp::SemWait(s),
            Control::SemPost(s) => VisibleOp::SemPost(s),
            Control::BarrierWait(b) => VisibleOp::BarrierWait(b),
            Control::CondWait(c, m) => VisibleOp::CondWait(c, m),
            Control::CondSignal(c) => VisibleOp::CondSignal(c),
            Control::CondBroadcast(c) => VisibleOp::CondBroadcast(c),
            Control::Join(t) => VisibleOp::Join(t),
            Control::Exit => VisibleOp::Exit,
        }
    }

    /// The sync object this operation touches, as a comparable key, if
    /// any. Two operations on the same object are dependent.
    pub fn sync_object(&self) -> Option<(u8, usize)> {
        match *self {
            VisibleOp::Lock(m) | VisibleOp::Unlock(m) => Some((0, m.0)),
            VisibleOp::SemWait(s) | VisibleOp::SemPost(s) => Some((1, s.0)),
            VisibleOp::BarrierWait(b) => Some((2, b.0)),
            VisibleOp::CondSignal(c) | VisibleOp::CondBroadcast(c) => Some((3, c.0)),
            // CondWait touches both the condvar and the mutex; the
            // condvar key is returned here and the mutex is reported via
            // `cond_wait_mutex`.
            VisibleOp::CondWait(c, _) => Some((3, c.0)),
            _ => None,
        }
    }

    /// The mutex a `CondWait` atomically releases, if this is one.
    pub fn cond_wait_mutex(&self) -> Option<MutexId> {
        match *self {
            VisibleOp::CondWait(_, m) => Some(m),
            _ => None,
        }
    }
}

impl std::fmt::Display for VisibleOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            VisibleOp::Yield => write!(f, "yield"),
            VisibleOp::Sleep(d) => write!(f, "sleep({d})"),
            VisibleOp::Lock(m) => write!(f, "lock(m{})", m.0),
            VisibleOp::Unlock(m) => write!(f, "unlock(m{})", m.0),
            VisibleOp::SemWait(s) => write!(f, "sem-wait(s{})", s.0),
            VisibleOp::SemPost(s) => write!(f, "sem-post(s{})", s.0),
            VisibleOp::BarrierWait(b) => write!(f, "barrier(b{})", b.0),
            VisibleOp::CondWait(c, m) => write!(f, "cond-wait(c{}, m{})", c.0, m.0),
            VisibleOp::CondSignal(c) => write!(f, "cond-signal(c{})", c.0),
            VisibleOp::CondBroadcast(c) => write!(f, "cond-broadcast(c{})", c.0),
            VisibleOp::Join(t) => write!(f, "join({t})"),
            VisibleOp::Exit => write!(f, "exit"),
        }
    }
}

/// One executed decision point: thread `tid` ran one batch that touched
/// `accesses`, spawned `spawned`, and ended with `op`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePoint {
    /// The thread that executed the batch.
    pub tid: ThreadId,
    /// The visible operation the batch ended with.
    pub op: VisibleOp,
    /// Exact memory spans touched by the batch (in access order).
    pub accesses: Vec<AccessSpan>,
    /// Children spawned during the batch (ready once it ends).
    pub spawned: Vec<ThreadId>,
    /// The half-open range of [`ObsLog`](crate::ObsLog) event indices
    /// this step produced (batch events plus everything its visible
    /// operation emitted — hand-offs, wakes, exits). `(0, 0)` when
    /// observation is not enabled.
    pub obs_range: (usize, usize),
}

impl SchedulePoint {
    /// Whether two points are *dependent* — reordering them can change
    /// the outcome. True when they touch the same sync object, conflict
    /// on memory, or couple a `Join` with its target's `Exit`.
    pub fn dependent(&self, other: &SchedulePoint) -> bool {
        if self.tid == other.tid {
            return true;
        }
        let same_sync = match (self.op.sync_object(), other.op.sync_object()) {
            (Some(a), Some(b)) if a == b => true,
            _ => {
                // CondWait also touches its mutex.
                let am = self.op.cond_wait_mutex();
                let bm = other.op.cond_wait_mutex();
                let a_mutex = match self.op {
                    VisibleOp::Lock(m) | VisibleOp::Unlock(m) => Some(m),
                    _ => am,
                };
                let b_mutex = match other.op {
                    VisibleOp::Lock(m) | VisibleOp::Unlock(m) => Some(m),
                    _ => bm,
                };
                matches!((a_mutex, b_mutex), (Some(x), Some(y)) if x == y)
            }
        };
        if same_sync {
            return true;
        }
        if matches!(self.op, VisibleOp::Join(t) if t == other.tid)
            || matches!(other.op, VisibleOp::Join(t) if t == self.tid)
        {
            return true;
        }
        self.accesses.iter().any(|a| other.accesses.iter().any(|b| a.conflicts(b)))
    }
}

/// Why a blocked thread is blocked — the engine's blocked-state
/// introspection, used by the model checker to classify a global
/// deadlock (lock cycle vs. lost wakeup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Waiting to acquire a mutex.
    Mutex(MutexId),
    /// Waiting on a semaphore.
    Sem(SemId),
    /// Waiting at a barrier.
    Barrier(BarrierId),
    /// Waiting on a condition variable (a thread stuck here forever is a
    /// lost wakeup).
    Cond(CondId),
    /// Waiting for another thread to exit.
    Join(ThreadId),
}

impl std::fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BlockedOn::Mutex(m) => write!(f, "mutex m{}", m.0),
            BlockedOn::Sem(s) => write!(f, "semaphore s{}", s.0),
            BlockedOn::Barrier(b) => write!(f, "barrier b{}", b.0),
            BlockedOn::Cond(c) => write!(f, "condvar c{}", c.0),
            BlockedOn::Join(t) => write!(f, "join of {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, bytes: u64, write: bool) -> AccessSpan {
        AccessSpan { start: VAddr(start), bytes, write }
    }

    #[test]
    fn span_conflicts_require_a_write_and_overlap() {
        assert!(span(0, 64, true).conflicts(&span(32, 64, false)));
        assert!(span(32, 64, false).conflicts(&span(0, 64, true)));
        assert!(!span(0, 64, false).conflicts(&span(0, 64, false)));
        assert!(!span(0, 64, true).conflicts(&span(64, 64, true)));
    }

    #[test]
    fn visible_op_covers_every_control() {
        assert_eq!(VisibleOp::of(Control::Yield), VisibleOp::Yield);
        assert_eq!(VisibleOp::of(Control::Lock(MutexId(3))), VisibleOp::Lock(MutexId(3)));
        assert_eq!(VisibleOp::of(Control::Exit), VisibleOp::Exit);
        assert_eq!(
            VisibleOp::of(Control::CondWait(CondId(1), MutexId(2))),
            VisibleOp::CondWait(CondId(1), MutexId(2))
        );
    }

    fn point(tid: u64, op: VisibleOp, accesses: Vec<AccessSpan>) -> SchedulePoint {
        SchedulePoint { tid: ThreadId(tid), op, accesses, spawned: Vec::new(), obs_range: (0, 0) }
    }

    #[test]
    fn dependence_same_mutex() {
        let a = point(1, VisibleOp::Lock(MutexId(0)), vec![]);
        let b = point(2, VisibleOp::Unlock(MutexId(0)), vec![]);
        let c = point(2, VisibleOp::Lock(MutexId(1)), vec![]);
        assert!(a.dependent(&b));
        assert!(!a.dependent(&c));
    }

    #[test]
    fn dependence_cond_wait_touches_its_mutex() {
        let w = point(1, VisibleOp::CondWait(CondId(0), MutexId(5)), vec![]);
        let l = point(2, VisibleOp::Lock(MutexId(5)), vec![]);
        let s = point(2, VisibleOp::CondSignal(CondId(0)), vec![]);
        assert!(w.dependent(&l));
        assert!(w.dependent(&s));
    }

    #[test]
    fn dependence_join_exit_pair_and_memory_conflicts() {
        let j = point(1, VisibleOp::Join(ThreadId(2)), vec![]);
        let e = point(2, VisibleOp::Exit, vec![]);
        assert!(j.dependent(&e));
        let r = point(1, VisibleOp::Yield, vec![span(0, 64, false)]);
        let w = point(2, VisibleOp::Yield, vec![span(0, 8, true)]);
        let r2 = point(2, VisibleOp::Yield, vec![span(0, 64, false)]);
        assert!(r.dependent(&w));
        assert!(!r.dependent(&r2));
    }
}
